#pragma once
// Meghdoot-like baseline [11]: content-based pub/sub over CAN.
//
// A scheme with d attributes maps to a CAN of 2d dimensions. A subscription
// with ranges [l_i, h_i] becomes the point (l_1..l_d, h_1..h_d); an event
// e = (v_1..v_d) affects exactly the region {x : x_i <= v_i <= x_{d+i}},
// so delivery routes the event to (v_1..v_d, v_1..v_d) and floods the
// affected region through CAN neighbor links, matching stored subscriptions
// in every visited zone. The paper's critique — the overlay dimensionality
// is tied to the scheme (no multi-scheme support) and the affected region
// grows with the event's position — is what the ablation bench quantifies.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "can/can_net.hpp"
#include "metrics/event_metrics.hpp"
#include "pubsub/event.hpp"
#include "pubsub/subscription.hpp"

namespace hypersub::baseline {

class MeghdootLike {
 public:
  /// The CanNet must have dims() == 2 * scheme.arity().
  MeghdootLike(can::CanNet& can, pubsub::Scheme scheme);

  const pubsub::Scheme& scheme() const noexcept { return scheme_; }

  void subscribe(net::HostIndex subscriber, pubsub::Subscription sub);
  std::uint64_t publish(net::HostIndex publisher, pubsub::Event event);
  void finalize_events();

  metrics::EventMetrics& event_metrics() noexcept { return metrics_; }
  std::size_t deliveries() const noexcept { return deliveries_; }
  std::size_t total_subscriptions() const noexcept { return total_subs_; }
  std::vector<std::size_t> node_loads() const;

  /// Map a subscription to its CAN point (normalized 2d coordinates).
  Point subscription_point(const pubsub::Subscription& sub) const;
  /// Affected region of an event in CAN space.
  HyperRect affected_region(const pubsub::Event& e) const;

 private:
  struct Stored {
    net::HostIndex subscriber;
    std::uint32_t iid;
    pubsub::Subscription sub;
  };
  struct Tracker {
    double publish_time = 0.0;
    std::size_t matched = 0;
    int max_hops = 0;
    double max_latency = 0.0;
    std::uint64_t bytes = 0;
    std::size_t pending_unicasts = 0;
    bool flood_done = false;
  };

  double normalize(std::size_t attr, double v) const;
  void finalize_if_done(std::uint64_t seq);

  can::CanNet& can_;
  pubsub::Scheme scheme_;
  std::unordered_map<net::HostIndex, std::vector<Stored>> store_;
  std::unordered_map<std::uint64_t, Tracker> trackers_;
  metrics::EventMetrics metrics_;
  std::uint64_t seq_ = 0;
  std::uint32_t iid_ = 0;
  std::size_t deliveries_ = 0;
  std::size_t total_subs_ = 0;
};

}  // namespace hypersub::baseline
