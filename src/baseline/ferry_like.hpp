#pragma once
// Ferry-like baseline [23]: one rendezvous node per scheme.
//
// Ferry stores all subscriptions of a scheme at the successor of
// hash(scheme name), routes every event there (O(log N) hops), matches
// centrally, and then delivers to subscribers through the DHT's embedded
// tree (the same subid-splitting trick HyperSub uses). The paper's critique
// — the small rendezvous set becomes a scalability bottleneck — is exactly
// what bench/ablation_baselines measures against HyperSub.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chord/chord_net.hpp"
#include "metrics/event_metrics.hpp"
#include "pubsub/event.hpp"
#include "pubsub/subscription.hpp"

namespace hypersub::baseline {

class FerryLike {
 public:
  FerryLike(chord::ChordNet& chord, pubsub::Scheme scheme);

  const pubsub::Scheme& scheme() const noexcept { return scheme_; }

  /// The rendezvous node id (successor of hash(scheme name)).
  Id rendezvous_key() const noexcept { return rendezvous_key_; }

  /// Install a subscription (routed to the rendezvous node).
  void subscribe(net::HostIndex subscriber, pubsub::Subscription sub);

  /// Publish an event; match at the rendezvous, deliver via DHT links.
  std::uint64_t publish(net::HostIndex publisher, pubsub::Event event);

  /// Flush trackers after the simulation drains.
  void finalize_events();

  metrics::EventMetrics& event_metrics() noexcept { return metrics_; }
  std::size_t deliveries() const noexcept { return deliveries_; }
  std::size_t total_subscriptions() const noexcept { return total_subs_; }

  /// Stored subscriptions per host (to expose the rendezvous hotspot).
  std::vector<std::size_t> node_loads() const;

 private:
  struct Stored {
    Id subscriber_id;
    std::uint32_t iid;
    pubsub::Subscription sub;
  };
  struct Tracker {
    double publish_time = 0.0;
    std::size_t outstanding = 0;
    std::size_t matched = 0;
    int max_hops = 0;
    double max_latency = 0.0;
    std::uint64_t bytes = 0;
  };

  void deliver(net::HostIndex host, std::uint64_t seq,
               std::vector<std::pair<Id, std::uint32_t>> targets, int hops);
  void finalize_if_done(std::uint64_t seq);

  chord::ChordNet& chord_;
  pubsub::Scheme scheme_;
  Id rendezvous_key_;
  std::unordered_map<net::HostIndex, std::vector<Stored>> store_;
  std::unordered_map<std::uint64_t, Tracker> trackers_;
  metrics::EventMetrics metrics_;
  std::uint64_t seq_ = 0;
  std::uint32_t iid_ = 0;
  std::size_t deliveries_ = 0;
  std::size_t total_subs_ = 0;
};

}  // namespace hypersub::baseline
