#include "baseline/ferry_like.hpp"

#include <algorithm>

#include "common/hashing.hpp"
#include "core/subid.hpp"

namespace hypersub::baseline {

FerryLike::FerryLike(chord::ChordNet& chord, pubsub::Scheme scheme)
    : chord_(chord),
      scheme_(std::move(scheme)),
      rendezvous_key_(hash_string(scheme_.name())) {}

void FerryLike::subscribe(net::HostIndex subscriber,
                          pubsub::Subscription sub) {
  const Id sub_id = chord_.id_of(subscriber);
  const std::uint32_t iid = ++iid_;
  ++total_subs_;
  const std::uint64_t bytes =
      chord::kHeaderBytes + core::kSubIdBytes + 16 * scheme_.arity();
  chord_.route(subscriber, rendezvous_key_, bytes,
               [this, sub_id, iid, sub = std::move(sub)](
                   const chord::ChordNet::RouteResult& r) mutable {
                 store_[r.owner.host].push_back(
                     Stored{sub_id, iid, std::move(sub)});
               });
}

std::uint64_t FerryLike::publish(net::HostIndex publisher,
                                 pubsub::Event event) {
  const std::uint64_t seq = ++seq_;
  event.seq = seq;
  Tracker& t = trackers_[seq];
  t.publish_time = chord_.simulator().now();
  t.outstanding = 1;

  const std::uint64_t bytes = chord::kHeaderBytes + core::kEventBytes;
  chord_.route(
      publisher, rendezvous_key_, bytes - chord::kHeaderBytes,
      [this, seq, event = std::move(event)](
          const chord::ChordNet::RouteResult& r) {
        Tracker& tr = trackers_[seq];
        tr.max_hops = std::max(tr.max_hops, r.hops);
        // Bytes of the inbound routing path: approximate with per-hop cost.
        tr.bytes += std::uint64_t(r.hops) *
                    (chord::kHeaderBytes + core::kEventBytes);
        // Central match.
        std::vector<std::pair<Id, std::uint32_t>> targets;
        const auto it = store_.find(r.owner.host);
        if (it != store_.end()) {
          for (const auto& s : it->second) {
            if (s.sub.matches(event.point)) {
              targets.emplace_back(s.subscriber_id, s.iid);
            }
          }
        }
        deliver(r.owner.host, seq, std::move(targets), r.hops);
        Tracker& tr2 = trackers_[seq];
        --tr2.outstanding;
        finalize_if_done(seq);
      });
  return seq;
}

void FerryLike::deliver(net::HostIndex host, std::uint64_t seq,
                        std::vector<std::pair<Id, std::uint32_t>> targets,
                        int hops) {
  Tracker& t = trackers_[seq];
  t.max_hops = std::max(t.max_hops, hops);
  chord::ChordNode& cn = chord_.node(host);

  std::unordered_map<net::HostIndex,
                     std::vector<std::pair<Id, std::uint32_t>>>
      groups;
  for (const auto& [target_id, iid] : targets) {
    if (cn.owns(target_id) && target_id == cn.id()) {
      ++t.matched;
      ++deliveries_;
      t.max_latency = std::max(t.max_latency,
                               chord_.simulator().now() - t.publish_time);
      continue;
    }
    chord::NodeRef next;
    const chord::NodeRef succ = cn.successor();
    if (succ.valid() && ring::in_open_closed(target_id, cn.id(), succ.id)) {
      next = succ;
    } else {
      next = cn.closest_preceding(target_id);
      if (!next.valid() || next.id == cn.id()) next = succ;
    }
    if (!next.valid()) continue;
    groups[next.host].emplace_back(target_id, iid);
  }
  for (auto& [to, sublist] : groups) {
    const std::uint64_t bytes = chord::kHeaderBytes + core::kEventBytes +
                                core::kSubIdBytes * sublist.size();
    t.bytes += bytes;
    ++t.outstanding;
    chord_.network().send(host, to, bytes,
                          [this, to, seq, sublist = std::move(sublist),
                           hops]() mutable {
                            Tracker& tr = trackers_[seq];
                            deliver(to, seq, std::move(sublist), hops + 1);
                            --tr.outstanding;
                            finalize_if_done(seq);
                          });
  }
}

void FerryLike::finalize_if_done(std::uint64_t seq) {
  const auto it = trackers_.find(seq);
  if (it == trackers_.end() || it->second.outstanding != 0) return;
  const Tracker& t = it->second;
  metrics::EventRecord r;
  r.seq = seq;
  r.matched = t.matched;
  r.pct_matched = total_subs_ > 0
                      ? 100.0 * double(t.matched) / double(total_subs_)
                      : 0.0;
  r.max_hops = t.max_hops;
  r.max_latency_ms = t.max_latency;
  r.bandwidth_bytes = t.bytes;
  metrics_.add(r);
  trackers_.erase(it);
}

void FerryLike::finalize_events() {
  std::vector<std::uint64_t> seqs;
  for (const auto& [seq, t] : trackers_) seqs.push_back(seq);
  for (const std::uint64_t s : seqs) {
    trackers_[s].outstanding = 0;
    finalize_if_done(s);
  }
}

std::vector<std::size_t> FerryLike::node_loads() const {
  std::vector<std::size_t> loads(chord_.size(), 0);
  for (const auto& [host, subs] : store_) loads[host] = subs.size();
  return loads;
}

}  // namespace hypersub::baseline
