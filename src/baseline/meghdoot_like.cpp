#include "baseline/meghdoot_like.hpp"

#include <algorithm>
#include <cassert>

#include "chord/chord_net.hpp"  // wire-size constants
#include "core/subid.hpp"

namespace hypersub::baseline {

MeghdootLike::MeghdootLike(can::CanNet& can, pubsub::Scheme scheme)
    : can_(can), scheme_(std::move(scheme)) {
  assert(can_.dims() == 2 * scheme_.arity());
}

double MeghdootLike::normalize(std::size_t attr, double v) const {
  const Interval dom = scheme_.attribute(attr).domain;
  return (v - dom.lo) / dom.length();
}

Point MeghdootLike::subscription_point(
    const pubsub::Subscription& sub) const {
  const std::size_t d = scheme_.arity();
  Point p(2 * d);
  for (std::size_t i = 0; i < d; ++i) {
    p[i] = normalize(i, sub.range().dim(i).lo);
    p[d + i] = normalize(i, sub.range().dim(i).hi);
  }
  return p;
}

HyperRect MeghdootLike::affected_region(const pubsub::Event& e) const {
  const std::size_t d = scheme_.arity();
  std::vector<Interval> dims(2 * d);
  for (std::size_t i = 0; i < d; ++i) {
    const double v = normalize(i, e.point[i]);
    dims[i] = Interval{0.0, v};      // l_i <= v_i
    dims[d + i] = Interval{v, 1.0};  // h_i >= v_i
  }
  return HyperRect(std::move(dims));
}

void MeghdootLike::subscribe(net::HostIndex subscriber,
                             pubsub::Subscription sub) {
  const std::uint32_t iid = ++iid_;
  ++total_subs_;
  const Point p = subscription_point(sub);
  const std::uint64_t bytes =
      chord::kHeaderBytes + core::kSubIdBytes + 16 * scheme_.arity();
  can_.route(subscriber, p, bytes,
             [this, subscriber, iid, sub = std::move(sub)](
                 const can::CanNet::RouteResult& r) mutable {
               store_[r.owner].push_back(
                   Stored{subscriber, iid, std::move(sub)});
             });
}

std::uint64_t MeghdootLike::publish(net::HostIndex publisher,
                                    pubsub::Event event) {
  const std::uint64_t seq = ++seq_;
  event.seq = seq;
  Tracker& t = trackers_[seq];
  t.publish_time = can_.network().simulator().now();
  const std::size_t d = scheme_.arity();

  Point start(2 * d);
  for (std::size_t i = 0; i < d; ++i) {
    start[i] = normalize(i, event.point[i]);
    start[d + i] = start[i];
  }
  const HyperRect region = affected_region(event);
  const std::uint64_t msg_bytes = chord::kHeaderBytes + core::kEventBytes;

  can_.region_multicast(
      publisher, start, region, msg_bytes,
      /*on_visit=*/
      [this, seq, event](net::HostIndex host, int hops) {
        Tracker& t2 = trackers_[seq];
        t2.bytes += chord::kHeaderBytes + core::kEventBytes;
        t2.max_hops = std::max(t2.max_hops, hops);
        const auto it = store_.find(host);
        if (it == store_.end()) return;
        for (const auto& s : it->second) {
          if (!s.sub.matches(event.point)) continue;
          // Unicast delivery from the matching zone to the subscriber
          // (Meghdoot delivers from the zones holding the subscription).
          ++t2.matched;
          ++t2.pending_unicasts;
          const std::uint64_t ub = chord::kHeaderBytes + core::kEventBytes +
                                   core::kSubIdBytes;
          t2.bytes += ub;
          can_.network().send(host, s.subscriber, ub,
                              [this, seq, hops] {
                                Tracker& t3 = trackers_[seq];
                                ++deliveries_;
                                t3.max_hops =
                                    std::max(t3.max_hops, hops + 1);
                                t3.max_latency = std::max(
                                    t3.max_latency, can_.network().simulator().now() -
                                                        t3.publish_time);
                                --t3.pending_unicasts;
                                finalize_if_done(seq);
                              });
        }
      },
      /*on_done=*/
      [this, seq](int) {
        Tracker& t2 = trackers_[seq];
        t2.flood_done = true;
        finalize_if_done(seq);
      });
  return seq;
}

void MeghdootLike::finalize_if_done(std::uint64_t seq) {
  const auto it = trackers_.find(seq);
  if (it == trackers_.end()) return;
  const Tracker& t = it->second;
  if (!t.flood_done || t.pending_unicasts != 0) return;
  metrics::EventRecord r;
  r.seq = seq;
  r.matched = t.matched;
  r.pct_matched = total_subs_ > 0
                      ? 100.0 * double(t.matched) / double(total_subs_)
                      : 0.0;
  r.max_hops = t.max_hops;
  r.max_latency_ms = t.max_latency;
  r.bandwidth_bytes = t.bytes;
  metrics_.add(r);
  trackers_.erase(it);
}

void MeghdootLike::finalize_events() {
  std::vector<std::uint64_t> seqs;
  for (const auto& [seq, t] : trackers_) seqs.push_back(seq);
  for (const std::uint64_t s : seqs) {
    trackers_[s].flood_done = true;
    trackers_[s].pending_unicasts = 0;
    finalize_if_done(s);
  }
}

std::vector<std::size_t> MeghdootLike::node_loads() const {
  std::vector<std::size_t> loads(can_.size(), 0);
  for (const auto& [host, subs] : store_) loads[host] = subs.size();
  return loads;
}

}  // namespace hypersub::baseline
