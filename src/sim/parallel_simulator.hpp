#pragma once
// ParallelEngine: the conservative-parallel execution mode of the
// discrete-event engine (internal to src/sim; the public surface is
// Simulator::set_threads / set_lookahead).
//
// Model (classic conservative DES, specialized to this codebase):
//
//   * Every event carries a shard tag (the host whose state its callback
//     touches; kNoShard = exclusive). Each shard keeps its own event heap;
//     within a window a shard is claimed whole by exactly one worker
//     (work-stealing off a per-window ready list), so one shard's events
//     never run concurrently with each other and per-host state needs no
//     locks — while load imbalance between shards self-levels instead of
//     stalling on a fixed shard-to-worker pinning.
//   * Execution proceeds in windows. A window starts at the globally
//     earliest pending event time t0 and ends at the position
//       min( (t0 + effective lookahead),  next exclusive event,
//            run_until bound ).
//     The effective lookahead is max(configured lookahead, adaptive floor)
//     — see Simulator::set_lookahead_floor. Within the window the claiming
//     worker drains the shard's heap in (when, pre-existing-first,
//     scheduling-order) order — provably the sequential execution order
//     restricted to that shard (see DESIGN.md for the induction).
//   * Cross-shard handoffs (network sends, explicit schedule_on) are
//     delayed by >= lookahead, so nothing scheduled inside a window can
//     land inside the same window on another shard: each worker's inputs
//     are complete before the window starts. Same-shard schedules go
//     straight into the worker's live heap and can execute in-window.
//   * At the window barrier the main thread (a) sorts every event staged
//     during the window by its sequential scheduling position — (executing
//     event's position, per-event call index), compared recursively
//     through ExecRec parent chains — and assigns global seq numbers in
//     that order, (b) executes defer_ordered closures in the same
//     sequential order, and (c) runs merge hooks. Relative (when, seq)
//     order of all surviving events therefore matches the sequential run
//     exactly, which is all downstream code can observe: a parallel run
//     is byte-identical to the sequential run at the same lookahead.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

#include "sim/simulator.hpp"

namespace hypersub::sim {

namespace detail {

/// Execution record of one event run inside the current window — the
/// node of the "who scheduled what" forest that reconstructs sequential
/// scheduling order at the barrier. Arena-allocated per worker per window
/// (pointers stable until the barrier clears the arenas).
struct ExecRec {
  Time when = 0.0;
  bool pre = false;            ///< true: entered the window with a global seq
  std::uint64_t seq = 0;       ///< valid when pre
  const ExecRec* parent = nullptr;  ///< valid when !pre: who scheduled it...
  std::uint32_t idx = 0;            ///< ...and as its how-many-eth call
  Shard shard = kNoShard;
  std::uint32_t calls = 0;     ///< schedule/defer calls made by this event
};

/// Strict total order: would `a` execute before `b` in the sequential run?
bool exec_before(const ExecRec* a, const ExecRec* b) noexcept;

/// One schedule()/defer_ordered() call site: the calling event's record
/// plus the call's index within that event.
struct SchedKey {
  const ExecRec* parent = nullptr;
  std::uint32_t idx = 0;
};

/// Would call site `a` happen before call site `b` sequentially?
inline bool sched_before(const SchedKey& a, const SchedKey& b) noexcept {
  if (a.parent == b.parent) return a.idx < b.idx;
  return exec_before(a.parent, b.parent);
}

/// An event scheduled from a worker during a window; receives its global
/// seq at the barrier, in sched_before order.
struct Staged {
  Time when;
  Shard shard;
  SchedKey key;
  std::uint64_t stamp;  ///< worker-local scheduling order (live-heap tiebreak)
  Task action;
};

/// A defer_ordered closure staged by a worker.
struct Deferred {
  SchedKey key;
  Task fn;
};

/// Exclusive upper bound of a window, as a position in (when, seq) space.
/// A pre-existing entry (w, s) is in-window iff w < when, or w == when and
/// s < seq. A staged entry at w is in-window iff w < when, or w == when
/// and !staged_strict (staged entries order after every pre-existing entry
/// at the same timestamp, so a bound at an existing event's position
/// excludes them; only the inclusive run_until bound admits them).
struct Bound {
  Time when = 0.0;
  std::uint64_t seq = 0;
  bool staged_strict = true;

  bool admits_pre(Time w, std::uint64_t s) const noexcept {
    return w < when || (w == when && s < seq);
  }
  bool admits_staged(Time w) const noexcept {
    return w < when || (w == when && !staged_strict);
  }
  /// Tighter-position-wins combine.
  static Bound min(const Bound& a, const Bound& b) noexcept {
    if (a.when != b.when) return a.when < b.when ? a : b;
    if (a.seq != b.seq) return a.seq < b.seq ? a : b;
    return a.staged_strict ? a : b;
  }
};

/// Thread-local execution context of one parallel worker. Simulator's
/// public accessors (now, current_shard, worker_slot, schedule) consult it
/// so instrumented code behaves identically inside and outside windows.
struct WorkerTls {
  Simulator* sim = nullptr;
  ParallelEngine* engine = nullptr;
  unsigned slot = 0;        ///< 1..threads (0 is the main thread)
  Shard shard = kNoShard;   ///< currently executing event's shard
  Time now = 0.0;           ///< currently executing event's timestamp
  ExecRec* rec = nullptr;   ///< currently executing event's record
  Bound bound;              ///< current window bound (staging assertions)
};

/// The calling thread's worker context, or nullptr off the worker pool.
WorkerTls* worker_tls() noexcept;
void set_worker_tls(WorkerTls* t) noexcept;

}  // namespace detail

/// Owns the worker pool and per-worker state for one parallel run segment.
/// Constructed by Simulator::run_parallel, destroyed when the segment ends
/// (remaining events are handed back to the sequential queue).
class ParallelEngine {
 public:
  ParallelEngine(Simulator& sim, unsigned workers);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Execute until the engine drains or (if bounded) every remaining
  /// event is later than `until`. Returns events executed.
  std::uint64_t run(Time until, bool bounded);

  /// Main-thread push of an already-sequenced entry (exclusive events'
  /// schedules during a run).
  void push_pre(Simulator::Entry e);

  /// Hand every remaining entry back to the Simulator queue.
  void drain_to_queue();

  // -- worker-side hooks (called via TLS from Simulator) --------------------
  void worker_stage(detail::WorkerTls& tls, Time when, Shard shard,
                    Task action);
  void worker_defer(detail::WorkerTls& tls, Task fn);

 private:
  // One shard's event state. A shard is claimed *whole* by exactly one
  // worker per window (work-stealing at window granularity): workers pull
  // shard indices off the window's ready list through an atomic cursor, so
  // a shard's events still never run concurrently with each other and
  // per-host state needs no locks — but a slow shard no longer idles every
  // worker it isn't pinned to.
  struct ShardState {
    Simulator::Queue heap;               // pre-sequenced entries
    std::vector<detail::Staged> staged;  // live same-shard heap (by when,stamp)
    std::uint64_t stamp = 0;             // scheduling order within the shard
  };

  /// Per-worker scratch: staging that is merged (and globally re-sorted)
  /// at the barrier, so which worker produced it cannot matter.
  struct WorkerState {
    std::vector<detail::Staged> outbox;  // cross-shard / future handoffs
    std::vector<detail::Deferred> defers;
    std::deque<detail::ExecRec> arena;
    std::uint64_t executed = 0;
    Time max_when = 0.0;
  };

  void worker_main(unsigned index);
  void run_window(unsigned index, detail::Bound bound);
  void drain_shard(ShardState& s, WorkerState& w, detail::WorkerTls& tls,
                   detail::Bound bound);
  std::uint64_t barrier_merge();
  bool peek_min(Time& when, std::uint64_t& seq, bool& exclusive) const;

  ShardState& shard_state(Shard shard);

  Simulator& sim_;
  unsigned nworkers_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::unique_ptr<ShardState>> shards_;  // index = shard id
  Simulator::Queue exclusive_;  // kNoShard entries

  // Per-window shard claim list: built by the main thread (largest heap
  // first, shard id as the deterministic tiebreak), consumed by workers
  // via fetch_add. Published before epoch_ under mu_.
  std::vector<Shard> ready_;
  std::atomic<std::size_t> cursor_{0};

  // window hand-off: main publishes bound_/epoch_, workers run, last one
  // signals done. The mutex also carries the happens-before edges that
  // make all single-owner state safely visible across windows.
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  unsigned running_ = 0;
  bool quit_ = false;
  detail::Bound bound_;
};

}  // namespace hypersub::sim
