#pragma once
// Discrete event-driven simulation engine (the p2psim substitute's core).
//
// The engine executes scheduled callbacks in non-decreasing virtual-time
// order; ties break by scheduling order so runs are fully deterministic.
// Virtual time is in milliseconds (double), matching the paper's latency
// units.
//
// Execution is sequential by default. A conservative-parallel mode
// (set_threads(N) with set_lookahead(L) > 0) shards events by owning host
// across a worker pool and executes each lookahead window [t, t+L)
// concurrently; side effects are merged deterministically in (when, seq)
// order at a window barrier, so a parallel run is byte-identical to the
// sequential run with the same lookahead (see DESIGN.md "Parallel engine"
// and tests/test_determinism.cpp). Independent Simulator instances on
// separate threads remain supported (no shared mutable state between
// instances).

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/task.hpp"

namespace hypersub::sim {

/// Virtual time in milliseconds since simulation start.
using Time = double;

/// Execution shard. Events tagged with the same shard execute in mutual
/// (when, seq) order even in parallel mode; layers tag events with the
/// index of the host whose state the callback touches. kNoShard marks
/// *exclusive* events (control plane: driver closures, maintenance ticks)
/// that run alone between windows and may touch any state.
using Shard = std::uint32_t;
inline constexpr Shard kNoShard = 0xffffffffu;

class ParallelEngine;
namespace detail {
struct WorkerTls;
}

/// Discrete-event scheduler. Typical usage:
///
///   Simulator s;
///   s.schedule(5.0, []{ ... });   // run 5 ms from now
///   s.run();                      // drain the event queue
class Simulator {
 public:
  using Action = Task;

  Simulator();
  ~Simulator();

  /// Current virtual time. 0 before any event has run. Inside a parallel
  /// window this is the executing event's own timestamp (thread-local),
  /// exactly matching what the sequential run would report.
  Time now() const noexcept;

  /// Schedule `action` to run `delay` ms from now. Negative delays clamp
  /// to "immediately" (same-time events run in scheduling order). The
  /// event inherits the scheduling context's shard: events scheduled from
  /// within a shard-tagged event stay on that shard; events scheduled
  /// from outside any event (or from an exclusive event) are exclusive.
  void schedule(Time delay, Task action);

  /// Schedule at an absolute virtual time (>= now()). Inherits the
  /// current shard like schedule().
  void schedule_at(Time when, Task action);

  /// Schedule on an explicit shard. In parallel mode a cross-shard
  /// schedule from inside a window must land at or after the window end;
  /// delays >= lookahead() always satisfy this (network sends are clamped
  /// accordingly by net::Network).
  void schedule_on(Shard shard, Time delay, Task action);

  /// Run until the queue drains or `max_events` have executed.
  /// Returns the number of events executed. A bounded run (max_events !=
  /// UINT64_MAX) always executes sequentially — pause/resume has no
  /// parallel meaning — which is behaviorally identical by construction.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with time <= `until`, leaving later events queued.
  std::uint64_t run_until(Time until);

  /// Events currently queued.
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

  // -- parallel execution ----------------------------------------------------

  /// Maximum worker threads a Simulator will spawn (worker_slot() fits in
  /// [0, kMaxWorkers]).
  static constexpr unsigned kMaxWorkers = 32;

  /// Use `n` worker threads for subsequent run()/run_until() calls.
  /// n <= 1 keeps the sequential engine. Parallel execution additionally
  /// requires lookahead() > 0; otherwise runs stay sequential.
  void set_threads(unsigned n);
  unsigned threads() const noexcept { return threads_; }

  /// Conservative lookahead L (ms). Layers that hand events across shards
  /// must delay them by at least L (net::Network clamps link latencies to
  /// L); in exchange every window [t, t+L) can execute in parallel. The
  /// same L must be set on a sequential run for byte-identical output.
  void set_lookahead(Time l) { lookahead_ = l < 0.0 ? 0.0 : l; }
  Time lookahead() const noexcept { return lookahead_; }

  /// Adaptive lower bound on the lookahead, derived by the network layer
  /// from the minimum outstanding link latency (net::Network's adaptive
  /// mode re-derives it on every membership change). Window width and all
  /// cross-shard delay clamps use effective_lookahead(), so a wider floor
  /// means wider windows without any behavioral difference: no link can
  /// deliver below the floor anyway. May only change from an exclusive or
  /// main-thread context (never mid-window), which keeps parallel runs
  /// byte-identical to sequential ones at the same floor.
  void set_lookahead_floor(Time f) {
    lookahead_floor_ = f < 0.0 ? 0.0 : f;
  }
  Time lookahead_floor() const noexcept { return lookahead_floor_; }

  /// The lookahead actually in force: max(lookahead, floor).
  Time effective_lookahead() const noexcept {
    return lookahead_ > lookahead_floor_ ? lookahead_ : lookahead_floor_;
  }

  /// Shard of the currently executing event (kNoShard outside events and
  /// in exclusive events). Identical in sequential and parallel runs.
  Shard current_shard() const noexcept;

  /// True while executing inside a parallel worker (never true in
  /// sequential mode or on the main thread).
  bool in_worker_context() const noexcept;

  /// Stable slot of the current execution context: 0 for the main thread
  /// (sequential runs, exclusive events, merge phases), 1..threads() for
  /// workers. For indexing per-context scratch arrays sized kMaxWorkers+1.
  unsigned worker_slot() const noexcept;

  /// Execute `f` at a point that is deterministically ordered: inline when
  /// called from a sequential run, the main thread, or an exclusive event;
  /// from a parallel worker it is staged and executed at the window
  /// barrier in exactly the order the sequential run would have executed
  /// it (sorted by the calling event's position and call index). Use for
  /// all writes to cross-shard state (global counters, metric sinks,
  /// caches). Deferred closures must not call schedule().
  template <class F>
  void defer_ordered(F&& f) {
    if (!in_worker_context()) {
      f();
      return;
    }
    stage_defer(Task(std::forward<F>(f)));
  }

  /// Register a hook run on the main thread at every window barrier (and
  /// once when a parallel run finishes) — the place to fold per-worker
  /// commutative counter deltas into their totals.
  void add_merge_hook(std::function<void()> hook) {
    merge_hooks_.push_back(std::move(hook));
  }

 private:
  friend class ParallelEngine;

  struct Entry {
    Time when;
    std::uint64_t seq;  // FIFO tiebreak for equal timestamps
    Shard shard;
    Task action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  using Queue = std::priority_queue<Entry, std::vector<Entry>, Later>;

  void schedule_at_on(Time when, Shard shard, Task action);
  void pop_and_run();
  void stage_defer(Task t);
  std::uint64_t run_parallel(Time until, bool bounded);
  void run_merge_hooks() {
    for (auto& h : merge_hooks_) h();
  }

  Queue queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  Shard current_shard_ = kNoShard;  // sequential / main-thread context
  bool in_defer_apply_ = false;
  unsigned threads_ = 1;
  Time lookahead_ = 0.0;
  Time lookahead_floor_ = 0.0;
  std::vector<std::function<void()>> merge_hooks_;
  std::unique_ptr<ParallelEngine> engine_;  // live only during parallel runs
};

}  // namespace hypersub::sim
