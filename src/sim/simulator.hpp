#pragma once
// Discrete event-driven simulation engine (the p2psim substitute's core).
//
// The engine executes scheduled callbacks in non-decreasing virtual-time
// order; ties break by scheduling order so runs are fully deterministic.
// Virtual time is in milliseconds (double), matching the paper's latency
// units. The engine is single-threaded by design; parallel experiments run
// independent Simulator instances on separate threads (CP.2: no shared
// mutable state).

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hypersub::sim {

/// Virtual time in milliseconds since simulation start.
using Time = double;

/// Discrete-event scheduler. Typical usage:
///
///   Simulator s;
///   s.schedule(5.0, []{ ... });   // run 5 ms from now
///   s.run();                      // drain the event queue
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current virtual time. 0 before any event has run.
  Time now() const noexcept { return now_; }

  /// Schedule `action` to run `delay` ms from now. Negative delays clamp
  /// to "immediately" (same-time events run in scheduling order).
  void schedule(Time delay, Action action);

  /// Schedule at an absolute virtual time (>= now()).
  void schedule_at(Time when, Action action);

  /// Run until the queue drains or `max_events` have executed.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with time <= `until`, leaving later events queued.
  std::uint64_t run_until(Time until);

  /// Events currently queued.
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Total events executed so far.
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;  // FIFO tiebreak for equal timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void pop_and_run();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace hypersub::sim
