#pragma once
// Task: a move-only type-erased callable with a small-buffer optimization
// sized for the engine's hot path. libstdc++'s std::function only inlines
// captures up to 16 bytes; nearly every scheduled action in this codebase
// captures a `this` pointer plus a handler plus a couple of ids (~32-48
// bytes), so the sequential scheduler paid one heap allocation + free per
// event. Task inlines captures up to kInlineSize bytes and falls back to
// the heap only beyond that (quantified in bench/micro_sim).

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hypersub::sim {

class Task {
 public:
  /// Inline capture budget. 48 bytes fits a `this` pointer plus a
  /// std::function handler (32 B) plus one id — the dominant shape of
  /// network-delivery closures.
  static constexpr std::size_t kInlineSize = 48;

  Task() noexcept = default;

  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Task>>>
  /*implicit*/ Task(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>);
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  Task(Task&& other) noexcept { move_from(other); }
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(*this); }

  /// True if a callable of type Fn would be stored inline (tests/bench).
  template <class Fn>
  static constexpr bool fits_inline() noexcept {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    void (*invoke)(Task&);
    void (*relocate)(Task& dst, Task& src) noexcept;
    void (*destroy)(Task&) noexcept;
  };

  template <class Fn>
  Fn* inline_target() noexcept {
    return std::launder(reinterpret_cast<Fn*>(buf_));
  }

  template <class Fn>
  static void invoke_inline(Task& t) {
    (*t.inline_target<Fn>())();
  }
  template <class Fn>
  static void relocate_inline(Task& dst, Task& src) noexcept {
    Fn* p = src.inline_target<Fn>();
    ::new (static_cast<void*>(dst.buf_)) Fn(std::move(*p));
    p->~Fn();
  }
  template <class Fn>
  static void destroy_inline(Task& t) noexcept {
    t.inline_target<Fn>()->~Fn();
  }
  template <class Fn>
  static void invoke_heap(Task& t) {
    (*static_cast<Fn*>(t.heap_))();
  }
  static void relocate_heap(Task& dst, Task& src) noexcept {
    dst.heap_ = src.heap_;
    src.heap_ = nullptr;
  }
  template <class Fn>
  static void destroy_heap(Task& t) noexcept {
    delete static_cast<Fn*>(t.heap_);
  }

  template <class Fn>
  static constexpr Ops inline_ops{&invoke_inline<Fn>, &relocate_inline<Fn>,
                                  &destroy_inline<Fn>};

  template <class Fn>
  static constexpr Ops heap_ops{&invoke_heap<Fn>, &relocate_heap,
                                &destroy_heap<Fn>};

  void move_from(Task& other) noexcept {
    ops_ = other.ops_;
    if (ops_) ops_->relocate(*this, other);
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_) ops_->destroy(*this);
    ops_ = nullptr;
  }

  const Ops* ops_ = nullptr;
  union {
    alignas(std::max_align_t) std::byte buf_[kInlineSize];
    void* heap_;
  };
};

}  // namespace hypersub::sim
