#include "sim/parallel_simulator.hpp"

#include <algorithm>
#include <utility>

namespace hypersub::sim {

namespace detail {

namespace {
thread_local WorkerTls* g_worker_tls = nullptr;
}  // namespace

WorkerTls* worker_tls() noexcept { return g_worker_tls; }
void set_worker_tls(WorkerTls* t) noexcept { g_worker_tls = t; }

bool exec_before(const ExecRec* a, const ExecRec* b) noexcept {
  if (a == b) return false;
  if (a->when != b->when) return a->when < b->when;
  // Everything that entered the window with a global seq precedes
  // everything scheduled during the window at the same timestamp (the
  // sequential run would have assigned the latter larger seqs).
  if (a->pre != b->pre) return a->pre;
  if (a->pre) return a->seq < b->seq;
  return sched_before({a->parent, a->idx}, {b->parent, b->idx});
}

namespace {

/// Min-heap comparator for the live staged heap: (when, worker-local
/// stamp). Within one worker, stamp order equals sequential scheduling
/// order restricted to that worker, so this pops staged events exactly in
/// sequential-restricted order.
struct StagedLater {
  bool operator()(const Staged& a, const Staged& b) const noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.stamp > b.stamp;
  }
};

}  // namespace
}  // namespace detail

ParallelEngine::ParallelEngine(Simulator& sim, unsigned workers)
    : sim_(sim), nworkers_(workers == 0 ? 1 : workers) {
  workers_.reserve(nworkers_);
  for (unsigned i = 0; i < nworkers_; ++i) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  // Redistribute the sequential queue into per-worker heaps.
  while (!sim_.queue_.empty()) {
    Simulator::Entry e =
        std::move(const_cast<Simulator::Entry&>(sim_.queue_.top()));
    sim_.queue_.pop();
    push_pre(std::move(e));
  }
  threads_.reserve(nworkers_);
  for (unsigned i = 0; i < nworkers_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    quit_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

ParallelEngine::ShardState& ParallelEngine::shard_state(Shard shard) {
  if (shards_.size() <= shard) {
    shards_.resize(std::size_t(shard) + 1);
  }
  if (!shards_[shard]) shards_[shard] = std::make_unique<ShardState>();
  return *shards_[shard];
}

void ParallelEngine::push_pre(Simulator::Entry e) {
  if (e.shard == kNoShard) {
    exclusive_.push(std::move(e));
  } else {
    shard_state(e.shard).heap.push(std::move(e));
  }
}

bool ParallelEngine::peek_min(Time& when, std::uint64_t& seq,
                              bool& exclusive) const {
  bool found = false;
  const auto consider = [&](const Simulator::Entry& e, bool ex) {
    if (!found || e.when < when || (e.when == when && e.seq < seq)) {
      found = true;
      when = e.when;
      seq = e.seq;
      exclusive = ex;
    }
  };
  for (const auto& sp : shards_) {
    if (sp && !sp->heap.empty()) consider(sp->heap.top(), false);
  }
  if (!exclusive_.empty()) consider(exclusive_.top(), true);
  return found;
}

std::uint64_t ParallelEngine::run(Time until, bool bounded) {
  std::uint64_t executed = 0;
  for (;;) {
    Time w = 0.0;
    std::uint64_t s = 0;
    bool excl = false;
    if (!peek_min(w, s, excl)) break;
    if (bounded && w > until) break;

    if (excl) {
      // Exclusive events run alone on the main thread, between windows;
      // their schedules go straight into the heaps with global seqs.
      Simulator::Entry e =
          std::move(const_cast<Simulator::Entry&>(exclusive_.top()));
      exclusive_.pop();
      sim_.now_ = e.when;
      sim_.current_shard_ = kNoShard;
      ++sim_.executed_;
      ++executed;
      e.action();
      sim_.current_shard_ = kNoShard;
      continue;
    }

    // Window [w, bound): capped by the effective-lookahead horizon, the
    // next exclusive event's position, and (when bounded) the inclusive
    // run_until position.
    detail::Bound b{w + sim_.effective_lookahead(), UINT64_MAX, true};
    if (!exclusive_.empty()) {
      const Simulator::Entry& t = exclusive_.top();
      b = detail::Bound::min(b, {t.when, t.seq, true});
    }
    if (bounded) b = detail::Bound::min(b, {until, UINT64_MAX, false});

    // Claimable shards this window, biggest backlog first (shard id breaks
    // ties deterministically): an LPT-style order so the heaviest shard
    // starts immediately and the tail self-levels across workers.
    ready_.clear();
    for (Shard sh = 0; sh < shards_.size(); ++sh) {
      ShardState* sp = shards_[sh].get();
      if (sp && !sp->heap.empty() &&
          b.admits_pre(sp->heap.top().when, sp->heap.top().seq)) {
        ready_.push_back(sh);
      }
    }
    std::sort(ready_.begin(), ready_.end(), [&](Shard a, Shard c) {
      const std::size_t la = shards_[a]->heap.size();
      const std::size_t lc = shards_[c]->heap.size();
      return la != lc ? la > lc : a < c;
    });

    {
      std::lock_guard<std::mutex> lk(mu_);
      cursor_.store(0, std::memory_order_relaxed);
      bound_ = b;
      running_ = nworkers_;
      ++epoch_;
    }
    cv_work_.notify_all();
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] { return running_ == 0; });
    }
    executed += barrier_merge();
  }
  return executed;
}

void ParallelEngine::worker_main(unsigned index) {
  detail::WorkerTls tls;
  tls.sim = &sim_;
  tls.engine = this;
  tls.slot = index + 1;
  detail::set_worker_tls(&tls);
  std::uint64_t seen = 0;
  for (;;) {
    detail::Bound b;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return quit_ || epoch_ != seen; });
      if (quit_) break;
      seen = epoch_;
      b = bound_;
    }
    tls.bound = b;
    run_window(index, b);
    bool last = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      last = --running_ == 0;
    }
    if (last) cv_done_.notify_one();
  }
  detail::set_worker_tls(nullptr);
}

void ParallelEngine::run_window(unsigned index, detail::Bound bound) {
  WorkerState& w = *workers_[index];
  detail::WorkerTls& tls = *detail::worker_tls();
  // Claim shards off the window's ready list until it runs dry. A claimed
  // shard is drained completely: once its admissible work is done it can
  // gain no more this window (same-shard staging is handled inside the
  // drain; cross-shard handoffs land at or after the bound).
  for (;;) {
    const std::size_t k = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (k >= ready_.size()) break;
    drain_shard(*shards_[ready_[k]], w, tls, bound);
  }
  tls.rec = nullptr;
  tls.shard = kNoShard;
}

void ParallelEngine::drain_shard(ShardState& s, WorkerState& w,
                                 detail::WorkerTls& tls, detail::Bound bound) {
  for (;;) {
    const bool have_pre =
        !s.heap.empty() &&
        bound.admits_pre(s.heap.top().when, s.heap.top().seq);
    const bool have_staged =
        !s.staged.empty() && bound.admits_staged(s.staged.front().when);
    bool take_staged;
    if (have_pre && have_staged) {
      // Tie on `when` goes to the pre-existing entry: its global seq
      // precedes anything scheduled during this window.
      take_staged = s.staged.front().when < s.heap.top().when;
    } else if (have_pre) {
      take_staged = false;
    } else if (have_staged) {
      take_staged = true;
    } else {
      break;
    }

    detail::ExecRec& rec = w.arena.emplace_back();
    Task action;
    if (take_staged) {
      std::pop_heap(s.staged.begin(), s.staged.end(), detail::StagedLater{});
      detail::Staged st = std::move(s.staged.back());
      s.staged.pop_back();
      rec.when = st.when;
      rec.pre = false;
      rec.parent = st.key.parent;
      rec.idx = st.key.idx;
      rec.shard = st.shard;
      action = std::move(st.action);
    } else {
      Simulator::Entry e =
          std::move(const_cast<Simulator::Entry&>(s.heap.top()));
      s.heap.pop();
      rec.when = e.when;
      rec.pre = true;
      rec.seq = e.seq;
      rec.shard = e.shard;
      action = std::move(e.action);
    }
    tls.shard = rec.shard;
    tls.now = rec.when;
    tls.rec = &rec;
    ++w.executed;
    w.max_when = std::max(w.max_when, rec.when);
    action();
  }
}

void ParallelEngine::worker_stage(detail::WorkerTls& tls, Time when,
                                  Shard shard, Task action) {
  WorkerState& w = *workers_[tls.slot - 1];
  detail::ExecRec* rec = tls.rec;
  assert(rec != nullptr);
  detail::Staged s{when, shard, {rec, rec->calls++}, 0, std::move(action)};
  if (shard == tls.shard) {
    // Same-shard: straight into the shard's live heap — this worker owns
    // the shard for the rest of the window, so no synchronization needed.
    ShardState& ss = *shards_[shard];
    s.stamp = ++ss.stamp;
    ss.staged.push_back(std::move(s));
    std::push_heap(ss.staged.begin(), ss.staged.end(), detail::StagedLater{});
  } else {
    // Conservative safety: a cross-shard handoff must land at or after
    // the window end, or another shard could miss it mid-window. Delays
    // >= lookahead always satisfy this (Network clamps link latencies).
    assert(when >= tls.bound.when &&
           "cross-shard schedule lands inside the window (delay < lookahead)");
    w.outbox.push_back(std::move(s));
  }
}

void ParallelEngine::worker_defer(detail::WorkerTls& tls, Task fn) {
  WorkerState& w = *workers_[tls.slot - 1];
  detail::ExecRec* rec = tls.rec;
  assert(rec != nullptr);
  w.defers.push_back(detail::Deferred{{rec, rec->calls++}, std::move(fn)});
}

std::uint64_t ParallelEngine::barrier_merge() {
  std::vector<detail::Staged> staged;
  std::vector<detail::Deferred> defers;
  std::uint64_t n = 0;
  Time maxw = sim_.now_;
  for (auto& sp : shards_) {
    if (!sp) continue;
    for (auto& s : sp->staged) staged.push_back(std::move(s));
    sp->staged.clear();
    sp->stamp = 0;
  }
  for (auto& wp : workers_) {
    WorkerState& w = *wp;
    n += w.executed;
    w.executed = 0;
    maxw = std::max(maxw, w.max_when);
    for (auto& s : w.outbox) staged.push_back(std::move(s));
    w.outbox.clear();
    for (auto& d : w.defers) defers.push_back(std::move(d));
    w.defers.clear();
  }
  sim_.executed_ += n;
  sim_.now_ = maxw;

  // (a) Give window-survivors their global seqs in exactly the order the
  // sequential run would have made the schedule() calls.
  std::sort(staged.begin(), staged.end(),
            [](const detail::Staged& a, const detail::Staged& b) {
              return detail::sched_before(a.key, b.key);
            });
  for (auto& s : staged) {
    push_pre(Simulator::Entry{s.when, sim_.seq_++, s.shard,
                              std::move(s.action)});
  }

  // (b) Apply deferred side effects in sequential order, each under its
  // originating event's (time, shard) context.
  std::sort(defers.begin(), defers.end(),
            [](const detail::Deferred& a, const detail::Deferred& b) {
              return detail::sched_before(a.key, b.key);
            });
  sim_.in_defer_apply_ = true;
  for (auto& d : defers) {
    sim_.now_ = d.key.parent->when;
    sim_.current_shard_ = d.key.parent->shard;
    d.fn();
  }
  sim_.in_defer_apply_ = false;
  sim_.current_shard_ = kNoShard;
  sim_.now_ = maxw;

  // (c) Fold per-worker commutative counter deltas.
  sim_.run_merge_hooks();

  for (auto& wp : workers_) wp->arena.clear();
  return n;
}

void ParallelEngine::drain_to_queue() {
  const auto move_all = [&](Simulator::Queue& q) {
    while (!q.empty()) {
      sim_.queue_.push(std::move(const_cast<Simulator::Entry&>(q.top())));
      q.pop();
    }
  };
  move_all(exclusive_);
  for (auto& sp : shards_) {
    if (sp) move_all(sp->heap);
  }
}

}  // namespace hypersub::sim
