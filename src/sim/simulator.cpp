#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/parallel_simulator.hpp"

namespace hypersub::sim {

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

Time Simulator::now() const noexcept {
  if (const auto* t = detail::worker_tls(); t && t->sim == this) {
    return t->now;
  }
  return now_;
}

Shard Simulator::current_shard() const noexcept {
  if (const auto* t = detail::worker_tls(); t && t->sim == this) {
    return t->shard;
  }
  return current_shard_;
}

bool Simulator::in_worker_context() const noexcept {
  const auto* t = detail::worker_tls();
  return t != nullptr && t->sim == this;
}

unsigned Simulator::worker_slot() const noexcept {
  if (const auto* t = detail::worker_tls(); t && t->sim == this) {
    return t->slot;
  }
  return 0;
}

void Simulator::set_threads(unsigned n) {
  if (n == 0) n = 1;
  threads_ = std::min(n, kMaxWorkers);
}

void Simulator::schedule(Time delay, Task action) {
  if (delay < 0.0) delay = 0.0;
  schedule_at_on(now() + delay, current_shard(), std::move(action));
}

void Simulator::schedule_at(Time when, Task action) {
  schedule_at_on(when, current_shard(), std::move(action));
}

void Simulator::schedule_on(Shard shard, Time delay, Task action) {
  if (delay < 0.0) delay = 0.0;
  schedule_at_on(now() + delay, shard, std::move(action));
}

void Simulator::schedule_at_on(Time when, Shard shard, Task action) {
  if (auto* t = detail::worker_tls(); t && t->sim == this) {
    assert(when >= t->now);
    t->engine->worker_stage(*t, when, shard, std::move(action));
    return;
  }
  assert(when >= now_);
  assert(!in_defer_apply_ && "defer_ordered closures must not schedule");
  Entry e{when, seq_++, shard, std::move(action)};
  if (engine_) {
    engine_->push_pre(std::move(e));
  } else {
    queue_.push(std::move(e));
  }
}

void Simulator::stage_defer(Task t) {
  auto* w = detail::worker_tls();
  assert(w != nullptr && w->sim == this);
  w->engine->worker_defer(*w, std::move(t));
}

void Simulator::pop_and_run() {
  // Move the action out before popping: the action may schedule new events,
  // which mutates the queue.
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = e.when;
  current_shard_ = e.shard;
  ++executed_;
  e.action();
  current_shard_ = kNoShard;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  if (threads_ > 1 && effective_lookahead() > 0.0 && max_events == UINT64_MAX) {
    return run_parallel(0.0, /*bounded=*/false);
  }
  std::uint64_t n = 0;
  while (!queue_.empty() && n < max_events) {
    pop_and_run();
    ++n;
  }
  return n;
}

std::uint64_t Simulator::run_until(Time until) {
  std::uint64_t n = 0;
  if (threads_ > 1 && effective_lookahead() > 0.0) {
    n = run_parallel(until, /*bounded=*/true);
  } else {
    while (!queue_.empty() && queue_.top().when <= until) {
      pop_and_run();
      ++n;
    }
  }
  if (now_ < until) now_ = until;
  return n;
}

std::uint64_t Simulator::run_parallel(Time until, bool bounded) {
  assert(!engine_ && "re-entrant run() is not supported");
  engine_ = std::make_unique<ParallelEngine>(
      *this, std::min(threads_, kMaxWorkers));
  const std::uint64_t n = engine_->run(until, bounded);
  engine_->drain_to_queue();
  engine_.reset();
  return n;
}

}  // namespace hypersub::sim
