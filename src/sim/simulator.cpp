#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace hypersub::sim {

void Simulator::schedule(Time delay, Action action) {
  if (delay < 0.0) delay = 0.0;
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::schedule_at(Time when, Action action) {
  assert(when >= now_);
  queue_.push(Entry{when, seq_++, std::move(action)});
}

void Simulator::pop_and_run() {
  // Move the action out before popping: the action may schedule new events,
  // which mutates the queue.
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = e.when;
  ++executed_;
  e.action();
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (!queue_.empty() && n < max_events) {
    pop_and_run();
    ++n;
  }
  return n;
}

std::uint64_t Simulator::run_until(Time until) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    pop_and_run();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace hypersub::sim
