#pragma once
// Content zones and the zone tree (paper §3.2).
//
// A ZoneSystem recursively subdivides a d-dimensional content space into a
// β-ary tree of content zones (β = 2^base_bits). The i-th division (1-based)
// splits the (i-1 mod d)-th dimension into β equal ranges; picking the p-th
// range appends digit p to the zone's code. A zone is identified by
// (code, level); its Chord key is the code placed in the top bits of the
// 64-bit identifier, right-padded with (β-1) digits — i.e. all one bits.
//
// Only `code_bits` of the identifier are ever used for codes (the paper's
// simulations use the first 20 bits of 64-bit ids), so max_level =
// code_bits / base_bits digits.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/hyperrect.hpp"
#include "common/ids.hpp"

namespace hypersub::lph {

/// One node of the zone tree: `level` digits of `code` in base 2^base_bits.
struct Zone {
  std::uint64_t code = 0;
  int level = 0;

  friend bool operator==(const Zone&, const Zone&) = default;
};

/// Geometry + coding of the zone tree for one content space.
class ZoneSystem {
 public:
  struct Config {
    int base_bits = 1;   ///< b: digits are 2^b-ary (paper evaluates b=1, b=2)
    int code_bits = 20;  ///< identifier bits reserved for zone codes

    /// code_bits sized to ~`splits_per_dim` subdivisions of every
    /// dimension — the paper's 20 bits correspond to its 4-attribute
    /// scheme (5 splits/dim, base 2). Using 20 bits for a 2-attribute
    /// scheme would make leaf zones 1024x finer per dim, exploding the
    /// surrogate-chain fan-out of wide subscriptions; size to the scheme.
    static Config for_dims(std::size_t dims, int base_bits = 1,
                           int splits_per_dim = 5) {
      const int digits = int(dims) * splits_per_dim;
      return Config{base_bits, std::min(60, digits * base_bits)};
    }
  };

  /// `space` is the scheme's domain rectangle (all dimensions non-empty).
  ZoneSystem(HyperRect space, Config cfg);

  int base_bits() const noexcept { return cfg_.base_bits; }
  int base() const noexcept { return 1 << cfg_.base_bits; }
  /// Maximum tree depth m in digits (leaf level).
  int max_level() const noexcept { return max_level_; }
  std::size_t dimensions() const noexcept { return space_.dimensions(); }
  const HyperRect& space() const noexcept { return space_; }

  Zone root() const noexcept { return Zone{0, 0}; }
  bool is_leaf(const Zone& z) const noexcept { return z.level == max_level_; }

  /// Parent zone; z must not be the root.
  Zone parent(const Zone& z) const;

  /// The `digit`-th child (0 <= digit < base()); z must not be a leaf.
  Zone child(const Zone& z, int digit) const;

  /// Digit at 1-based position i (paper's "i-th digit from the left").
  int digit(const Zone& z, int i) const;

  /// The hyper-rectangle this zone covers (replays the split sequence).
  HyperRect extent(const Zone& z) const;

  /// Dimension split when descending FROM level `level` (0-based level of
  /// the parent); the paper's j = i mod d with i = level+1.
  std::size_t split_dimension(int level) const {
    return std::size_t(level) % space_.dimensions();
  }

  /// Chord key of a zone: code in the top bits, right-padded with one-bits.
  Id key(const Zone& z) const;

  /// Smallest zone that fully covers `range` (LPH for subscriptions).
  /// Descends while one child range covers; stops at max_level().
  Zone locate(const HyperRect& range) const;

  /// Leaf zone containing point `p` (LPH for events). Boundary points
  /// belong to the lower range except at the domain top (half-open split).
  Zone locate(const Point& p) const;

  /// "012|3" style debug form: digits of the code.
  std::string to_string(const Zone& z) const;

 private:
  HyperRect space_;
  Config cfg_;
  int max_level_;
};

}  // namespace hypersub::lph
