#pragma once
// The locality-preserving hash function (paper Algorithm 1) plus the
// zone-mapping rotation used for load balancing (§4).
//
// LPH(se) identifies the content zone for a subscription's hyper-cuboid or
// an event's point and returns the zone's Chord key. With rotation, every
// scheme/subscheme adds its own offset φ = hash(name) so that structurally
// identical zones of different schemes land on different nodes.

#include <string_view>

#include "common/hashing.hpp"
#include "lph/zone.hpp"

namespace hypersub::lph {

/// Result of hashing a subscription or event into the zone tree.
struct LphResult {
  Zone zone;   ///< the content zone (smallest covering / leaf)
  Id key = 0;  ///< rotated Chord key the zone maps to
};

/// Rotation offset for a scheme or subscheme name (consistent hashing of
/// the name, as §4 prescribes). Rotation 0 disables the mechanism.
Id rotation_offset(std::string_view scheme_name);

/// LPH for a subscription range: smallest covering zone.
LphResult hash_subscription(const ZoneSystem& zs, const HyperRect& range,
                            Id rotation);

/// LPH for an event point: containing leaf zone.
LphResult hash_event(const ZoneSystem& zs, const Point& p, Id rotation);

/// Rotated key of an arbitrary zone (used when climbing/descending the
/// zone tree during surrogate registration and delivery).
Id zone_key(const ZoneSystem& zs, const Zone& z, Id rotation);

}  // namespace hypersub::lph
