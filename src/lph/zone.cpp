#include "lph/zone.hpp"

#include <cassert>
#include <sstream>

namespace hypersub::lph {

ZoneSystem::ZoneSystem(HyperRect space, Config cfg)
    : space_(std::move(space)), cfg_(cfg) {
  assert(!space_.empty());
  assert(cfg_.base_bits >= 1 && cfg_.base_bits <= 8);
  assert(cfg_.code_bits >= cfg_.base_bits && cfg_.code_bits <= 60);
  assert(cfg_.code_bits % cfg_.base_bits == 0);
  for (std::size_t i = 0; i < space_.dimensions(); ++i) {
    assert(space_.dim(i).length() > 0.0);
  }
  max_level_ = cfg_.code_bits / cfg_.base_bits;
}

Zone ZoneSystem::parent(const Zone& z) const {
  assert(z.level > 0);
  return Zone{z.code >> cfg_.base_bits, z.level - 1};
}

Zone ZoneSystem::child(const Zone& z, int digit) const {
  assert(z.level < max_level_);
  assert(digit >= 0 && digit < base());
  return Zone{(z.code << cfg_.base_bits) | std::uint64_t(digit), z.level + 1};
}

int ZoneSystem::digit(const Zone& z, int i) const {
  assert(i >= 1 && i <= z.level);
  const int shift = (z.level - i) * cfg_.base_bits;
  return int((z.code >> shift) & ((std::uint64_t(1) << cfg_.base_bits) - 1));
}

HyperRect ZoneSystem::extent(const Zone& z) const {
  HyperRect r = space_;
  for (int i = 1; i <= z.level; ++i) {
    const std::size_t j = split_dimension(i - 1);
    const int p = digit(z, i);
    Interval& iv = r.dim(j);
    const double w = iv.length() / double(base());
    const double lo = iv.lo + w * double(p);
    iv = Interval{lo, lo + w};
  }
  return r;
}

Id ZoneSystem::key(const Zone& z) const {
  const int used = z.level * cfg_.base_bits;
  assert(used <= kIdBits);
  if (used == 0) return ~Id{0};  // root zone: all (β-1) digits
  const int pad = kIdBits - used;
  const Id ones = pad == 0 ? 0 : ((Id{1} << pad) - 1);
  return (z.code << pad) | ones;
}

Zone ZoneSystem::locate(const HyperRect& range) const {
  assert(range.dimensions() == space_.dimensions());
  HyperRect t = space_;
  Zone z = root();
  for (int i = 1; i <= max_level_; ++i) {
    const std::size_t j = split_dimension(i - 1);
    Interval& iv = t.dim(j);
    const double w = iv.length() / double(base());
    // Find the child range that fully covers range.dim(j), if any.
    int p = -1;
    for (int c = 0; c < base(); ++c) {
      const Interval cand{iv.lo + w * double(c), iv.lo + w * double(c + 1)};
      if (cand.covers(range.dim(j))) {
        p = c;
        break;
      }
    }
    if (p < 0) break;
    iv = Interval{iv.lo + w * double(p), iv.lo + w * double(p + 1)};
    z = child(z, p);
  }
  return z;
}

Zone ZoneSystem::locate(const Point& p) const {
  assert(p.size() == space_.dimensions());
  assert(space_.contains(p));
  HyperRect t = space_;
  Zone z = root();
  for (int i = 1; i <= max_level_; ++i) {
    const std::size_t j = split_dimension(i - 1);
    Interval& iv = t.dim(j);
    const double w = iv.length() / double(base());
    // Half-open range selection; the top boundary belongs to the last child.
    int c = int((p[j] - iv.lo) / w);
    if (c >= base()) c = base() - 1;
    if (c < 0) c = 0;
    iv = Interval{iv.lo + w * double(c), iv.lo + w * double(c + 1)};
    z = child(z, c);
  }
  return z;
}

std::string ZoneSystem::to_string(const Zone& z) const {
  std::ostringstream os;
  os << "zone(level=" << z.level << ", code=";
  for (int i = 1; i <= z.level; ++i) os << digit(z, i);
  if (z.level == 0) os << "root";
  os << ')';
  return os.str();
}

}  // namespace hypersub::lph
