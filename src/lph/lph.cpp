#include "lph/lph.hpp"

namespace hypersub::lph {

Id rotation_offset(std::string_view scheme_name) {
  return hash_string(scheme_name);
}

Id zone_key(const ZoneSystem& zs, const Zone& z, Id rotation) {
  return zs.key(z) + rotation;  // mod 2^64 by unsigned wrap
}

LphResult hash_subscription(const ZoneSystem& zs, const HyperRect& range,
                            Id rotation) {
  const Zone z = zs.locate(range);
  return LphResult{z, zone_key(zs, z, rotation)};
}

LphResult hash_event(const ZoneSystem& zs, const Point& p, Id rotation) {
  const Zone z = zs.locate(p);
  return LphResult{z, zone_key(zs, z, rotation)};
}

}  // namespace hypersub::lph
