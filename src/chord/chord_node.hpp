#pragma once
// Per-node Chord routing state: predecessor, successor list, finger table.
//
// ChordNode holds pure state plus the local routing decisions (who owns a
// key, which neighbor is the best next hop). All message passing lives in
// ChordNet; keeping the node passive makes the routing logic unit-testable
// without a network.

#include <array>
#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "net/topology.hpp"
#include "overlay/peer.hpp"

namespace hypersub::chord {

/// Reference to a remote node: ring id + simulator host index.
/// (The overlay-neutral Peer type; Pastry uses the same one.)
using NodeRef = overlay::Peer;

/// Routing state of one Chord node.
class ChordNode {
 public:
  ChordNode(Id id, net::HostIndex host, std::size_t succ_list_len);

  Id id() const noexcept { return id_; }
  net::HostIndex host() const noexcept { return host_; }
  NodeRef self() const noexcept { return NodeRef{id_, host_}; }

  // -- successor list ------------------------------------------------------

  /// Primary successor (first entry of the list); invalid if list empty.
  NodeRef successor() const;
  const std::vector<NodeRef>& successor_list() const noexcept { return succ_; }
  std::size_t successor_list_capacity() const noexcept { return succ_cap_; }

  /// Replace the primary successor, keeping the rest of the list.
  void set_successor(NodeRef s);
  /// Adopt `succ` as primary and `rest` (their successor list) shifted in.
  void adopt_successor_list(NodeRef succ, const std::vector<NodeRef>& rest);
  /// Drop a failed node from the successor list (and fingers).
  void remove_peer(Id failed);

  // -- predecessor ---------------------------------------------------------

  NodeRef predecessor() const noexcept { return pred_; }
  void set_predecessor(NodeRef p) { pred_ = p; }
  void clear_predecessor() { pred_ = NodeRef{}; }

  /// Forget everything (successors, fingers, predecessor) — a rejoining
  /// node must not route through its previous life's stale view.
  void reset_routing_state() {
    succ_.clear();
    pred_ = NodeRef{};
    fingers_.fill(NodeRef{});
  }

  // -- fingers -------------------------------------------------------------

  const NodeRef& finger(int i) const { return fingers_[std::size_t(i)]; }
  void set_finger(int i, NodeRef f) { fingers_[std::size_t(i)] = f; }

  // -- routing decisions ---------------------------------------------------

  /// True if this node is the successor of `key` given its current
  /// predecessor knowledge: key in (pred, self]. With no predecessor the
  /// node cannot claim ownership (returns key == id()).
  bool owns(Id key) const;

  /// The routing-table neighbor whose id most closely precedes (or equals)
  /// `target` going clockwise from this node — Alg. 5 line 20. Scans
  /// fingers and the successor list; returns self() when the table holds no
  /// node in (id, target].
  NodeRef closest_preceding(Id target) const;

  /// All distinct valid neighbors (fingers + successor list + predecessor);
  /// the load balancer's probe set.
  std::vector<NodeRef> neighbors() const;

 private:
  Id id_;
  net::HostIndex host_;
  std::size_t succ_cap_;
  std::vector<NodeRef> succ_;
  NodeRef pred_;
  std::array<NodeRef, kIdBits> fingers_{};
};

}  // namespace hypersub::chord
