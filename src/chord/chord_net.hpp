#pragma once
// Chord overlay: construction, lookup routing, and the maintenance protocol
// (stabilization, finger repair, predecessor checks, join, failure).
//
// Two ways to build the ring:
//   * oracle_build()  — global-knowledge construction with optional PNS
//                       (proximity neighbor selection). This is what the
//                       benches use to reach the paper's "after system
//                       stabilization" state quickly.
//   * protocol join   — join(host, bootstrap) plus start_maintenance();
//                       the ring converges through stabilize/notifyticks.
//                       This is what the churn tests/examples exercise.
//
// All inter-node communication flows through net::Network, so lookup hops,
// latencies and bytes are measured, not modeled.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chord/chord_node.hpp"
#include "chord/ring.hpp"
#include "metrics/reliability_metrics.hpp"
#include "net/network.hpp"
#include "net/reliable_channel.hpp"
#include "overlay/overlay.hpp"

namespace hypersub::chord {

/// Wire-size constants (aliases of the overlay-neutral values).
inline constexpr std::uint64_t kHeaderBytes = overlay::kHeaderBytes;
inline constexpr std::uint64_t kNodeRefBytes = overlay::kNodeRefBytes;
inline constexpr std::uint64_t kKeyBytes = overlay::kKeyBytes;

class ChordNet final : public overlay::Overlay {
 public:
  struct Params {
    bool pns = true;                    ///< proximity neighbor selection
    std::size_t succ_list_len = 16;     ///< r, successor-list length
    std::size_t pns_candidates = 16;    ///< PNS(k): candidates per finger
    double stabilize_period_ms = 500.0; ///< maintenance tick period
    double rpc_timeout_ms = 1500.0;     ///< failure-detection timeout
    std::uint64_t seed = 1;             ///< id assignment seed
    /// Ping one finger per maintenance tick (liveness probing). Off by
    /// default to keep the base protocol equal to classic Chord.
    bool probe_fingers = false;
    /// §6 extension: treat application traffic (event-delivery messages)
    /// as implicit liveness evidence and skip redundant maintenance pings
    /// to peers heard from within one stabilization period.
    bool piggyback_maintenance = false;
    /// Reliability extension: every lookup hop is acked and retried
    /// (rpc_timeout_ms deadline, route_backoff growth, route_retries
    /// retransmissions); on persistent next-hop failure the sender drops
    /// the peer and reroutes through its backup successors. Off by default
    /// to keep the base protocol equal to classic Chord.
    bool reliable_routing = false;
    int route_retries = 2;        ///< retransmissions per lookup hop
    double route_backoff = 2.0;   ///< retry deadline multiplier
    /// Hop TTL for lookups. Plain greedy routing needs O(log n) hops, but
    /// failure reroutes can detour through nodes with stale predecessor
    /// knowledge; the TTL turns a potential routing livelock into a
    /// counted drop.
    int max_route_hops = 128;
  };

  /// Creates one Chord node per network host. Ids are random and unique.
  ChordNet(net::Network& net, const Params& params);

  std::size_t size() const override { return nodes_.size(); }
  net::Network& network() override { return net_; }
  sim::Simulator& simulator() { return net_.simulator(); }
  const Params& params() const noexcept { return params_; }

  ChordNode& node(net::HostIndex h) { return *nodes_[h]; }
  const ChordNode& node(net::HostIndex h) const { return *nodes_[h]; }
  Id id_of(net::HostIndex h) const override { return nodes_[h]->id(); }

  // -- overlay::Overlay -----------------------------------------------------

  /// Chord ownership: key in (predecessor, self].
  bool owns(net::HostIndex h, Id key) const override {
    return nodes_[h]->owns(key);
  }

  /// Greedy Chord step: the successor when the key lies between this node
  /// and it (final hop), else the closest preceding routing-table entry.
  NodeRef next_hop(net::HostIndex h, Id key) const override;

  std::vector<NodeRef> neighbors(net::HostIndex h) const override {
    return nodes_[h]->neighbors();
  }

  void note_app_contact(net::HostIndex at, Id peer) override {
    note_contact(at, peer);
  }

  /// Drop `failed` from `at`'s routing state (successor list, fingers,
  /// predecessor); when `via` is valid, adopt it as predecessor candidate
  /// for the inherited range under the standard notify guard.
  void note_peer_failure(net::HostIndex at, net::HostIndex failed,
                         net::HostIndex via =
                             overlay::Peer::kInvalidHost) override;

  /// Replication targets: the first k entries of the successor list.
  std::vector<NodeRef> replica_set(net::HostIndex h,
                                   std::size_t k) const override {
    const auto& sl = nodes_[h]->successor_list();
    return {sl.begin(), sl.begin() + std::min(k, sl.size())};
  }

  // -- global-knowledge (oracle) operations --------------------------------

  /// Fill predecessor/successor lists/fingers for every node from the global
  /// membership; applies PNS if params().pns. O(n * 64 * pns_candidates).
  /// With threads > 1 the routing-state computation (dominated by the PNS
  /// latency scans) is sharded over contiguous ring ranges; the computed
  /// state is applied sequentially in ring order, so the result — including
  /// the order ownership notifications fire in — is independent of the
  /// thread count.
  void oracle_build(unsigned threads = 1);

  /// overlay::Overlay's lifecycle name for oracle_build().
  void build(unsigned threads) override { oracle_build(threads); }

  /// Ground truth: the live node that owns `key` (its successor). Used by
  /// tests and by metrics, never by the protocol paths.
  NodeRef oracle_successor(Id key) const;

  /// Ground-truth ring order (ascending ids) of live nodes.
  std::vector<NodeRef> oracle_ring() const;

  /// Chord's oracle owner table IS the sorted ring: owner(key) =
  /// successor(key) = first id >= key, wrapping.
  std::vector<NodeRef> oracle_owner_table() const override {
    return oracle_ring();
  }

  // -- lookup ---------------------------------------------------------------

  using RouteResult = overlay::Overlay::RouteResult;
  using RouteCallback = overlay::Overlay::RouteCallback;

  /// Recursive greedy routing of `key` starting at `from`. `extra_bytes`
  /// rides along (e.g. a subscription being installed). The callback fires
  /// *at the owner* (in simulated time). Routing failures during churn are
  /// retried through successor fallbacks; if the message is dropped the
  /// callback never fires.
  void route(net::HostIndex from, Id key, std::uint64_t extra_bytes,
             RouteCallback cb) override;

  // -- protocol maintenance -------------------------------------------------

  /// Start periodic stabilization on every currently-live node (staggered
  /// within one period to avoid lockstep).
  void start_maintenance();

  /// Protocol join of `host` using `bootstrap` as the entry point. The host
  /// must be alive in the network. Integration completes via maintenance.
  /// Rejoins are supported: stale routing state from a previous life is
  /// cleared before the bootstrap lookup. `on_joined` fires once the
  /// joiner's successor is set (state transfer can start).
  bool join(net::HostIndex host, net::HostIndex bootstrap,
            std::function<void()> on_joined = {}) override;

  /// Graceful departure: the successor adopts `host`'s predecessor (an
  /// ownership flip, so the listener fires), the predecessor splices its
  /// successor list past `host`, then the host leaves the network.
  bool leave(net::HostIndex host, std::function<void()> on_left = {}) override;

  /// Crash-stop failure: the host drops all messages from now on.
  void fail(net::HostIndex host);

  /// True if the node participates (alive and not failed).
  bool live(net::HostIndex host) const { return net_.alive(host); }

  /// Run one maintenance round synchronously on every live node (test hook):
  /// stabilize + notify + one finger fix. Drives convergence in unit tests
  /// without waiting for periodic timers.
  void maintenance_round();

  /// Stop periodic maintenance: queued ticks fire once and do not
  /// reschedule, letting the simulator drain. Restartable.
  void stop_maintenance() { maintenance_stopped_ = true; }

  // -- piggybacked liveness (§6 extension) ----------------------------------

  /// Record that `at` just received application traffic from `peer`
  /// (called by the pub/sub layer when piggybacking is enabled).
  void note_contact(net::HostIndex at, Id peer);

  /// Liveness pings actually sent / skipped thanks to fresh contact.
  std::uint64_t pings_sent() const noexcept { return pings_sent_; }
  std::uint64_t pings_saved() const noexcept { return pings_saved_; }

  // -- reliable routing observability ---------------------------------------

  /// Transport + failover counters of the reliable lookup path (all zero
  /// unless params().reliable_routing).
  metrics::ReliabilityCounters route_reliability() const;
  const net::ReliableChannel& route_channel() const noexcept {
    return route_channel_;
  }

  // -- checkpointing ----------------------------------------------------------

  /// Serialize every node's routing state (pred, successor list, fingers),
  /// the maintenance cursors, the piggyback liveness tables, and the lookup
  /// reliability counters. Node ids are ctor-deterministic (same seed =>
  /// same ids), so they are asserted, not stored.
  void save_state(common::ByteWriter& w) const override;
  void restore_state(common::ByteReader& r) override;

  // -- tracing ---------------------------------------------------------------

  /// Record per-hop route spans (and the route channel's retry/expire
  /// spans) into `t` for lookups whose caller parked an ambient trace
  /// context on the tracer. nullptr detaches.
  void set_tracer(trace::Tracer* t) override {
    tracer_ = t;
    route_channel_.set_tracer(t);
  }

 private:
  void stabilize(net::HostIndex h);
  void fix_next_finger(net::HostIndex h);
  void check_predecessor(net::HostIndex h);
  void probe_finger_liveness(net::HostIndex h);
  void schedule_tick(net::HostIndex h, double delay);

  /// Run `f` against node `h`'s routing state and fire the overlay
  /// ownership listener if its predecessor — the boundary of the key range
  /// owns() covers — changed. Every predecessor mutation in ChordNet goes
  /// through this so route caches above hear about ownership churn.
  template <typename F>
  void with_pred_watch(net::HostIndex h, F&& f) {
    const NodeRef before = nodes_[h]->predecessor();
    f(*nodes_[h]);
    if (!(nodes_[h]->predecessor() == before)) notify_ownership_changed(h);
  }

  /// True if `h` heard from `peer` within one stabilization period (only
  /// when piggybacking is enabled).
  bool recently_heard(net::HostIndex h, Id peer) const;
  /// Ping `peer` from `h`; on timeout drop it from h's routing state.
  void liveness_ping(net::HostIndex h, NodeRef peer);

  // Ask `to` for its predecessor + successor list; on timeout call on_fail.
  void get_state(net::HostIndex from, net::HostIndex to,
                 std::function<void(NodeRef pred, std::vector<NodeRef>)> ok,
                 std::function<void()> fail);

  void route_step(net::HostIndex at, Id key, std::uint64_t extra_bytes,
                  int hops, double issued_at,
                  std::shared_ptr<RouteCallback> cb, trace::TraceCtx tctx);
  /// One acked lookup hop `at` -> `next`; on ack expiry drops `next` from
  /// `at`'s state and retries through the recomputed next hop. `failed`
  /// carries failure gossip for the receiver (invalid host = none).
  void send_route_hop(net::HostIndex at, NodeRef next, Id key,
                      std::uint64_t extra_bytes, int hops, double issued_at,
                      std::shared_ptr<RouteCallback> cb,
                      net::HostIndex failed, trace::TraceCtx tctx);

  net::Network& net_;
  Params params_;
  net::ReliableChannel route_channel_;
  trace::Tracer* tracer_ = nullptr;  ///< lookup-hop span recording
  std::uint64_t route_reroutes_ = 0;  ///< hop failovers taken
  std::uint64_t route_drops_ = 0;     ///< lookups lost (TTL / no viable hop)
  std::vector<std::unique_ptr<ChordNode>> nodes_;
  std::vector<int> next_finger_;        // per-node fix_fingers cursor
  std::vector<int> next_probe_;         // per-node liveness-probe cursor
  std::vector<bool> maintaining_;       // tick scheduled?
  bool maintenance_stopped_ = false;
  std::unordered_map<Id, net::HostIndex> host_by_id_;
  std::vector<std::unordered_map<Id, double>> last_heard_;  // per host
  std::uint64_t pings_sent_ = 0;
  std::uint64_t pings_saved_ = 0;
};

}  // namespace hypersub::chord
