#include "chord/chord_node.hpp"

#include <algorithm>
#include <cassert>

namespace hypersub::chord {

ChordNode::ChordNode(Id id, net::HostIndex host, std::size_t succ_list_len)
    : id_(id), host_(host), succ_cap_(succ_list_len) {
  assert(succ_list_len >= 1);
  succ_.reserve(succ_list_len);
}

NodeRef ChordNode::successor() const {
  return succ_.empty() ? NodeRef{} : succ_.front();
}

void ChordNode::set_successor(NodeRef s) {
  assert(s.valid());
  if (succ_.empty()) {
    succ_.push_back(s);
  } else if (succ_.front() != s) {
    // Keep old successors as backups; dedupe below.
    succ_.insert(succ_.begin(), s);
    std::vector<NodeRef> dedup;
    for (const auto& n : succ_) {
      if (std::find(dedup.begin(), dedup.end(), n) == dedup.end()) {
        dedup.push_back(n);
      }
    }
    succ_ = std::move(dedup);
    if (succ_.size() > succ_cap_) succ_.resize(succ_cap_);
  }
}

void ChordNode::adopt_successor_list(NodeRef succ,
                                     const std::vector<NodeRef>& rest) {
  assert(succ.valid());
  succ_.clear();
  succ_.push_back(succ);
  for (const auto& n : rest) {
    if (succ_.size() >= succ_cap_) break;
    if (n.valid() && n.id != id_ &&
        std::find(succ_.begin(), succ_.end(), n) == succ_.end()) {
      succ_.push_back(n);
    }
  }
}

void ChordNode::remove_peer(Id failed) {
  succ_.erase(std::remove_if(succ_.begin(), succ_.end(),
                             [failed](const NodeRef& n) {
                               return n.id == failed;
                             }),
              succ_.end());
  for (auto& f : fingers_) {
    if (f.valid() && f.id == failed) f = NodeRef{};
  }
  if (pred_.valid() && pred_.id == failed) pred_ = NodeRef{};
}

bool ChordNode::owns(Id key) const {
  if (!pred_.valid()) return key == id_;
  return ring::in_open_closed(key, pred_.id, id_);
}

NodeRef ChordNode::closest_preceding(Id target) const {
  // Pick the known node with the greatest clockwise progress from us while
  // staying strictly inside (id, target) — or landing exactly on target's
  // ... predecessor side. Standard Chord closest_preceding_finger extended
  // over the successor list.
  NodeRef best = self();
  Id best_dist = 0;  // progress distance(id_, best.id); self has 0
  auto consider = [&](const NodeRef& n) {
    if (!n.valid() || n.id == id_) return;
    if (!ring::in_open(n.id, id_, target)) return;
    const Id d = ring::distance(id_, n.id);
    if (d > best_dist) {
      best_dist = d;
      best = n;
    }
  };
  for (const auto& f : fingers_) consider(f);
  for (const auto& s : succ_) consider(s);
  return best;
}

std::vector<NodeRef> ChordNode::neighbors() const {
  std::vector<NodeRef> out;
  auto add = [&](const NodeRef& n) {
    if (!n.valid() || n.id == id_) return;
    for (const auto& e : out) {
      if (e.id == n.id) return;
    }
    out.push_back(n);
  };
  for (const auto& s : succ_) add(s);
  for (const auto& f : fingers_) add(f);
  add(pred_);
  return out;
}

}  // namespace hypersub::chord
