#include "chord/ring.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace hypersub::chord {

std::vector<Id> random_ids(std::size_t n, Rng& rng) {
  std::unordered_set<Id> seen;
  std::vector<Id> ids;
  ids.reserve(n);
  while (ids.size() < n) {
    const Id id = rng.next_u64();
    if (seen.insert(id).second) ids.push_back(id);
  }
  return ids;
}

std::size_t successor_index(const std::vector<Id>& sorted_ids, Id key) {
  assert(!sorted_ids.empty());
  assert(std::is_sorted(sorted_ids.begin(), sorted_ids.end()));
  const auto it =
      std::lower_bound(sorted_ids.begin(), sorted_ids.end(), key);
  if (it == sorted_ids.end()) return 0;  // wrap
  return std::size_t(it - sorted_ids.begin());
}

}  // namespace hypersub::chord
