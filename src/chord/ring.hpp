#pragma once
// Ring-level helpers shared by the Chord implementation and by oracle/test
// code that reasons about a global view of the identifier space.

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"

namespace hypersub::chord {

/// Generate `n` distinct node identifiers, uniformly at random over the
/// 64-bit ring (the paper assigns ids by hashing, i.e. uniformly).
std::vector<Id> random_ids(std::size_t n, Rng& rng);

/// Index into `sorted_ids` (ascending) of the successor of `key`: the first
/// id >= key, wrapping to index 0 past the top of the ring.
std::size_t successor_index(const std::vector<Id>& sorted_ids, Id key);

}  // namespace hypersub::chord
