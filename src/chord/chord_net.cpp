#include "chord/chord_net.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <thread>

namespace hypersub::chord {

ChordNet::ChordNet(net::Network& net, const Params& params)
    : net_(net),
      params_(params),
      route_channel_(net, {params.rpc_timeout_ms, params.route_backoff,
                           params.route_retries, kHeaderBytes}) {
  Rng rng(params.seed);
  const auto ids = random_ids(net.size(), rng);
  nodes_.reserve(net.size());
  for (net::HostIndex h = 0; h < net.size(); ++h) {
    nodes_.push_back(
        std::make_unique<ChordNode>(ids[h], h, params.succ_list_len));
    host_by_id_[ids[h]] = h;
  }
  next_finger_.assign(net.size(), 0);
  next_probe_.assign(net.size(), 0);
  maintaining_.assign(net.size(), false);
  last_heard_.resize(net.size());
}

void ChordNet::note_contact(net::HostIndex at, Id peer) {
  if (!params_.piggyback_maintenance) return;
  last_heard_[at][peer] = net_.simulator().now();
}

bool ChordNet::recently_heard(net::HostIndex h, Id peer) const {
  if (!params_.piggyback_maintenance) return false;
  const auto it = last_heard_[h].find(peer);
  return it != last_heard_[h].end() &&
         net_.simulator().now() - it->second <= params_.stabilize_period_ms;
}

void ChordNet::liveness_ping(net::HostIndex h, NodeRef peer) {
  ++pings_sent_;
  auto done = std::make_shared<bool>(false);
  net_.send(h, peer.host, kHeaderBytes, [this, h, peer, done] {
    net_.send(peer.host, h, kHeaderBytes, [this, h, peer, done] {
      *done = true;
      note_contact(h, peer.id);
    });
  });
  net_.simulator().schedule(params_.rpc_timeout_ms, [this, h, peer, done] {
    if (*done || !net_.alive(h)) return;
    with_pred_watch(h, [&](ChordNode& nd) { nd.remove_peer(peer.id); });
  });
}

void ChordNet::probe_finger_liveness(net::HostIndex h) {
  ChordNode& nd = *nodes_[h];
  // Round-robin over fingers; skip invalid ones and (with piggybacking)
  // peers recently heard from via application traffic.
  for (int attempts = 0; attempts < kIdBits; ++attempts) {
    const int i = next_probe_[h];
    next_probe_[h] = (i + 1) % kIdBits;
    const NodeRef f = nd.finger(i);
    if (!f.valid() || f.id == nd.id()) continue;
    if (recently_heard(h, f.id)) {
      ++pings_saved_;
      return;
    }
    liveness_ping(h, f);
    return;
  }
}

std::vector<NodeRef> ChordNet::oracle_ring() const {
  std::vector<NodeRef> ring;
  ring.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (net_.alive(n->host())) ring.push_back(n->self());
  }
  std::sort(ring.begin(), ring.end(),
            [](const NodeRef& a, const NodeRef& b) { return a.id < b.id; });
  return ring;
}

NodeRef ChordNet::oracle_successor(Id key) const {
  const auto ring = oracle_ring();
  assert(!ring.empty());
  std::vector<Id> ids;
  ids.reserve(ring.size());
  for (const auto& n : ring) ids.push_back(n.id);
  return ring[successor_index(ids, key)];
}

void ChordNet::oracle_build(unsigned threads) {
  const auto ring = oracle_ring();
  const std::size_t n = ring.size();
  assert(n >= 1);
  std::vector<Id> ids;
  ids.reserve(n);
  for (const auto& r : ring) ids.push_back(r.id);

  // Compute phase: the whole routing state of every node is a pure function
  // of the sorted ring and the (immutable) topology, so it shards cleanly
  // over contiguous ring ranges. The PNS latency scans — n * 64 *
  // pns_candidates latency() calls — are what makes construction expensive
  // at scale; they all happen here.
  struct Built {
    NodeRef pred;
    NodeRef succ;
    std::vector<NodeRef> rest;
    std::array<NodeRef, kIdBits> fingers{};
  };
  std::vector<Built> built(n);
  const auto compute = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const ChordNode& nd = *nodes_[ring[i].host];
      Built& b = built[i];
      // Predecessor and successor list straight from ring order.
      b.pred = ring[(i + n - 1) % n];
      b.succ = ring[(i + 1) % n];
      for (std::size_t k = 2; k <= params_.succ_list_len && k < n + 1; ++k) {
        b.rest.push_back(ring[(i + k) % n]);
      }
      // Fingers with optional PNS: candidates are the first pns_candidates
      // nodes clockwise from the finger start that stay within
      // [start, next_start); pick the closest by network latency.
      for (int f = 0; f < kIdBits; ++f) {
        const Id start = ring::finger_start(nd.id(), f);
        const Id next_start = ring::finger_start(nd.id(), (f + 1) % kIdBits);
        const std::size_t first = successor_index(ids, start);
        NodeRef chosen = ring[first];
        if (params_.pns) {
          double best = net_.topology().latency(nd.host(), chosen.host);
          std::size_t idx = first;
          for (std::size_t c = 1; c < params_.pns_candidates; ++c) {
            idx = (idx + 1) % n;
            const NodeRef& cand = ring[idx];
            // Stop once candidates leave the finger's interval (for f == 63
            // the interval is the half ring back to the node itself).
            const bool in_range =
                f == kIdBits - 1
                    ? ring::in_closed_open(cand.id, start, nd.id())
                    : ring::in_closed_open(cand.id, start, next_start);
            if (!in_range) break;
            const double lat = net_.topology().latency(nd.host(), cand.host);
            if (lat < best) {
              best = lat;
              chosen = cand;
            }
          }
        }
        b.fingers[std::size_t(f)] = chosen;
      }
    }
  };
  const std::size_t workers =
      std::min<std::size_t>(std::max(1u, threads), n);
  if (workers <= 1) {
    compute(0, n);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back(
          [&compute, lo = n * w / workers, hi = n * (w + 1) / workers] {
            compute(lo, hi);
          });
    }
    for (auto& th : pool) th.join();
  }

  // Apply phase: sequential in ring order, so ownership notifications (and
  // any listener side effects) fire in a thread-count-independent order.
  for (std::size_t i = 0; i < n; ++i) {
    ChordNode& nd = *nodes_[ring[i].host];
    Built& b = built[i];
    with_pred_watch(ring[i].host,
                    [&](ChordNode& me) { me.set_predecessor(b.pred); });
    nd.adopt_successor_list(b.succ, std::move(b.rest));
    for (int f = 0; f < kIdBits; ++f) {
      nd.set_finger(f, b.fingers[std::size_t(f)]);
    }
  }
}

NodeRef ChordNet::next_hop(net::HostIndex h, Id key) const {
  const ChordNode& nd = *nodes_[h];
  const NodeRef succ = nd.successor();
  if (succ.valid() && ring::in_open_closed(key, nd.id(), succ.id)) {
    return succ;
  }
  NodeRef next = nd.closest_preceding(key);
  if (!next.valid() || next.id == nd.id()) next = succ;
  return next;
}

// ---------------------------------------------------------------------------
// Lookup routing
// ---------------------------------------------------------------------------

void ChordNet::route(net::HostIndex from, Id key, std::uint64_t extra_bytes,
                     RouteCallback cb) {
  auto shared_cb = std::make_shared<RouteCallback>(std::move(cb));
  // Tracing: adopt the caller's parked context, if any (cleared by the
  // read, so an untraced route never inherits a stale one).
  trace::TraceCtx tctx;
  if (auto* tr = trace::maybe(tracer_)) tctx = tr->take_ambient();
  route_step(from, key, extra_bytes, 0, net_.simulator().now(),
             std::move(shared_cb), tctx);
}

void ChordNet::route_step(net::HostIndex at, Id key,
                          std::uint64_t extra_bytes, int hops,
                          double issued_at,
                          std::shared_ptr<RouteCallback> cb,
                          trace::TraceCtx tctx) {
  ChordNode& nd = *nodes_[at];
  if (nd.owns(key)) {
    RouteResult r;
    r.owner = nd.self();
    r.hops = hops;
    r.latency_ms = net_.simulator().now() - issued_at;
    // Park the arrival context so the route callback (which runs
    // synchronously here) can parent its own spans under the last hop;
    // clear it afterwards in case the callback is not trace-aware.
    if (auto* tr = trace::maybe(tracer_); tr && tctx.active()) {
      tr->set_ambient(tctx);
      (*cb)(r);
      tr->take_ambient();
      return;
    }
    (*cb)(r);
    return;
  }
  if (hops >= params_.max_route_hops) {
    net_.simulator().defer_ordered([this] { ++route_drops_; });
    return;
  }
  // Final hop: key lies between us and our successor.
  NodeRef next;
  const NodeRef succ = nd.successor();
  if (succ.valid() && ring::in_open_closed(key, nd.id(), succ.id)) {
    next = succ;
  } else {
    next = nd.closest_preceding(key);
    if (!next.valid() || next.id == nd.id()) next = succ;
  }
  if (!next.valid()) {  // isolated node: drop
    if (params_.reliable_routing) {
      net_.simulator().defer_ordered([this] { ++route_drops_; });
    }
    return;
  }
  // One route-hop span per forwarded lookup message: opened at the sender,
  // closed on arrival. The chain of hop spans is the lookup's causal path.
  trace::SpanId hop_span = trace::kNoSpan;
  if (auto* tr = trace::maybe(tracer_); tr && tctx.active()) {
    hop_span = tr->begin(tctx.trace, tctx.parent, trace::SpanKind::kRouteHop,
                         at, net_.simulator().now(),
                         std::uint64_t(hops + 1), std::uint64_t(next.host));
    // Span cap hit: the rest of this trace is lost anyway; deactivate so
    // downstream end() calls cannot close an unrelated older span.
    if (hop_span != trace::kNoSpan) tctx.parent = hop_span;
    else tctx = trace::TraceCtx{};
  }
  if (params_.reliable_routing) {
    send_route_hop(at, next, key, extra_bytes, hops, issued_at, cb,
                   overlay::Peer::kInvalidHost, tctx);
    return;
  }
  const std::uint64_t bytes = kHeaderBytes + kKeyBytes + extra_bytes;
  net_.send(at, next.host, bytes,
            [this, to = next.host, key, extra_bytes, hops, issued_at, cb,
             tctx, hop_span] {
              if (auto* tr = trace::maybe(tracer_)) {
                tr->end(hop_span, net_.simulator().now());
              }
              route_step(to, key, extra_bytes, hops + 1, issued_at, cb, tctx);
            });
}

void ChordNet::send_route_hop(net::HostIndex at, NodeRef next, Id key,
                              std::uint64_t extra_bytes, int hops,
                              double issued_at,
                              std::shared_ptr<RouteCallback> cb,
                              net::HostIndex failed, trace::TraceCtx tctx) {
  const std::uint64_t bytes = kHeaderBytes + kKeyBytes + extra_bytes +
                              (failed != overlay::Peer::kInvalidHost
                                   ? kNodeRefBytes
                                   : 0);
  route_channel_.send(
      at, next.host, bytes,
      [this, at, to = next.host, key, extra_bytes, hops, issued_at, cb,
       failed, tctx] {
        // Piggybacked failure gossip: the sender detoured around `failed`
        // to reach us, so we are the heir of its range and the sender is a
        // predecessor candidate for it.
        if (failed != overlay::Peer::kInvalidHost) {
          note_peer_failure(to, failed, at);
        }
        if (auto* tr = trace::maybe(tracer_)) {
          tr->end(tctx.parent, net_.simulator().now());
        }
        route_step(to, key, extra_bytes, hops + 1, issued_at, cb, tctx);
      },
      [this, at, to = next.host, key, extra_bytes, hops, issued_at, cb,
       tctx]() mutable {
        // All retransmissions expired: the next hop is dead. Drop it from
        // our routing state and detour through the recomputed hop,
        // gossiping the failure to it.
        note_peer_failure(at, to);
        const NodeRef retry = next_hop(at, key);
        if (!retry.valid() || retry.host == to) {
          net_.simulator().defer_ordered([this] { ++route_drops_; });
          return;
        }
        net_.simulator().defer_ordered([this] { ++route_reroutes_; });
        // The detour is a fresh hop span under the expired one (the
        // channel already recorded the expire span there).
        if (auto* tr = trace::maybe(tracer_); tr && tctx.active()) {
          const double now = net_.simulator().now();
          tr->end(tctx.parent, now);
          const trace::SpanId detour = tr->begin(
              tctx.trace, tctx.parent, trace::SpanKind::kReroute, at, now,
              std::uint64_t(hops + 1), std::uint64_t(retry.host));
          if (detour != trace::kNoSpan) tctx.parent = detour;
          else tctx = trace::TraceCtx{};
        }
        send_route_hop(at, retry, key, extra_bytes, hops, issued_at, cb, to,
                       tctx);
      },
      tctx);
}

void ChordNet::note_peer_failure(net::HostIndex at, net::HostIndex failed,
                                 net::HostIndex via) {
  if (at == failed) return;
  with_pred_watch(at, [&](ChordNode& nd) {
    nd.remove_peer(nodes_[failed]->id());
    if (via == overlay::Peer::kInvalidHost || via == at) return;
    // The gossiping peer detoured around our dead predecessor-side
    // neighbor; adopt it as predecessor candidate under the standard
    // notify guard so owns() covers the inherited range again.
    const NodeRef cand = nodes_[via]->self();
    if (cand.id == nd.id()) return;
    const NodeRef cur = nd.predecessor();
    if (!cur.valid() || cur.id == nd.id() ||
        ring::in_open(cand.id, cur.id, nd.id())) {
      nd.set_predecessor(cand);
    }
  });
}

metrics::ReliabilityCounters ChordNet::route_reliability() const {
  const net::ReliableChannel::Stats& s = route_channel_.stats();
  metrics::ReliabilityCounters c;
  c.messages_sent = s.sent;
  c.acks = s.acked;
  c.retries = s.retries;
  c.expirations = s.expired;
  c.duplicates_suppressed = s.duplicates_suppressed;
  c.reroutes = route_reroutes_;
  c.unmasked_drops = route_drops_;
  return c;
}

// ---------------------------------------------------------------------------
// Maintenance protocol
// ---------------------------------------------------------------------------

void ChordNet::get_state(
    net::HostIndex from, net::HostIndex to,
    std::function<void(NodeRef, std::vector<NodeRef>)> ok,
    std::function<void()> fail) {
  auto done = std::make_shared<bool>(false);
  const std::uint64_t req = kHeaderBytes;
  net_.send(from, to, req, [this, from, to, done, ok = std::move(ok)] {
    // Server side: reply with predecessor + successor list.
    ChordNode& peer = *nodes_[to];
    const NodeRef pred = peer.predecessor();
    const std::vector<NodeRef> slist = peer.successor_list();
    const std::uint64_t reply =
        kHeaderBytes + kNodeRefBytes * (1 + slist.size());
    net_.send(to, from, reply, [done, ok = std::move(ok), pred, slist] {
      if (*done) return;
      *done = true;
      ok(pred, slist);
    });
  });
  // The timeout runs on the requester's shard: both `done` and the fail
  // path mutate `from`-side state, and the reply handler that races this
  // timer also runs there.
  net_.simulator().schedule_on(from, params_.rpc_timeout_ms,
                               [done, fail = std::move(fail)] {
                                 if (*done) return;
                                 *done = true;
                                 if (fail) fail();
                               });
}

void ChordNet::start_maintenance() {
  maintenance_stopped_ = false;
  Rng rng(params_.seed ^ 0x5741494eULL);
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    if (!net_.alive(h) || maintaining_[h]) continue;
    schedule_tick(h, rng.uniform(0.0, params_.stabilize_period_ms));
  }
}

void ChordNet::schedule_tick(net::HostIndex h, double delay) {
  maintaining_[h] = true;
  // Maintenance ticks are pinned to the exclusive (no-shard) context: one
  // tick touches many nodes' state (probes, shared ping counters), so the
  // parallel engine runs it alone between windows.
  net_.simulator().schedule_on(sim::kNoShard, delay, [this, h] {
    if (maintenance_stopped_ || !net_.alive(h)) {
      maintaining_[h] = false;
      return;
    }
    stabilize(h);
    fix_next_finger(h);
    check_predecessor(h);
    if (params_.probe_fingers) probe_finger_liveness(h);
    schedule_tick(h, params_.stabilize_period_ms);
  });
}

void ChordNet::stabilize(net::HostIndex h) {
  ChordNode& nd = *nodes_[h];
  const NodeRef succ = nd.successor();
  if (!succ.valid()) return;
  get_state(
      h, succ.host,
      [this, h, succ](NodeRef pred, std::vector<NodeRef> slist) {
        ChordNode& me = *nodes_[h];
        NodeRef target = succ;
        // Classic Chord treats the degenerate single-node interval (n, n)
        // as the whole ring during stabilization, so a freshly bootstrapped
        // node adopts its first peer.
        const bool degenerate = succ.id == me.id();
        if (pred.valid() && pred.id != me.id() &&
            (degenerate || ring::in_open(pred.id, me.id(), succ.id))) {
          // A closer successor appeared between us and our successor.
          target = pred;
          me.set_successor(target);
        } else {
          me.adopt_successor_list(succ, slist);
        }
        // notify(target): "I believe I am your predecessor".
        net_.send(h, target.host, kHeaderBytes + kNodeRefBytes,
                  [this, h, to = target.host] {
                    with_pred_watch(to, [&](ChordNode& peer) {
                      const NodeRef cand = nodes_[h]->self();
                      if (cand.id == peer.id()) return;
                      const NodeRef cur = peer.predecessor();
                      if (!cur.valid() || cur.id == peer.id() ||
                          ring::in_open(cand.id, cur.id, peer.id())) {
                        peer.set_predecessor(cand);
                      }
                    });
                  });
      },
      [this, h, succ] {
        // Successor unresponsive: drop it and fail over to the next backup.
        with_pred_watch(h, [&](ChordNode& me) { me.remove_peer(succ.id); });
      });
}

void ChordNet::fix_next_finger(net::HostIndex h) {
  ChordNode& nd = *nodes_[h];
  const int i = next_finger_[h];
  next_finger_[h] = (i + 1) % kIdBits;
  const Id start = ring::finger_start(nd.id(), i);
  route(h, start, 0, [this, h, i, start](const RouteResult& r) {
    // This callback runs at the key's owner, not at h; every write to h's
    // finger table is shipped back to h's shard (a remote apply delayed by
    // the effective lookahead, identical in both modes).
    if (!net_.alive(h)) return;
    if (!params_.pns) {
      net_.simulator().schedule_on(
          h, net_.simulator().effective_lookahead(), [this, h, i, owner = r.owner] {
            if (net_.alive(h)) nodes_[h]->set_finger(i, owner);
          });
      return;
    }
    // PNS refinement: fetch the owner's successor list and keep the
    // lowest-latency candidate still inside the finger interval.
    get_state(
        h, r.owner.host,
        [this, h, i, start, owner = r.owner](NodeRef,
                                             std::vector<NodeRef> slist) {
          if (!net_.alive(h)) return;
          ChordNode& me2 = *nodes_[h];
          const Id next_start =
              ring::finger_start(me2.id(), (i + 1) % kIdBits);
          NodeRef best = owner;
          double best_lat = net_.topology().latency(h, owner.host);
          for (const auto& cand : slist) {
            if (!cand.valid()) continue;
            const bool in_range =
                i == kIdBits - 1
                    ? ring::in_closed_open(cand.id, start, me2.id())
                    : ring::in_closed_open(cand.id, start, next_start);
            if (!in_range) continue;
            const double lat = net_.topology().latency(h, cand.host);
            if (lat < best_lat) {
              best_lat = lat;
              best = cand;
            }
          }
          me2.set_finger(i, best);
        },
        [this, h, i, owner = r.owner] {
          if (net_.alive(h)) nodes_[h]->set_finger(i, owner);
        });
  });
}

void ChordNet::check_predecessor(net::HostIndex h) {
  ChordNode& nd = *nodes_[h];
  const NodeRef pred = nd.predecessor();
  if (!pred.valid()) return;
  if (recently_heard(h, pred.id)) {
    ++pings_saved_;
    return;
  }
  ++pings_sent_;
  auto done = std::make_shared<bool>(false);
  net_.send(h, pred.host, kHeaderBytes, [this, h, pred, done] {
    // Ping reached a live predecessor; pong back.
    net_.send(pred.host, h, kHeaderBytes, [this, h, pred, done] {
      *done = true;
      note_contact(h, pred.id);
    });
  });
  net_.simulator().schedule(params_.rpc_timeout_ms, [this, h, pred, done] {
    if (*done || !net_.alive(h)) return;
    with_pred_watch(h, [&](ChordNode& me) {
      if (me.predecessor() == pred) me.clear_predecessor();
    });
  });
}

bool ChordNet::join(net::HostIndex host, net::HostIndex bootstrap,
                    std::function<void()> on_joined) {
  assert(net_.alive(host));
  ChordNode& nd = *nodes_[host];
  // A rejoining node must not route through its previous life's view:
  // stale successors/fingers could claim ownership or shortcut lookups
  // around the very owner it needs to fetch state from.
  with_pred_watch(host, [](ChordNode& me) { me.reset_routing_state(); });
  route(bootstrap, nd.id(), 0,
        [this, host, on_joined = std::move(on_joined)](const RouteResult& r) {
          // Runs at the owner; apply the join result on the joiner's shard.
          net_.simulator().schedule_on(
              host, net_.simulator().effective_lookahead(),
              [this, host, owner = r.owner,
               on_joined = std::move(on_joined)] {
                if (!net_.alive(host)) return;
                nodes_[host]->set_successor(owner);
                if (!maintaining_[host]) schedule_tick(host, 0.0);
                if (on_joined) on_joined();
              });
        });
  return true;
}

bool ChordNet::leave(net::HostIndex host, std::function<void()> on_left) {
  if (!net_.alive(host)) return false;
  ChordNode& nd = *nodes_[host];
  const NodeRef pred = nd.predecessor();
  const NodeRef succ = nd.successor();
  const bool have_succ =
      succ.valid() && succ.id != nd.id() && net_.alive(succ.host);
  const bool have_pred =
      pred.valid() && pred.id != nd.id() && net_.alive(pred.host);

  auto pending = std::make_shared<int>((have_succ ? 1 : 0) +
                                       (have_pred ? 1 : 0));
  auto finish = std::make_shared<std::function<void()>>(std::move(on_left));
  const auto step = [this, host, pending, finish] {
    if (--*pending > 0) return;
    // Depart only after both splice messages landed; the kill touches
    // network-global state, so it runs in the exclusive context.
    net_.simulator().schedule_on(sim::kNoShard, 0.0, [this, host, finish] {
      if (net_.alive(host)) net_.kill(host);
      if (*finish) (*finish)();
    });
  };

  if (have_succ) {
    // "I am leaving; my predecessor is yours now." Adopting it moves the
    // successor's ownership boundary — with_pred_watch fires the overlay
    // ownership listener, exactly like a death-driven flip would.
    net_.send(host, succ.host, kHeaderBytes + 2 * kNodeRefBytes,
              [this, host, to = succ.host, pred, step] {
                with_pred_watch(to, [&](ChordNode& peer) {
                  const Id leaver = nodes_[host]->id();
                  const NodeRef cur = peer.predecessor();
                  if (cur.valid() && cur.id == leaver) {
                    if (pred.valid() && pred.id != leaver) {
                      peer.set_predecessor(pred);
                    } else {
                      peer.clear_predecessor();
                    }
                  }
                  peer.remove_peer(leaver);
                });
                step();
              });
  }
  if (have_pred) {
    // "Splice past me": the predecessor adopts our successor list.
    const std::vector<NodeRef> slist = nd.successor_list();
    net_.send(host, pred.host,
              kHeaderBytes + kNodeRefBytes * (1 + slist.size()),
              [this, host, to = pred.host, succ, slist, have_succ, step] {
                ChordNode& peer = *nodes_[to];
                const Id leaver = nodes_[host]->id();
                if (have_succ) {
                  const std::vector<NodeRef> rest(
                      slist.begin() + 1, slist.end());
                  peer.adopt_successor_list(succ, rest);
                }
                peer.remove_peer(leaver);
                step();
              });
  }
  if (*pending == 0) {
    // Isolated node: nothing to splice, just depart.
    net_.kill(host);
    if (*finish) (*finish)();
  }
  return true;
}

void ChordNet::fail(net::HostIndex host) { net_.kill(host); }

void ChordNet::save_state(common::ByteWriter& w) const {
  const auto save_ref = [&w](const NodeRef& n) {
    w.u64(n.id);
    w.u64(std::uint64_t(n.host));
    w.boolean(n.valid());
  };
  w.u32(std::uint32_t(nodes_.size()));
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    const ChordNode& nd = *nodes_[h];
    w.u64(nd.id());
    save_ref(nd.predecessor());
    const auto& sl = nd.successor_list();
    w.u32(std::uint32_t(sl.size()));
    for (const NodeRef& s : sl) save_ref(s);
    for (int i = 0; i < kIdBits; ++i) save_ref(nd.finger(i));
    w.u32(std::uint32_t(next_finger_[h]));
    w.u32(std::uint32_t(next_probe_[h]));
    // Piggyback liveness evidence, sorted for deterministic bytes.
    std::vector<std::pair<Id, double>> heard(last_heard_[h].begin(),
                                             last_heard_[h].end());
    std::sort(heard.begin(), heard.end());
    w.u32(std::uint32_t(heard.size()));
    for (const auto& [peer, at] : heard) {
      w.u64(peer);
      w.f64(at);
    }
  }
  w.u64(route_reroutes_);
  w.u64(route_drops_);
  w.u64(pings_sent_);
  w.u64(pings_saved_);
  route_channel_.save_stats(w);
}

void ChordNet::restore_state(common::ByteReader& r) {
  const auto load_ref = [&r] {
    NodeRef n;
    n.id = r.u64();
    n.host = net::HostIndex(r.u64());
    if (!r.boolean()) n = NodeRef{};
    return n;
  };
  const std::uint32_t n = r.u32();
  assert(n == nodes_.size());
  (void)n;
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    ChordNode& nd = *nodes_[h];
    const Id id = r.u64();
    assert(id == nd.id());  // ids are ctor-deterministic from the seed
    (void)id;
    nd.reset_routing_state();
    nd.set_predecessor(load_ref());
    const std::uint32_t n_succ = r.u32();
    std::vector<NodeRef> sl;
    sl.reserve(n_succ);
    for (std::uint32_t i = 0; i < n_succ; ++i) sl.push_back(load_ref());
    if (!sl.empty()) {
      nd.adopt_successor_list(sl.front(),
                              {sl.begin() + 1, sl.end()});
    }
    for (int i = 0; i < kIdBits; ++i) nd.set_finger(i, load_ref());
    next_finger_[h] = int(r.u32());
    next_probe_[h] = int(r.u32());
    last_heard_[h].clear();
    const std::uint32_t n_heard = r.u32();
    for (std::uint32_t i = 0; i < n_heard; ++i) {
      const Id peer = r.u64();
      last_heard_[h][peer] = r.f64();
    }
  }
  route_reroutes_ = r.u64();
  route_drops_ = r.u64();
  pings_sent_ = r.u64();
  pings_saved_ = r.u64();
  route_channel_.restore_stats(r);
}

void ChordNet::maintenance_round() {
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    if (!net_.alive(h)) continue;
    stabilize(h);
    fix_next_finger(h);
    check_predecessor(h);
  }
  // Let the round's messages drain plus timeouts fire.
  net_.simulator().run_until(net_.simulator().now() +
                             2.0 * params_.rpc_timeout_ms);
}

}  // namespace hypersub::chord
