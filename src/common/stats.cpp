#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace hypersub {

void Summary::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / double(samples_.size());
}

double Cdf::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Cdf::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Cdf::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * double(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Cdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return double(it - samples_.begin()) / double(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = points == 1
                         ? hi
                         : lo + (hi - lo) * double(i) / double(points - 1);
    out.emplace_back(x, fraction_at_or_below(x));
  }
  return out;
}

std::vector<double> Cdf::ranked_desc() const {
  ensure_sorted();
  std::vector<double> out(samples_.rbegin(), samples_.rend());
  return out;
}

std::string format_row(const std::vector<std::string>& cells,
                       std::size_t width) {
  std::ostringstream os;
  for (const auto& c : cells) {
    std::string cell = c;
    if (cell.size() < width) cell.resize(width, ' ');
    os << cell << ' ';
  }
  return os.str();
}

}  // namespace hypersub
