#pragma once
// Zipfian sampling over a discrete rank space.
//
// §5.1: "Events are generated based on Zipfian distribution ... the
// cumulative distribution function is H_{k,s} / H_{N,s}". We precompute the
// normalized harmonic CDF once and sample by binary search, then scale and
// shift ranks into attribute domains (workload module).

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace hypersub {

/// Samples ranks k in [1, N] with P(K <= k) = H_{k,s} / H_{N,s}.
class ZipfSampler {
 public:
  /// `n` ranks, skew factor `s` >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  std::size_t n() const noexcept { return cdf_.size(); }
  double skew() const noexcept { return s_; }

  /// Draw a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k (1-based).
  double pmf(std::size_t k) const;

  /// Cumulative probability of ranks <= k (1-based). cdf(n) == 1.
  double cdf(std::size_t k) const;

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[k-1] = H_{k,s} / H_{n,s}
};

}  // namespace hypersub
