#pragma once
// Deterministic random number generation.
//
// Every stochastic component takes an explicit Rng (or a seed) so that a
// simulation run is a pure function of its configuration. No global RNG
// state exists anywhere in the library (Core Guidelines I.2 / P.10).

#include <cstdint>
#include <random>

namespace hypersub {

/// Seedable pseudo-random source with the distribution helpers the
/// simulations need. Thin wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n) — handy for index selection. n must be > 0.
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_u64(0, n - 1));
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Exponentially distributed real with the given mean (inter-arrival times).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal deviate.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Lognormal deviate (used for last-mile latency jitter).
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Fresh 64-bit value (node identifiers).
  std::uint64_t next_u64() { return engine_(); }

  /// Derive an independent child generator; used to give each node/component
  /// its own stream so adding randomness in one place does not perturb others.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hypersub
