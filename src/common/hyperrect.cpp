#include "common/hyperrect.hpp"

#include <cassert>
#include <sstream>

namespace hypersub {

HyperRect HyperRect::uniform(std::size_t d, double lo, double hi) {
  return HyperRect(std::vector<Interval>(d, Interval{lo, hi}));
}

bool HyperRect::contains(const Point& p) const {
  assert(p.size() == dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].contains(p[i])) return false;
  }
  return true;
}

bool HyperRect::covers(const HyperRect& o) const {
  assert(o.dims_.size() == dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].covers(o.dims_[i])) return false;
  }
  return true;
}

bool HyperRect::overlaps(const HyperRect& o) const {
  assert(o.dims_.size() == dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (!dims_[i].overlaps(o.dims_[i])) return false;
  }
  return true;
}

HyperRect HyperRect::intersect(const HyperRect& o) const {
  assert(overlaps(o));
  std::vector<Interval> out;
  out.reserve(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    out.push_back(dims_[i].intersect(o.dims_[i]));
  }
  return HyperRect(std::move(out));
}

HyperRect HyperRect::hull(const HyperRect& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  assert(o.dims_.size() == dims_.size());
  std::vector<Interval> out;
  out.reserve(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    out.push_back(dims_[i].hull(o.dims_[i]));
  }
  return HyperRect(std::move(out));
}

double HyperRect::volume_fraction(const HyperRect& universe) const {
  assert(universe.dims_.size() == dims_.size());
  double f = 1.0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const double u = universe.dims_[i].length();
    f *= (u > 0.0) ? dims_[i].length() / u : 0.0;
  }
  return f;
}

std::string HyperRect::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << 'x';
    os << '[' << dims_[i].lo << ',' << dims_[i].hi << ']';
  }
  return os.str();
}

}  // namespace hypersub
