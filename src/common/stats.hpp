#pragma once
// Summary statistics and CDF accumulation for experiment reporting.
//
// Every figure in the paper's evaluation is either a CDF over events/nodes
// or a ranked-load curve; these helpers turn raw samples into the rows the
// bench binaries print.

#include <cstddef>
#include <string>
#include <vector>

namespace hypersub {

/// Streaming summary: count / mean / min / max / stddev (Welford).
class Summary {
 public:
  void add(double x);

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double variance() const noexcept { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects raw samples and reports empirical-CDF points and quantiles.
class Cdf {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;

  /// q in [0,1]; nearest-rank quantile of the sample set.
  double quantile(double q) const;

  /// Fraction of samples <= x.
  double fraction_at_or_below(double x) const;

  /// `points` evenly spaced (value, cumulative fraction) pairs spanning
  /// [min, max] — the series a CDF plot needs.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

  /// All samples sorted descending — the Fig. 4 "nodes ranked by load" view.
  std::vector<double> ranked_desc() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Formats a row of fixed-width columns for the bench tables.
std::string format_row(const std::vector<std::string>& cells,
                       std::size_t width = 14);

}  // namespace hypersub
