#pragma once
// Axis-aligned hyper-cuboid over a d-dimensional content space.
//
// The paper's model (§3.1): an event is a point, a subscription is a
// hyper-cuboid, a zone extent is a hyper-cuboid, and a summary filter is
// the minimal hyper-cuboid covering everything registered in a zone.

#include <cstddef>
#include <string>
#include <vector>

#include "common/interval.hpp"

namespace hypersub {

/// d-dimensional point (one coordinate per scheme attribute).
using Point = std::vector<double>;

/// Axis-aligned hyper-cuboid: one closed interval per dimension.
class HyperRect {
 public:
  HyperRect() = default;
  explicit HyperRect(std::vector<Interval> dims) : dims_(std::move(dims)) {}

  /// Rectangle spanning [lo, hi] on every one of `d` dimensions.
  static HyperRect uniform(std::size_t d, double lo, double hi);

  std::size_t dimensions() const noexcept { return dims_.size(); }
  bool empty() const noexcept { return dims_.empty(); }

  const Interval& dim(std::size_t i) const { return dims_[i]; }
  Interval& dim(std::size_t i) { return dims_[i]; }
  const std::vector<Interval>& dims() const noexcept { return dims_; }

  /// Point containment: every coordinate within its interval.
  bool contains(const Point& p) const;

  /// Full containment of another rectangle (dimension counts must match).
  bool covers(const HyperRect& o) const;

  /// True if the rectangles share at least one point.
  bool overlaps(const HyperRect& o) const;

  /// Intersection; only valid when overlaps(o).
  HyperRect intersect(const HyperRect& o) const;

  /// Smallest rectangle covering this and `o`. If this is empty (zero
  /// dimensions — the "no subscriptions yet" summary filter), returns `o`.
  HyperRect hull(const HyperRect& o) const;

  /// Fraction of `universe`'s volume this rectangle occupies, in [0, 1].
  /// Degenerate (zero-length) dimensions contribute factor 0.
  double volume_fraction(const HyperRect& universe) const;

  /// Human-readable form, e.g. "[0,10]x[3,4]".
  std::string to_string() const;

  friend bool operator==(const HyperRect&, const HyperRect&) = default;

 private:
  std::vector<Interval> dims_;
};

}  // namespace hypersub
