#pragma once
// Consistent hashing helpers.
//
// The paper derives per-scheme rotation offsets by hashing the scheme name
// with a consistent hash function (it suggests SHA-1). We use a 64-bit
// FNV-1a core strengthened by two rounds of splitmix64 finalization: the
// properties the rotation needs are determinism and dispersion, not
// cryptographic strength.

#include <cstdint>
#include <string_view>

namespace hypersub {

/// splitmix64 finalizer: bijective 64-bit mixer with good avalanche.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// FNV-1a over the bytes of `s`, then mixed. Stable across platforms/runs.
std::uint64_t hash_string(std::string_view s) noexcept;

/// Combine two 64-bit hashes (order-dependent).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace hypersub
