#include "common/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hypersub {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  assert(n > 0);
  cdf_.resize(n);
  double h = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    h += 1.0 / std::pow(double(k), s);
    cdf_[k - 1] = h;
  }
  for (auto& c : cdf_) c /= h;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return std::size_t(it - cdf_.begin()) + 1;
}

double ZipfSampler::pmf(std::size_t k) const {
  assert(k >= 1 && k <= cdf_.size());
  return k == 1 ? cdf_[0] : cdf_[k - 1] - cdf_[k - 2];
}

double ZipfSampler::cdf(std::size_t k) const {
  assert(k >= 1 && k <= cdf_.size());
  return cdf_[k - 1];
}

}  // namespace hypersub
