#include "common/hashing.hpp"

namespace hypersub {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_string(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return mix64(h);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace hypersub
