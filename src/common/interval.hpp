#pragma once
// Closed real interval [lo, hi] on one attribute dimension.

#include <algorithm>
#include <cassert>

namespace hypersub {

/// Closed interval over one attribute's numeric domain. Subscriptions are
/// conjunctions of such intervals; an equality predicate is a degenerate
/// interval with lo == hi.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  constexpr Interval() = default;
  constexpr Interval(double l, double h) : lo(l), hi(h) { assert(l <= h); }

  /// Point containment (closed at both ends).
  constexpr bool contains(double x) const noexcept { return lo <= x && x <= hi; }

  /// Full containment of another interval.
  constexpr bool covers(const Interval& o) const noexcept {
    return lo <= o.lo && o.hi <= hi;
  }

  /// True if the two intervals share at least one point.
  constexpr bool overlaps(const Interval& o) const noexcept {
    return lo <= o.hi && o.lo <= hi;
  }

  constexpr double length() const noexcept { return hi - lo; }
  constexpr double center() const noexcept { return (lo + hi) / 2.0; }

  /// Intersection; only valid when overlaps(o).
  constexpr Interval intersect(const Interval& o) const noexcept {
    return Interval{std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  /// Smallest interval covering both.
  constexpr Interval hull(const Interval& o) const noexcept {
    return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

}  // namespace hypersub
