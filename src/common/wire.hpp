#pragma once
// Deterministic byte-stream encoding for state transfer and checkpoints.
//
// Every multi-byte integer is little-endian regardless of host order;
// doubles travel as their IEEE-754 bit pattern (bit-exact round trip, no
// text formatting). Writers append to a growable buffer; readers consume
// a span and hard-fail (assert + clamp) on truncation, which in this
// codebase only ever means a version-skewed or corrupted snapshot.
//
// The encoding has no self-description: reader and writer must agree on
// the schema. A single format-version word at the head of each top-level
// blob (see kWireVersion) guards against accidental cross-version loads.

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace hypersub::common {

/// Bump when any save()/restore() schema below changes shape.
/// v2: node images append a compressed-chain section after replica zones
/// (path-compressed zone tree); v1 images (no chain section) still load.
inline constexpr std::uint32_t kWireVersion = 2;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { u64(std::uint64_t(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    // Host is little-endian on every platform this project targets; the
    // static_assert below documents (and enforces) the assumption instead
    // of paying a per-word byte swap.
    static_assert(std::endian::native == std::endian::little,
                  "wire format assumes a little-endian host");
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const std::vector<std::uint8_t>& data)
      : data_(data.data(), data.size()) {}

  std::uint8_t u8() {
    assert(pos_ < data_.size());
    return data_[pos_++];
  }
  std::uint16_t u16() { return raw<std::uint16_t>(); }
  std::uint32_t u32() { return raw<std::uint32_t>(); }
  std::uint64_t u64() { return raw<std::uint64_t>(); }
  std::int64_t i64() { return std::int64_t(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::size_t n = std::size_t(u64());
    assert(pos_ + n <= data_.size());
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::size_t n = std::size_t(u64());
    assert(pos_ + n <= data_.size());
    std::vector<std::uint8_t> b(data_.begin() + std::ptrdiff_t(pos_),
                                data_.begin() + std::ptrdiff_t(pos_ + n));
    pos_ += n;
    return b;
  }

  bool exhausted() const noexcept { return pos_ >= data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  template <typename T>
  T raw() {
    assert(pos_ + sizeof(T) <= data_.size());
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace hypersub::common
