#pragma once
// Identifier-space arithmetic for a 2^64 circular key space.
//
// Chord, the LPH zone keys, and the load balancer all reason about arcs of
// the same 64-bit ring. All arithmetic is modulo 2^64, which unsigned
// integer wrap-around gives us for free.

#include <cstdint>

namespace hypersub {

/// A point on the 2^64 identifier ring (node id or key).
using Id = std::uint64_t;

/// Number of bits in ring identifiers (the paper simulates 64-bit ids).
inline constexpr int kIdBits = 64;

namespace ring {

/// Clockwise distance from `from` to `to` (how far a lookup must travel).
/// distance(a, a) == 0.
constexpr Id distance(Id from, Id to) noexcept { return to - from; }

/// True if `x` lies in the open arc (a, b), walking clockwise from `a`.
/// Empty when a == b (the full ring minus one point convention is NOT used;
/// Chord uses in_open(a, a) == false together with explicit self checks).
constexpr bool in_open(Id x, Id a, Id b) noexcept {
  return distance(a, x) != 0 && distance(a, x) < distance(a, b) && x != b;
}

/// True if `x` lies in the half-open arc (a, b].
/// This is Chord's "successor responsibility" test: node n with predecessor p
/// owns exactly the keys k with in_open_closed(k, p, n).
constexpr bool in_open_closed(Id x, Id a, Id b) noexcept {
  if (a == b) return true;  // degenerate arc covers the whole ring
  return distance(a, x) != 0 && distance(a, x) <= distance(a, b);
}

/// True if `x` lies in the half-open arc [a, b).
constexpr bool in_closed_open(Id x, Id a, Id b) noexcept {
  if (a == b) return true;
  return distance(a, x) < distance(a, b);
}

/// The i-th Chord finger start for node n: n + 2^i (mod 2^64).
constexpr Id finger_start(Id n, int i) noexcept {
  return n + (Id{1} << i);
}

}  // namespace ring
}  // namespace hypersub
