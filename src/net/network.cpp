#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace hypersub::net {

Network::Network(sim::Simulator& sim, const Topology& topo)
    : sim_(sim),
      topo_(topo),
      traffic_(topo.size()),
      alive_(topo.size(), true) {
  sim_.add_merge_hook([this] { fold_deltas(); });
}

void Network::account_send(HostIndex from, HostIndex to, std::uint64_t bytes) {
  if (sim_.in_worker_context()) {
    SlotDelta& d = deltas_[sim_.worker_slot()];
    HostTraffic out;
    out.bytes_out = bytes;
    out.msgs_out = 1;
    HostTraffic in;
    in.bytes_in = bytes;
    in.msgs_in = 1;
    d.items.emplace_back(from, out);
    d.items.emplace_back(to, in);
    ++d.total_messages;
    d.total_bytes += bytes;
    return;
  }
  traffic_[from].bytes_out += bytes;
  traffic_[from].msgs_out += 1;
  traffic_[to].bytes_in += bytes;
  traffic_[to].msgs_in += 1;
  ++total_messages_;
  total_bytes_ += bytes;
}

void Network::account_drop() {
  if (sim_.in_worker_context()) {
    ++deltas_[sim_.worker_slot()].dropped;
  } else {
    ++dropped_;
  }
}

void Network::fold_deltas() {
  for (SlotDelta& d : deltas_) {
    for (const auto& [h, t] : d.items) {
      traffic_[h].bytes_in += t.bytes_in;
      traffic_[h].bytes_out += t.bytes_out;
      traffic_[h].msgs_in += t.msgs_in;
      traffic_[h].msgs_out += t.msgs_out;
    }
    d.items.clear();
    total_messages_ += d.total_messages;
    total_bytes_ += d.total_bytes;
    dropped_ += d.dropped;
    d.total_messages = 0;
    d.total_bytes = 0;
    d.dropped = 0;
  }
}

void Network::send(HostIndex from, HostIndex to, std::uint64_t bytes,
                   std::function<void()> handler) {
  assert(from < alive_.size() && to < alive_.size());
  if (from == to) {
    sim_.schedule(0.0, std::move(handler));
    return;
  }
  if (!alive_[to] || !alive_[from]) {
    account_drop();
    return;
  }
  account_send(from, to, bytes);
  // The destination's shard executes the delivery (the handler touches the
  // receiver's state). Conservative mode additionally clamps the delay to
  // the lookahead so cross-shard messages never land inside the sending
  // window — with a lookahead at or below the minimum link latency this
  // changes nothing at all.
  double delay = topo_.latency(from, to);
  if (delay < sim_.effective_lookahead()) delay = sim_.effective_lookahead();
  // Re-check liveness at delivery time: the destination may die in flight.
  sim_.schedule_on(to, delay, [this, to, h = std::move(handler)]() mutable {
    if (alive_[to]) {
      h();
    } else {
      account_drop();
    }
  });
}

void Network::kill(HostIndex h) {
  assert(h < alive_.size());
  alive_[h] = false;
  refresh_lookahead_floor();
}

void Network::revive(HostIndex h) {
  assert(h < alive_.size());
  alive_[h] = true;
  refresh_lookahead_floor();
}

void Network::enable_adaptive_lookahead() {
  adaptive_lookahead_ = true;
  refresh_lookahead_floor();
}

void Network::refresh_lookahead_floor() {
  if (!adaptive_lookahead_) return;
  sim_.set_lookahead_floor(topo_.min_latency_bound(alive_));
}

void Network::reset_traffic() {
  for (auto& t : traffic_) t = HostTraffic{};
  total_messages_ = 0;
  total_bytes_ = 0;
  dropped_ = 0;
}

void Network::save_state(common::ByteWriter& w) const {
  w.u32(std::uint32_t(alive_.size()));
  for (std::size_t h = 0; h < alive_.size(); ++h) {
    w.boolean(alive_[h]);
    const HostTraffic& t = traffic_[h];
    w.u64(t.bytes_in);
    w.u64(t.bytes_out);
    w.u64(t.msgs_in);
    w.u64(t.msgs_out);
  }
  w.u64(total_messages_);
  w.u64(total_bytes_);
  w.u64(dropped_);
}

void Network::restore_state(common::ByteReader& r) {
  const std::uint32_t n = r.u32();
  assert(n == alive_.size());
  (void)n;
  for (std::size_t h = 0; h < alive_.size(); ++h) {
    alive_[h] = r.boolean();
    HostTraffic& t = traffic_[h];
    t.bytes_in = r.u64();
    t.bytes_out = r.u64();
    t.msgs_in = r.u64();
    t.msgs_out = r.u64();
  }
  total_messages_ = r.u64();
  total_bytes_ = r.u64();
  dropped_ = r.u64();
  refresh_lookahead_floor();
}

}  // namespace hypersub::net
