#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace hypersub::net {

Network::Network(sim::Simulator& sim, const Topology& topo)
    : sim_(sim),
      topo_(topo),
      traffic_(topo.size()),
      alive_(topo.size(), true) {}

void Network::send(HostIndex from, HostIndex to, std::uint64_t bytes,
                   std::function<void()> handler) {
  assert(from < alive_.size() && to < alive_.size());
  if (from == to) {
    sim_.schedule(0.0, std::move(handler));
    return;
  }
  if (!alive_[to] || !alive_[from]) {
    ++dropped_;
    return;
  }
  traffic_[from].bytes_out += bytes;
  traffic_[from].msgs_out += 1;
  traffic_[to].bytes_in += bytes;
  traffic_[to].msgs_in += 1;
  ++total_messages_;
  total_bytes_ += bytes;
  const double delay = topo_.latency(from, to);
  // Re-check liveness at delivery time: the destination may die in flight.
  sim_.schedule(delay, [this, to, h = std::move(handler)]() mutable {
    if (alive_[to]) h();
    else ++dropped_;
  });
}

void Network::kill(HostIndex h) {
  assert(h < alive_.size());
  alive_[h] = false;
}

void Network::revive(HostIndex h) {
  assert(h < alive_.size());
  alive_[h] = true;
}

void Network::reset_traffic() {
  for (auto& t : traffic_) t = HostTraffic{};
  total_messages_ = 0;
  total_bytes_ = 0;
  dropped_ = 0;
}

}  // namespace hypersub::net
