#pragma once
// Reliable messaging over the raw Network fabric: per-message ack, timeout,
// bounded retries with exponential backoff, and a reroute hook.
//
// Network::send is fire-and-forget — a message to a dead host silently
// vanishes, and whole delivery subtrees vanish with it. ReliableChannel
// layers the Scribe/Pastry-style substrate duty on top: every logical
// message is acked by the receiver; an unacked message is retransmitted up
// to `max_retries` times with exponentially growing deadlines; when every
// attempt expires the (still-live) sender's `on_fail` callback runs, so the
// caller can re-resolve the next hop (successor-list failover) instead of
// losing the payload.
//
// Delivery is exactly-once per logical message: a retransmission that races
// its predecessor is suppressed by a receiver-side seen-set. Ack traffic is
// accounted through Network like every other message, so the bandwidth
// metrics see the true cost of reliability.
//
// Parallel-engine integration: message ids are minted from per-sender
// counters (globally unique without coordination, identical across thread
// counts), the seen-sets are per-receiver and insert-only (each touched
// only on its host's shard), the sender-side state (`resolved`, timers,
// retry/expire accounting) stays on the sender's shard via the simulator's
// shard-inheriting timers, and Stats are kept per host and summed on read.

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/wire.hpp"
#include "net/network.hpp"
#include "trace/tracer.hpp"

namespace hypersub::net {

class ReliableChannel {
 public:
  struct Config {
    /// Ack deadline of the first attempt. Must exceed the worst-case RTT
    /// of the topology or live-but-slow peers get falsely suspected.
    double ack_timeout_ms = 1500.0;
    /// Deadline multiplier per retransmission (exponential backoff).
    double backoff = 2.0;
    /// Retransmissions after the first attempt; 2 means 3 attempts total.
    int max_retries = 2;
    /// Wire size of an ack (header-only message; overlay::kHeaderBytes).
    std::uint64_t ack_bytes = 20;
  };

  struct Stats {
    std::uint64_t sent = 0;     ///< logical messages submitted
    std::uint64_t acked = 0;    ///< confirmed delivered
    std::uint64_t retries = 0;  ///< retransmissions
    std::uint64_t expired = 0;  ///< all attempts exhausted (on_fail fired)
    std::uint64_t duplicates_suppressed = 0;  ///< redundant copies dropped
  };

  // Two overloads instead of `Config cfg = {}`: a default argument here
  // would be parsed before Config's member initializers are complete.
  explicit ReliableChannel(Network& net)
      : net_(net),
        per_host_(net.size()),
        send_ctr_(net.size(), 0),
        delivered_(net.size()) {}
  ReliableChannel(Network& net, Config cfg)
      : net_(net),
        cfg_(cfg),
        per_host_(net.size()),
        send_ctr_(net.size(), 0),
        delivered_(net.size()) {}

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Send `bytes` from `from` to `to`; `deliver` runs at the destination
  /// exactly once (retransmissions are deduplicated). If the destination
  /// stays unresponsive through all retries, `on_fail` runs at the sender —
  /// the reroute hook — unless the sender itself died meanwhile. `deliver`
  /// and `on_fail` are mutually exclusive. Self-sends bypass the ack
  /// machinery (local delivery cannot fail). `tctx`, when active and a
  /// tracer is attached, causes retransmissions and final expiry to be
  /// recorded as retry/expire spans under the caller's span.
  void send(HostIndex from, HostIndex to, std::uint64_t bytes,
            std::function<void()> deliver,
            std::function<void()> on_fail = {},
            trace::TraceCtx tctx = {});

  /// Attach (or detach, with nullptr) the tracer retry/expire spans are
  /// recorded into. Not owned; must outlive the channel or be detached.
  void set_tracer(trace::Tracer* t) noexcept { tracer_ = t; }

  /// Aggregate counters, summed over all hosts at call time.
  Stats stats() const noexcept;
  /// Per-host counters: sent/acked/retries/expired belong to the sender,
  /// duplicates_suppressed to the receiver.
  const Stats& host_stats(HostIndex h) const { return per_host_[h]; }
  void reset_stats();
  const Config& config() const noexcept { return cfg_; }

  /// Checkpoint the per-host counters. The in-flight machinery (send
  /// counters, receiver dedup sets) is deliberately NOT saved: checkpoints
  /// are taken at quiescence, when nothing is in flight, and a restarted
  /// channel minting ids from zero behaves identically.
  void save_stats(common::ByteWriter& w) const {
    w.u32(std::uint32_t(per_host_.size()));
    for (const Stats& s : per_host_) {
      w.u64(s.sent);
      w.u64(s.acked);
      w.u64(s.retries);
      w.u64(s.expired);
      w.u64(s.duplicates_suppressed);
    }
  }
  void restore_stats(common::ByteReader& r) {
    const std::uint32_t n = r.u32();
    assert(n == per_host_.size());
    (void)n;
    for (Stats& s : per_host_) {
      s.sent = r.u64();
      s.acked = r.u64();
      s.retries = r.u64();
      s.expired = r.u64();
      s.duplicates_suppressed = r.u64();
    }
  }

 private:
  struct Message {
    HostIndex from;
    HostIndex to;
    std::uint64_t bytes;
    std::uint64_t id;
    std::function<void()> deliver;
    std::function<void()> on_fail;
    trace::TraceCtx tctx;
    /// Acked, expired, or orphaned (sender died). Read and written only on
    /// the sender's shard: the ack handler and every timeout timer run
    /// there (Network routes acks to the sender; timers inherit the shard
    /// of the event that armed them).
    bool resolved = false;
  };

  void attempt(const std::shared_ptr<Message>& m, int attempt_no);

  Network& net_;
  Config cfg_;
  /// Indexed by host; each entry is written only from that host's shard.
  std::vector<Stats> per_host_;
  trace::Tracer* tracer_ = nullptr;
  /// Per-sender id counters; ids are (sender+1) << 40 | counter, so they
  /// are globally unique and identical across thread counts (each counter
  /// advances in the sender's deterministic event order).
  std::vector<std::uint64_t> send_ctr_;
  /// Per-receiver ids already delivered: dedupes retransmissions. Insert-
  /// only — ids are globally unique, so entries never need erasing, and the
  /// set is touched only on the receiver's shard.
  std::vector<std::unordered_set<std::uint64_t>> delivered_;
};

}  // namespace hypersub::net
