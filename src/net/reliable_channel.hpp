#pragma once
// Reliable messaging over the raw Network fabric: per-message ack, timeout,
// bounded retries with exponential backoff, and a reroute hook.
//
// Network::send is fire-and-forget — a message to a dead host silently
// vanishes, and whole delivery subtrees vanish with it. ReliableChannel
// layers the Scribe/Pastry-style substrate duty on top: every logical
// message is acked by the receiver; an unacked message is retransmitted up
// to `max_retries` times with exponentially growing deadlines; when every
// attempt expires the (still-live) sender's `on_fail` callback runs, so the
// caller can re-resolve the next hop (successor-list failover) instead of
// losing the payload.
//
// Delivery is exactly-once per logical message: a retransmission that races
// its predecessor is suppressed by a receiver-side seen-set, and any copy
// arriving after the message resolved (acked or expired) is ignored. Ack
// traffic is accounted through Network like every other message, so the
// bandwidth metrics see the true cost of reliability.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>

#include "net/network.hpp"
#include "trace/tracer.hpp"

namespace hypersub::net {

class ReliableChannel {
 public:
  struct Config {
    /// Ack deadline of the first attempt. Must exceed the worst-case RTT
    /// of the topology or live-but-slow peers get falsely suspected.
    double ack_timeout_ms = 1500.0;
    /// Deadline multiplier per retransmission (exponential backoff).
    double backoff = 2.0;
    /// Retransmissions after the first attempt; 2 means 3 attempts total.
    int max_retries = 2;
    /// Wire size of an ack (header-only message; overlay::kHeaderBytes).
    std::uint64_t ack_bytes = 20;
  };

  struct Stats {
    std::uint64_t sent = 0;     ///< logical messages submitted
    std::uint64_t acked = 0;    ///< confirmed delivered
    std::uint64_t retries = 0;  ///< retransmissions
    std::uint64_t expired = 0;  ///< all attempts exhausted (on_fail fired)
    std::uint64_t duplicates_suppressed = 0;  ///< redundant copies dropped
  };

  // Two overloads instead of `Config cfg = {}`: a default argument here
  // would be parsed before Config's member initializers are complete.
  explicit ReliableChannel(Network& net) : net_(net) {}
  ReliableChannel(Network& net, Config cfg) : net_(net), cfg_(cfg) {}

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Send `bytes` from `from` to `to`; `deliver` runs at the destination
  /// exactly once (retransmissions are deduplicated). If the destination
  /// stays unresponsive through all retries, `on_fail` runs at the sender —
  /// the reroute hook — unless the sender itself died meanwhile. `deliver`
  /// and `on_fail` are mutually exclusive. Self-sends bypass the ack
  /// machinery (local delivery cannot fail). `tctx`, when active and a
  /// tracer is attached, causes retransmissions and final expiry to be
  /// recorded as retry/expire spans under the caller's span.
  void send(HostIndex from, HostIndex to, std::uint64_t bytes,
            std::function<void()> deliver,
            std::function<void()> on_fail = {},
            trace::TraceCtx tctx = {});

  /// Attach (or detach, with nullptr) the tracer retry/expire spans are
  /// recorded into. Not owned; must outlive the channel or be detached.
  void set_tracer(trace::Tracer* t) noexcept { tracer_ = t; }

  const Stats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = Stats{}; }
  const Config& config() const noexcept { return cfg_; }

 private:
  struct Message {
    HostIndex from;
    HostIndex to;
    std::uint64_t bytes;
    std::uint64_t id;
    std::function<void()> deliver;
    std::function<void()> on_fail;
    trace::TraceCtx tctx;
    bool resolved = false;  ///< acked, expired, or orphaned (sender died)
  };

  void attempt(const std::shared_ptr<Message>& m, int attempt_no);

  Network& net_;
  Config cfg_;
  Stats stats_;
  trace::Tracer* tracer_ = nullptr;
  std::uint64_t next_id_ = 0;
  /// Ids delivered but not yet resolved: dedupes retransmissions that race
  /// their ack. Entries are erased at resolution (the `resolved` flag keeps
  /// suppressing later copies), so the set stays small.
  std::unordered_set<std::uint64_t> delivered_;
};

}  // namespace hypersub::net
