#include "net/topology.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "common/hashing.hpp"

namespace hypersub::net {

double Topology::mean_rtt(std::size_t sample_pairs, std::uint64_t seed) const {
  const std::size_t n = size();
  if (n < 2) return 0.0;
  const std::size_t all_pairs = n * (n - 1) / 2;
  double sum = 0.0;
  std::size_t count = 0;
  if (all_pairs <= sample_pairs) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        sum += rtt(i, j);
        ++count;
      }
    }
  } else {
    Rng rng(seed);
    while (count < sample_pairs) {
      const auto a = rng.index(n);
      const auto b = rng.index(n);
      if (a == b) continue;
      sum += rtt(a, b);
      ++count;
    }
  }
  return sum / double(count);
}

double MatrixTopology::min_latency_bound(const std::vector<bool>& alive) const {
  const auto live = [&](std::size_t i) { return alive.empty() || alive[i]; };
  double best = 0.0;
  bool found = false;
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (!live(i)) continue;
    for (std::size_t j = i + 1; j < m_.size(); ++j) {
      if (!live(j)) continue;
      if (!found || m_[i][j] < best) {
        best = m_[i][j];
        found = true;
      }
    }
  }
  return found ? best : 0.0;
}

MatrixTopology::MatrixTopology(std::vector<std::vector<double>> oneway)
    : m_(std::move(oneway)) {
  for (std::size_t i = 0; i < m_.size(); ++i) {
    assert(m_[i].size() == m_.size());
    assert(m_[i][i] == 0.0);
  }
}

KingLikeTopology::KingLikeTopology(const Params& p)
    : jitter_seed_(mix64(p.seed ^ 0x4b494e47ULL)),  // "KING"
      jitter_sigma_(p.jitter_sigma) {
  assert(p.hosts >= 2);
  Rng rng(p.seed);
  coords_.resize(p.hosts);
  access_ms_.resize(p.hosts);
  // Hosts cluster around a handful of "continents": pick cluster centers,
  // then scatter hosts around them. This gives King's bimodal-ish RTT shape
  // (intra- vs inter-cluster) instead of a featureless ball.
  constexpr std::size_t kClusters = 8;
  std::array<std::array<double, kDims>, kClusters> centers{};
  for (auto& c : centers) {
    for (auto& x : c) x = rng.uniform(0.0, 100.0);
  }
  for (std::size_t i = 0; i < p.hosts; ++i) {
    const auto& c = centers[rng.index(kClusters)];
    for (std::size_t d = 0; d < kDims; ++d) {
      coords_[i][d] = c[d] + rng.normal(0.0, 12.0);
    }
    // Last-mile delay: heavy-tailed, a la DSL/cable edges.
    access_ms_[i] = rng.lognormal(0.0, 0.6);
  }
  // Calibrate to the target mean RTT: measure raw mean, then scale so that
  // non-access delay accounts for (1 - access_delay_frac) of the target.
  scale_ = 1.0;
  const double raw_mean = mean_rtt(20000, p.seed + 1);
  if (raw_mean > 0.0) {
    scale_ = p.target_mean_rtt_ms / raw_mean;
    // Split the scaling so access delays carry access_delay_frac of the RTT.
    double access_mean = 0.0;
    for (double a : access_ms_) access_mean += a;
    access_mean /= double(access_ms_.size());
    const double target_access_oneway =
        p.target_mean_rtt_ms / 2.0 * p.access_delay_frac;
    const double access_scale =
        access_mean > 0.0 ? target_access_oneway / (2.0 * access_mean) : 1.0;
    for (double& a : access_ms_) a *= access_scale;
    // Rescale the core (distance) term so the total lands on target:
    // measured mean = core_part + access_part, where access_part was just
    // calibrated to target * access_delay_frac.
    const double recal = mean_rtt(20000, p.seed + 2);
    const double access_part = p.target_mean_rtt_ms * p.access_delay_frac;
    const double core_part = recal - access_part;
    if (core_part > 0.0) {
      scale_ *= p.target_mean_rtt_ms * (1.0 - p.access_delay_frac) / core_part;
    }
  }
}

double KingLikeTopology::min_latency_bound(const std::vector<bool>& alive) const {
  // Track the two smallest access delays among live hosts; core and jitter
  // terms are non-negative, so their sum bounds every live link.
  const double inf = std::numeric_limits<double>::infinity();
  double lo1 = inf, lo2 = inf;
  for (std::size_t i = 0; i < access_ms_.size(); ++i) {
    if (!alive.empty() && !alive[i]) continue;
    const double a = access_ms_[i];
    if (a < lo1) {
      lo2 = lo1;
      lo1 = a;
    } else if (a < lo2) {
      lo2 = a;
    }
  }
  return lo2 == inf ? 0.0 : lo1 + lo2;
}

double KingLikeTopology::latency(HostIndex a, HostIndex b) const {
  if (a == b) return 0.0;
  // Symmetric pairwise jitter: derive the factor from the unordered pair.
  const HostIndex lo = a < b ? a : b;
  const HostIndex hi = a < b ? b : a;
  double dist2 = 0.0;
  for (std::size_t d = 0; d < kDims; ++d) {
    const double dx = coords_[a][d] - coords_[b][d];
    dist2 += dx * dx;
  }
  const std::uint64_t h =
      hash_combine(jitter_seed_, hash_combine(std::uint64_t(lo), std::uint64_t(hi)));
  // Map hash to a deterministic lognormal-ish multiplicative jitter via the
  // inverse of a standard normal approximated by a sum of uniforms.
  const double u1 = double((h >> 11) & 0x1FFFFF) / double(0x1FFFFF);
  const double u2 = double((h >> 32) & 0x1FFFFF) / double(0x1FFFFF);
  const double u3 = double(h & 0x7FF) / double(0x7FF);
  const double z = (u1 + u2 + u3) * 2.0 - 3.0;  // approx N(0,1), clipped tails
  const double jitter = std::exp(jitter_sigma_ * z);
  const double core = std::sqrt(dist2) * scale_ * jitter;
  return core + access_ms_[a] + access_ms_[b];
}

}  // namespace hypersub::net
