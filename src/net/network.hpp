#pragma once
// Packet-level message delivery with per-node byte accounting.
//
// Every overlay RPC in the system flows through Network::send so that the
// evaluation's bandwidth metrics (total bytes per event, in/out bytes per
// node) fall out of one accounting point. Latency of a message equals the
// topology's one-way delay between the two hosts; host-local processing is
// treated as free, matching the paper's packet-level model.
//
// Parallel-engine integration: delivery handlers are scheduled on the
// destination host's shard (the handler touches the receiver's state), the
// one-way delay is clamped to the simulator's conservative lookahead (so a
// message sent inside a window can never land inside the same window on
// another shard), and traffic counters written from worker contexts
// accumulate into per-worker deltas folded at each window barrier — the
// sums are commutative, so totals are byte-identical to a sequential run.

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/wire.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace hypersub::net {

/// Per-host traffic counters, reset-able between measurement phases.
struct HostTraffic {
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t msgs_in = 0;
  std::uint64_t msgs_out = 0;
};

/// Message fabric over a Topology + Simulator. Hosts are dense indices; the
/// overlay layer (Chord) maps ring ids onto hosts.
class Network {
 public:
  /// Neither `sim` nor `topo` is owned; both must outlive the Network.
  Network(sim::Simulator& sim, const Topology& topo);

  std::size_t size() const noexcept { return alive_.size(); }
  sim::Simulator& simulator() noexcept { return sim_; }
  const Topology& topology() const noexcept { return topo_; }

  /// Deliver `handler` at the destination after the one-way latency
  /// (clamped to the simulator's lookahead), on the destination's shard.
  /// Accounts `bytes` against both endpoints. Messages to self are delivered
  /// after `local_delay_ms` (default 0) without traffic accounting.
  /// Messages to dead hosts are dropped (counted in dropped()).
  void send(HostIndex from, HostIndex to, std::uint64_t bytes,
            std::function<void()> handler);

  /// Mark a host dead; future messages to it are dropped (failure injection).
  void kill(HostIndex h);
  /// Revive a host.
  void revive(HostIndex h);
  bool alive(HostIndex h) const { return alive_[h]; }

  /// Derive the simulator's lookahead floor from the minimum outstanding
  /// link latency (Topology::min_latency_bound over live hosts) and keep it
  /// current across kill()/revive(). Because no live link delivers below
  /// the floor, the delay clamp never fires and behavior is unchanged —
  /// the parallel engine just gets the widest window that is still
  /// conservative. Call before run(); membership changes re-derive the
  /// floor from exclusive context, preserving byte-identical determinism.
  void enable_adaptive_lookahead();
  bool adaptive_lookahead() const noexcept { return adaptive_lookahead_; }

  const HostTraffic& traffic(HostIndex h) const { return traffic_[h]; }
  /// Zero all traffic counters (e.g., after warm-up/stabilization).
  void reset_traffic();

  std::uint64_t total_messages() const noexcept { return total_messages_; }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Checkpoint liveness + traffic counters. Call only at quiescence (no
  /// in-flight messages; worker deltas folded).
  void save_state(common::ByteWriter& w) const;
  /// Restore; re-derives the adaptive lookahead floor if enabled.
  void restore_state(common::ByteReader& r);

 private:
  /// Counter increments made by one worker during one window; folded into
  /// the real counters at the window barrier (merge hook).
  struct SlotDelta {
    std::vector<std::pair<HostIndex, HostTraffic>> items;
    std::uint64_t total_messages = 0;
    std::uint64_t total_bytes = 0;
    std::uint64_t dropped = 0;
  };

  void account_send(HostIndex from, HostIndex to, std::uint64_t bytes);
  void account_drop();
  void fold_deltas();
  void refresh_lookahead_floor();

  sim::Simulator& sim_;
  const Topology& topo_;
  std::vector<HostTraffic> traffic_;
  std::vector<bool> alive_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t dropped_ = 0;
  bool adaptive_lookahead_ = false;
  std::array<SlotDelta, sim::Simulator::kMaxWorkers + 1> deltas_;
};

}  // namespace hypersub::net
