#pragma once
// Network latency models.
//
// The paper draws pairwise latencies from the King dataset (1740 DNS
// servers, average RTT 180 ms). We cannot ship King, so KingLikeTopology
// synthesizes an Internet-like latency structure: hosts are embedded in a
// low-dimensional Euclidean space (the same family of models Vivaldi showed
// fits King well), each host adds a last-mile access delay, and a
// deterministic per-pair jitter term breaks the perfect metric. The 1740
// host instance is calibrated to mean RTT ~ 180 ms. MatrixTopology accepts
// an explicit matrix for unit tests or a real King file if one is present.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace hypersub::net {

/// Index of a simulated host (dense, 0-based; distinct from Chord Id).
using HostIndex = std::size_t;

/// Pairwise one-way latency model. Implementations must be symmetric
/// (latency(a,b) == latency(b,a)) and zero on the diagonal.
class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of hosts.
  virtual std::size_t size() const = 0;

  /// One-way propagation latency in ms between two hosts.
  virtual double latency(HostIndex a, HostIndex b) const = 0;

  /// Round-trip time in ms.
  double rtt(HostIndex a, HostIndex b) const { return 2.0 * latency(a, b); }

  /// Mean RTT over sampled host pairs (exact for small n).
  double mean_rtt(std::size_t sample_pairs = 200000,
                  std::uint64_t seed = 1) const;

  /// Conservative lower bound on the one-way latency between any two
  /// *distinct* hosts marked true in `alive` (empty = all alive). Used by
  /// the adaptive-lookahead mode: the bound widens the parallel engine's
  /// windows without changing behavior, since no link delivers faster.
  /// The default declines to bound (0.0 disables adaptivity).
  virtual double min_latency_bound(const std::vector<bool>& alive) const {
    (void)alive;
    return 0.0;
  }
};

/// Explicit one-way latency matrix (tests, or real measurement files).
class MatrixTopology final : public Topology {
 public:
  /// `oneway[i][j]` one-way ms latencies. Must be square and symmetric.
  explicit MatrixTopology(std::vector<std::vector<double>> oneway);

  std::size_t size() const override { return m_.size(); }
  double latency(HostIndex a, HostIndex b) const override { return m_[a][b]; }

  /// Exact minimum over live off-diagonal entries (the matrix is small).
  double min_latency_bound(const std::vector<bool>& alive) const override;

 private:
  std::vector<std::vector<double>> m_;
};

/// Synthetic King-like topology: 5-D Euclidean embedding + per-host access
/// delay + deterministic pairwise lognormal jitter. Latencies are computed
/// on demand (O(1) memory per host), so 6000-host networks stay cheap.
class KingLikeTopology final : public Topology {
 public:
  struct Params {
    std::size_t hosts = 1740;
    double target_mean_rtt_ms = 180.0;  // King's published average
    double access_delay_frac = 0.15;    // share of latency in last-mile links
    double jitter_sigma = 0.25;         // lognormal sigma of pairwise jitter
    std::uint64_t seed = 42;
  };

  explicit KingLikeTopology(const Params& p);

  std::size_t size() const override { return coords_.size(); }
  double latency(HostIndex a, HostIndex b) const override;

  /// latency() is core(a,b) + access[a] + access[b] with core >= 0, so the
  /// sum of the two smallest live access delays bounds every live link
  /// from below — an O(n) bound, no pair enumeration.
  double min_latency_bound(const std::vector<bool>& alive) const override;

 private:
  static constexpr std::size_t kDims = 5;

  std::vector<std::array<double, kDims>> coords_;
  std::vector<double> access_ms_;
  std::uint64_t jitter_seed_;
  double jitter_sigma_;
  double scale_ = 1.0;  // calibration factor toward target mean RTT
};

}  // namespace hypersub::net
