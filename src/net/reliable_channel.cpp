#include "net/reliable_channel.hpp"

#include <cmath>
#include <utility>

namespace hypersub::net {

ReliableChannel::Stats ReliableChannel::stats() const noexcept {
  Stats s;
  for (const Stats& h : per_host_) {
    s.sent += h.sent;
    s.acked += h.acked;
    s.retries += h.retries;
    s.expired += h.expired;
    s.duplicates_suppressed += h.duplicates_suppressed;
  }
  return s;
}

void ReliableChannel::reset_stats() {
  for (Stats& h : per_host_) h = Stats{};
}

void ReliableChannel::send(HostIndex from, HostIndex to, std::uint64_t bytes,
                           std::function<void()> deliver,
                           std::function<void()> on_fail,
                           trace::TraceCtx tctx) {
  ++per_host_[from].sent;
  if (from == to) {
    ++per_host_[from].acked;
    net_.send(from, to, bytes, std::move(deliver));
    return;
  }
  const std::uint64_t id =
      (std::uint64_t(from + 1) << 40) | ++send_ctr_[from];
  auto m = std::make_shared<Message>(Message{from, to, bytes, id,
                                             std::move(deliver),
                                             std::move(on_fail), tctx});
  attempt(m, 0);
}

void ReliableChannel::attempt(const std::shared_ptr<Message>& m,
                              int attempt_no) {
  net_.send(m->from, m->to, m->bytes, [this, m] {
    // Receiver side (runs on the receiver's shard). Run the handler only
    // for the first copy; every copy triggers an ack so the sender stops
    // retransmitting. The insert-only seen-set suppresses later copies, and
    // final expiry poisons it (below) so a copy arriving after the sender
    // gave up — and rerouted the payload — is suppressed too, without the
    // receiver ever reading sender-shard state.
    if (!delivered_[m->to].insert(m->id).second) {
      ++per_host_[m->to].duplicates_suppressed;
    } else {
      m->deliver();
    }
    net_.send(m->to, m->from, cfg_.ack_bytes, [this, m] {
      // Sender's shard.
      if (m->resolved) return;
      m->resolved = true;
      ++per_host_[m->from].acked;
    });
  });
  const double deadline =
      cfg_.ack_timeout_ms * std::pow(cfg_.backoff, attempt_no);
  // The timer inherits the current shard — attempt() always runs in the
  // sender's context (send() at the sender, or a previous timer here).
  net_.simulator().schedule(deadline, [this, m, attempt_no] {
    if (m->resolved) return;
    if (!net_.alive(m->from)) {
      // Orphaned: the sender died while waiting. Nobody is left to retry
      // or reroute; resolve silently (running on_fail at a dead host would
      // resurrect processing there).
      m->resolved = true;
      return;
    }
    if (attempt_no < cfg_.max_retries) {
      ++per_host_[m->from].retries;
      if (auto* tr = trace::maybe(tracer_); tr && m->tctx.active()) {
        tr->point(m->tctx.trace, m->tctx.parent, trace::SpanKind::kRetry,
                  m->from, net_.simulator().now(),
                  std::uint64_t(attempt_no + 1));
      }
      attempt(m, attempt_no + 1);
      return;
    }
    m->resolved = true;
    ++per_host_[m->from].expired;
    // At-most-once across the reroute: the sender is about to resend the
    // payload through another hop, so a late-arriving copy of THIS message
    // must not also be processed. Poison the receiver's seen-set through a
    // cross-shard hand-off — it is scheduled identically in both modes
    // (same effective lookahead), so runs stay byte-identical.
    net_.simulator().schedule_on(
        m->to, net_.simulator().effective_lookahead(),
        [this, m] { delivered_[m->to].insert(m->id); });
    if (auto* tr = trace::maybe(tracer_); tr && m->tctx.active()) {
      tr->point(m->tctx.trace, m->tctx.parent, trace::SpanKind::kExpire,
                m->from, net_.simulator().now(), std::uint64_t(m->to));
    }
    if (m->on_fail) m->on_fail();
  });
}

}  // namespace hypersub::net
