#include "net/reliable_channel.hpp"

#include <cmath>
#include <utility>

namespace hypersub::net {

void ReliableChannel::send(HostIndex from, HostIndex to, std::uint64_t bytes,
                           std::function<void()> deliver,
                           std::function<void()> on_fail,
                           trace::TraceCtx tctx) {
  ++stats_.sent;
  if (from == to) {
    ++stats_.acked;
    net_.send(from, to, bytes, std::move(deliver));
    return;
  }
  auto m = std::make_shared<Message>(Message{from, to, bytes, ++next_id_,
                                             std::move(deliver),
                                             std::move(on_fail), tctx});
  attempt(m, 0);
}

void ReliableChannel::attempt(const std::shared_ptr<Message>& m,
                              int attempt_no) {
  net_.send(m->from, m->to, m->bytes, [this, m] {
    // Receiver side. Run the handler only for the first copy; every copy
    // (first or not) triggers an ack so the sender stops retransmitting.
    if (m->resolved || !delivered_.insert(m->id).second) {
      ++stats_.duplicates_suppressed;
    } else {
      m->deliver();
    }
    net_.send(m->to, m->from, cfg_.ack_bytes, [this, m] {
      if (m->resolved) return;
      m->resolved = true;
      ++stats_.acked;
      delivered_.erase(m->id);
    });
  });
  const double deadline =
      cfg_.ack_timeout_ms * std::pow(cfg_.backoff, attempt_no);
  net_.simulator().schedule(deadline, [this, m, attempt_no] {
    if (m->resolved) return;
    if (!net_.alive(m->from)) {
      // Orphaned: the sender died while waiting. Nobody is left to retry
      // or reroute; resolve silently (running on_fail at a dead host would
      // resurrect processing there).
      m->resolved = true;
      delivered_.erase(m->id);
      return;
    }
    if (attempt_no < cfg_.max_retries) {
      ++stats_.retries;
      if (auto* tr = trace::maybe(tracer_); tr && m->tctx.active()) {
        tr->point(m->tctx.trace, m->tctx.parent, trace::SpanKind::kRetry,
                  m->from, net_.simulator().now(),
                  std::uint64_t(attempt_no + 1));
      }
      attempt(m, attempt_no + 1);
      return;
    }
    m->resolved = true;
    ++stats_.expired;
    delivered_.erase(m->id);
    if (auto* tr = trace::maybe(tracer_); tr && m->tctx.active()) {
      tr->point(m->tctx.trace, m->tctx.parent, trace::SpanKind::kExpire,
                m->from, net_.simulator().now(), std::uint64_t(m->to));
    }
    if (m->on_fail) m->on_fail();
  });
}

}  // namespace hypersub::net
