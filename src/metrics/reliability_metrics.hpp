#pragma once
// Observability for the reliability layer (ack/retry/reroute): one flat
// counter block per subsystem (event delivery, lookup routing), merged from
// the ReliableChannel's transport stats and the layer's own reroute/drop
// decisions. The point of these counters is that losses the layer cannot
// mask are *visible* instead of silently skewing delivery metrics.

#include <cstdint>
#include <string>

namespace hypersub::metrics {

struct ReliabilityCounters {
  // Transport (from net::ReliableChannel::Stats).
  std::uint64_t messages_sent = 0;  ///< logical messages submitted
  std::uint64_t acks = 0;           ///< confirmed delivered
  std::uint64_t retries = 0;        ///< retransmissions
  std::uint64_t expirations = 0;    ///< messages whose retries all expired
  // Layer decisions.
  std::uint64_t reroutes = 0;        ///< next-hop failovers taken
  std::uint64_t unmasked_drops = 0;  ///< payloads dropped with no viable hop
  std::uint64_t duplicates_suppressed = 0;  ///< redundant deliveries dropped
  std::uint64_t truncated_events = 0;  ///< events finalized incomplete

  ReliabilityCounters& operator+=(const ReliabilityCounters& o);
};

/// One-line human-readable rendering for bench/report output.
std::string to_string(const ReliabilityCounters& c);

}  // namespace hypersub::metrics
