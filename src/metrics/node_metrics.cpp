#include "metrics/node_metrics.hpp"

#include <cassert>

namespace hypersub::metrics {

Cdf NodeMetrics::in_kb_cdf() const {
  Cdf c;
  c.reserve(records_.size());
  for (const auto& r : records_) c.add(double(r.bytes_in) / 1024.0);
  return c;
}

Cdf NodeMetrics::out_kb_cdf() const {
  Cdf c;
  c.reserve(records_.size());
  for (const auto& r : records_) c.add(double(r.bytes_out) / 1024.0);
  return c;
}

Cdf NodeMetrics::load_cdf() const {
  Cdf c;
  c.reserve(records_.size());
  for (const auto& r : records_) c.add(double(r.load));
  return c;
}

std::vector<double> NodeMetrics::ranked_load() const {
  return load_cdf().ranked_desc();
}

NodeMetrics snapshot_nodes(const net::Network& network,
                           const std::vector<std::size_t>& loads) {
  assert(loads.size() == network.size());
  NodeMetrics m;
  m.reserve(loads.size());
  for (std::size_t h = 0; h < loads.size(); ++h) {
    const auto& t = network.traffic(h);
    m.add(NodeRecord{t.bytes_in, t.bytes_out, loads[h]});
  }
  return m;
}

}  // namespace hypersub::metrics
