#include "metrics/event_metrics.hpp"

namespace hypersub::metrics {

Cdf EventMetrics::pct_matched_cdf() const {
  Cdf c;
  c.reserve(records_.size());
  for (const auto& r : records_) c.add(r.pct_matched);
  return c;
}

Cdf EventMetrics::hops_cdf() const {
  Cdf c;
  c.reserve(records_.size());
  for (const auto& r : records_) c.add(double(r.max_hops));
  return c;
}

Cdf EventMetrics::latency_cdf() const {
  Cdf c;
  c.reserve(records_.size());
  for (const auto& r : records_) c.add(r.max_latency_ms);
  return c;
}

Cdf EventMetrics::bandwidth_kb_cdf() const {
  Cdf c;
  c.reserve(records_.size());
  for (const auto& r : records_) c.add(double(r.bandwidth_bytes) / 1024.0);
  return c;
}

Cdf EventMetrics::header_bytes_cdf() const {
  Cdf c;
  c.reserve(records_.size());
  for (const auto& r : records_) c.add(double(r.header_bytes));
  return c;
}

}  // namespace hypersub::metrics
