#include "metrics/reliability_metrics.hpp"

#include <cstdio>

namespace hypersub::metrics {

ReliabilityCounters& ReliabilityCounters::operator+=(
    const ReliabilityCounters& o) {
  messages_sent += o.messages_sent;
  acks += o.acks;
  retries += o.retries;
  expirations += o.expirations;
  reroutes += o.reroutes;
  unmasked_drops += o.unmasked_drops;
  duplicates_suppressed += o.duplicates_suppressed;
  truncated_events += o.truncated_events;
  return *this;
}

std::string to_string(const ReliabilityCounters& c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "sent=%llu acked=%llu retries=%llu expired=%llu "
                "reroutes=%llu drops=%llu dups=%llu truncated=%llu",
                static_cast<unsigned long long>(c.messages_sent),
                static_cast<unsigned long long>(c.acks),
                static_cast<unsigned long long>(c.retries),
                static_cast<unsigned long long>(c.expirations),
                static_cast<unsigned long long>(c.reroutes),
                static_cast<unsigned long long>(c.unmasked_drops),
                static_cast<unsigned long long>(c.duplicates_suppressed),
                static_cast<unsigned long long>(c.truncated_events));
  return buf;
}

}  // namespace hypersub::metrics
