#pragma once
// Counters of the publish-path fast lane: rendezvous route caching and
// per-next-hop event batching. Both are observability-only structs — the
// mechanisms live in core (RouteCache, HyperSubSystem); these blocks are
// what snapshot()/benches report.

#include <cstdint>

namespace hypersub::metrics {

/// Aggregated RouteCache statistics (per node or summed system-wide).
struct RouteCacheCounters {
  std::uint64_t hits = 0;        ///< publishes short-circuited by the cache
  std::uint64_t misses = 0;      ///< publishes that fell back to full routing
  std::uint64_t insertions = 0;  ///< fresh key -> owner entries learned
  std::uint64_t stale_corrections = 0;  ///< entries rewritten by the owner
  std::uint64_t invalidations = 0;      ///< entries dropped by coherence hooks
  std::uint64_t evictions = 0;          ///< entries dropped by LRU pressure
  std::uint64_t entries = 0;            ///< currently cached keys

  RouteCacheCounters& operator+=(const RouteCacheCounters& o) {
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    stale_corrections += o.stale_corrections;
    invalidations += o.invalidations;
    evictions += o.evictions;
    entries += o.entries;
    return *this;
  }
};

/// Per-next-hop event batching statistics (cross-event frame coalescing).
struct BatchCounters {
  std::uint64_t frames = 0;  ///< aggregated frames actually sent
  std::uint64_t chunks = 0;  ///< logical event messages carried by them
  std::uint64_t header_bytes_saved = 0;  ///< kHeaderBytes * (chunks - frames)

  BatchCounters& operator+=(const BatchCounters& o) {
    frames += o.frames;
    chunks += o.chunks;
    header_bytes_saved += o.header_bytes_saved;
    return *this;
  }
};

/// Covering-based subscription aggregation statistics (core::CoverSet).
/// representatives/quenched are gauges summed over live primary zones;
/// promotions/subid_bytes_saved are monotone counters.
struct CoverCounters {
  std::uint64_t representatives = 0;  ///< subs registered upward (order_)
  std::uint64_t quenched = 0;     ///< subs stored locally under a coverer
  std::uint64_t promotions = 0;   ///< coverees re-homed after a rep left
  std::uint64_t subid_bytes_saved = 0;  ///< wire bytes saved by run grouping
  /// Subid payload bytes actually sent (grouped when cover_aggregation is
  /// on, flat otherwise). Counted in both modes so a bench can compare the
  /// subid transport cost directly — the total frame bandwidth is
  /// dominated by the per-edge event payload, which aggregation leaves
  /// untouched by design (identical delivery sets).
  std::uint64_t subid_wire_bytes = 0;

  CoverCounters& operator+=(const CoverCounters& o) {
    representatives += o.representatives;
    quenched += o.quenched;
    promotions += o.promotions;
    subid_bytes_saved += o.subid_bytes_saved;
    subid_wire_bytes += o.subid_wire_bytes;
    return *this;
  }
};

}  // namespace hypersub::metrics
