#include "metrics/snapshot.hpp"

#include <algorithm>
#include <cstdio>

#include "core/hypersub_system.hpp"

namespace hypersub::metrics {

Snapshot snapshot(const core::HyperSubSystem& sys) {
  Snapshot s;
  const EventMetrics& ev = sys.event_metrics();
  s.events = ev.count();
  if (s.events > 0) {
    // Mode-agnostic accessors: identical to the per-record Cdf means, and
    // also valid when the metrics run in streaming (record-free) mode.
    s.avg_pct_matched = ev.mean_pct_matched();
    s.mean_max_hops = ev.mean_max_hops();
    s.mean_max_latency_ms = ev.mean_max_latency_ms();
    s.mean_bandwidth_kb = ev.mean_bandwidth_kb();
    s.mean_header_bytes = ev.mean_header_bytes();
  }
  s.truncated_events = ev.truncated_count();
  s.reliability = sys.reliability_counters();

  const auto loads = sys.node_loads();
  if (!loads.empty()) {
    s.load_min = *std::min_element(loads.begin(), loads.end());
    s.load_max = *std::max_element(loads.begin(), loads.end());
    double sum = 0.0;
    for (const std::size_t l : loads) sum += double(l);
    s.load_mean = sum / double(loads.size());
  }
  s.total_subscriptions = sys.total_subscriptions();

  // CDF quantiles only when per-event records exist; in streaming mode
  // they are reported unavailable (rendered null), never as zeros.
  if (ev.cdfs_available() && s.events > 0) {
    s.event_cdfs_available = true;
    const Cdf hops = ev.hops_cdf();
    const Cdf lat = ev.latency_cdf();
    const Cdf bw = ev.bandwidth_kb_cdf();
    const Cdf hdr = ev.header_bytes_cdf();
    s.p50_max_hops = hops.quantile(0.50);
    s.p99_max_hops = hops.quantile(0.99);
    s.p50_max_latency_ms = lat.quantile(0.50);
    s.p99_max_latency_ms = lat.quantile(0.99);
    s.p50_bandwidth_kb = bw.quantile(0.50);
    s.p99_bandwidth_kb = bw.quantile(0.99);
    s.p50_header_bytes = hdr.quantile(0.50);
    s.p99_header_bytes = hdr.quantile(0.99);
  }

  s.cache = sys.route_cache_counters();
  s.batching = sys.batch_counters();
  s.cover = sys.cover_counters();
  return s;
}

std::string Snapshot::to_json() const {
  // The CDF block renders as null when the records were folded away
  // (streaming mode): absent-but-present-as-null is distinguishable from
  // a legitimate all-zero run, which empty CDFs were not.
  char cdfs[320];
  if (event_cdfs_available) {
    std::snprintf(
        cdfs, sizeof(cdfs),
        "{\"p50_max_hops\": %.1f, \"p99_max_hops\": %.1f, "
        "\"p50_max_latency_ms\": %.3f, \"p99_max_latency_ms\": %.3f, "
        "\"p50_bandwidth_kb\": %.4f, \"p99_bandwidth_kb\": %.4f, "
        "\"p50_header_bytes\": %.1f, \"p99_header_bytes\": %.1f}",
        p50_max_hops, p99_max_hops, p50_max_latency_ms, p99_max_latency_ms,
        p50_bandwidth_kb, p99_bandwidth_kb, p50_header_bytes,
        p99_header_bytes);
  } else {
    std::snprintf(cdfs, sizeof(cdfs), "null");
  }
  char buf[2560];
  std::snprintf(
      buf, sizeof(buf),
      "{\"events\": %zu, \"avg_pct_matched\": %.4f, "
      "\"mean_max_hops\": %.4f, \"mean_max_latency_ms\": %.3f, "
      "\"mean_bandwidth_kb\": %.4f, \"mean_header_bytes\": %.2f, "
      "\"truncated_events\": %zu, "
      "\"event_cdfs\": %s, "
      "\"reliability\": {\"messages_sent\": %llu, \"acks\": %llu, "
      "\"retries\": %llu, \"expirations\": %llu, \"reroutes\": %llu, "
      "\"unmasked_drops\": %llu, \"duplicates_suppressed\": %llu, "
      "\"truncated_events\": %llu}, "
      "\"load\": {\"min\": %zu, \"max\": %zu, \"mean\": %.3f}, "
      "\"total_subscriptions\": %zu, "
      "\"route_cache\": {\"hits\": %llu, \"misses\": %llu, "
      "\"insertions\": %llu, \"stale_corrections\": %llu, "
      "\"invalidations\": %llu, \"evictions\": %llu, \"entries\": %llu}, "
      "\"batching\": {\"frames\": %llu, \"chunks\": %llu, "
      "\"header_bytes_saved\": %llu}, "
      "\"cover\": {\"representatives\": %llu, \"quenched\": %llu, "
      "\"promotions\": %llu, \"subid_bytes_saved\": %llu, "
      "\"subid_wire_bytes\": %llu}}",
      events, avg_pct_matched, mean_max_hops, mean_max_latency_ms,
      mean_bandwidth_kb, mean_header_bytes, truncated_events, cdfs,
      static_cast<unsigned long long>(reliability.messages_sent),
      static_cast<unsigned long long>(reliability.acks),
      static_cast<unsigned long long>(reliability.retries),
      static_cast<unsigned long long>(reliability.expirations),
      static_cast<unsigned long long>(reliability.reroutes),
      static_cast<unsigned long long>(reliability.unmasked_drops),
      static_cast<unsigned long long>(reliability.duplicates_suppressed),
      static_cast<unsigned long long>(reliability.truncated_events),
      load_min, load_max, load_mean, total_subscriptions,
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.insertions),
      static_cast<unsigned long long>(cache.stale_corrections),
      static_cast<unsigned long long>(cache.invalidations),
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(batching.frames),
      static_cast<unsigned long long>(batching.chunks),
      static_cast<unsigned long long>(batching.header_bytes_saved),
      static_cast<unsigned long long>(cover.representatives),
      static_cast<unsigned long long>(cover.quenched),
      static_cast<unsigned long long>(cover.promotions),
      static_cast<unsigned long long>(cover.subid_bytes_saved),
      static_cast<unsigned long long>(cover.subid_wire_bytes));
  return std::string(buf);
}

}  // namespace hypersub::metrics
