#include "metrics/snapshot.hpp"

#include <algorithm>
#include <cstdio>

#include "core/hypersub_system.hpp"

namespace hypersub::metrics {

Snapshot snapshot(const core::HyperSubSystem& sys) {
  Snapshot s;
  const EventMetrics& ev = sys.event_metrics();
  s.events = ev.count();
  if (s.events > 0) {
    // Mode-agnostic accessors: identical to the per-record Cdf means, and
    // also valid when the metrics run in streaming (record-free) mode.
    s.avg_pct_matched = ev.mean_pct_matched();
    s.mean_max_hops = ev.mean_max_hops();
    s.mean_max_latency_ms = ev.mean_max_latency_ms();
    s.mean_bandwidth_kb = ev.mean_bandwidth_kb();
    s.mean_header_bytes = ev.mean_header_bytes();
  }
  s.truncated_events = ev.truncated_count();
  s.reliability = sys.reliability_counters();

  const auto loads = sys.node_loads();
  if (!loads.empty()) {
    s.load_min = *std::min_element(loads.begin(), loads.end());
    s.load_max = *std::max_element(loads.begin(), loads.end());
    double sum = 0.0;
    for (const std::size_t l : loads) sum += double(l);
    s.load_mean = sum / double(loads.size());
  }
  s.total_subscriptions = sys.total_subscriptions();

  s.cache = sys.route_cache_counters();
  s.batching = sys.batch_counters();
  return s;
}

std::string Snapshot::to_json() const {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\"events\": %zu, \"avg_pct_matched\": %.4f, "
      "\"mean_max_hops\": %.4f, \"mean_max_latency_ms\": %.3f, "
      "\"mean_bandwidth_kb\": %.4f, \"mean_header_bytes\": %.2f, "
      "\"truncated_events\": %zu, "
      "\"reliability\": {\"messages_sent\": %llu, \"acks\": %llu, "
      "\"retries\": %llu, \"expirations\": %llu, \"reroutes\": %llu, "
      "\"unmasked_drops\": %llu, \"duplicates_suppressed\": %llu, "
      "\"truncated_events\": %llu}, "
      "\"load\": {\"min\": %zu, \"max\": %zu, \"mean\": %.3f}, "
      "\"total_subscriptions\": %zu, "
      "\"route_cache\": {\"hits\": %llu, \"misses\": %llu, "
      "\"insertions\": %llu, \"stale_corrections\": %llu, "
      "\"invalidations\": %llu, \"evictions\": %llu, \"entries\": %llu}, "
      "\"batching\": {\"frames\": %llu, \"chunks\": %llu, "
      "\"header_bytes_saved\": %llu}}",
      events, avg_pct_matched, mean_max_hops, mean_max_latency_ms,
      mean_bandwidth_kb, mean_header_bytes, truncated_events,
      static_cast<unsigned long long>(reliability.messages_sent),
      static_cast<unsigned long long>(reliability.acks),
      static_cast<unsigned long long>(reliability.retries),
      static_cast<unsigned long long>(reliability.expirations),
      static_cast<unsigned long long>(reliability.reroutes),
      static_cast<unsigned long long>(reliability.unmasked_drops),
      static_cast<unsigned long long>(reliability.duplicates_suppressed),
      static_cast<unsigned long long>(reliability.truncated_events),
      load_min, load_max, load_mean, total_subscriptions,
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.insertions),
      static_cast<unsigned long long>(cache.stale_corrections),
      static_cast<unsigned long long>(cache.invalidations),
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(batching.frames),
      static_cast<unsigned long long>(batching.chunks),
      static_cast<unsigned long long>(batching.header_bytes_saved));
  return std::string(buf);
}

}  // namespace hypersub::metrics
