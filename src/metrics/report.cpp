#include "metrics/report.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace hypersub::metrics {

namespace {
std::string fmt(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}
}  // namespace

void print_cdf_figure(std::ostream& os, const std::string& title,
                      const std::string& x_label,
                      const std::vector<Series>& series,
                      std::size_t points) {
  os << "== " << title << " ==\n";
  for (const auto& s : series) {
    os << "  series: " << s.label << "  (n=" << s.cdf.count()
       << ", avg=" << fmt(s.cdf.mean()) << ", p50=" << fmt(s.cdf.quantile(0.5))
       << ", p99=" << fmt(s.cdf.quantile(0.99))
       << ", max=" << fmt(s.cdf.max()) << ")\n";
  }
  // Shared x grid spanning all series.
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const auto& s : series) {
    if (s.cdf.count() == 0) continue;
    if (first) {
      lo = s.cdf.min();
      hi = s.cdf.max();
      first = false;
    } else {
      lo = std::min(lo, s.cdf.min());
      hi = std::max(hi, s.cdf.max());
    }
  }
  std::vector<std::string> head{x_label};
  for (const auto& s : series) head.push_back(s.label);
  os << format_row(head, 26) << '\n';
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? hi : lo + (hi - lo) * double(i) / double(points - 1);
    std::vector<std::string> row{fmt(x)};
    for (const auto& s : series) row.push_back(fmt(s.cdf.fraction_at_or_below(x)));
    os << format_row(row, 26) << '\n';
  }
  os << '\n';
}

void print_ranked_figure(std::ostream& os, const std::string& title,
                         const std::vector<Series>& series,
                         std::size_t top_n, std::size_t step) {
  os << "== " << title << " ==\n";
  std::vector<std::vector<double>> ranked;
  std::vector<std::string> head{"rank"};
  for (const auto& s : series) {
    ranked.push_back(s.cdf.ranked_desc());
    head.push_back(s.label + " (max " + fmt(s.cdf.max()) + ")");
  }
  os << format_row(head, 30) << '\n';
  for (std::size_t r = 0; r < top_n; r += step) {
    std::vector<std::string> row{std::to_string(r + 1)};
    for (const auto& v : ranked) {
      row.push_back(r < v.size() ? fmt(v[r]) : "-");
    }
    os << format_row(row, 30) << '\n';
  }
  os << '\n';
}

void print_xy_figure(std::ostream& os, const std::string& title,
                     const std::string& x_label,
                     const std::vector<std::string>& series_labels,
                     const std::vector<double>& xs,
                     const std::vector<std::vector<double>>& ys) {
  assert(series_labels.size() == ys.size());
  os << "== " << title << " ==\n";
  std::vector<std::string> head{x_label};
  for (const auto& l : series_labels) head.push_back(l);
  os << format_row(head, 24) << '\n';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<std::string> row{fmt(xs[i])};
    for (const auto& s : ys) {
      assert(s.size() == xs.size());
      row.push_back(fmt(s[i]));
    }
    os << format_row(row, 24) << '\n';
  }
  os << '\n';
}

}  // namespace hypersub::metrics
