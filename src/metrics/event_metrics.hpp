#pragma once
// Per-event cost metrics (paper §5.1):
//   hops       — maximum path length to reach any matched subscriber
//   latency    — maximum time to reach any matched subscriber
//   bandwidth  — total bytes of all messages carrying the event
//   matched    — number (and percentage) of matched subscriptions

#include <cstdint>
#include <vector>

#include "common/stats.hpp"

namespace hypersub::metrics {

/// Final record for one published event.
struct EventRecord {
  std::uint64_t seq = 0;
  std::size_t matched = 0;          ///< matched subscriptions
  double pct_matched = 0.0;         ///< matched / total subscriptions * 100
  int max_hops = 0;                 ///< max overlay path length of a delivery
  double max_latency_ms = 0.0;      ///< publish -> last delivery
  std::uint64_t bandwidth_bytes = 0;///< all event-message bytes
  /// Packet-header share of bandwidth_bytes. With per-next-hop batching,
  /// chunks coalesced into one frame share a single header, so this is
  /// what the batching fast lane reduces.
  std::uint64_t header_bytes = 0;
  /// Part of the event's delivery tree was cut short (a message dropped
  /// with no viable reroute, hop TTL exceeded, or force-finalized with
  /// messages still in flight) — the matched count may undercount.
  bool truncated = false;
};

/// Accumulates event records and exposes the CDF views Fig. 2 plots.
class EventMetrics {
 public:
  void add(const EventRecord& r) { records_.push_back(r); }
  void reserve(std::size_t n) { records_.reserve(n); }
  std::size_t count() const noexcept { return records_.size(); }
  const std::vector<EventRecord>& records() const noexcept { return records_; }

  /// Events whose delivery trees were cut short (see EventRecord::truncated).
  std::size_t truncated_count() const noexcept {
    std::size_t n = 0;
    for (const auto& r : records_) n += r.truncated ? 1 : 0;
    return n;
  }

  Cdf pct_matched_cdf() const;
  Cdf hops_cdf() const;
  Cdf latency_cdf() const;
  Cdf bandwidth_kb_cdf() const;
  Cdf header_bytes_cdf() const;

 private:
  std::vector<EventRecord> records_;
};

}  // namespace hypersub::metrics
