#pragma once
// Per-event cost metrics (paper §5.1):
//   hops       — maximum path length to reach any matched subscriber
//   latency    — maximum time to reach any matched subscriber
//   bandwidth  — total bytes of all messages carrying the event
//   matched    — number (and percentage) of matched subscriptions

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/wire.hpp"

namespace hypersub::metrics {

/// Final record for one published event.
struct EventRecord {
  std::uint64_t seq = 0;
  std::size_t matched = 0;          ///< matched subscriptions
  double pct_matched = 0.0;         ///< matched / total subscriptions * 100
  int max_hops = 0;                 ///< max overlay path length of a delivery
  double max_latency_ms = 0.0;      ///< publish -> last delivery
  std::uint64_t bandwidth_bytes = 0;///< all event-message bytes
  /// Packet-header share of bandwidth_bytes. With per-next-hop batching,
  /// chunks coalesced into one frame share a single header, so this is
  /// what the batching fast lane reduces.
  std::uint64_t header_bytes = 0;
  /// Part of the event's delivery tree was cut short (a message dropped
  /// with no viable reroute, hop TTL exceeded, or force-finalized with
  /// messages still in flight) — the matched count may undercount.
  bool truncated = false;
};

/// Accumulates event records and exposes the CDF views Fig. 2 plots.
///
/// Streaming mode (set_streaming(true)) folds each record into running
/// sums instead of storing it, so a million-event run costs O(1) memory.
/// The mean accessors work in both modes and produce bit-identical values
/// (the fold adds in the same order the per-record Cdf sums would); the
/// CDF views require stored records and come back empty when streaming.
class EventMetrics {
 public:
  void add(const EventRecord& r) {
    ++n_;
    sum_pct_matched_ += r.pct_matched;
    sum_hops_ += double(r.max_hops);
    sum_latency_ms_ += r.max_latency_ms;
    sum_bandwidth_kb_ += double(r.bandwidth_bytes) / 1024.0;
    sum_header_bytes_ += double(r.header_bytes);
    truncated_ += r.truncated ? 1 : 0;
    if (!streaming_) records_.push_back(r);
  }
  void reserve(std::size_t n) {
    if (!streaming_) records_.reserve(n);
  }
  void set_streaming(bool on) { streaming_ = on; }
  bool streaming() const noexcept { return streaming_; }

  std::size_t count() const noexcept { return n_; }
  const std::vector<EventRecord>& records() const noexcept { return records_; }

  /// Events whose delivery trees were cut short (see EventRecord::truncated).
  std::size_t truncated_count() const noexcept { return truncated_; }

  // Mode-agnostic means over all added records.
  double mean_pct_matched() const noexcept {
    return n_ ? sum_pct_matched_ / double(n_) : 0.0;
  }
  double mean_max_hops() const noexcept {
    return n_ ? sum_hops_ / double(n_) : 0.0;
  }
  double mean_max_latency_ms() const noexcept {
    return n_ ? sum_latency_ms_ / double(n_) : 0.0;
  }
  double mean_bandwidth_kb() const noexcept {
    return n_ ? sum_bandwidth_kb_ / double(n_) : 0.0;
  }
  double mean_header_bytes() const noexcept {
    return n_ ? sum_header_bytes_ / double(n_) : 0.0;
  }

  /// Whether the *_cdf() views below are meaningful. In streaming mode the
  /// per-event records are folded away, so the CDFs come back empty —
  /// indistinguishable from a run with no traffic. Consumers must check
  /// this (and report "not available", not zeros) before reading them.
  bool cdfs_available() const noexcept { return !streaming_; }

  Cdf pct_matched_cdf() const;
  Cdf hops_cdf() const;
  Cdf latency_cdf() const;
  Cdf bandwidth_kb_cdf() const;
  Cdf header_bytes_cdf() const;

  /// Checkpoint: records (when stored), running sums, and mode.
  void save_state(common::ByteWriter& w) const {
    w.boolean(streaming_);
    w.u64(n_);
    w.u64(truncated_);
    w.f64(sum_pct_matched_);
    w.f64(sum_hops_);
    w.f64(sum_latency_ms_);
    w.f64(sum_bandwidth_kb_);
    w.f64(sum_header_bytes_);
    w.u64(records_.size());
    for (const EventRecord& r : records_) {
      w.u64(r.seq);
      w.u64(r.matched);
      w.f64(r.pct_matched);
      w.u32(std::uint32_t(r.max_hops));
      w.f64(r.max_latency_ms);
      w.u64(r.bandwidth_bytes);
      w.u64(r.header_bytes);
      w.boolean(r.truncated);
    }
  }
  void restore_state(common::ByteReader& rd) {
    streaming_ = rd.boolean();
    n_ = std::size_t(rd.u64());
    truncated_ = std::size_t(rd.u64());
    sum_pct_matched_ = rd.f64();
    sum_hops_ = rd.f64();
    sum_latency_ms_ = rd.f64();
    sum_bandwidth_kb_ = rd.f64();
    sum_header_bytes_ = rd.f64();
    records_.clear();
    const std::size_t n = std::size_t(rd.u64());
    records_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      EventRecord r;
      r.seq = rd.u64();
      r.matched = std::size_t(rd.u64());
      r.pct_matched = rd.f64();
      r.max_hops = int(rd.u32());
      r.max_latency_ms = rd.f64();
      r.bandwidth_bytes = rd.u64();
      r.header_bytes = rd.u64();
      r.truncated = rd.boolean();
      records_.push_back(r);
    }
  }

 private:
  std::vector<EventRecord> records_;
  bool streaming_ = false;
  std::size_t n_ = 0;
  std::size_t truncated_ = 0;
  double sum_pct_matched_ = 0.0;
  double sum_hops_ = 0.0;
  double sum_latency_ms_ = 0.0;
  double sum_bandwidth_kb_ = 0.0;
  double sum_header_bytes_ = 0.0;
};

}  // namespace hypersub::metrics
