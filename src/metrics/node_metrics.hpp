#pragma once
// Per-node metrics: in/out bandwidth over the simulation (Fig. 3) and the
// stored-subscription load used for the ranked-load view (Fig. 4).

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "net/network.hpp"

namespace hypersub::metrics {

/// Snapshot of a node's accumulated cost.
struct NodeRecord {
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::size_t load = 0;  ///< stored (surrogate) subscription entries
};

/// Collects per-node snapshots at the end of a run.
class NodeMetrics {
 public:
  void add(const NodeRecord& r) { records_.push_back(r); }
  void reserve(std::size_t n) { records_.reserve(n); }
  std::size_t count() const noexcept { return records_.size(); }
  const std::vector<NodeRecord>& records() const noexcept { return records_; }

  Cdf in_kb_cdf() const;
  Cdf out_kb_cdf() const;
  Cdf load_cdf() const;

  /// Loads sorted descending — Fig. 4's "nodes ranked by load".
  std::vector<double> ranked_load() const;

 private:
  std::vector<NodeRecord> records_;
};

/// Build node records by combining network traffic with per-node loads.
NodeMetrics snapshot_nodes(const net::Network& network,
                           const std::vector<std::size_t>& loads);

}  // namespace hypersub::metrics
