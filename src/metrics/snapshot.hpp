#pragma once
// Unified metrics snapshot: one struct carrying everything an experiment
// wants to report about a HyperSubSystem — event costs, reliability,
// per-node load, and the publish fast lane (route cache + batching) — with
// a to_json() the benches emit directly. Replaces the scattered
// event_metrics()/reliability_counters()/node_loads() call-site plumbing.
//
// Declared in metrics but implemented in the core library (snapshot() has
// to read HyperSubSystem, which itself links against metrics).

#include <cstdint>
#include <string>

#include "metrics/fastlane_metrics.hpp"
#include "metrics/reliability_metrics.hpp"

namespace hypersub::core {
class HyperSubSystem;
}

namespace hypersub::metrics {

struct Snapshot {
  // Event costs (means over finalized events).
  std::size_t events = 0;
  double avg_pct_matched = 0.0;
  double mean_max_hops = 0.0;
  double mean_max_latency_ms = 0.0;
  double mean_bandwidth_kb = 0.0;
  double mean_header_bytes = 0.0;
  std::size_t truncated_events = 0;

  // Reliability layer (all zero unless reliable_delivery).
  ReliabilityCounters reliability;

  // Stored-subscription load across nodes.
  std::size_t load_min = 0;
  std::size_t load_max = 0;
  double load_mean = 0.0;
  std::size_t total_subscriptions = 0;

  // Per-event CDF quantiles. Only meaningful when the metrics kept
  // per-event records: under stream_event_metrics the records are folded
  // away, event_cdfs_available is false, and to_json() renders the block
  // as null — NOT as zeros, which consumers (trace_report, bench_sanity)
  // used to misread as "no traffic".
  bool event_cdfs_available = false;
  double p50_max_hops = 0.0;
  double p99_max_hops = 0.0;
  double p50_max_latency_ms = 0.0;
  double p99_max_latency_ms = 0.0;
  double p50_bandwidth_kb = 0.0;
  double p99_bandwidth_kb = 0.0;
  double p50_header_bytes = 0.0;
  double p99_header_bytes = 0.0;

  // Publish fast lane.
  RouteCacheCounters cache;
  BatchCounters batching;

  // Covering-based subscription aggregation (zero unless cover_aggregation).
  CoverCounters cover;

  /// Compact single-object JSON rendering (no trailing newline).
  std::string to_json() const;
};

/// Collect a snapshot of `sys`'s current metrics.
Snapshot snapshot(const core::HyperSubSystem& sys);

}  // namespace hypersub::metrics
