#pragma once
// Plain-text reporting of CDF curves and ranked series — the bench binaries
// print these tables as the reproduction of the paper's figures.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace hypersub::metrics {

/// One labelled series for a figure (e.g. "Base 2, level 20, no LB").
struct Series {
  std::string label;
  Cdf cdf;
};

/// Print a CDF figure: header, per-series mean/max, then `points` rows of
/// (value, fraction) per series.
void print_cdf_figure(std::ostream& os, const std::string& title,
                      const std::string& x_label,
                      const std::vector<Series>& series,
                      std::size_t points = 11);

/// Print a ranked-descending figure (Fig. 4): first `top_n` values.
void print_ranked_figure(std::ostream& os, const std::string& title,
                         const std::vector<Series>& series,
                         std::size_t top_n = 100, std::size_t step = 10);

/// Print an x-vs-y line figure (Fig. 5): one row per x.
void print_xy_figure(std::ostream& os, const std::string& title,
                     const std::string& x_label,
                     const std::vector<std::string>& series_labels,
                     const std::vector<double>& xs,
                     const std::vector<std::vector<double>>& ys);

}  // namespace hypersub::metrics
