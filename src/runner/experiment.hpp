#pragma once
// Turn-key experiment runner: builds the full stack (topology → network →
// Chord → HyperSub), installs the workload, publishes events, and returns
// the metrics the paper's figures plot. Each run is deterministic in its
// config; independent runs can execute in parallel threads.

#include <cstdint>
#include <vector>

#include "core/hypersub_system.hpp"
#include "core/load_balancer.hpp"
#include "trace/tracer.hpp"
#include "metrics/event_metrics.hpp"
#include "metrics/fastlane_metrics.hpp"
#include "metrics/node_metrics.hpp"
#include "workload/scheme_factory.hpp"

namespace hypersub::runner {

/// Everything one simulation run depends on. Defaults reproduce the
/// paper's base configuration at reduced event count (pass events=20000
/// for the full-scale runs).
struct ExperimentConfig {
  // network
  std::size_t nodes = 1740;
  double target_mean_rtt_ms = 180.0;
  bool pns = true;
  // zone geometry
  int base_bits = 1;    ///< base 2 ("Base 2, level 20")
  int code_bits = 20;   ///< bits of the identifier used for zone codes
  bool rotation = true;
  std::vector<std::vector<std::size_t>> subschemes;  ///< §3.5; empty = off
  // pub/sub system — passed through verbatim (ancestor probing, replicas,
  // reliability, route cache, batching, cover aggregation, streaming
  // metrics, transfer knobs...). The runner only overrides bootstrap (it
  // always oracle-builds, with `setup_threads` workers) and
  // stream_event_metrics plumbing it already owns. The former mirrored
  // fields (route_cache, batch_forwarding, cover_aggregation,
  // stream_metrics, ancestor_probing, trace_sample_rate) live here now —
  // see DESIGN.md, "Runner configuration".
  core::HyperSubSystem::Config system;
  // load balancing
  bool load_balancing = false;
  core::LoadBalancer::Config lb{/*period_ms=*/30000.0, /*delta=*/0.1,
                                /*probe_level=*/1, /*max_acceptors=*/4,
                                /*min_load=*/8, /*reply_timeout_ms=*/1500.0};
  std::size_t lb_warm_rounds = 2;  ///< static pre-adjustment rounds
  // workload
  workload::WorkloadSpec workload = workload::table1_spec();
  std::size_t subs_per_node = 10;
  std::size_t events = 4000;
  double mean_interarrival_ms = 100.0;
  std::size_t hot_event_pool = 0;  ///< >0: draw events Zipf-ranked from a pool
  double zipf_skew = 0.95;         ///< rank skew of the hot pool
  std::size_t publishers = 0;      ///< >0: restrict the feed to this many nodes
  // tracing (observability; off unless a tracer is supplied — the sample
  // rate is system.trace_sample_rate)
  trace::Tracer* tracer = nullptr;   ///< span recorder for the whole stack
  // parallel engine (defaults = sequential, zero-lookahead: seed behavior)
  unsigned sim_threads = 1;    ///< worker threads; >1 enables sharded runs
  double lookahead_ms = 0.0;   ///< min network latency = safe window width
  /// Derive each window's width from the minimum outstanding link latency
  /// instead of the fixed lookahead_ms floor (identical event order in
  /// sequential and parallel modes; see sim::Simulator).
  bool adaptive_lookahead = false;
  // setup fast path (million-subscription scale-out)
  /// Install subscriptions through HyperSubSystem::bulk_subscribe (direct
  /// oracle installation + one piece fixpoint) instead of simulating the
  /// per-subscription install cascade. Zone contents are equivalent;
  /// per-zone insertion order follows batch order instead of
  /// message-arrival order.
  bool fast_setup = false;
  /// Worker threads for oracle overlay construction and bulk installation
  /// (results are independent of this count).
  unsigned setup_threads = 1;
  // misc
  std::uint64_t seed = 42;
};

/// Metrics of one run.
struct ExperimentResult {
  metrics::EventMetrics events;
  metrics::NodeMetrics nodes;
  double mean_rtt_ms = 0.0;
  std::size_t total_subs = 0;
  std::uint64_t migrated = 0;
  std::uint64_t deliveries = 0;
  double avg_pct_matched = 0.0;
  metrics::RouteCacheCounters cache;  ///< route-cache activity (fast lane)
  metrics::BatchCounters batching;    ///< frame coalescing (fast lane)
};

/// Run one experiment to completion.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Run several independent experiments on worker threads (one Simulator
/// per run; no shared mutable state). Results are in config order.
std::vector<ExperimentResult> run_experiments_parallel(
    const std::vector<ExperimentConfig>& configs);

/// Short human-readable configuration label, e.g. "Base 2,level 20,no LB".
std::string config_label(const ExperimentConfig& cfg);

}  // namespace hypersub::runner
