#pragma once
// Whole-run checkpoint/restore: one blob captures everything a paused
// simulation needs to resume — the simulator clock, network liveness and
// traffic counters, overlay routing state, the complete pub/sub system
// (zones, summary filters, replicas, migrated repos, metrics, delivery
// log), and the attached tracer's span log. A run restored from a
// checkpoint and driven to completion produces byte-identical final state
// (snapshot + span log) to the uninterrupted run, at any --threads=N.
//
// Contract: checkpoint only at quiescence — simulator drained (run()
// returned), no transfer session or warming joiner in flight
// (HyperSubSystem::transfer_active() is false), batches flushed.
// HyperSubSystem::save_state asserts this.
//
// Restoring starts from a freshly constructed stack built with the SAME
// configuration (topology, overlay params, system config, schemes added in
// the same order) — the blob carries dynamic state, not construction-time
// config. See DESIGN.md, "State transfer & checkpointing".

#include <cstdint>
#include <vector>

#include "core/hypersub_system.hpp"

namespace hypersub::runner {

/// Serialize the full run state into one blob. `tracer` is the span
/// recorder attached via set_tracer (nullptr when tracing is off); its
/// presence is recorded in the blob, so checkpoint and restore must agree.
std::vector<std::uint8_t> checkpoint(core::HyperSubSystem& sys,
                                     const trace::Tracer* tracer = nullptr);

/// Rebuild a freshly constructed stack from a checkpoint blob: advances
/// the simulator clock to the checkpointed time, restores network /
/// overlay / system state, then (if the blob carries one) attaches and
/// restores the tracer — set_tracer runs before the tracer's own
/// restore_state so its shard binding matches this simulation.
void restore(core::HyperSubSystem& sys, const std::vector<std::uint8_t>& blob,
             trace::Tracer* tracer = nullptr);

}  // namespace hypersub::runner
