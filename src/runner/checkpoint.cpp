#include "runner/checkpoint.hpp"

#include <cassert>

#include "common/wire.hpp"

namespace hypersub::runner {

std::vector<std::uint8_t> checkpoint(core::HyperSubSystem& sys,
                                     const trace::Tracer* tracer) {
  common::ByteWriter w;
  w.u32(common::kWireVersion);
  w.f64(sys.simulator().now());
  sys.network().save_state(w);
  sys.overlay().save_state(w);
  sys.save_state(w);
  w.boolean(tracer != nullptr);
  if (tracer) tracer->save_state(w);
  return w.take();
}

void restore(core::HyperSubSystem& sys, const std::vector<std::uint8_t>& blob,
             trace::Tracer* tracer) {
  common::ByteReader r(blob);
  // v1 checkpoints still load: only the node-image layout gained a section
  // in v2, and HyperSubSystem::restore_state handles both shapes.
  const std::uint32_t ver = r.u32();
  assert(ver >= 1 && ver <= common::kWireVersion);
  (void)ver;
  // Advance the fresh simulator's clock to the checkpointed time by
  // draining an empty task scheduled there — timers laid out after the
  // restore resume on the original timeline.
  const double now = r.f64();
  sim::Simulator& simulator = sys.simulator();
  assert(simulator.now() <= now);
  simulator.schedule_at(now, [] {});
  simulator.run();
  sys.network().restore_state(r);
  sys.overlay().restore_state(r);
  sys.restore_state(r);
  const bool has_tracer = r.boolean();
  assert(has_tracer == (tracer != nullptr));
  (void)has_tracer;
  if (tracer) {
    sys.set_tracer(tracer);  // binds shard-local id counters first
    tracer->restore_state(r);
  }
}

}  // namespace hypersub::runner
