#include "runner/experiment.hpp"

#include <atomic>
#include <optional>
#include <sstream>
#include <thread>

#include "chord/chord_net.hpp"
#include "common/zipf.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/zipf_workload.hpp"

namespace hypersub::runner {

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  // --- substrate -----------------------------------------------------------
  net::KingLikeTopology::Params tp;
  tp.hosts = cfg.nodes;
  tp.target_mean_rtt_ms = cfg.target_mean_rtt_ms;
  tp.seed = cfg.seed;
  net::KingLikeTopology topo(tp);

  sim::Simulator simulator;
  // Lookahead is set before any message flows: it clamps the minimum
  // network latency in BOTH modes, so a parallel run compares byte-for-byte
  // against a sequential run with the same lookahead.
  simulator.set_threads(cfg.sim_threads);
  simulator.set_lookahead(cfg.lookahead_ms);
  net::Network network(simulator, topo);
  // The adaptive floor only widens windows (no link delivers below it), so
  // enabling it on a sequential run too keeps the byte-identity contract.
  if (cfg.adaptive_lookahead) network.enable_adaptive_lookahead();

  chord::ChordNet::Params cp;
  cp.pns = cfg.pns;
  cp.seed = cfg.seed + 1;
  chord::ChordNet chord(network, cp);

  // --- pub/sub system --------------------------------------------------------
  // The embedded system config passes through verbatim; the runner owns
  // only the bootstrap (experiments measure the post-stabilization system,
  // so the overlay is oracle-built by the system constructor).
  core::HyperSubSystem::Config sc = cfg.system;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.build_threads = cfg.setup_threads;
  core::HyperSubSystem sys(chord, sc);
  if (cfg.tracer) sys.set_tracer(cfg.tracer);
  // Large runs only need delivery counts, not the full log.
  core::CountingDeliverySink sink;
  sys.set_delivery_sink(sink);

  workload::WorkloadGenerator gen(cfg.workload, cfg.seed + 2);
  core::SchemeOptions so;
  so.zone_cfg = lph::ZoneSystem::Config{cfg.base_bits, cfg.code_bits};
  so.rotate = cfg.rotation;
  so.subschemes = cfg.subschemes;
  const std::uint32_t scheme = sys.add_scheme(gen.scheme(), so);

  // --- subscription installation (paper: every node subscribes) -------------
  if (cfg.fast_setup) {
    // Oracle bulk installation: same workload draw order, no simulated
    // install storm.
    std::vector<core::HyperSubSystem::BulkSub> batch;
    batch.reserve(cfg.nodes * cfg.subs_per_node);
    for (net::HostIndex h = 0; h < cfg.nodes; ++h) {
      for (std::size_t k = 0; k < cfg.subs_per_node; ++k) {
        batch.push_back({h, gen.make_subscription()});
      }
    }
    sys.bulk_subscribe(scheme, std::move(batch), cfg.setup_threads);
  } else {
    for (net::HostIndex h = 0; h < cfg.nodes; ++h) {
      for (std::size_t k = 0; k < cfg.subs_per_node; ++k) {
        sys.subscribe(h, scheme, gen.make_subscription());
      }
    }
  }
  simulator.run();  // drain installs + summary-filter piece propagation

  // --- load balancing --------------------------------------------------------
  std::unique_ptr<core::LoadBalancer> lb;
  if (cfg.load_balancing) {
    lb = std::make_unique<core::LoadBalancer>(sys, cfg.lb);
    for (std::size_t r = 0; r < cfg.lb_warm_rounds; ++r) lb->run_round();
  }

  // Measurement starts after stabilization, as in the paper. Warm-up spans
  // (the install storm) are dropped with the other warm-up metrics so the
  // span budget is spent on the measured event phase.
  network.reset_traffic();
  sys.reset_metrics();
  if (cfg.tracer) cfg.tracer->reset();
  if (lb) lb->start();

  // --- event phase ------------------------------------------------------------
  // hot_event_pool > 0 switches the feed from fresh uniform events to a
  // Zipf-ranked draw over a fixed pool (repeated rendezvous zones — the
  // regime the publish fast lane targets).
  std::vector<pubsub::Event> pool;
  for (std::size_t i = 0; i < cfg.hot_event_pool; ++i) {
    pool.push_back(gen.make_event());
  }
  std::optional<ZipfSampler> zipf;
  if (!pool.empty()) zipf.emplace(pool.size(), cfg.zipf_skew);

  Rng ev_rng(cfg.seed + 3);
  double t = 0.0;
  for (std::size_t i = 0; i < cfg.events; ++i) {
    t += ev_rng.exponential(cfg.mean_interarrival_ms);
    const net::HostIndex publisher =
        cfg.publishers > 0 ? net::HostIndex(ev_rng.index(cfg.publishers))
                           : net::HostIndex(ev_rng.index(cfg.nodes));
    pubsub::Event e = pool.empty() ? gen.make_event()
                                   : pool[zipf->sample(ev_rng) - 1];
    // `t` is a delay relative to the current (post-stabilization) time; the
    // whole schedule is laid out before run() resumes.
    simulator.schedule(t, [&sys, scheme, publisher, e]() mutable {
      sys.publish(publisher, scheme, std::move(e));
    });
  }
  // Run to the last publication, stop the periodic balancer (its timers
  // would keep the queue alive forever), then drain the delivery tail.
  simulator.run_until(simulator.now() + t);
  if (lb) lb->stop();
  simulator.run();
  sys.finalize_events();

  // --- collect -----------------------------------------------------------------
  ExperimentResult r;
  r.events = sys.event_metrics();
  r.nodes = metrics::snapshot_nodes(network, sys.node_loads());
  r.mean_rtt_ms = topo.mean_rtt(20000, cfg.seed + 4);
  r.total_subs = sys.total_subscriptions();
  r.migrated = lb ? lb->migrated_count() : 0;
  r.deliveries = sink.count();
  r.avg_pct_matched = r.events.mean_pct_matched();
  r.cache = sys.route_cache_counters();
  r.batching = sys.batch_counters();
  return r;
}

std::vector<ExperimentResult> run_experiments_parallel(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentResult> results(configs.size());
  std::atomic<std::size_t> next{0};
  const std::size_t workers =
      std::min<std::size_t>(configs.size(),
                            std::max(1u, std::thread::hardware_concurrency()));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&configs, &results, &next] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= configs.size()) return;
        results[i] = run_experiment(configs[i]);
      }
    });
  }
  for (auto& th : pool) th.join();
  return results;
}

std::string config_label(const ExperimentConfig& cfg) {
  std::ostringstream os;
  os << "Base " << (1 << cfg.base_bits) << ",level "
     << cfg.code_bits / cfg.base_bits << ','
     << (cfg.load_balancing ? "LB" : "no LB");
  if (cfg.system.route_cache) os << ",cache";
  if (cfg.system.batch_forwarding) os << ",batch";
  if (cfg.system.cover_aggregation) os << ",cover";
  return os.str();
}

}  // namespace hypersub::runner
