#pragma once
// Overlay-neutral peer reference and wire-size constants shared by every
// DHT implementation (Chord, Pastry) and the pub/sub layer above them.

#include <cstdint>

#include "common/ids.hpp"
#include "net/topology.hpp"

namespace hypersub::overlay {

/// Reference to a remote overlay node: ring id + simulator host index.
struct Peer {
  Id id = 0;
  net::HostIndex host = kInvalidHost;

  static constexpr net::HostIndex kInvalidHost = ~std::size_t{0};
  bool valid() const noexcept { return host != kInvalidHost; }

  friend bool operator==(const Peer&, const Peer&) = default;
};

/// Wire-size constants for control messages (bytes): the paper charges a
/// 20-byte packet header per message; node references carry id + address.
inline constexpr std::uint64_t kHeaderBytes = 20;
inline constexpr std::uint64_t kNodeRefBytes = 16;
inline constexpr std::uint64_t kKeyBytes = 8;

}  // namespace hypersub::overlay
