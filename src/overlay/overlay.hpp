#pragma once
// The DHT substrate interface HyperSub builds on (paper §3: "the techniques
// presented in this paper are applicable to other DHTs such as Pastry and
// Tapestry"). The pub/sub core needs exactly four things from a DHT:
//
//   * key ownership  — which node is responsible for a key,
//   * greedy step    — the best next hop toward a key from a node's own
//                      routing state (this is what embeds the delivery
//                      trees: subids sharing a next hop share a message),
//   * recursive route— install/publish routing with hop/latency accounting,
//   * neighbor view  — the peers a node samples for load balancing.
//
// ChordNet and PastryNet implement this interface; HyperSubSystem and
// LoadBalancer are written against it.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/wire.hpp"
#include "net/network.hpp"
#include "overlay/peer.hpp"

namespace hypersub::trace {
class Tracer;
}

namespace hypersub::overlay {

class Overlay {
 public:
  virtual ~Overlay() = default;

  /// Number of participating hosts.
  virtual std::size_t size() const = 0;
  /// Ring/key-space id of a host.
  virtual Id id_of(net::HostIndex h) const = 0;
  /// The message fabric (for the pub/sub layer's own messages).
  virtual net::Network& network() = 0;
  sim::Simulator& simulator() { return network().simulator(); }

  /// True if `h`, by its own routing state, is responsible for `key`.
  virtual bool owns(net::HostIndex h, Id key) const = 0;

  /// One greedy step from `h` toward `key`: the neighbor the node would
  /// forward to. Invalid peer when the node has nowhere better to send
  /// (isolated); never returns `h` itself for a key it does not own.
  virtual Peer next_hop(net::HostIndex h, Id key) const = 0;

  struct RouteResult {
    Peer owner;
    int hops = 0;
    double latency_ms = 0.0;
  };
  using RouteCallback = std::function<void(const RouteResult&)>;

  /// Recursive routing of `key` from `from`, carrying `extra_bytes` of
  /// payload; the callback fires at the owner in simulated time.
  virtual void route(net::HostIndex from, Id key, std::uint64_t extra_bytes,
                     RouteCallback cb) = 0;

  /// The node's overlay neighbors (load-balancer probe set).
  virtual std::vector<Peer> neighbors(net::HostIndex h) const = 0;

  /// Liveness evidence from application traffic (piggybacked maintenance,
  /// paper §6). Default: ignored.
  virtual void note_app_contact(net::HostIndex /*at*/, Id /*peer*/) {}

  /// Failure evidence from the reliability layer: `at` learned — from its
  /// own ack timeout, or gossiped by the peer `via` that observed it —
  /// that `failed` is unresponsive. Implementations drop `failed` from
  /// `at`'s routing state so the next next_hop() resolves a backup
  /// (successor-list failover). When `via` is a valid host, it is the peer
  /// that rerouted to `at` as the failed node's heir and is therefore a
  /// predecessor candidate for the inherited key range (Chord notify
  /// semantics). Default: ignored (best-effort substrates).
  virtual void note_peer_failure(net::HostIndex /*at*/,
                                 net::HostIndex /*failed*/,
                                 net::HostIndex /*via*/ = Peer::kInvalidHost) {
  }

  /// The nodes that inherit `h`'s key range if it fails — the replication
  /// targets for state stored at `h` (Chord: the successor list; Pastry:
  /// the clockwise leaves). At most `k` peers; may return fewer.
  virtual std::vector<Peer> replica_set(net::HostIndex h,
                                        std::size_t k) const = 0;

  // -- lifecycle -------------------------------------------------------------

  /// Construct routing state for every live host from global knowledge (the
  /// paper's "after system stabilization" shortcut). `threads` may shard
  /// the computation; the result must be thread-count independent.
  virtual void build(unsigned threads) = 0;

  /// Protocol join of `host` via `bootstrap`; `on_joined` fires (simulated
  /// time) once the joiner knows its successor — i.e. the moment the
  /// pub/sub layer can start its state-transfer handshake. Returns false if
  /// this substrate has no join protocol (callers fall back to build()).
  virtual bool join(net::HostIndex /*host*/, net::HostIndex /*bootstrap*/,
                    std::function<void()> /*on_joined*/ = {}) {
    return false;
  }

  /// Graceful departure of `host`: neighbors splice around it, then the
  /// host leaves the network (messages stop). `on_left` fires after the
  /// splice lands. Returns false if unsupported (callers fall back to a
  /// crash-stop kill).
  virtual bool leave(net::HostIndex /*host*/,
                     std::function<void()> /*on_left*/ = {}) {
    return false;
  }

  /// The peer that inherits `h`'s key range when `h` departs — the state
  /// handover target for a graceful leave. Invalid peer when unknown.
  Peer heir_of(net::HostIndex h) const {
    const auto r = replica_set(h, 1);
    return r.empty() ? Peer{} : r.front();
  }

  // -- checkpointing ---------------------------------------------------------

  /// Serialize all routing state (deterministic bytes; host order).
  virtual void save_state(common::ByteWriter& /*w*/) const {}
  /// Rebuild routing state from save_state()'s encoding. The overlay must
  /// have been constructed identically (same topology, params, seed).
  virtual void restore_state(common::ByteReader& /*r*/) {}

  /// Ground-truth key→owner table for bulk (oracle) state installation:
  /// the live nodes in ascending id order, such that the owner of `key` is
  /// the first entry with id >= key (wrapping to the front). Substrates
  /// without global knowledge — or with different ownership geometry —
  /// return empty, and bulk callers fall back to routed installs.
  virtual std::vector<Peer> oracle_owner_table() const { return {}; }

  /// Coherence hook for layers that cache key -> owner resolutions (the
  /// pub/sub route cache): fired with a host whose owned key range just
  /// changed — its predecessor-side boundary moved during stabilization,
  /// failure repair, or (re)construction — so cached resolutions pointing
  /// at it may be stale. Substrates without ownership tracking never fire
  /// it; cache users then rely on stale-hit self-repair alone.
  using OwnershipListener = std::function<void(net::HostIndex)>;
  void set_ownership_listener(OwnershipListener cb) {
    ownership_listener_ = std::move(cb);
  }

  /// Observability hook: substrates that implement it record per-hop
  /// route spans into `t` for routes whose caller parked an ambient trace
  /// context on the tracer (see trace::Tracer::set_ambient). Default:
  /// ignored (substrates are free to stay uninstrumented).
  virtual void set_tracer(trace::Tracer* /*t*/) {}

 protected:
  /// Implementations call this whenever a node's ownership interval changes.
  void notify_ownership_changed(net::HostIndex h) {
    if (ownership_listener_) ownership_listener_(h);
  }

 private:
  OwnershipListener ownership_listener_;
};

}  // namespace hypersub::overlay
