#pragma once
// Pastry DHT substrate (paper §3: "the techniques presented in this paper
// are applicable to other DHTs such as Pastry and Tapestry"; §6 lists
// evaluating HyperSub over Pastry as future work).
//
// Identifiers are 64-bit, viewed as 16 hexadecimal digits (b = 4). Each
// node keeps
//   * a leaf set: the L/2 numerically closest nodes on either side,
//   * a routing table: rows indexed by shared-prefix length, columns by
//     the next digit; among the candidates for an entry the physically
//     closest is chosen (Pastry's locality heuristic, same role as
//     Chord-PNS).
// A key is owned by the numerically closest node (ties break clockwise).
// Routing: if the key is within the leaf-set span, jump straight to the
// numerically closest leaf; otherwise use the routing-table entry matching
// one more digit; otherwise fall back to any known node strictly closer.
//
// This substrate is built with global knowledge (oracle_build), matching
// how the benches use Chord after stabilization; Pastry's join/repair
// protocol is out of scope (the paper's churn story lives in the Chord
// implementation).

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "overlay/overlay.hpp"

namespace hypersub::pastry {

using overlay::Peer;

/// Digit parameters: b = 4 bits per digit, 16 digits in a 64-bit id.
inline constexpr int kDigitBits = 4;
inline constexpr int kDigits = kIdBits / kDigitBits;
inline constexpr int kDigitBase = 1 << kDigitBits;

/// d-th digit (0 = most significant) of an id.
constexpr int digit_of(Id id, int d) noexcept {
  return int((id >> (kIdBits - kDigitBits * (d + 1))) &
             ((Id{1} << kDigitBits) - 1));
}

/// Number of leading digits two ids share.
int shared_prefix_digits(Id a, Id b) noexcept;

/// Circular numeric distance |a - b| on the 2^64 ring (min direction).
constexpr Id circular_distance(Id a, Id b) noexcept {
  const Id cw = b - a;
  const Id ccw = a - b;
  return cw < ccw ? cw : ccw;
}

/// Strictly-closer-to-key order with a deterministic clockwise tie-break,
/// so every node agrees on key ownership.
bool closer_to(Id key, const Peer& a, const Peer& b) noexcept;

/// Routing state of one Pastry node.
class PastryNode {
 public:
  PastryNode(Id id, net::HostIndex host) : id_(id), host_(host) {}

  Id id() const noexcept { return id_; }
  net::HostIndex host() const noexcept { return host_; }
  Peer self() const noexcept { return Peer{id_, host_}; }

  std::vector<Peer>& leaf_set() noexcept { return leaves_; }
  const std::vector<Peer>& leaf_set() const noexcept { return leaves_; }

  const Peer& table(int row, int col) const {
    return table_[std::size_t(row)][std::size_t(col)];
  }
  void set_table(int row, int col, Peer p) {
    table_[std::size_t(row)][std::size_t(col)] = p;
  }

  /// True if this node is numerically closest to `key` among itself and
  /// its leaf set (ties clockwise).
  bool owns(Id key) const;

  /// Pastry next-hop selection; invalid peer when this node owns the key
  /// or knows nothing closer.
  Peer next_hop(Id key) const;

  /// Distinct valid peers from leaf set + routing table.
  std::vector<Peer> neighbors() const;

 private:
  Id id_;
  net::HostIndex host_;
  std::vector<Peer> leaves_;
  std::array<std::array<Peer, kDigitBase>, kDigits> table_{};
};

/// The Pastry overlay over a simulated network.
class PastryNet final : public overlay::Overlay {
 public:
  struct Params {
    std::size_t leaf_set = 16;      ///< L (split evenly on both sides)
    std::size_t candidates = 8;     ///< locality candidates per table entry
    std::uint64_t seed = 1;
  };

  PastryNet(net::Network& net, const Params& params);

  std::size_t size() const override { return nodes_.size(); }
  Id id_of(net::HostIndex h) const override { return nodes_[h]->id(); }
  net::Network& network() override { return net_; }
  const Params& params() const noexcept { return params_; }

  PastryNode& node(net::HostIndex h) { return *nodes_[h]; }
  const PastryNode& node(net::HostIndex h) const { return *nodes_[h]; }

  /// Global-knowledge construction of leaf sets + routing tables.
  void oracle_build();

  /// overlay::Overlay's lifecycle name for oracle_build() (the construction
  /// is cheap enough that `threads` is ignored).
  void build(unsigned /*threads*/) override { oracle_build(); }

  /// Ground truth: the live node numerically closest to `key`.
  Peer oracle_owner(Id key) const;

  bool owns(net::HostIndex h, Id key) const override {
    return nodes_[h]->owns(key);
  }
  Peer next_hop(net::HostIndex h, Id key) const override;
  void route(net::HostIndex from, Id key, std::uint64_t extra_bytes,
             RouteCallback cb) override;
  std::vector<Peer> neighbors(net::HostIndex h) const override {
    return nodes_[h]->neighbors();
  }

  /// Replication targets: the k clockwise-nearest leaf-set members (the
  /// nodes that inherit this node's share of the key space).
  std::vector<Peer> replica_set(net::HostIndex h,
                                std::size_t k) const override;

 private:
  void route_step(net::HostIndex at, Id key, std::uint64_t extra_bytes,
                  int hops, double issued,
                  std::shared_ptr<RouteCallback> cb);

  net::Network& net_;
  Params params_;
  std::vector<std::unique_ptr<PastryNode>> nodes_;
};

}  // namespace hypersub::pastry
