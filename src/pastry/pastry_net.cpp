#include "pastry/pastry_net.hpp"

#include <algorithm>
#include <cassert>

#include "chord/ring.hpp"  // random_ids, successor_index

namespace hypersub::pastry {

int shared_prefix_digits(Id a, Id b) noexcept {
  for (int d = 0; d < kDigits; ++d) {
    if (digit_of(a, d) != digit_of(b, d)) return d;
  }
  return kDigits;
}

// ---------------------------------------------------------------------------
// PastryNode
// ---------------------------------------------------------------------------

bool closer_to(Id key, const Peer& a, const Peer& b) noexcept {
  const Id da = circular_distance(a.id, key);
  const Id db = circular_distance(b.id, key);
  if (da != db) return da < db;
  if (a.id == b.id) return false;
  // Equal circular distance: prefer the node on the clockwise side of key.
  const bool a_cw = (a.id - key) == da;
  const bool b_cw = (b.id - key) == db;
  if (a_cw != b_cw) return a_cw;
  return a.id < b.id;
}

bool PastryNode::owns(Id key) const {
  const Peer me = self();
  for (const auto& l : leaves_) {
    if (l.valid() && closer_to(key, l, me)) return false;
  }
  return true;
}

Peer PastryNode::next_hop(Id key) const {
  const Peer me = self();
  if (owns(key)) return Peer{};

  // Leaf-set span: the circular arc from the farthest counter-clockwise
  // leaf to the farthest clockwise leaf (through self). Inside it, jump to
  // the numerically closest leaf.
  Id cw_far = id_, ccw_far = id_;
  Id cw_best = 0, ccw_best = 0;
  for (const auto& l : leaves_) {
    if (!l.valid()) continue;
    const Id cw = l.id - id_;
    const Id ccw = id_ - l.id;
    if (cw < ccw) {
      if (cw > cw_best) {
        cw_best = cw;
        cw_far = l.id;
      }
    } else if (ccw > ccw_best) {
      ccw_best = ccw;
      ccw_far = l.id;
    }
  }
  if (ring::in_open_closed(key, ccw_far - 1, cw_far)) {
    Peer best = me;
    for (const auto& l : leaves_) {
      if (l.valid() && closer_to(key, l, best)) best = l;
    }
    if (best.id != id_) return best;
    return Peer{};  // we are closest after all
  }

  // Prefix routing: one more matching digit.
  const int r = shared_prefix_digits(id_, key);
  if (r < kDigits) {
    const Peer& entry = table_[std::size_t(r)][std::size_t(digit_of(key, r))];
    if (entry.valid()) return entry;
  }

  // Rare fallback: any known node with at least as long a prefix that is
  // strictly numerically closer.
  Peer best{};
  int best_prefix = -1;
  const Id my_dist = circular_distance(id_, key);
  auto consider = [&](const Peer& p) {
    if (!p.valid() || p.id == id_) return;
    if (circular_distance(p.id, key) >= my_dist) return;
    const int pr = shared_prefix_digits(p.id, key);
    if (pr < r) return;
    if (pr > best_prefix ||
        (pr == best_prefix && best.valid() && closer_to(key, p, best))) {
      best_prefix = pr;
      best = p;
    }
  };
  for (const auto& l : leaves_) consider(l);
  for (const auto& row : table_) {
    for (const auto& p : row) consider(p);
  }
  return best;
}

std::vector<Peer> PastryNode::neighbors() const {
  std::vector<Peer> out;
  auto add = [&](const Peer& p) {
    if (!p.valid() || p.id == id_) return;
    for (const auto& e : out) {
      if (e.id == p.id) return;
    }
    out.push_back(p);
  };
  for (const auto& l : leaves_) add(l);
  for (const auto& row : table_) {
    for (const auto& p : row) add(p);
  }
  return out;
}

// ---------------------------------------------------------------------------
// PastryNet
// ---------------------------------------------------------------------------

PastryNet::PastryNet(net::Network& net, const Params& params)
    : net_(net), params_(params) {
  Rng rng(params.seed);
  const auto ids = chord::random_ids(net.size(), rng);
  nodes_.reserve(net.size());
  for (net::HostIndex h = 0; h < net.size(); ++h) {
    nodes_.push_back(std::make_unique<PastryNode>(ids[h], h));
  }
}

Peer PastryNet::oracle_owner(Id key) const {
  Peer best{};
  for (const auto& n : nodes_) {
    if (!net_.alive(n->host())) continue;
    const Peer p = n->self();
    if (!best.valid() || closer_to(key, p, best)) best = p;
  }
  return best;
}

void PastryNet::oracle_build() {
  // Sorted ring view.
  std::vector<Peer> ring;
  ring.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (net_.alive(n->host())) ring.push_back(n->self());
  }
  std::sort(ring.begin(), ring.end(),
            [](const Peer& a, const Peer& b) { return a.id < b.id; });
  const std::size_t n = ring.size();
  std::vector<Id> ids;
  ids.reserve(n);
  for (const auto& p : ring) ids.push_back(p.id);

  for (std::size_t i = 0; i < n; ++i) {
    PastryNode& nd = *nodes_[ring[i].host];
    // Leaf set: L/2 distinct nodes on each side (fewer when the network
    // is smaller than the leaf set).
    nd.leaf_set().clear();
    const std::size_t half = std::min(params_.leaf_set / 2, n - 1);
    auto add_leaf = [&nd](const Peer& p) {
      if (p.id == nd.id()) return;
      for (const auto& e : nd.leaf_set()) {
        if (e.id == p.id) return;
      }
      nd.leaf_set().push_back(p);
    };
    for (std::size_t k = 1; k <= half; ++k) {
      add_leaf(ring[(i + k) % n]);
      add_leaf(ring[(i + n - k) % n]);
    }
    // Routing table with locality: among the nodes matching (prefix, next
    // digit), pick the lowest-latency candidate.
    for (int r = 0; r < kDigits; ++r) {
      const int my_digit = digit_of(nd.id(), r);
      const int rem_bits = kIdBits - kDigitBits * (r + 1);
      const Id prefix = rem_bits + kDigitBits >= kIdBits
                            ? 0
                            : (nd.id() >> (rem_bits + kDigitBits))
                                  << (rem_bits + kDigitBits);
      for (int c = 0; c < kDigitBase; ++c) {
        if (c == my_digit) continue;
        const Id lo = prefix | (Id(c) << rem_bits);
        const Id hi = lo | (rem_bits == 0 ? 0 : ((Id{1} << rem_bits) - 1));
        std::size_t idx = chord::successor_index(ids, lo);
        Peer chosen{};
        double best_lat = 0.0;
        for (std::size_t tried = 0;
             tried < params_.candidates && idx < n && ids[idx] <= hi &&
             ids[idx] >= lo;
             ++tried, ++idx) {
          const Peer& cand = ring[idx];
          const double lat =
              net_.topology().latency(nd.host(), cand.host);
          if (!chosen.valid() || lat < best_lat) {
            chosen = cand;
            best_lat = lat;
          }
        }
        nd.set_table(r, c, chosen);
      }
    }
  }
}

Peer PastryNet::next_hop(net::HostIndex h, Id key) const {
  return nodes_[h]->next_hop(key);
}

std::vector<Peer> PastryNet::replica_set(net::HostIndex h,
                                         std::size_t k) const {
  // Clockwise-nearest leaves first.
  std::vector<Peer> leaves = nodes_[h]->leaf_set();
  const Id me = nodes_[h]->id();
  std::sort(leaves.begin(), leaves.end(),
            [me](const Peer& a, const Peer& b) {
              return (a.id - me) < (b.id - me);  // clockwise distance
            });
  if (leaves.size() > k) leaves.resize(k);
  return leaves;
}

void PastryNet::route(net::HostIndex from, Id key, std::uint64_t extra_bytes,
                      RouteCallback cb) {
  auto shared = std::make_shared<RouteCallback>(std::move(cb));
  route_step(from, key, extra_bytes, 0, net_.simulator().now(),
             std::move(shared));
}

void PastryNet::route_step(net::HostIndex at, Id key,
                           std::uint64_t extra_bytes, int hops,
                           double issued,
                           std::shared_ptr<RouteCallback> cb) {
  PastryNode& nd = *nodes_[at];
  const Peer next = nd.next_hop(key);
  if (!next.valid()) {
    // We are the owner (or an isolated dead end, which cannot happen on an
    // oracle-built overlay).
    RouteResult r;
    r.owner = nd.self();
    r.hops = hops;
    r.latency_ms = net_.simulator().now() - issued;
    (*cb)(r);
    return;
  }
  const std::uint64_t bytes =
      overlay::kHeaderBytes + overlay::kKeyBytes + extra_bytes;
  net_.send(at, next.host, bytes,
            [this, to = next.host, key, extra_bytes, hops, issued, cb] {
              route_step(to, key, extra_bytes, hops + 1, issued, cb);
            });
}

}  // namespace hypersub::pastry
