#pragma once
// CAN (Content-Addressable Network) overlay — the substrate Meghdoot [11]
// builds on; implemented here so the ablation benches can compare HyperSub
// against a Meghdoot-like baseline on its native overlay.
//
// The coordinate space is the unit d-cube. Nodes join by picking a random
// point; the zone owning the point splits in half along its longest side
// and the joiner takes the half containing the point. Routing is greedy:
// forward to the neighbor whose zone is closest to the target point.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/hyperrect.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"

namespace hypersub::can {

/// One CAN node: its zone of the unit cube and its adjacent zones' owners.
struct CanNode {
  HyperRect zone;
  std::vector<net::HostIndex> neighbors;
};

class CanNet {
 public:
  struct Params {
    std::size_t dims = 2;
    std::uint64_t seed = 1;
  };

  /// Builds the overlay by joining every network host sequentially.
  CanNet(net::Network& net, const Params& params);

  std::size_t size() const noexcept { return nodes_.size(); }
  std::size_t dims() const noexcept { return dims_; }
  net::Network& network() noexcept { return net_; }
  const CanNode& node(net::HostIndex h) const { return nodes_[h]; }

  /// Ground truth: host whose zone contains `p` (boundaries resolve to the
  /// first owner found; zones partition the cube).
  net::HostIndex owner_of(const Point& p) const;

  struct RouteResult {
    net::HostIndex owner = 0;
    int hops = 0;
    double latency_ms = 0.0;
  };
  using RouteCallback = std::function<void(const RouteResult&)>;

  /// Greedy routing of `p` (unit-cube coordinates) from `from`; callback
  /// fires at the owner.
  void route(net::HostIndex from, const Point& p, std::uint64_t bytes,
             RouteCallback cb);

  /// Deliver `on_visit` at every node whose zone overlaps `region`,
  /// starting from the zone containing `start` (which must lie in the
  /// region). Visits propagate zone-to-zone through neighbor links; each
  /// overlapping zone is visited exactly once. `on_done(max_hops)` fires
  /// when the flood quiesces. The duplicate-suppression set is centralized
  /// (a simulator shortcut for Meghdoot's parent-pointer scheme; the
  /// message pattern and costs are the same).
  void region_multicast(net::HostIndex from, const Point& start,
                        const HyperRect& region, std::uint64_t bytes,
                        std::function<void(net::HostIndex, int)> on_visit,
                        std::function<void(int)> on_done);

  /// Structural invariants (tests): zones tile the unit cube; neighbor
  /// lists are symmetric and geometrically correct.
  bool check_invariants() const;

 private:
  void split_and_join(net::HostIndex owner, net::HostIndex joiner,
                      const Point& p);
  static bool adjacent(const HyperRect& a, const HyperRect& b);
  double distance_to_zone(const HyperRect& z, const Point& p) const;
  void route_step(net::HostIndex at, const Point& p, std::uint64_t bytes,
                  int hops, double issued, std::shared_ptr<RouteCallback> cb);

  net::Network& net_;
  std::size_t dims_;
  std::vector<CanNode> nodes_;
};

}  // namespace hypersub::can
