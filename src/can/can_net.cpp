#include "can/can_net.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hypersub::can {

CanNet::CanNet(net::Network& net, const Params& params)
    : net_(net), dims_(params.dims) {
  assert(net.size() >= 1);
  assert(dims_ >= 1);
  nodes_.resize(net.size());
  nodes_[0].zone = HyperRect::uniform(dims_, 0.0, 1.0);
  Rng rng(params.seed);
  for (net::HostIndex h = 1; h < net.size(); ++h) {
    Point p(dims_);
    for (auto& x : p) x = rng.uniform(0.0, 1.0);
    split_and_join(owner_of(p), h, p);
  }
}

net::HostIndex CanNet::owner_of(const Point& p) const {
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    if (!nodes_[h].zone.empty() && nodes_[h].zone.contains(p)) return h;
  }
  assert(false && "point not covered by any zone");
  return 0;
}

bool CanNet::adjacent(const HyperRect& a, const HyperRect& b) {
  if (a.empty() || b.empty()) return false;
  // Abutting in exactly one dimension, overlapping (positively) in others.
  std::size_t touch = 0;
  for (std::size_t i = 0; i < a.dimensions(); ++i) {
    const Interval& x = a.dim(i);
    const Interval& y = b.dim(i);
    if (x.hi == y.lo || y.hi == x.lo) {
      ++touch;
    } else if (std::min(x.hi, y.hi) > std::max(x.lo, y.lo)) {
      // positive overlap — fine
    } else {
      return false;  // disjoint with a gap
    }
  }
  // touch == 1: face-adjacent. touch > 1: corner/edge contact only (the
  // "overlap" in the remaining dims was zero-length), not CAN-adjacent.
  return touch == 1;
}

void CanNet::split_and_join(net::HostIndex owner, net::HostIndex joiner,
                            const Point& p) {
  CanNode& o = nodes_[owner];
  CanNode& j = nodes_[joiner];
  // Split along the longest side (ties -> lowest dimension).
  std::size_t dim = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < dims_; ++i) {
    if (o.zone.dim(i).length() > best) {
      best = o.zone.dim(i).length();
      dim = i;
    }
  }
  const double mid = o.zone.dim(dim).center();
  HyperRect low = o.zone, high = o.zone;
  low.dim(dim) = Interval{o.zone.dim(dim).lo, mid};
  high.dim(dim) = Interval{mid, o.zone.dim(dim).hi};
  // Joiner takes the half containing p; boundary goes to the low half.
  const bool joiner_high = p[dim] > mid;
  j.zone = joiner_high ? high : low;
  o.zone = joiner_high ? low : high;

  // Rebuild adjacency among {owner, joiner} x old neighbors.
  const std::vector<net::HostIndex> old_neighbors = o.neighbors;
  o.neighbors.clear();
  j.neighbors.clear();
  auto link = [this](net::HostIndex a, net::HostIndex b) {
    nodes_[a].neighbors.push_back(b);
    nodes_[b].neighbors.push_back(a);
  };
  for (const net::HostIndex nb : old_neighbors) {
    auto& nlist = nodes_[nb].neighbors;
    nlist.erase(std::remove(nlist.begin(), nlist.end(), owner), nlist.end());
    if (adjacent(o.zone, nodes_[nb].zone)) link(owner, nb);
    if (adjacent(j.zone, nodes_[nb].zone)) link(joiner, nb);
  }
  link(owner, joiner);
}

double CanNet::distance_to_zone(const HyperRect& z, const Point& p) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < dims_; ++i) {
    double d = 0.0;
    if (p[i] < z.dim(i).lo) d = z.dim(i).lo - p[i];
    else if (p[i] > z.dim(i).hi) d = p[i] - z.dim(i).hi;
    d2 += d * d;
  }
  return d2;
}

void CanNet::route(net::HostIndex from, const Point& p, std::uint64_t bytes,
                   RouteCallback cb) {
  auto shared = std::make_shared<RouteCallback>(std::move(cb));
  route_step(from, p, bytes, 0, net_.simulator().now(), std::move(shared));
}

void CanNet::route_step(net::HostIndex at, const Point& p,
                        std::uint64_t bytes, int hops, double issued,
                        std::shared_ptr<RouteCallback> cb) {
  const CanNode& nd = nodes_[at];
  if (nd.zone.contains(p)) {
    (*cb)(RouteResult{at, hops, net_.simulator().now() - issued});
    return;
  }
  // Greedy: neighbor whose zone is closest to the target.
  net::HostIndex next = at;
  double best = distance_to_zone(nd.zone, p);
  for (const net::HostIndex nb : nd.neighbors) {
    const double d = distance_to_zone(nodes_[nb].zone, p);
    if (d < best) {
      best = d;
      next = nb;
    }
  }
  if (next == at) return;  // greedy dead end (cannot happen on a valid tiling)
  net_.send(at, next, bytes, [this, next, p, bytes, hops, issued, cb] {
    route_step(next, p, bytes, hops + 1, issued, cb);
  });
}

void CanNet::region_multicast(
    net::HostIndex from, const Point& start, const HyperRect& region,
    std::uint64_t bytes, std::function<void(net::HostIndex, int)> on_visit,
    std::function<void(int)> on_done) {
  struct Flood {
    std::unordered_set<net::HostIndex> visited;
    std::size_t outstanding = 0;
    int max_hops = 0;
    std::function<void(net::HostIndex, int)> on_visit;
    std::function<void(int)> on_done;
  };
  auto flood = std::make_shared<Flood>();
  flood->on_visit = std::move(on_visit);
  flood->on_done = std::move(on_done);

  // Recursive spreader: visit, then forward to unvisited overlapping
  // neighbors.
  auto spread = std::make_shared<std::function<void(net::HostIndex, int)>>();
  *spread = [this, flood, region, bytes, spread](net::HostIndex at,
                                                 int hops) {
    flood->max_hops = std::max(flood->max_hops, hops);
    flood->on_visit(at, hops);
    for (const net::HostIndex nb : nodes_[at].neighbors) {
      if (!nodes_[nb].zone.overlaps(region)) continue;
      if (!flood->visited.insert(nb).second) continue;
      ++flood->outstanding;
      net_.send(at, nb, bytes, [flood, spread, nb, hops] {
        (*spread)(nb, hops + 1);
        --flood->outstanding;
        if (flood->outstanding == 0 && flood->on_done) {
          flood->on_done(flood->max_hops);
        }
      });
    }
  };

  route(from, start, bytes,
        [flood, spread](const RouteResult& r) {
          flood->visited.insert(r.owner);
          ++flood->outstanding;
          (*spread)(r.owner, r.hops);
          --flood->outstanding;
          if (flood->outstanding == 0 && flood->on_done) {
            flood->on_done(flood->max_hops);
          }
        });
}

bool CanNet::check_invariants() const {
  // Volumes tile the unit cube.
  double vol = 0.0;
  const HyperRect unit = HyperRect::uniform(dims_, 0.0, 1.0);
  for (const auto& n : nodes_) {
    if (n.zone.empty()) return false;
    vol += n.zone.volume_fraction(unit);
  }
  if (std::abs(vol - 1.0) > 1e-9 * double(nodes_.size())) return false;
  // Neighbor symmetry + geometric adjacency.
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    for (const net::HostIndex nb : nodes_[h].neighbors) {
      if (!adjacent(nodes_[h].zone, nodes_[nb].zone)) return false;
      const auto& back = nodes_[nb].neighbors;
      if (std::find(back.begin(), back.end(), h) == back.end()) return false;
    }
  }
  return true;
}

}  // namespace hypersub::can
