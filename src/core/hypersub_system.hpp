#pragma once
// HyperSubSystem: the distributed pub/sub service itself.
//
// Wires the HyperSub protocol (paper Algorithms 2-5) onto a ChordNet:
//   subscribe()  — Alg. 2 + Alg. 3 (installation + summary-filter pieces)
//   publish()    — Alg. 4 (LPH rendezvous per subscheme)
//   event messages — Alg. 5 (match + split across DHT links, recursively)
// plus the §4 load-balancing hooks (rotation is in the subscheme layer;
// dynamic migration is driven by LoadBalancer) and the publish fast lane:
// per-node rendezvous route caching (RouteCache) and per-next-hop event
// batching, both off by default = the paper's behavior.
//
// The system also owns experiment observability: per-event cost trackers,
// the pluggable delivery sink, and per-node loads.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "overlay/overlay.hpp"
#include "core/delivery_sink.hpp"
#include "core/hypersub_node.hpp"
#include "core/route_cache.hpp"
#include "core/subscheme.hpp"
#include "metrics/event_metrics.hpp"
#include "metrics/fastlane_metrics.hpp"
#include "metrics/reliability_metrics.hpp"
#include "net/reliable_channel.hpp"
#include "pubsub/event.hpp"
#include "trace/tracer.hpp"

namespace hypersub::core {

class LoadBalancer;

/// How the overlay acquires its routing state when the system is built.
enum class BootstrapMode {
  /// The overlay starts as constructed; nodes enter via join_node() (or
  /// the caller drives the substrate directly). Protocol-faithful path.
  kNone,
  /// One-shot oracle build (Overlay::build): every node's routing state is
  /// computed from global knowledge — the "after stabilization" setup for
  /// large experiments, equivalent to a fully converged join sequence.
  kOracle,
};

/// Identifies one installed subscription: returned by subscribe(),
/// consumed by unsubscribe(). Callers no longer need to retain (and
/// re-pass bit-identically) the Subscription itself — the subscriber node
/// keeps the authoritative copy, and the handle is the key to it.
struct SubscriptionHandle {
  std::uint32_t scheme = 0;
  std::uint32_t iid = 0;
  net::HostIndex subscriber = overlay::Peer::kInvalidHost;

  bool valid() const noexcept {
    return subscriber != overlay::Peer::kInvalidHost;
  }
  friend bool operator==(const SubscriptionHandle&,
                         const SubscriptionHandle&) = default;
};

class HyperSubSystem {
 public:
  struct Config {
    /// Alternative to the paper's summary-filter piece propagation: events
    /// probe every ancestor zone directly (ablation; default off = paper).
    bool ancestor_probing = false;
    /// Robustness extension: replicate every zone registration to this
    /// many of the owner's would-be heirs (overlay replica_set). When the
    /// owner fails and the DHT repairs, the promoted node matches from its
    /// replicas, so subscriptions survive surrogate failures. 0 = paper
    /// behavior (state on dead nodes is lost).
    std::size_t replicas = 0;
    /// Zones (and migrated buckets) holding at least this many
    /// subscriptions match through a SubIndex instead of a linear scan;
    /// ~size_t(-1) disables indexing entirely (see ZoneState).
    std::size_t match_index_threshold = ZoneState::kDefaultIndexThreshold;
    /// Reliability extension: event-delivery messages (and load-balancer
    /// migrations) ride a ReliableChannel — acked, retried with backoff,
    /// and rerouted through backup hops when the next hop stays dead.
    /// Deliveries are deduplicated per (event, subscriber, subscription).
    /// Off by default = the paper's fire-and-forget behavior.
    bool reliable_delivery = false;
    /// Transport knobs of the reliable channel (ack deadline must exceed
    /// the topology's worst-case RTT).
    net::ReliableChannel::Config reliable;
    /// Hop TTL for event messages under reliable delivery. Reroutes can
    /// detour through nodes with stale routing state; the TTL bounds any
    /// livelock and converts it into a counted, truncated-flagged drop.
    int max_event_hops = 128;
    /// Publish fast lane, leg 1: every publisher keeps an LRU RouteCache
    /// of rendezvous zone key -> owner host and hands events straight to
    /// cached owners (one hop instead of a full greedy route). Misses and
    /// stale hits fall back to normal routing; the true owner corrects the
    /// publisher's cache on arrival. Off by default = paper behavior.
    bool route_cache = false;
    std::size_t route_cache_capacity = RouteCache::kDefaultCapacity;
    /// Publish fast lane, leg 2: event messages sharing (sender, next hop)
    /// within one simulator timestep coalesce into a single frame paying
    /// one packet header (cross-event extension of the paper's §3.3
    /// per-event aggregation). Off by default = paper behavior.
    bool batch_forwarding = false;
    /// Fraction of publishes/installs recorded when a tracer is attached
    /// (set_tracer). Sampling is a deterministic hash of the trace id, so
    /// the same seed + rate always keeps the same traces. Irrelevant (and
    /// costless) while no tracer is attached.
    double trace_sample_rate = 1.0;
    /// Fold per-event cost records into running sums instead of storing
    /// them (metrics::EventMetrics streaming mode) — O(1) metrics memory
    /// for million-event runs. CDF views come back empty; the snapshot
    /// means are unchanged. Survives reset_metrics().
    bool stream_event_metrics = false;
    /// Covering-based subscription aggregation (core::CoverSet): a
    /// subscription whose full-space rect is contained in one already
    /// registered at the same zone is quenched — stored locally under the
    /// covering representative, kept out of the SubIndex and upward piece
    /// propagation, and re-expanded (with an exact per-sub check) only at
    /// the matching node. In-flight subid lists are additionally sorted by
    /// target so same-subscriber runs collapse under the grouped wire
    /// encoding (subid_list_wire_bytes). Delivery sets are identical with
    /// the flag on or off. Off by default = paper behavior.
    bool cover_aggregation = false;
    /// Path-compressed zone tree (core::ZoneChainSet): maximal chains of
    /// piece-only structural zones — no subscriptions, no buckets, exactly
    /// one non-empty child piece — are stored as single compressed records
    /// instead of one ZoneState per level. Cuts the zone tree's memory and
    /// lets piece cascades jump head-to-tail in one step; event matching,
    /// zone fingerprints, and delivery sets are identical with the flag on
    /// or off. Effective only without ancestor probing (which needs every
    /// ancestor materialized) and without replicas (replica images mirror
    /// materialized zones); in those modes the flag is ignored.
    bool compress_zone_chains = true;
    /// Overlay bootstrap at construction (see BootstrapMode). kOracle runs
    /// Overlay::build(build_threads) in the constructor, before the
    /// ownership listener is installed — the initial table construction is
    /// setup, not a runtime ownership flip.
    BootstrapMode bootstrap = BootstrapMode::kNone;
    /// Worker threads for the oracle build (substrates that cannot shard
    /// ignore it).
    unsigned build_threads = 1;
    /// Interval of the old owner's handover tick during a live state
    /// transfer: the write-behind queue is shipped and the
    /// ownership-flip/commit condition re-checked this often.
    double handover_tick_ms = 5.0;
    /// Abort an unfinished transfer after this long (joiner death,
    /// stabilization never flipping ownership, snapshot source death). The
    /// old owner keeps its zones on abort; the joiner stops warming and
    /// serves with whatever arrived.
    double handover_timeout_ms = 10000.0;
  };

  /// Per-publish observer: fires once per delivery of that event.
  using DeliveryCallback = std::function<void(const Delivery&)>;

  /// Build on any DHT substrate (Chord, Pastry, ...).
  explicit HyperSubSystem(overlay::Overlay& dht)
      : HyperSubSystem(dht, Config{}) {}
  HyperSubSystem(overlay::Overlay& dht, Config cfg);
  ~HyperSubSystem();

  HyperSubSystem(const HyperSubSystem&) = delete;
  HyperSubSystem& operator=(const HyperSubSystem&) = delete;

  overlay::Overlay& overlay() noexcept { return dht_; }
  net::Network& network() noexcept { return dht_.network(); }
  sim::Simulator& simulator() noexcept { return dht_.simulator(); }
  const Config& config() const noexcept { return cfg_; }

  // -- schemes ---------------------------------------------------------------

  /// Register a pub/sub scheme; returns its index. HyperSub supports any
  /// number of simultaneous schemes (§1).
  std::uint32_t add_scheme(pubsub::Scheme scheme, const SchemeOptions& opt);
  std::size_t scheme_count() const noexcept { return schemes_.size(); }
  const SchemeRuntime& scheme_runtime(std::uint32_t s) const {
    return *schemes_[s];
  }

  // -- subscriber/publisher API -----------------------------------------------

  /// Install a subscription for `subscriber` (Alg. 2). Asynchronous: the
  /// installation completes in simulated time. The returned handle is the
  /// key for unsubscribe().
  SubscriptionHandle subscribe(net::HostIndex subscriber,
                               std::uint32_t scheme,
                               pubsub::Subscription sub);

  /// Remove a previously installed subscription (extension; the paper
  /// leaves unsubscription unspecified). The stored subscription is looked
  /// up at the subscriber node; an unknown handle is a no-op.
  void unsubscribe(const SubscriptionHandle& handle);

  /// One entry of a bulk installation batch.
  struct BulkSub {
    net::HostIndex subscriber = 0;
    pubsub::Subscription sub;
  };

  /// Bulk (oracle) installation: installs `subs` directly into their
  /// owners' zone repositories — no simulated routing traffic, no per-sub
  /// install messages — then runs one deterministic top-down summary-piece
  /// fixpoint, reproducing the zone state a fully drained subscribe()
  /// cascade would reach (up to per-zone insertion order, which follows
  /// batch order here and message-arrival order there). This is the
  /// "after system stabilization" setup path for million-subscription
  /// runs. Returns handles in input order.
  ///
  /// `threads` shards the subscriber-side bookkeeping and the owner-side
  /// installs over disjoint host ranges; the result is independent of the
  /// thread count. Requires a substrate with global knowledge
  /// (Overlay::oracle_owner_table); substrates without it fall back to
  /// per-subscription routed installs, which the caller must drain with
  /// simulator().run() as usual.
  std::vector<SubscriptionHandle> bulk_subscribe(std::uint32_t scheme,
                                                 std::vector<BulkSub> subs,
                                                 unsigned threads = 1);

  /// Publish an event (Alg. 4). Asynchronous; returns the event sequence
  /// number used in metrics and the delivery log.
  std::uint64_t publish(net::HostIndex publisher, std::uint32_t scheme,
                        pubsub::Event event) {
    return publish(publisher, scheme, std::move(event), DeliveryCallback{});
  }

  /// Publish with a per-event observer: `on_delivery` fires (in simulated
  /// time) for every subscriber this event reaches, in addition to the
  /// system-wide delivery sink.
  std::uint64_t publish(net::HostIndex publisher, std::uint32_t scheme,
                        pubsub::Event event, DeliveryCallback on_delivery);

  // -- node lifecycle ----------------------------------------------------------
  // One surface for every way a node enters or exits the system. Oracle
  // builds are Config::bootstrap; everything at runtime goes through here.

  /// Counters of the join/leave state-transfer machinery.
  struct JoinStats {
    std::uint64_t joins_started = 0;
    std::uint64_t joins_committed = 0;   ///< handshake completed, state live
    std::uint64_t joins_aborted = 0;     ///< timeout / peer death mid-transfer
    std::uint64_t leaves_completed = 0;
    std::uint64_t zones_transferred = 0; ///< zone snapshots shipped
    std::uint64_t transfer_bytes = 0;    ///< snapshot + queued-op + re-seed frames
    std::uint64_t queued_ops_replayed = 0;  ///< write-behind ops applied at target
    std::uint64_t warm_ops_replayed = 0;    ///< full-path ops deferred at joiners
    std::uint64_t events_buffered = 0;      ///< event messages parked while warming
    double total_handoff_ms = 0.0;  ///< handover start -> commit, summed
                                    ///< over joins and graceful leaves
    double max_handoff_ms = 0.0;
  };

  /// Protocol join with live state transfer: revives `host` if dead, wipes
  /// its surrogate-side state (its own subscriptions stay installed),
  /// splices it into the overlay via `bootstrap`, then runs the
  /// snapshot-then-replay handshake against the current owner of the zone
  /// range it acquires. Until the handshake commits the joiner "warms":
  /// installs and owned events arriving at it are buffered and replayed
  /// after the transferred state lands. Asynchronous — drive the simulator
  /// to completion; join_stats() records the commit.
  void join_node(net::HostIndex host, net::HostIndex bootstrap);

  /// Graceful departure: pushes every hosted zone to the successor (same
  /// snapshot + write-behind machinery, inverted), bridges late installs,
  /// then splices out of the overlay and dies. Asynchronous.
  void leave_node(net::HostIndex host);

  /// Abrupt failure: the existing kill path (no state transfer; replicas
  /// and DHT repair are the only recovery).
  void crash_node(net::HostIndex host);

  /// Serialize one node's complete pub/sub state (HyperSubNode::save).
  std::vector<std::uint8_t> snapshot_node(net::HostIndex host) const;

  /// Resurrect `host` from a snapshot_node() image: revive, restore state
  /// verbatim, re-splice into the overlay via `bootstrap` (no transfer —
  /// the node resumes as if it never lost its disk). The 2-arg overload
  /// picks the lowest-index live host as bootstrap. Intended for
  /// whole-system checkpoint workflows; a node whose keys drifted to other
  /// owners while it was down should use join_node() instead.
  void restore_node(net::HostIndex host,
                    const std::vector<std::uint8_t>& snapshot,
                    net::HostIndex bootstrap);
  void restore_node(net::HostIndex host,
                    const std::vector<std::uint8_t>& snapshot);

  const JoinStats& join_stats() const noexcept { return join_stats_; }
  /// True while any transfer session or warming joiner is outstanding.
  bool transfer_active() const noexcept;

  // -- whole-system checkpointing ---------------------------------------------

  /// Serialize all mutable pub/sub state: every node, route caches, event
  /// metrics, counters, the delivery sink rows, and dedup sets. Call only
  /// at quiescence (simulator drained, finalize_events() called, no
  /// transfer active); schemes are config, re-added by the caller before
  /// restore_state(). Composes with Network/Overlay/Tracer save_state into
  /// a full-run checkpoint (runner::checkpoint).
  void save_state(common::ByteWriter& w) const;
  void restore_state(common::ByteReader& r);

  // -- observability -----------------------------------------------------------

  /// Deliveries recorded by the built-in VectorDeliverySink (empty while a
  /// custom sink is installed).
  const std::vector<Delivery>& deliveries() const noexcept {
    return default_sink_.rows();
  }

  /// Route deliveries into `sink` instead of the built-in vector sink. The
  /// sink must outlive the system (or the next set_delivery_sink call).
  void set_delivery_sink(DeliverySink& sink) { sink_ = &sink; }
  /// Restore the built-in vector sink.
  void reset_delivery_sink() { sink_ = &default_sink_; }

  metrics::EventMetrics& event_metrics() noexcept { return event_metrics_; }
  const metrics::EventMetrics& event_metrics() const noexcept {
    return event_metrics_;
  }

  /// Transport + failover counters of the reliable delivery path (all zero
  /// unless config().reliable_delivery).
  metrics::ReliabilityCounters reliability_counters() const;
  net::ReliableChannel& reliable_channel() noexcept { return channel_; }

  /// Publisher-side route cache of host `h` (populated only when
  /// config().route_cache).
  RouteCache& route_cache(net::HostIndex h) { return *caches_[h]; }
  const RouteCache& route_cache(net::HostIndex h) const { return *caches_[h]; }
  /// System-wide sum of all per-node route-cache counters.
  metrics::RouteCacheCounters route_cache_counters() const;
  /// Frame-coalescing counters (all zero unless config().batch_forwarding).
  metrics::BatchCounters batch_counters() const noexcept { return batch_; }
  /// Covering-aggregation counters: representative/quenched gauges summed
  /// over live primary zones, plus promotion and wire-savings counters
  /// (all zero unless config().cover_aggregation).
  metrics::CoverCounters cover_counters() const;

  /// Attach (or detach, with nullptr) a span recorder. Wires the whole
  /// stack: the pub/sub core, the reliable event channel, and the DHT
  /// substrate all record into the same tracer, so one event's causal tree
  /// spans every layer. Config::trace_sample_rate decides which trees are
  /// kept. The tracer is not owned and must outlive the system (or be
  /// detached first).
  void set_tracer(trace::Tracer* t) {
    tracer_ = t;
    // Bind the tracer to this simulation so span ids are minted per shard
    // (identical across thread counts) and log appends from worker
    // contexts are deferred to window barriers.
    if (auto* tr = trace::maybe(t)) tr->bind(&simulator(), dht_.size());
    channel_.set_tracer(t);
    dht_.set_tracer(t);
  }
  /// The attached tracer (nullptr when detached or compiled out).
  trace::Tracer* tracer() const noexcept { return trace::maybe(tracer_); }

  /// Finalize trackers of events whose message trees were cut short (e.g.
  /// by node failures); call after the simulation drains.
  void finalize_events();

  /// Clear event metrics, the delivery sink, and fast-lane counters (e.g.
  /// after warm-up). Cached routes stay warm; only their counters reset.
  void reset_metrics();

  /// Current per-node loads (paper's stored-subscription metric).
  std::vector<std::size_t> node_loads() const;

  /// Piece-inclusive per-node storage footprints (see
  /// HyperSubNode::stored_entries).
  std::vector<std::size_t> node_stored_entries() const;

  /// Live subscriptions in the whole system (for % matched).
  std::size_t total_subscriptions() const noexcept { return total_subs_; }

  HyperSubNode& node(net::HostIndex h) { return *nodes_[h]; }
  const HyperSubNode& node(net::HostIndex h) const { return *nodes_[h]; }

  /// Structural invariants over all hosted zone state; call only after the
  /// simulation has quiesced. Checks that every zone's summary filter is
  /// exactly the hull of its contents, that stored subscriptions project
  /// inside their zone's extent, and that cached child pieces equal
  /// summary ∩ child-extent. Returns false (and stops) on first violation.
  bool check_zone_invariants() const;

  /// Order-insensitive digest of the logical zone tree: every stored zone
  /// row — materialized or an implicit compressed-chain member — folds in
  /// as hash(scheme, subscheme, code, level, fingerprint). Husks (zones
  /// storing nothing: no subscriptions, no buckets, no parent piece) are
  /// skipped on both sides, so compressed and uncompressed runs of the
  /// same workload must produce the same digest.
  std::uint64_t zone_content_digest() const;

 private:
  friend class LoadBalancer;

  /// Where a subscheme's rendezvous probe was cache-directed (invalid host
  /// = it rode normal routing), so the consuming owner can correct the
  /// publisher's cache.
  struct RendezvousProbe {
    Id key = 0;
    net::HostIndex sent_to = overlay::Peer::kInvalidHost;
  };

  /// Immutable per-event context shared by all messages of one event.
  struct EventCtx {
    std::uint64_t seq;
    std::uint32_t scheme;
    net::HostIndex origin = overlay::Peer::kInvalidHost;
    pubsub::Event event;
    std::vector<Point> projected;          // per subscheme
    std::vector<RendezvousProbe> rendezvous;  // per subscheme
    DeliveryCallback on_delivery;          // per-publish observer (optional)
    trace::TraceId trace = trace::kNoTrace;  ///< kNoTrace = not sampled
    trace::SpanId root = trace::kNoSpan;     ///< the publish span
  };
  using EventCtxPtr = std::shared_ptr<const EventCtx>;

  struct Tracker {
    double publish_time = 0.0;
    std::size_t outstanding = 0;
    std::size_t matched = 0;
    int max_hops = 0;
    double max_latency = 0.0;
    std::uint64_t bytes = 0;
    std::uint64_t header_bytes = 0;
    bool truncated = false;  ///< part of the delivery tree was lost
    trace::SpanId root = trace::kNoSpan;  ///< publish span, closed on finalize
  };

  /// One logical event message riding (alone or batched) in a frame.
  struct FrameChunk {
    EventCtxPtr ctx;
    std::shared_ptr<std::vector<SubId>> subids;
    int hops = 0;
    net::HostIndex failed = overlay::Peer::kInvalidHost;
    /// Forward span opened at the sender; closed on arrival (or at ack
    /// expiry), and the parent of everything the receiver records.
    trace::SpanId fwd_span = trace::kNoSpan;
  };

  // -- live state transfer (join/leave tentpole) ------------------------------
  // One outbound session per old owner and one warm buffer per joiner, each
  // touched only on its own host's shard — handlers run where the transfer
  // messages land, so the protocol is deterministic under --threads=N.

  /// Outbound handover at the old owner: snapshot already shipped; every
  /// in-range mutation is applied locally AND queued as a zone-local replay
  /// closure (write-behind) until the commit condition holds.
  struct TransferOut {
    bool active = false;
    bool leaving = false;    ///< leave push: no ownership watch, bridge after
    bool committed = false;  ///< leave only: snapshot shipped, bridging installs
    net::HostIndex target = overlay::Peer::kInvalidHost;
    Id target_id = 0;
    Id my_id = 0;
    std::uint64_t epoch = 0;  ///< guards stale tick timers
    double started_ms = 0.0;
    double deadline_ms = 0.0;
    std::vector<std::function<void()>> queue;  ///< zone-local ops at target
    std::uint64_t queue_bytes = 0;             ///< wire size of queued ops
  };

  /// Warm buffer at a joiner: zone snapshots and write-behind batches stage
  /// here; full-path work (installs, removals, owned events) defers here.
  struct WarmState {
    bool warming = false;
    std::uint64_t epoch = 0;  ///< guards stale timeout timers
    double started_ms = 0.0;
    net::HostIndex source = overlay::Peer::kInvalidHost;
    std::vector<std::vector<std::uint8_t>> staged;       ///< snapshot frames
    std::vector<std::function<void()>> transfer_ops;     ///< write-behind replays
    std::vector<std::function<void()>> ops;              ///< deferred full-path work
  };

  void begin_state_transfer(net::HostIndex joiner);
  void handle_transfer_request(net::HostIndex owner, net::HostIndex joiner);
  void schedule_handover_tick(net::HostIndex owner, std::uint64_t epoch);
  void handover_tick(net::HostIndex owner, std::uint64_t epoch);
  void commit_join_handover(net::HostIndex owner);
  void commit_leave_handover(net::HostIndex owner);
  void abort_transfer(net::HostIndex owner);
  /// Apply everything a warming joiner staged and stop warming. Called by
  /// the commit frame (normal path) or the warm timeout (source died).
  void finish_warming(net::HostIndex joiner);
  /// True if `key` belongs to the target's post-flip range.
  static bool transfer_moves(const TransferOut& t, Id key);
  /// The rotated key of a hosted zone (pure function of its address).
  Id zone_key_of(const ZoneAddr& addr) const;
  /// Serialize the owner's hosted zones whose key moves with the session,
  /// sorted by (key, addr) for deterministic bytes. Compressed chains ship
  /// as self-contained sub-chain frames after the zone section. When
  /// `moved_entries` is non-null it receives the moved zone count plus the
  /// moved chain member count (the zones_transferred metric).
  std::vector<std::uint8_t> serialize_moved_zones(
      net::HostIndex owner, const TransferOut& t,
      std::uint32_t* moved_entries = nullptr) const;
  /// Install zones from a serialize_moved_zones() image as primary state at
  /// `host`, replacing any primary/replica leftovers for the same address.
  void install_transferred_zones(net::HostIndex host, common::ByteReader& r);
  /// Push a full replica image of (addr, key) to the owner's current heirs
  /// (replaces their replica copy — the post-handover replica chain).
  void reseed_replicas(net::HostIndex owner, const ZoneAddr& addr, Id key);
  /// Queue a zone-local replay op (plus its wire size) on an active
  /// outbound session.
  void queue_transfer_op(TransferOut& t, std::uint64_t bytes,
                         std::function<void()> op);

  void unsubscribe_impl(net::HostIndex subscriber, std::uint32_t scheme,
                        std::uint32_t iid, const pubsub::Subscription& sub);

  // -- path-compressed structural zone chains (zone_chain.hpp) ---------------
  // All chain state lives in the owning node's ZoneChainSet and is mutated
  // only on that node's shard, so compression is parallel-deterministic for
  // free. Every helper below is a no-op (or unreachable) when
  // compress_enabled() is false — the uncompressed paths are byte-for-byte
  // the pre-compression behavior.

  /// Compression is active: flag on, and neither ablation mode that
  /// requires every structural zone materialized.
  bool compress_enabled() const noexcept {
    return cfg_.compress_zone_chains && !cfg_.ancestor_probing &&
           cfg_.replicas == 0;
  }
  /// A summary-filter piece landed on a zone with no materialized state:
  /// create/extend/reshape/dissolve the compressed chain covering it and
  /// route the resulting child-piece deltas.
  void chain_install_piece(net::HostIndex owner, const ZoneAddr& addr,
                           Id rotated_key, HyperRect piece, Id parent_key);
  /// Apply a new head piece to a chain whose record was already removed
  /// from the set: keep the longest surviving prefix, split off (and
  /// re-install into) the suffix, and route the frontier deltas.
  void chain_reshape(net::HostIndex owner, CompressedChain old_c,
                     HyperRect piece, Id parent_key);
  /// Re-absorb merge-eligible neighbors above and below; returns the id of
  /// the surviving record.
  std::uint32_t chain_try_merge(net::HostIndex owner, std::uint32_t id);
  /// Merge after a routed cascade: re-resolves the chain containing `z` by
  /// address (chain ids do not survive the synchronous re-entry a route can
  /// trigger) and runs chain_try_merge on it; no-op if no chain holds `z`.
  void chain_merge_at(net::HostIndex owner, std::uint32_t scheme,
                      std::uint32_t subscheme, const lph::Zone& z, Id key);
  /// If `addr` is a compressed chain member, split it out and materialize
  /// it as a ZoneState carrying its derived piece (and the derived child
  /// pieces in the cache, so the next propagate resends nothing).
  void materialize_if_chained(net::HostIndex owner, const ZoneAddr& addr,
                              Id rotated_key);
  /// Fold a materialized zone that stores only its parent piece back into
  /// a chain (and erase it entirely if it stores nothing at all).
  void try_absorb_zone(net::HostIndex owner, const ZoneAddr& addr,
                       Id rotated_key);
  /// Remove one member from chain `id` (which must contain `z`), splitting
  /// the remainder into prefix/suffix records. Purely structural — no
  /// materialization, no routing; transfer/retire bookkeeping only.
  void drop_chain_member(HyperSubNode& nd, std::uint32_t id,
                         const lph::Zone& z);
  /// Route register_piece_at for every child of `tail` whose derived piece
  /// changes between old_piece and new_piece (including clears).
  void route_tail_child_deltas(net::HostIndex owner, std::uint32_t scheme,
                               std::uint32_t subscheme, const lph::Zone& tail,
                               Id tail_key, const HyperRect& old_piece,
                               const HyperRect& new_piece);
  /// After a handover installs chains on `host`, re-send every hosted
  /// chain's derived tail-child pieces (receivers drop exact duplicates) —
  /// the chain analogue of the propagate_pieces fixup pass.
  void repush_chain_frontiers(net::HostIndex host);

  // Alg. 3: registration at the surrogate node + piece propagation.
  void register_subscription_at(net::HostIndex owner, const ZoneAddr& addr,
                                Id rotated_key, StoredSub stored);
  /// Removal at the surrogate (the inverse of register_subscription_at):
  /// mirrors to replicas and propagates the summary shrink.
  void remove_subscription_at(net::HostIndex owner, const ZoneAddr& addr,
                              Id rotated_key, const SubId& sub);
  void register_piece_at(net::HostIndex owner, const ZoneAddr& addr,
                         Id rotated_key, HyperRect piece, Id parent_key);
  void propagate_pieces(net::HostIndex host, const ZoneAddr& addr);

  // Alg. 5: one event message arriving at `host`. `via` is the span that
  // carried the message here (the incoming forward span, or the publish
  // root for origin-local processing) — the parent of the match span.
  void process_event_message(net::HostIndex host, const EventCtxPtr& ctx,
                             std::vector<SubId> list, int hops,
                             trace::SpanId via = trace::kNoSpan);
  /// Queue one grouped event message `host` -> `to`. Without batching it
  /// leaves immediately as its own frame; with batching it coalesces with
  /// every other chunk bound for the same hop this timestep. `failed` is a
  /// failure-gossip hint for the receiver (invalid host = none). Assumes
  /// the tracker's outstanding count was already incremented for this
  /// message; byte accounting happens at frame-send time.
  void forward_event(net::HostIndex host, net::HostIndex to,
                     const EventCtxPtr& ctx,
                     std::shared_ptr<std::vector<SubId>> sublist, int hops,
                     net::HostIndex failed,
                     trace::SpanId parent = trace::kNoSpan);
  /// Send one frame of chunks `host` -> `to` (fire-and-forget, or acked
  /// with per-chunk reroute-on-expiry under reliable delivery).
  void send_frame(net::HostIndex host, net::HostIndex to,
                  std::shared_ptr<std::vector<FrameChunk>> chunks);
  /// Flush the batched chunks queued for (host, to), if any.
  void flush_batch(net::HostIndex host, net::HostIndex to);
  /// Failover: re-resolve each subid of a message whose next hop died,
  /// excluding the dead hop, and forward the regrouped remainder. Subids
  /// with no viable alternative are dropped (counted, event truncated).
  void reroute_event(net::HostIndex host, const EventCtxPtr& ctx,
                     const std::vector<SubId>& subids, int hops,
                     net::HostIndex failed,
                     trace::SpanId parent = trace::kNoSpan);
  /// Cache coherence at the rendezvous: `host` consumed the kRendezvous
  /// subid for `key` — correct the publisher's cache if it was directed
  /// elsewhere (or learn on a miss).
  void note_rendezvous_owner(net::HostIndex host, const EventCtxPtr& ctx,
                             Id key, trace::SpanId parent = trace::kNoSpan);
  /// Drop `key` from every node's route cache (the zone behind it changed
  /// shape, e.g. a migration installed a bucket pointer).
  void invalidate_cached_route(Id key);
  /// Record one event drop that reliability could not mask.
  void note_event_drop(std::uint64_t seq, std::size_t subids);
  void finalize_if_done(std::uint64_t seq);

  std::uint64_t install_bytes(std::size_t dims) const {
    return overlay::kHeaderBytes + kSubIdBytes + 16 * dims;
  }

  overlay::Overlay& dht_;
  Config cfg_;
  trace::Tracer* tracer_ = nullptr;  ///< span recorder (see set_tracer)
  net::ReliableChannel channel_;  ///< event/migration transport (reliable)
  metrics::ReliabilityCounters rel_;  ///< layer decisions (reroutes, drops)
  std::vector<std::unique_ptr<HyperSubNode>> nodes_;
  std::vector<std::unique_ptr<RouteCache>> caches_;  ///< per publisher host
  std::vector<std::unique_ptr<SchemeRuntime>> schemes_;
  VectorDeliverySink default_sink_;
  DeliverySink* sink_ = &default_sink_;
  metrics::EventMetrics event_metrics_;
  metrics::BatchCounters batch_;
  /// Monotone cover-aggregation tallies (promotions are read from zones on
  /// demand; these hold what zones can't: wire bytes saved by grouping and
  /// the subid payload bytes actually sent, counted in both modes).
  std::uint64_t cover_subid_bytes_saved_ = 0;
  std::uint64_t subid_wire_bytes_ = 0;
  /// Per-event cost accounting. The map itself (and every Tracker inside)
  /// is mutated only from the main context: worker-side touches ride
  /// Simulator::defer_ordered closures applied in deterministic order at
  /// the window barrier (which run inline — hence unchanged — in
  /// sequential mode).
  std::unordered_map<std::uint64_t, Tracker> trackers_;
  /// Chunks awaiting this timestep's flush, keyed per sender (so each
  /// entry is touched only on the sender's shard) by next hop.
  std::vector<std::map<net::HostIndex, std::vector<FrameChunk>>> batches_;
  /// Per-host, per-event delivered (subscriber node id, iid) pairs:
  /// end-to-end duplicate suppression under reliable delivery
  /// (retransmitted subtrees can re-match the same subscription through a
  /// different path). Split per subscriber host so each set is touched
  /// only on that host's shard. Only populated when reliable_delivery;
  /// cleared by reset_metrics().
  std::vector<
      std::unordered_map<std::uint64_t, std::set<std::pair<Id, std::uint32_t>>>>
      delivered_subs_;
  std::uint64_t event_seq_ = 0;
  std::size_t total_subs_ = 0;
  bool owns_ownership_listener_ = false;
  /// Live-transfer machinery, indexed by host (see TransferOut/WarmState).
  std::vector<TransferOut> transfers_out_;
  std::vector<WarmState> warm_;
  /// Global transfer counters; shard-context touches ride defer_ordered.
  JoinStats join_stats_;

  // Event-delivery scratch, reused across process_event_message calls to
  // keep the hot path allocation-free, one set per worker slot (slot 0 is
  // the sequential/main context). No reentrant call can observe a half-used
  // buffer: every network send/schedule is asynchronous, and two messages
  // processed concurrently live on different worker slots.
  struct Scratch {
    std::vector<SubId> pending;
    std::vector<Id> keys;
    std::vector<std::pair<net::HostIndex, SubId>> routed;
    std::vector<std::uint32_t> cand;
    std::vector<ZoneState*> zones;
  };
  std::array<Scratch, sim::Simulator::kMaxWorkers + 1> scratch_;
};

}  // namespace hypersub::core
