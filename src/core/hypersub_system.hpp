#pragma once
// HyperSubSystem: the distributed pub/sub service itself.
//
// Wires the HyperSub protocol (paper Algorithms 2-5) onto a ChordNet:
//   subscribe()  — Alg. 2 + Alg. 3 (installation + summary-filter pieces)
//   publish()    — Alg. 4 (LPH rendezvous per subscheme)
//   event messages — Alg. 5 (match + split across DHT links, recursively)
// plus the §4 load-balancing hooks (rotation is in the subscheme layer;
// dynamic migration is driven by LoadBalancer).
//
// The system also owns experiment observability: per-event cost trackers,
// the delivery log, and per-node loads.

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "overlay/overlay.hpp"
#include "core/hypersub_node.hpp"
#include "core/subscheme.hpp"
#include "metrics/event_metrics.hpp"
#include "metrics/reliability_metrics.hpp"
#include "net/reliable_channel.hpp"
#include "pubsub/event.hpp"

namespace hypersub::core {

class LoadBalancer;

/// One completed delivery of an event to a subscriber (observability).
struct Delivery {
  std::uint64_t event_seq = 0;
  net::HostIndex subscriber = 0;
  std::uint32_t iid = 0;
  int hops = 0;            ///< overlay hops the event travelled to get here
  double latency_ms = 0.0; ///< publish -> delivery
};

class HyperSubSystem {
 public:
  struct Config {
    /// Alternative to the paper's summary-filter piece propagation: events
    /// probe every ancestor zone directly (ablation; default off = paper).
    bool ancestor_probing = false;
    /// Record every delivery in the delivery log (tests; large runs can
    /// disable and rely on per-event counts only).
    bool record_deliveries = true;
    /// Robustness extension: replicate every zone registration to this
    /// many of the owner's would-be heirs (overlay replica_set). When the
    /// owner fails and the DHT repairs, the promoted node matches from its
    /// replicas, so subscriptions survive surrogate failures. 0 = paper
    /// behavior (state on dead nodes is lost).
    std::size_t replicas = 0;
    /// Zones (and migrated buckets) holding at least this many
    /// subscriptions match through a SubIndex instead of a linear scan;
    /// ~size_t(-1) disables indexing entirely (see ZoneState).
    std::size_t match_index_threshold = ZoneState::kDefaultIndexThreshold;
    /// Reliability extension: event-delivery messages (and load-balancer
    /// migrations) ride a ReliableChannel — acked, retried with backoff,
    /// and rerouted through backup hops when the next hop stays dead.
    /// Deliveries are deduplicated per (event, subscriber, subscription).
    /// Off by default = the paper's fire-and-forget behavior.
    bool reliable_delivery = false;
    /// Transport knobs of the reliable channel (ack deadline must exceed
    /// the topology's worst-case RTT).
    net::ReliableChannel::Config reliable;
    /// Hop TTL for event messages under reliable delivery. Reroutes can
    /// detour through nodes with stale routing state; the TTL bounds any
    /// livelock and converts it into a counted, truncated-flagged drop.
    int max_event_hops = 128;
  };

  /// Build on any DHT substrate (Chord, Pastry, ...).
  explicit HyperSubSystem(overlay::Overlay& dht)
      : HyperSubSystem(dht, Config{}) {}
  HyperSubSystem(overlay::Overlay& dht, Config cfg);
  ~HyperSubSystem();

  HyperSubSystem(const HyperSubSystem&) = delete;
  HyperSubSystem& operator=(const HyperSubSystem&) = delete;

  overlay::Overlay& overlay() noexcept { return dht_; }
  net::Network& network() noexcept { return dht_.network(); }
  sim::Simulator& simulator() noexcept { return dht_.simulator(); }
  const Config& config() const noexcept { return cfg_; }

  // -- schemes ---------------------------------------------------------------

  /// Register a pub/sub scheme; returns its index. HyperSub supports any
  /// number of simultaneous schemes (§1).
  std::uint32_t add_scheme(pubsub::Scheme scheme, const SchemeOptions& opt);
  std::size_t scheme_count() const noexcept { return schemes_.size(); }
  const SchemeRuntime& scheme_runtime(std::uint32_t s) const {
    return *schemes_[s];
  }

  // -- subscriber/publisher API -----------------------------------------------

  /// Install a subscription for `subscriber` (Alg. 2). Asynchronous: the
  /// installation completes in simulated time. Returns the internal id.
  std::uint32_t subscribe(net::HostIndex subscriber, std::uint32_t scheme,
                          pubsub::Subscription sub);

  /// Remove a previously installed subscription (extension; the paper
  /// leaves unsubscription unspecified).
  void unsubscribe(net::HostIndex subscriber, std::uint32_t scheme,
                   std::uint32_t iid, const pubsub::Subscription& sub);

  /// Publish an event (Alg. 4). Asynchronous; returns the event sequence
  /// number used in metrics and the delivery log.
  std::uint64_t publish(net::HostIndex publisher, std::uint32_t scheme,
                        pubsub::Event event);

  // -- observability -----------------------------------------------------------

  const std::vector<Delivery>& deliveries() const noexcept {
    return deliveries_;
  }
  metrics::EventMetrics& event_metrics() noexcept { return event_metrics_; }

  /// Transport + failover counters of the reliable delivery path (all zero
  /// unless config().reliable_delivery).
  metrics::ReliabilityCounters reliability_counters() const;
  net::ReliableChannel& reliable_channel() noexcept { return channel_; }

  /// Finalize trackers of events whose message trees were cut short (e.g.
  /// by node failures); call after the simulation drains.
  void finalize_events();

  /// Clear event metrics + delivery log (e.g. after warm-up).
  void reset_metrics();

  /// Current per-node loads (paper's stored-subscription metric).
  std::vector<std::size_t> node_loads() const;

  /// Piece-inclusive per-node storage footprints (see
  /// HyperSubNode::stored_entries).
  std::vector<std::size_t> node_stored_entries() const;

  /// Live subscriptions in the whole system (for % matched).
  std::size_t total_subscriptions() const noexcept { return total_subs_; }

  HyperSubNode& node(net::HostIndex h) { return *nodes_[h]; }
  const HyperSubNode& node(net::HostIndex h) const { return *nodes_[h]; }

  /// Structural invariants over all hosted zone state; call only after the
  /// simulation has quiesced. Checks that every zone's summary filter is
  /// exactly the hull of its contents, that stored subscriptions project
  /// inside their zone's extent, and that cached child pieces equal
  /// summary ∩ child-extent. Returns false (and stops) on first violation.
  bool check_zone_invariants() const;

 private:
  friend class LoadBalancer;

  /// Immutable per-event context shared by all messages of one event.
  struct EventCtx {
    std::uint64_t seq;
    std::uint32_t scheme;
    pubsub::Event event;
    std::vector<Point> projected;  // per subscheme
  };
  using EventCtxPtr = std::shared_ptr<const EventCtx>;

  struct Tracker {
    double publish_time = 0.0;
    std::size_t outstanding = 0;
    std::size_t matched = 0;
    int max_hops = 0;
    double max_latency = 0.0;
    std::uint64_t bytes = 0;
    bool truncated = false;  ///< part of the delivery tree was lost
  };

  // Alg. 3: registration at the surrogate node + piece propagation.
  void register_subscription_at(net::HostIndex owner, const ZoneAddr& addr,
                                Id rotated_key, StoredSub stored);
  void register_piece_at(net::HostIndex owner, const ZoneAddr& addr,
                         Id rotated_key, HyperRect piece, Id parent_key);
  void propagate_pieces(net::HostIndex host, const ZoneAddr& addr);

  // Alg. 5: one event message arriving at `host`.
  void process_event_message(net::HostIndex host, const EventCtxPtr& ctx,
                             std::vector<SubId> list, int hops);
  /// Send one grouped event message `host` -> `to` (fire-and-forget, or
  /// acked with reroute-on-expiry under reliable delivery). `failed` is a
  /// failure-gossip hint for the receiver (invalid host = none). Assumes
  /// the tracker's outstanding count was already incremented for this
  /// message.
  void forward_event(net::HostIndex host, net::HostIndex to,
                     std::uint64_t bytes, const EventCtxPtr& ctx,
                     std::shared_ptr<std::vector<SubId>> sublist, int hops,
                     net::HostIndex failed);
  /// Failover: re-resolve each subid of a message whose next hop died,
  /// excluding the dead hop, and forward the regrouped remainder. Subids
  /// with no viable alternative are dropped (counted, event truncated).
  void reroute_event(net::HostIndex host, const EventCtxPtr& ctx,
                     const std::vector<SubId>& subids, int hops,
                     net::HostIndex failed);
  /// Record one event drop that reliability could not mask.
  void note_event_drop(std::uint64_t seq, std::size_t subids);
  void finalize_if_done(std::uint64_t seq);

  std::uint64_t install_bytes(std::size_t dims) const {
    return overlay::kHeaderBytes + kSubIdBytes + 16 * dims;
  }

  overlay::Overlay& dht_;
  Config cfg_;
  net::ReliableChannel channel_;  ///< event/migration transport (reliable)
  metrics::ReliabilityCounters rel_;  ///< layer decisions (reroutes, drops)
  std::vector<std::unique_ptr<HyperSubNode>> nodes_;
  std::vector<std::unique_ptr<SchemeRuntime>> schemes_;
  std::vector<Delivery> deliveries_;
  metrics::EventMetrics event_metrics_;
  std::unordered_map<std::uint64_t, Tracker> trackers_;
  /// Per-event delivered (subscriber node id, iid) pairs: end-to-end
  /// duplicate suppression under reliable delivery (retransmitted subtrees
  /// can re-match the same subscription through a different path). Only
  /// populated when reliable_delivery; cleared by reset_metrics().
  std::unordered_map<std::uint64_t, std::set<std::pair<Id, std::uint32_t>>>
      delivered_subs_;
  std::uint64_t event_seq_ = 0;
  std::size_t total_subs_ = 0;

  // Event-delivery scratch, reused across process_event_message calls to
  // keep the hot path allocation-free. Safe because the simulation core is
  // single-threaded and every network send/schedule is asynchronous — no
  // reentrant call can observe a half-used buffer.
  std::vector<SubId> scratch_pending_;
  std::vector<Id> scratch_keys_;
  std::vector<std::pair<net::HostIndex, SubId>> scratch_routed_;
  std::vector<std::uint32_t> scratch_cand_;
  std::vector<ZoneState*> scratch_zones_;
};

}  // namespace hypersub::core
