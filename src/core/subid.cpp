#include "core/subid.hpp"

#include <sstream>

namespace hypersub::core {

std::string SubId::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case SubIdKind::kRendezvous: os << "rdv"; break;
    case SubIdKind::kZone: os << "zone"; break;
    case SubIdKind::kSubscriber: os << "sub"; break;
    case SubIdKind::kMigrated: os << "mig"; break;
  }
  os << '(' << std::hex << target << std::dec << ',' << iid << ')';
  return os.str();
}

}  // namespace hypersub::core
