#include "core/hypersub_node.hpp"

#include <cassert>

namespace hypersub::core {

ZoneState& HyperSubNode::zone_state(const ZoneAddr& addr, Id rotated_key) {
  auto [it, inserted] = zones_.try_emplace(addr, addr);
  if (inserted) {
    // A key aliases a zone and its rightmost descendants, so several zones
    // sharing one key is the normal case, not a collision.
    zones_by_key_[rotated_key].push_back(addr);
  }
  return it->second;
}

std::vector<ZoneState*> HyperSubNode::find_zones_by_key(Id rotated_key) {
  std::vector<ZoneState*> out;
  const auto it = zones_by_key_.find(rotated_key);
  if (it == zones_by_key_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& addr : it->second) {
    const auto zit = zones_.find(addr);
    if (zit != zones_.end()) out.push_back(&zit->second);
  }
  return out;
}

const ZoneState* HyperSubNode::find_zone_by_key(Id rotated_key) const {
  auto zones = const_cast<HyperSubNode*>(this)->find_zones_by_key(rotated_key);
  return zones.empty() ? nullptr : zones.front();
}

ZoneState& HyperSubNode::replica_zone_state(const ZoneAddr& addr,
                                            Id rotated_key) {
  auto [it, inserted] = replica_zones_.try_emplace(addr, addr);
  if (inserted) replicas_by_key_[rotated_key].push_back(addr);
  return it->second;
}

std::vector<ZoneState*> HyperSubNode::find_replica_zones_by_key(
    Id rotated_key) {
  std::vector<ZoneState*> out;
  const auto it = replicas_by_key_.find(rotated_key);
  if (it == replicas_by_key_.end()) return out;
  for (const auto& addr : it->second) {
    const auto zit = replica_zones_.find(addr);
    if (zit != replica_zones_.end()) out.push_back(&zit->second);
  }
  return out;
}

std::uint32_t HyperSubNode::accept_migration(Id origin_zone_key,
                                             std::vector<StoredSub> subs) {
  const std::uint32_t token = ++token_counter_;
  migrated_in_.emplace(token,
                       MigratedRepo{origin_zone_key, std::move(subs)});
  return token;
}

const MigratedRepo* HyperSubNode::find_migrated(std::uint32_t token) const {
  const auto it = migrated_in_.find(token);
  return it == migrated_in_.end() ? nullptr : &it->second;
}

std::size_t HyperSubNode::load() const {
  std::size_t n = 0;
  for (const auto& [addr, z] : zones_) {
    n += z.subscription_count() + z.buckets().size();
  }
  for (const auto& [tok, repo] : migrated_in_) n += repo.subs.size();
  return n;
}

std::size_t HyperSubNode::stored_entries() const {
  std::size_t n = 0;
  for (const auto& [addr, z] : zones_) n += z.entry_count();
  for (const auto& [tok, repo] : migrated_in_) n += repo.subs.size();
  return n;
}

}  // namespace hypersub::core
