#include "core/hypersub_node.hpp"

#include <algorithm>
#include <cassert>

namespace hypersub::core {

namespace {

// Shared const-correct key lookup: works on the zone map and the replica
// map, const or not, deducing the matching ZoneState pointer type.
template <typename ZoneMap, typename KeyMap, typename Out>
void append_zones_for_key(ZoneMap& zones, const KeyMap& by_key,
                          Id rotated_key, Out& out) {
  const auto it = by_key.find(rotated_key);
  if (it == by_key.end()) return;
  out.reserve(out.size() + it->second.size());
  for (const auto& addr : it->second) {
    const auto zit = zones.find(addr);
    if (zit != zones.end()) out.push_back(&zit->second);
  }
}

template <typename ZoneMap, typename KeyMap>
auto zones_for_key(ZoneMap& zones, const KeyMap& by_key, Id rotated_key) {
  std::vector<decltype(&zones.begin()->second)> out;
  append_zones_for_key(zones, by_key, rotated_key, out);
  return out;
}

}  // namespace

void MigratedRepo::match(const Point& p, std::vector<SubId>& out,
                         std::vector<std::uint32_t>& scratch) const {
  if (!indexed) {
    for (const auto& s : subs) {
      if (s.sub.matches(p)) out.push_back(s.owner);
    }
    return;
  }
  scratch.clear();
  index.candidates(p, scratch);
  for (const std::uint32_t slot : scratch) {
    const StoredSub& s = subs[slot];
    if (s.sub.matches(p)) out.push_back(s.owner);
  }
}

ZoneState& HyperSubNode::zone_state(const ZoneAddr& addr, Id rotated_key) {
  auto [it, inserted] = zones_.try_emplace(addr, addr, index_threshold_);
  if (inserted) {
    // A key aliases a zone and its rightmost descendants, so several zones
    // sharing one key is the normal case, not a collision.
    zones_by_key_[rotated_key].push_back(addr);
  }
  return it->second;
}

std::vector<ZoneState*> HyperSubNode::find_zones_by_key(Id rotated_key) {
  return zones_for_key(zones_, zones_by_key_, rotated_key);
}

void HyperSubNode::append_zones_by_key(Id rotated_key,
                                       std::vector<ZoneState*>& out) {
  append_zones_for_key(zones_, zones_by_key_, rotated_key, out);
}

const ZoneState* HyperSubNode::find_zone_by_key(Id rotated_key) const {
  const auto zones = zones_for_key(zones_, zones_by_key_, rotated_key);
  return zones.empty() ? nullptr : zones.front();
}

ZoneState& HyperSubNode::replica_zone_state(const ZoneAddr& addr,
                                            Id rotated_key) {
  auto [it, inserted] =
      replica_zones_.try_emplace(addr, addr, index_threshold_);
  if (inserted) replicas_by_key_[rotated_key].push_back(addr);
  return it->second;
}

std::vector<ZoneState*> HyperSubNode::find_replica_zones_by_key(
    Id rotated_key) {
  return zones_for_key(replica_zones_, replicas_by_key_, rotated_key);
}

void HyperSubNode::append_replica_zones_by_key(Id rotated_key,
                                               std::vector<ZoneState*>& out) {
  append_zones_for_key(replica_zones_, replicas_by_key_, rotated_key, out);
}

std::uint32_t HyperSubNode::accept_migration(Id origin_zone_key,
                                             std::vector<StoredSub> subs) {
  const std::uint32_t token = ++token_counter_;
  MigratedRepo repo{origin_zone_key, std::move(subs), SubIndex{}, false};
  if (repo.subs.size() >= index_threshold_) {
    for (const auto& s : repo.subs) repo.index.insert(s.sub.range());
    repo.indexed = true;
  }
  migrated_in_.emplace(token, std::move(repo));
  return token;
}

const MigratedRepo* HyperSubNode::find_migrated(std::uint32_t token) const {
  const auto it = migrated_in_.find(token);
  return it == migrated_in_.end() ? nullptr : &it->second;
}

std::size_t HyperSubNode::load() const {
  std::size_t n = 0;
  for (const auto& [addr, z] : zones_) {
    n += z.subscription_count() + z.buckets().size();
  }
  for (const auto& [tok, repo] : migrated_in_) n += repo.subs.size();
  return n;
}

std::size_t HyperSubNode::stored_entries() const {
  std::size_t n = 0;
  for (const auto& [addr, z] : zones_) n += z.entry_count();
  for (const auto& [tok, repo] : migrated_in_) n += repo.subs.size();
  return n;
}

}  // namespace hypersub::core
