#include "core/hypersub_node.hpp"

#include <algorithm>
#include <cassert>

namespace hypersub::core {

namespace {

// Shared const-correct key lookup: works on the zone map and the replica
// map, const or not, deducing the matching ZoneState pointer type.
template <typename ZoneMap, typename KeyMap, typename Out>
void append_zones_for_key(ZoneMap& zones, const KeyMap& by_key,
                          Id rotated_key, Out& out) {
  const auto it = by_key.find(rotated_key);
  if (it == by_key.end()) return;
  out.reserve(out.size() + it->second.size());
  for (const auto& addr : it->second) {
    const auto zit = zones.find(addr);
    if (zit != zones.end()) out.push_back(&zit->second);
  }
}

template <typename ZoneMap, typename KeyMap>
auto zones_for_key(ZoneMap& zones, const KeyMap& by_key, Id rotated_key) {
  std::vector<decltype(&zones.begin()->second)> out;
  append_zones_for_key(zones, by_key, rotated_key, out);
  return out;
}

}  // namespace

void MigratedRepo::match(const Point& p, std::vector<SubId>& out,
                         std::vector<std::uint32_t>& scratch) const {
  if (!indexed) {
    const std::uint32_t n = std::uint32_t(subs.size());
    for (std::uint32_t r = 0; r < n; ++r) {
      if (subs.full_contains(r, p)) out.push_back(subs.owner(r));
    }
    return;
  }
  scratch.clear();
  index.candidates(p, scratch);
  for (const std::uint32_t slot : scratch) {
    if (subs.full_contains(slot, p)) out.push_back(subs.owner(slot));
  }
}

void HyperSubNode::record_local(std::uint32_t iid,
                                const pubsub::Subscription& sub) {
  if (local_entries_.size() < iid) local_entries_.resize(iid);
  LocalEntry& e = local_entries_[iid - 1];
  assert(!e.live);
  const auto& dims = sub.range().dims();
  e.off = std::uint32_t(local_pool_.size());
  e.dims = std::uint16_t(dims.size());
  e.live = true;
  local_pool_.insert(local_pool_.end(), dims.begin(), dims.end());
  ++local_live_;
}

bool HyperSubNode::erase_local(std::uint32_t iid) {
  if (iid == 0 || iid > local_entries_.size()) return false;
  LocalEntry& e = local_entries_[iid - 1];
  if (!e.live) return false;
  e.live = false;
  --local_live_;
  return true;
}

std::optional<pubsub::Subscription> HyperSubNode::local_sub(
    std::uint32_t iid) const {
  if (iid == 0 || iid > local_entries_.size()) return std::nullopt;
  const LocalEntry& e = local_entries_[iid - 1];
  if (!e.live) return std::nullopt;
  return pubsub::Subscription(HyperRect(std::vector<Interval>(
      local_pool_.begin() + e.off, local_pool_.begin() + e.off + e.dims)));
}

ZoneState& HyperSubNode::zone_state(const ZoneAddr& addr, Id rotated_key) {
  auto [it, inserted] = zones_.try_emplace(addr, addr, index_threshold_, cover_);
  if (inserted) {
    // A key aliases a zone and its rightmost descendants, so several zones
    // sharing one key is the normal case, not a collision.
    zones_by_key_[rotated_key].push_back(addr);
  }
  return it->second;
}

std::vector<ZoneState*> HyperSubNode::find_zones_by_key(Id rotated_key) {
  return zones_for_key(zones_, zones_by_key_, rotated_key);
}

void HyperSubNode::append_zones_by_key(Id rotated_key,
                                       std::vector<ZoneState*>& out) {
  append_zones_for_key(zones_, zones_by_key_, rotated_key, out);
}

const ZoneState* HyperSubNode::find_zone_by_key(Id rotated_key) const {
  const auto zones = zones_for_key(zones_, zones_by_key_, rotated_key);
  return zones.empty() ? nullptr : zones.front();
}

ZoneState& HyperSubNode::replica_zone_state(const ZoneAddr& addr,
                                            Id rotated_key) {
  auto [it, inserted] =
      replica_zones_.try_emplace(addr, addr, index_threshold_, cover_);
  if (inserted) replicas_by_key_[rotated_key].push_back(addr);
  return it->second;
}

std::vector<ZoneState*> HyperSubNode::find_replica_zones_by_key(
    Id rotated_key) {
  return zones_for_key(replica_zones_, replicas_by_key_, rotated_key);
}

void HyperSubNode::append_replica_zones_by_key(Id rotated_key,
                                               std::vector<ZoneState*>& out) {
  append_zones_for_key(replica_zones_, replicas_by_key_, rotated_key, out);
}

std::uint32_t HyperSubNode::accept_migration(Id origin_zone_key,
                                             std::vector<StoredSub> subs) {
  const std::uint32_t token = ++token_counter_;
  MigratedRepo repo;
  repo.origin_zone_key = origin_zone_key;
  repo.indexed = subs.size() >= index_threshold_;
  for (const auto& s : subs) {
    repo.subs.add(s);  // append-never: refs are the dense acceptance order
    if (repo.indexed) repo.index.insert(s.sub.range());
  }
  migrated_in_.emplace(token, std::move(repo));
  return token;
}

const MigratedRepo* HyperSubNode::find_migrated(std::uint32_t token) const {
  const auto it = migrated_in_.find(token);
  return it == migrated_in_.end() ? nullptr : &it->second;
}

std::size_t HyperSubNode::load() const {
  std::size_t n = 0;
  for (const auto& [addr, z] : zones_) {
    n += z.subscription_count() + z.buckets().size();
  }
  for (const auto& [tok, repo] : migrated_in_) n += repo.subs.size();
  return n;
}

std::size_t HyperSubNode::stored_entries() const {
  std::size_t n = 0;
  for (const auto& [addr, z] : zones_) n += z.entry_count();
  for (const auto& [tok, repo] : migrated_in_) n += repo.subs.size();
  return n;
}

}  // namespace hypersub::core
