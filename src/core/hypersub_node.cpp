#include "core/hypersub_node.hpp"

#include <algorithm>
#include <cassert>

#include "core/state_wire.hpp"

namespace hypersub::core {

namespace {

// Shared const-correct key lookup: works on the zone map and the replica
// map, const or not, deducing the matching ZoneState pointer type.
template <typename ZoneMap, typename KeyMap, typename Out>
void append_zones_for_key(ZoneMap& zones, const KeyMap& by_key,
                          Id rotated_key, Out& out) {
  const auto* addrs = by_key.find(rotated_key);
  if (addrs == nullptr) return;
  out.reserve(out.size() + addrs->size());
  for (const auto& addr : *addrs) {
    const auto zit = zones.find(addr);
    if (zit != zones.end()) out.push_back(&zit->second);
  }
}

template <typename ZoneMap, typename KeyMap>
auto zones_for_key(ZoneMap& zones, const KeyMap& by_key, Id rotated_key) {
  std::vector<decltype(&zones.begin()->second)> out;
  append_zones_for_key(zones, by_key, rotated_key, out);
  return out;
}

}  // namespace

void MigratedRepo::match(const Point& p, std::vector<SubId>& out,
                         std::vector<std::uint32_t>& scratch) const {
  if (!indexed) {
    const std::uint32_t n = std::uint32_t(subs.size());
    for (std::uint32_t r = 0; r < n; ++r) {
      if (subs.full_contains(r, p)) out.push_back(subs.owner(r));
    }
    return;
  }
  scratch.clear();
  index.candidates(p, scratch);
  for (const std::uint32_t slot : scratch) {
    if (subs.full_contains(slot, p)) out.push_back(subs.owner(slot));
  }
}

void HyperSubNode::record_local(std::uint32_t iid,
                                const pubsub::Subscription& sub) {
  if (local_entries_.size() < iid) local_entries_.resize(iid);
  LocalEntry& e = local_entries_[iid - 1];
  assert(!e.live);
  const auto& dims = sub.range().dims();
  e.off = std::uint32_t(local_pool_.size());
  e.dims = std::uint16_t(dims.size());
  e.live = true;
  local_pool_.insert(local_pool_.end(), dims.begin(), dims.end());
  ++local_live_;
}

bool HyperSubNode::erase_local(std::uint32_t iid) {
  if (iid == 0 || iid > local_entries_.size()) return false;
  LocalEntry& e = local_entries_[iid - 1];
  if (!e.live) return false;
  e.live = false;
  --local_live_;
  return true;
}

std::optional<pubsub::Subscription> HyperSubNode::local_sub(
    std::uint32_t iid) const {
  if (iid == 0 || iid > local_entries_.size()) return std::nullopt;
  const LocalEntry& e = local_entries_[iid - 1];
  if (!e.live) return std::nullopt;
  return pubsub::Subscription(HyperRect(std::vector<Interval>(
      local_pool_.begin() + e.off, local_pool_.begin() + e.off + e.dims)));
}

ZoneState& HyperSubNode::zone_state(const ZoneAddr& addr, Id rotated_key) {
  auto [it, inserted] = zones_.try_emplace(addr, addr, index_threshold_, cover_);
  if (inserted) {
    // A key aliases a zone and its rightmost descendants, so several zones
    // sharing one key is the normal case, not a collision.
    zones_by_key_[rotated_key].push_back(addr);
  }
  return it->second;
}

namespace {

template <class ZoneMap, class KeyIndex>
void erase_keyed_zone(ZoneMap& zones, KeyIndex& by_key, const ZoneAddr& addr,
                      Id rotated_key) {
  if (zones.erase(addr) == 0) return;
  auto* addrs = by_key.find(rotated_key);
  if (addrs == nullptr) return;
  addrs->erase(std::remove(addrs->begin(), addrs->end(), addr), addrs->end());
  if (addrs->empty()) by_key.erase(rotated_key);
}

}  // namespace

void HyperSubNode::erase_zone(const ZoneAddr& addr, Id rotated_key) {
  erase_keyed_zone(zones_, zones_by_key_, addr, rotated_key);
}

void HyperSubNode::erase_replica_zone(const ZoneAddr& addr, Id rotated_key) {
  erase_keyed_zone(replica_zones_, replicas_by_key_, addr, rotated_key);
}

std::vector<ZoneState*> HyperSubNode::find_zones_by_key(Id rotated_key) {
  return zones_for_key(zones_, zones_by_key_, rotated_key);
}

void HyperSubNode::append_zones_by_key(Id rotated_key,
                                       std::vector<ZoneState*>& out) {
  append_zones_for_key(zones_, zones_by_key_, rotated_key, out);
}

const ZoneState* HyperSubNode::find_zone_by_key(Id rotated_key) const {
  const auto zones = zones_for_key(zones_, zones_by_key_, rotated_key);
  return zones.empty() ? nullptr : zones.front();
}

ZoneState& HyperSubNode::replica_zone_state(const ZoneAddr& addr,
                                            Id rotated_key) {
  auto [it, inserted] =
      replica_zones_.try_emplace(addr, addr, index_threshold_, cover_);
  if (inserted) replicas_by_key_[rotated_key].push_back(addr);
  return it->second;
}

std::vector<ZoneState*> HyperSubNode::find_replica_zones_by_key(
    Id rotated_key) {
  return zones_for_key(replica_zones_, replicas_by_key_, rotated_key);
}

void HyperSubNode::append_replica_zones_by_key(Id rotated_key,
                                               std::vector<ZoneState*>& out) {
  append_zones_for_key(replica_zones_, replicas_by_key_, rotated_key, out);
}

std::uint32_t HyperSubNode::accept_migration(Id origin_zone_key,
                                             std::vector<StoredSub> subs) {
  const std::uint32_t token = ++token_counter_;
  MigratedRepo repo;
  repo.origin_zone_key = origin_zone_key;
  repo.indexed = subs.size() >= index_threshold_;
  for (const auto& s : subs) {
    repo.subs.add(s);  // append-never: refs are the dense acceptance order
    if (repo.indexed) repo.index.insert(s.sub.range());
  }
  migrated_in_.emplace(token, std::move(repo));
  return token;
}

const MigratedRepo* HyperSubNode::find_migrated(std::uint32_t token) const {
  const auto it = migrated_in_.find(token);
  return it == migrated_in_.end() ? nullptr : &it->second;
}

std::size_t HyperSubNode::load() const {
  std::size_t n = 0;
  for (const auto& [addr, z] : zones_) {
    n += z.subscription_count() + z.buckets().size();
  }
  for (const auto& [tok, repo] : migrated_in_) n += repo.subs.size();
  return n;
}

std::size_t HyperSubNode::stored_entries() const {
  std::size_t n = 0;
  for (const auto& [addr, z] : zones_) n += z.entry_count();
  n += chains_.total_span();  // one piece entry per implicit member
  for (const auto& [tok, repo] : migrated_in_) n += repo.subs.size();
  return n;
}

HyperSubNode::ZoneMemoryBreakdown HyperSubNode::memory_breakdown() const {
  ZoneMemoryBreakdown b;
  b.materialized_zones = zones_.size();
  b.chain_records = chains_.size();
  b.implicit_zones = chains_.total_span();

  // Hashed-container overhead estimate for the node-based maps: one bucket
  // pointer per bucket plus, per node, next pointer + cached hash on top of
  // the value pair.
  constexpr std::size_t kNodeOverhead = 2 * sizeof(void*);
  const auto tally_zone_map = [&](const auto& zmap) {
    b.zone_bytes += zmap.bucket_count() * sizeof(void*);
    for (const auto& [addr, z] : zmap) {
      b.zone_bytes += sizeof(addr) + sizeof(z) + kNodeOverhead;
      b.zone_bytes += z.structural_bytes();
      b.sub_bytes += z.store_bytes();
    }
  };
  tally_zone_map(zones_);
  tally_zone_map(replica_zones_);

  b.chain_bytes = chains_.memory_bytes();

  const auto tally_key_index = [&](const auto& by_key) {
    b.key_index_bytes += by_key.memory_bytes();
    by_key.for_each([&](const Id&, const std::vector<ZoneAddr>& addrs) {
      b.key_index_bytes += addrs.capacity() * sizeof(ZoneAddr);
    });
  };
  tally_key_index(zones_by_key_);
  tally_key_index(replicas_by_key_);

  b.sub_bytes += local_entries_.capacity() * sizeof(LocalEntry) +
                 local_pool_.capacity() * sizeof(Interval);
  b.sub_bytes += migrated_in_.bucket_count() * sizeof(void*);
  for (const auto& [tok, repo] : migrated_in_) {
    b.sub_bytes += sizeof(tok) + sizeof(repo) + kNodeOverhead;
    b.sub_bytes += repo.subs.memory_bytes();
    if (repo.indexed) b.sub_bytes += repo.index.memory_bytes();
  }
  return b;
}

namespace {

// Serialize one keyed zone map (primary or replica) by ascending key; the
// per-key address vector keeps its live order — append_zones_by_key order
// feeds match emission, so it is part of the behavior contract.
template <typename ZoneMap, typename KeyMap>
void save_keyed_zones(common::ByteWriter& w, const ZoneMap& zones,
                      const KeyMap& by_key) {
  std::vector<Id> keys;
  keys.reserve(by_key.size());
  by_key.for_each([&](const Id& key, const auto&) { keys.push_back(key); });
  std::sort(keys.begin(), keys.end());
  w.u32(std::uint32_t(keys.size()));
  for (const Id key : keys) {
    const auto* addrs = by_key.find(key);
    w.u64(key);
    w.u32(std::uint32_t(addrs->size()));
    for (const ZoneAddr& addr : *addrs) {
      save_zone_addr(w, addr);
      zones.at(addr).save(w);
    }
  }
}

// Canonical chain order for serialization: tails are unique across live
// chains (a zone belongs to at most one), so (scheme, subscheme, tail)
// totally orders them.
bool chain_before(const CompressedChain& a, const CompressedChain& b) {
  if (a.scheme != b.scheme) return a.scheme < b.scheme;
  if (a.subscheme != b.subscheme) return a.subscheme < b.subscheme;
  if (a.tail.level != b.tail.level) return a.tail.level < b.tail.level;
  return a.tail.code < b.tail.code;
}

}  // namespace

void HyperSubNode::save(common::ByteWriter& w, std::uint32_t version) const {
  assert(version >= 1 && version <= common::kWireVersion);
  // v1 images have no chain section; a node carrying chains cannot be
  // downgraded (callers decompress or bump the version first).
  assert(version >= 2 || chains_.empty());
  w.u32(iid_counter_);
  w.u32(token_counter_);

  // Subscriber-side store, verbatim (offsets included) so a save of the
  // restored node is byte-identical to this one.
  w.u32(std::uint32_t(local_entries_.size()));
  for (const LocalEntry& e : local_entries_) {
    w.u32(e.off);
    w.u16(e.dims);
    w.boolean(e.live);
  }
  w.u32(std::uint32_t(local_pool_.size()));
  for (const Interval& iv : local_pool_) {
    w.f64(iv.lo);
    w.f64(iv.hi);
  }
  w.u64(local_live_);

  save_keyed_zones(w, zones_, zones_by_key_);
  save_keyed_zones(w, replica_zones_, replicas_by_key_);

  if (version >= 2) {
    std::vector<const CompressedChain*> order;
    order.reserve(chains_.size());
    chains_.for_each([&](std::uint32_t, const CompressedChain& c) {
      order.push_back(&c);
    });
    std::sort(order.begin(), order.end(),
              [](const CompressedChain* a, const CompressedChain* b) {
                return chain_before(*a, *b);
              });
    w.u32(std::uint32_t(order.size()));
    for (const CompressedChain* c : order) save_chain(w, *c);
  }

  std::vector<std::uint32_t> tokens;
  tokens.reserve(migrated_in_.size());
  for (const auto& [tok, repo] : migrated_in_) tokens.push_back(tok);
  std::sort(tokens.begin(), tokens.end());
  w.u32(std::uint32_t(tokens.size()));
  for (const std::uint32_t tok : tokens) {
    const MigratedRepo& repo = migrated_in_.at(tok);
    w.u32(tok);
    w.u64(repo.origin_zone_key);
    w.boolean(repo.indexed);
    // Refs are the dense acceptance order 0..n-1 (append-never repo).
    const std::uint32_t n = std::uint32_t(repo.subs.size());
    w.u32(n);
    for (std::uint32_t ref = 0; ref < n; ++ref) {
      save_stored_sub(w, repo.subs.materialize(ref));
    }
  }
}

void HyperSubNode::restore(common::ByteReader& r, std::uint32_t version) {
  assert(version >= 1 && version <= common::kWireVersion);
  local_entries_.clear();
  local_pool_.clear();
  local_live_ = 0;
  reset_surrogate_state();

  iid_counter_ = r.u32();
  token_counter_ = r.u32();

  const std::uint32_t n_entries = r.u32();
  local_entries_.reserve(n_entries);
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    LocalEntry e;
    e.off = r.u32();
    e.dims = r.u16();
    e.live = r.boolean();
    local_entries_.push_back(e);
  }
  const std::uint32_t n_pool = r.u32();
  local_pool_.reserve(n_pool);
  for (std::uint32_t i = 0; i < n_pool; ++i) {
    const double lo = r.f64();
    const double hi = r.f64();
    local_pool_.push_back(Interval{lo, hi});
  }
  local_live_ = std::size_t(r.u64());

  const auto load_keyed = [&](auto& zones, auto& by_key) {
    const std::uint32_t n_keys = r.u32();
    for (std::uint32_t i = 0; i < n_keys; ++i) {
      const Id key = r.u64();
      const std::uint32_t n_addrs = r.u32();
      auto& addrs = by_key[key];
      addrs.reserve(n_addrs);
      for (std::uint32_t j = 0; j < n_addrs; ++j) {
        const ZoneAddr addr = load_zone_addr(r);
        addrs.push_back(addr);
        auto [it, inserted] =
            zones.try_emplace(addr, addr, index_threshold_, cover_);
        assert(inserted);
        it->second.restore(r);
      }
    }
  };
  load_keyed(zones_, zones_by_key_);
  load_keyed(replica_zones_, replicas_by_key_);

  if (version >= 2) {
    const std::uint32_t n_chains = r.u32();
    for (std::uint32_t i = 0; i < n_chains; ++i) {
      chains_.insert(load_chain(r));
    }
  }

  const std::uint32_t n_repos = r.u32();
  for (std::uint32_t i = 0; i < n_repos; ++i) {
    const std::uint32_t tok = r.u32();
    MigratedRepo repo;
    repo.origin_zone_key = r.u64();
    repo.indexed = r.boolean();
    const std::uint32_t n = r.u32();
    for (std::uint32_t j = 0; j < n; ++j) {
      const StoredSub s = load_stored_sub(r);
      repo.subs.add(s);
      if (repo.indexed) repo.index.insert(s.sub.range());
    }
    migrated_in_.emplace(tok, std::move(repo));
  }
}

void HyperSubNode::reset_surrogate_state() {
  zones_.clear();
  zones_by_key_.clear();
  replica_zones_.clear();
  replicas_by_key_.clear();
  chains_.clear();
  migrated_in_.clear();
}

}  // namespace hypersub::core
