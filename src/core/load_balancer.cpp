#include "core/load_balancer.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace hypersub::core {

namespace {

/// Wire cost of one migrated subscription: subid + full-space rectangle.
std::uint64_t sub_bytes(std::size_t dims) { return kSubIdBytes + 16 * dims; }

/// In-flight state of one node's probe round.
struct ProbeRound {
  std::vector<overlay::Peer> targets;  // probed nodes
  std::vector<std::size_t> loads;       // replies, same order; SIZE_MAX=none
  std::size_t pending = 0;
  bool done = false;
};

}  // namespace

LoadBalancer::LoadBalancer(HyperSubSystem& sys, Config cfg)
    : sys_(sys), cfg_(cfg), ticking_(sys.overlay().size(), false) {
  assert(cfg_.probe_level >= 1);
}

void LoadBalancer::start() {
  stopped_ = false;
  Rng rng(0x4c4241ULL);  // staggering only
  for (net::HostIndex h = 0; h < sys_.overlay().size(); ++h) {
    if (!sys_.network().alive(h) || ticking_[h]) continue;
    schedule_tick(h, rng.uniform(0.0, cfg_.period_ms));
  }
}

void LoadBalancer::schedule_tick(net::HostIndex h, double delay) {
  ticking_[h] = true;
  sys_.simulator().schedule(delay, [this, h] {
    if (stopped_ || !sys_.network().alive(h)) {
      ticking_[h] = false;
      return;
    }
    tick(h);
    schedule_tick(h, cfg_.period_ms);
  });
}

void LoadBalancer::run_round() {
  for (net::HostIndex h = 0; h < sys_.overlay().size(); ++h) {
    if (sys_.network().alive(h)) tick(h);
  }
  sys_.simulator().run();
}

void LoadBalancer::tick(net::HostIndex h) { probe_and_balance(h); }

void LoadBalancer::probe_and_balance(net::HostIndex h) {
  // Sampling set: overlay neighbors; with probe_level >= 2 their neighbors
  // are added when replies come back (one extra probe wave).
  auto round = std::make_shared<ProbeRound>();
  auto add_target = [round, h, this](const overlay::Peer& n) {
    if (!n.valid() || n.host == h) return false;
    for (const auto& t : round->targets) {
      if (t.id == n.id) return false;
    }
    round->targets.push_back(n);
    round->loads.push_back(~std::size_t{0});
    return true;
  };

  auto finalize = [this, h, round] {
    if (round->done) return;
    round->done = true;
    // Average load over responding neighbors plus self: the probing node
    // is part of its own neighborhood, and with tiny samples excluding it
    // understates the average enough to trigger spurious migrations.
    const std::size_t my_load = sys_.node(h).load();
    double sum = double(my_load);
    std::size_t n = 1;
    std::vector<std::pair<std::size_t, overlay::Peer>> responders;
    for (std::size_t i = 0; i < round->targets.size(); ++i) {
      if (round->loads[i] == ~std::size_t{0}) continue;
      sum += double(round->loads[i]);
      ++n;
      responders.emplace_back(round->loads[i], round->targets[i]);
    }
    if (responders.empty()) return;
    const double avg = sum / double(n);
    if (double(my_load) <= avg * (1.0 + cfg_.delta)) return;
    if (my_load < cfg_.min_load) return;
    // Acceptors: lightly loaded responders, lightest first, capped at k.
    std::sort(responders.begin(), responders.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<overlay::Peer> acceptors;
    for (const auto& [load, ref] : responders) {
      if (double(load) >= avg) break;
      acceptors.push_back(ref);
      if (acceptors.size() >= cfg_.max_acceptors) break;
    }
    if (!acceptors.empty()) migrate(h, std::move(acceptors));
  };

  // Wave 1: direct neighbors.
  const auto neighbors = sys_.overlay().neighbors(h);
  std::vector<overlay::Peer> wave;
  for (const auto& nb : neighbors) {
    if (add_target(nb)) wave.push_back(nb);
  }
  if (wave.empty()) return;

  const bool deep = cfg_.probe_level >= 2;
  round->pending = wave.size();
  for (const auto& target : wave) {
    // Probe: request load (and, when probing deep, the peer's neighbors).
    sys_.network().send(
        h, target.host, overlay::kHeaderBytes,
        [this, h, target, round, deep, add_target, finalize] {
          const std::size_t peer_load = sys_.node(target.host).load();
          std::vector<overlay::Peer> peer_neighbors;
          if (deep) {
            peer_neighbors = sys_.overlay().neighbors(target.host);
          }
          const std::uint64_t reply_bytes =
              overlay::kHeaderBytes + 8 +
              overlay::kNodeRefBytes * peer_neighbors.size();
          sys_.network().send(
              target.host, h, reply_bytes,
              [this, h, target, round, peer_load, peer_neighbors, add_target,
               finalize] {
                if (round->done) return;
                for (std::size_t i = 0; i < round->targets.size(); ++i) {
                  if (round->targets[i].id == target.id) {
                    round->loads[i] = peer_load;
                    break;
                  }
                }
                // Wave 2: probe the second-level nodes for load only.
                for (const auto& nn : peer_neighbors) {
                  if (!add_target(nn)) continue;
                  ++round->pending;
                  sys_.network().send(
                      h, nn.host, overlay::kHeaderBytes,
                      [this, h, nn, round, finalize] {
                        const std::size_t l2 = sys_.node(nn.host).load();
                        sys_.network().send(
                            nn.host, h, overlay::kHeaderBytes + 8,
                            [round, nn, l2, finalize] {
                              if (round->done) return;
                              for (std::size_t i = 0;
                                   i < round->targets.size(); ++i) {
                                if (round->targets[i].id == nn.id) {
                                  round->loads[i] = l2;
                                  break;
                                }
                              }
                              assert(round->pending > 0);
                              --round->pending;
                              if (round->pending == 0) finalize();
                            });
                      });
                }
                assert(round->pending > 0);
                --round->pending;
                if (round->pending == 0) finalize();
              });
        });
  }
  // Timeout: finalize with whatever replies arrived (dead peers never answer).
  sys_.simulator().schedule(cfg_.reply_timeout_ms, finalize);
}

void LoadBalancer::migrate(net::HostIndex h,
                           std::vector<overlay::Peer> acceptors) {
  HyperSubNode& me = sys_.node(h);
  const Id my_id = me.node_id();
  // Clockwise order from this node: N, A1, ..., Ak (paper §4).
  std::sort(acceptors.begin(), acceptors.end(),
            [my_id](const overlay::Peer& a, const overlay::Peer& b) {
              return ring::distance(my_id, a.id) < ring::distance(my_id, b.id);
            });
  const std::size_t k = acceptors.size();

  // Zones whose summary shrank from extraction; propagated after the loop
  // (propagate_pieces can synchronously register a piece into a zone this
  // very node owns, i.e. insert into the map being iterated here).
  std::vector<ZoneAddr> shrunk;
  for (auto& [addr, zone] : me.zones()) {
    if (zone.subscription_count() == 0) continue;
    const SchemeRuntime& rt = sys_.scheme_runtime(addr.scheme);
    const Subscheme& ss = rt.subscheme(addr.subscheme);
    const Id zone_key = ss.zone_key(addr.zone);
    const std::size_t dims = rt.scheme().arity();
    const std::size_t proj_dims = ss.attributes().size();
    const HyperRect before_extract = zone.summary();

    for (std::size_t i = 0; i < k; ++i) {
      // Arc [A_i, A_{i+1}); the last acceptor takes [A_k, N).
      const Id lo = acceptors[i].id;
      const Id hi = (i + 1 < k) ? acceptors[i + 1].id : my_id;
      auto extracted = zone.extract_subscribers_in_arc(lo, hi);
      if (extracted.empty()) continue;

      // The pointer filter: deduplicated exact projected rects of what
      // leaves, plus their hull as a fast reject. The hull alone
      // over-covers — events in its dead corners chased the pointer to the
      // acceptor and matched nothing there.
      HyperRect summary;
      std::vector<HyperRect> sub_rects;
      for (const auto& s : extracted) {
        summary = summary.hull(s.projected);
        bool dup = false;
        for (const HyperRect& r : sub_rects) {
          if (r == s.projected) {
            dup = true;
            break;
          }
        }
        if (!dup) sub_rects.push_back(s.projected);
      }
      auto rects =
          std::make_shared<std::vector<HyperRect>>(std::move(sub_rects));

      // Failure-atomic handoff: the subscriptions count as migrated only
      // once the acceptor stored them AND the surrogate pointer landed
      // back at the origin. Both legs ride the reliable channel; if the
      // acceptor never acks, the extracted bucket is reinstalled locally
      // so no subscription is ever in neither place.
      auto bucket =
          std::make_shared<std::vector<StoredSub>>(std::move(extracted));
      const std::size_t count = bucket->size();
      const std::uint64_t total_bytes =
          overlay::kHeaderBytes + sub_bytes(dims) * count;
      const auto acceptor = acceptors[i];
      const ZoneAddr origin_addr = addr;
      // Tracing: one trace per bucket handoff. The migrate span opens at
      // the donor and closes only when the surrogate pointer is confirmed
      // back home (or the handoff rolls back); both reliable legs hang
      // their retry/expire spans under it.
      trace::TraceId mtrace = trace::kNoTrace;
      trace::SpanId mspan = trace::kNoSpan;
      if (auto* tr = sys_.tracer()) {
        mtrace = tr->start_trace(sys_.config().trace_sample_rate);
        if (mtrace != trace::kNoTrace) {
          mspan = tr->begin(mtrace, trace::kNoSpan,
                            trace::SpanKind::kMigrate, h,
                            sys_.simulator().now(), count,
                            std::uint64_t(acceptor.host));
        }
      }
      sys_.channel_.send(
          h, acceptor.host, total_bytes,
          [this, h, acceptor, origin_addr, zone_key, summary, rects, bucket,
           count, proj_dims, mtrace, mspan] {
            HyperSubNode& acc = sys_.node(acceptor.host);
            const std::uint32_t token =
                acc.accept_migration(zone_key, std::move(*bucket));
            // Register the surrogate pointer back at the origin. If the
            // origin dies before confirming, the bucket stays matchable at
            // the acceptor but unreachable — counted as failed, not
            // migrated (the origin's zone state died with it either way).
            // The pointer message carries the exact rects, not just the
            // hull; the wire cost scales with their count.
            sys_.channel_.send(
                acceptor.host, h,
                overlay::kHeaderBytes + kSubIdBytes +
                    16 * proj_dims * rects->size(),
                [this, h, acceptor, origin_addr, zone_key, summary, rects,
                 token, count, mspan] {
                  if (auto* tr = sys_.tracer()) {
                    tr->end(mspan, sys_.simulator().now());
                  }
                  HyperSubNode& origin = sys_.node(h);
                  // The zone may have been absorbed into a compressed chain
                  // while the handoff was in flight (all subs unsubscribed):
                  // split it back out before touching its state.
                  sys_.materialize_if_chained(h, origin_addr, zone_key);
                  ZoneState& zs = origin.zone_state(origin_addr, zone_key);
                  const HyperRect before = zs.summary();
                  zs.add_migrated_bucket(MigratedBucket{
                      summary, std::move(*rects),
                      SubId{acceptor.id, token, SubIdKind::kMigrated}});
                  // Balancer-global counter mutated from h's shard: joins
                  // the deferred stream (inline in sequential mode).
                  sys_.simulator().defer_ordered(
                      [this, count] { migrated_ += count; });
                  // Coherence: the zone's repository changed shape (part
                  // of it now lives behind a migrated-bucket pointer);
                  // force the next publish of this key through a full
                  // resolution so publishers observe the new layout.
                  sys_.invalidate_cached_route(zone_key);
                  // An unsubscription during the handoff window may have
                  // shrunk the summary below the bucket's hull; the
                  // pointer re-grows it, and ancestors must hear about it
                  // or events die upstream of this zone.
                  if (!(zs.summary() == before)) {
                    sys_.propagate_pieces(h, origin_addr);
                  }
                },
                [this, count] {
                  sys_.simulator().defer_ordered(
                      [this, count] { failed_ += count; });
                },
                trace::TraceCtx{mtrace, mspan});
          },
          [this, h, origin_addr, zone_key, bucket, count, mtrace, mspan] {
            // Acceptor unresponsive: roll back — reinstall the extracted
            // subscriptions at the origin.
            if (auto* tr = sys_.tracer()) {
              tr->point(mtrace, mspan, trace::SpanKind::kDrop, h,
                        sys_.simulator().now(), count);
              tr->end(mspan, sys_.simulator().now());
            }
            HyperSubNode& origin = sys_.node(h);
            sys_.materialize_if_chained(h, origin_addr, zone_key);
            ZoneState& zs = origin.zone_state(origin_addr, zone_key);
            const HyperRect before = zs.summary();
            for (auto& s : *bucket) zs.add_subscription(std::move(s));
            sys_.simulator().defer_ordered(
                [this, count] { failed_ += count; });
            if (!(zs.summary() == before)) {
              sys_.propagate_pieces(h, origin_addr);
            }
          },
          trace::TraceCtx{mtrace, mspan});
    }
    // Extraction shrinks the summary exactly (it used to stay unshrunk, so
    // the donor kept attracting events that matched nothing locally for
    // the rest of the run — permanently after a failed pointer leg, which
    // leaves no bucket to forward through). Tell the ancestors; the
    // asynchronous pointer legs re-propagate if they re-grow it later.
    if (!(zone.summary() == before_extract)) shrunk.push_back(addr);
  }
  for (const ZoneAddr& addr : shrunk) sys_.propagate_pieces(h, addr);
}

}  // namespace hypersub::core
