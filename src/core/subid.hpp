#pragma once
// Subscription identifiers carried in event messages (paper §3.3–3.4).
//
// The paper's subid = (nid, iid) overloads nid with both zone keys (the
// rendezvous entry, surrogate-subscription entries) and node ids (real
// subscriber entries) — both are routed by successor(nid). We make the
// overloading explicit with a kind tag; the wire size stays the paper's
// 9 bytes (8 B target + 1 B internal id, the tag riding in the iid byte's
// spare bits).

#include <cstdint>
#include <functional>
#include <string>

#include "common/ids.hpp"

namespace hypersub::core {

/// What a SubId's target means.
enum class SubIdKind : std::uint8_t {
  kRendezvous,  ///< target = leaf zone key; iid unused (Alg. 4's NULL iid)
  kZone,        ///< target = zone key of a surrogate-subscription's zone
  kSubscriber,  ///< target = subscriber node id; iid = subscription id
  kMigrated,    ///< target = acceptor node id; iid = migration bucket token
};

/// Routing handle for one pending match/delivery obligation.
struct SubId {
  Id target = 0;
  std::uint32_t iid = 0;
  SubIdKind kind = SubIdKind::kRendezvous;

  friend bool operator==(const SubId&, const SubId&) = default;

  std::string to_string() const;
};

/// Wire size of one subid in an event message: 8 B nodeid + 1 B iid.
inline constexpr std::uint64_t kSubIdBytes = 9;
/// Wire size of the event payload in an event message.
inline constexpr std::uint64_t kEventBytes = 100;

struct SubIdHash {
  std::size_t operator()(const SubId& s) const noexcept {
    std::size_t h = std::hash<Id>{}(s.target);
    h ^= std::hash<std::uint64_t>{}(
        (std::uint64_t(s.iid) << 8) | std::uint64_t(s.kind));
    return h;
  }
};

}  // namespace hypersub::core
