#pragma once
// Subscription identifiers carried in event messages (paper §3.3–3.4).
//
// The paper's subid = (nid, iid) overloads nid with both zone keys (the
// rendezvous entry, surrogate-subscription entries) and node ids (real
// subscriber entries) — both are routed by successor(nid). We make the
// overloading explicit with a kind tag; the wire size stays the paper's
// 9 bytes (8 B target + 1 B internal id, the tag riding in the iid byte's
// spare bits).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace hypersub::core {

/// What a SubId's target means.
enum class SubIdKind : std::uint8_t {
  kRendezvous,  ///< target = leaf zone key; iid unused (Alg. 4's NULL iid)
  kZone,        ///< target = zone key of a surrogate-subscription's zone
  kSubscriber,  ///< target = subscriber node id; iid = subscription id
  kMigrated,    ///< target = acceptor node id; iid = migration bucket token
};

/// Routing handle for one pending match/delivery obligation.
struct SubId {
  Id target = 0;
  std::uint32_t iid = 0;
  SubIdKind kind = SubIdKind::kRendezvous;

  friend bool operator==(const SubId&, const SubId&) = default;

  std::string to_string() const;
};

/// Wire size of one subid in an event message: 8 B nodeid + 1 B iid.
inline constexpr std::uint64_t kSubIdBytes = 9;
/// Wire size of the event payload in an event message.
inline constexpr std::uint64_t kEventBytes = 100;

/// Wire size of a subid list inside an event message.
///
/// `grouped` is the covering-aggregation encoding: a run of >= 2 adjacent
/// subids sharing one (target, kind) is sent as one 8 B target + 1 B
/// run-tag (kind + count in the iid byte's spare bits) + 1 B per iid —
/// 9 + n bytes instead of 9 n. Singleton runs keep the plain 9 B form, so
/// grouping never costs bytes. The encoding is lossless (the receiver
/// expands runs back to individual subids), so only the byte accounting
/// changes — senders order each hop's sublist by target to maximize runs
/// (HyperSubSystem Phase 2 under Config::cover_aggregation).
inline std::uint64_t subid_list_wire_bytes(const std::vector<SubId>& list,
                                           bool grouped) {
  if (!grouped) return kSubIdBytes * list.size();
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < list.size();) {
    std::size_t j = i + 1;
    while (j < list.size() && list[j].target == list[i].target &&
           list[j].kind == list[i].kind) {
      ++j;
    }
    const std::uint64_t n = j - i;
    bytes += n == 1 ? kSubIdBytes : 8 + 1 + n;
    i = j;
  }
  return bytes;
}

struct SubIdHash {
  std::size_t operator()(const SubId& s) const noexcept {
    std::size_t h = std::hash<Id>{}(s.target);
    h ^= std::hash<std::uint64_t>{}(
        (std::uint64_t(s.iid) << 8) | std::uint64_t(s.kind));
    return h;
  }
};

}  // namespace hypersub::core
