#pragma once
// DeliverySink: where completed event deliveries go. Tests and examples
// want every delivery recorded (VectorDeliverySink); large experiment runs
// only need counts (CountingDeliverySink); examples can observe deliveries
// as they happen (CallbackDeliverySink, or a per-publish callback on
// HyperSubSystem::publish). The system owns a VectorDeliverySink by
// default, so `deliveries()` keeps working out of the box.

#include <cstdint>
#include <functional>
#include <vector>

#include "net/topology.hpp"

namespace hypersub::core {

/// One completed delivery of an event to a subscriber (observability).
struct Delivery {
  std::uint64_t event_seq = 0;
  net::HostIndex subscriber = 0;
  std::uint32_t iid = 0;
  int hops = 0;            ///< overlay hops the event travelled to get here
  double latency_ms = 0.0; ///< publish -> delivery
};

/// Pluggable consumer of deliveries.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;
  virtual void on_delivery(const Delivery& d) = 0;
  /// Clear accumulated state (called by HyperSubSystem::reset_metrics).
  virtual void reset() {}
};

/// Records every delivery (tests, small examples). Unbounded — prefer
/// CountingDeliverySink for large runs.
class VectorDeliverySink final : public DeliverySink {
 public:
  void on_delivery(const Delivery& d) override { rows_.push_back(d); }
  void reset() override { rows_.clear(); }
  const std::vector<Delivery>& rows() const noexcept { return rows_; }

 private:
  std::vector<Delivery> rows_;
};

/// Counts deliveries without storing them (large runs).
class CountingDeliverySink final : public DeliverySink {
 public:
  void on_delivery(const Delivery&) override { ++count_; }
  void reset() override { count_ = 0; }
  std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Forwards each delivery to a user callback (examples).
class CallbackDeliverySink final : public DeliverySink {
 public:
  using Callback = std::function<void(const Delivery&)>;
  explicit CallbackDeliverySink(Callback cb) : cb_(std::move(cb)) {}
  void on_delivery(const Delivery& d) override { cb_(d); }

 private:
  Callback cb_;
};

}  // namespace hypersub::core
