#include "core/zone_chain.hpp"

#include <cassert>

namespace hypersub::core {

std::uint32_t ZoneChainSet::insert(CompressedChain c) {
  assert(c.span > 0);
  assert(c.level_keys.size() == c.span);
  std::uint32_t id;
  if (!free_chains_.empty()) {
    id = free_chains_.back();
    free_chains_.pop_back();
    chains_[id] = std::move(c);
  } else {
    id = std::uint32_t(chains_.size());
    chains_.push_back(std::move(c));
  }
  const CompressedChain& stored = chains_[id];
  // Equal keys occupy consecutive levels; index each distinct key once.
  for (std::size_t i = 0; i < stored.level_keys.size(); ++i) {
    if (i > 0 && stored.level_keys[i] == stored.level_keys[i - 1]) continue;
    index_add(stored.level_keys[i], id);
  }
  ++live_;
  total_span_ += stored.span;
  return id;
}

void ZoneChainSet::erase(std::uint32_t id) {
  CompressedChain& c = chains_[id];
  assert(c.span > 0);
  for (std::size_t i = 0; i < c.level_keys.size(); ++i) {
    if (i > 0 && c.level_keys[i] == c.level_keys[i - 1]) continue;
    index_remove(c.level_keys[i], id);
  }
  --live_;
  total_span_ -= c.span;
  c = CompressedChain{};  // span = 0: free slot
  free_chains_.push_back(id);
}

std::uint32_t ZoneChainSet::find_containing(std::uint32_t scheme,
                                            std::uint32_t subscheme,
                                            const lph::Zone& z, Id key,
                                            int base_bits) const {
  const std::uint32_t* head = index_.find(key);
  if (head == nullptr) return kNone;
  for (std::uint32_t e = *head; e != kNone; e = entries_[e].next) {
    const CompressedChain& c = chains_[entries_[e].chain];
    if (c.scheme == scheme && c.subscheme == subscheme &&
        c.has_member(z, base_bits)) {
      return entries_[e].chain;
    }
  }
  return kNone;
}

void ZoneChainSet::clear() {
  chains_.clear();
  free_chains_.clear();
  index_.clear();
  entries_.clear();
  free_entries_.clear();
  live_ = 0;
  total_span_ = 0;
}

std::size_t ZoneChainSet::memory_bytes() const {
  std::size_t bytes = chains_.capacity() * sizeof(CompressedChain) +
                      free_chains_.capacity() * sizeof(std::uint32_t) +
                      entries_.capacity() * sizeof(KeyEntry) +
                      free_entries_.capacity() * sizeof(std::uint32_t) +
                      index_.memory_bytes();
  for (const CompressedChain& c : chains_) {
    bytes += c.level_keys.capacity() * sizeof(Id) +
             c.piece.dims().capacity() * sizeof(Interval);
  }
  return bytes;
}

void ZoneChainSet::index_add(Id key, std::uint32_t id) {
  std::uint32_t e;
  if (!free_entries_.empty()) {
    e = free_entries_.back();
    free_entries_.pop_back();
  } else {
    e = std::uint32_t(entries_.size());
    entries_.push_back(KeyEntry{});
  }
  entries_[e].chain = id;
  if (std::uint32_t* head = index_.find(key)) {
    entries_[e].next = *head;
    *head = e;
  } else {
    entries_[e].next = kNone;
    index_.insert(key, e);
  }
}

void ZoneChainSet::index_remove(Id key, std::uint32_t id) {
  std::uint32_t* head = index_.find(key);
  assert(head != nullptr);
  std::uint32_t* link = head;
  for (std::uint32_t e = *head; e != kNone; e = entries_[e].next) {
    if (entries_[e].chain == id) {
      *link = entries_[e].next;
      entries_[e] = KeyEntry{};
      free_entries_.push_back(e);
      if (*head == kNone) index_.erase(key);
      return;
    }
    link = &entries_[e].next;
  }
  assert(false && "chain id missing from key index");
}

}  // namespace hypersub::core
