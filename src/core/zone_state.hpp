#pragma once
// Per-zone repository kept by a zone's surrogate node (paper §3.3).
//
// A surrogate node manages each hosted content zone as a virtual node. The
// zone's state holds:
//   * real subscriptions mapped to this zone by LPH,
//   * at most one surrogate-subscription piece registered by the parent
//     zone (the subdivision of the parent's summary filter that falls into
//     this zone),
//   * migrated-bucket pointers left behind by dynamic load balancing,
//   * the summary filter: minimal hyper-cuboid covering all of the above,
//   * the cache of the pieces last registered at each child zone.
//
// Geometry is in the owning subscheme's projected space; real
// subscriptions also carry their full-space hyper-cuboid so final matching
// is exact.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hyperrect.hpp"
#include "core/sub_index.hpp"
#include "core/subid.hpp"
#include "lph/zone.hpp"
#include "pubsub/subscription.hpp"

namespace hypersub::core {

/// Globally unique address of a zone instance.
struct ZoneAddr {
  std::uint32_t scheme = 0;
  std::uint32_t subscheme = 0;
  lph::Zone zone;

  friend bool operator==(const ZoneAddr&, const ZoneAddr&) = default;
};

struct ZoneAddrHash {
  std::size_t operator()(const ZoneAddr& a) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(a.zone.code);
    h ^= std::hash<std::uint64_t>{}(
        (std::uint64_t(a.scheme) << 40) ^ (std::uint64_t(a.subscheme) << 20) ^
        std::uint64_t(a.zone.level));
    return h;
  }
};

/// A real subscription stored at its covering zone.
struct StoredSub {
  SubId owner;                   ///< kSubscriber: subscriber node id + iid
  pubsub::Subscription sub;      ///< full-space range (exact matching)
  HyperRect projected;           ///< range projected onto the subscheme
};

/// Pointer to subscriptions migrated away by load balancing.
struct MigratedBucket {
  HyperRect summary;  ///< projected-space hull of the migrated subs
  SubId pointer;      ///< kMigrated: acceptor node id + bucket token
};

/// Repository + summary filter of one content zone.
class ZoneState {
 public:
  /// Below this many stored subscriptions, match() linear-scans; at or
  /// above it, a SubIndex is built and maintained incrementally. The sweet
  /// spot: almost all zones in a distributed run hold a handful of subs
  /// (index overhead would dominate), while hot rendezvous zones grow into
  /// the thousands (scan dominates).
  static constexpr std::size_t kDefaultIndexThreshold = 64;

  explicit ZoneState(ZoneAddr addr,
                     std::size_t index_threshold = kDefaultIndexThreshold)
      : addr_(addr), index_threshold_(index_threshold) {}

  const ZoneAddr& addr() const noexcept { return addr_; }

  /// Re-tune the fallback threshold. Lowering it below the current sub
  /// count builds the index; raising it above drops the index (forcing the
  /// linear scan — the parity tests' lever).
  void set_index_threshold(std::size_t threshold);
  std::size_t index_threshold() const noexcept { return index_threshold_; }

  /// True while match() runs through the subscription index.
  bool index_active() const noexcept { return indexed_; }

  /// Register a real subscription. Returns true if the summary filter grew.
  bool add_subscription(StoredSub s);

  /// Remove a subscription by owner identity; returns the removed entry.
  /// Shrinks the summary filter (recomputed exactly).
  std::optional<StoredSub> remove_subscription(const SubId& owner);

  /// Install/refresh the surrogate piece from the parent zone. Returns true
  /// if the summary filter grew.
  bool set_parent_piece(HyperRect rect, Id parent_key);

  /// Record a migrated bucket pointer (kept by the migration origin).
  void add_migrated_bucket(MigratedBucket b);

  /// Remove and return the stored subscriptions whose subscriber node id
  /// lies in the clockwise ring arc [lo, hi). Used by migration. The
  /// summary filter is left unshrunk (still a valid cover).
  std::vector<StoredSub> extract_subscribers_in_arc(Id lo, Id hi);

  /// Event matching for this zone (Alg. 5's event_match): appends the
  /// subids of matching real subscriptions, the parent piece if the
  /// projected point falls inside it, and any matching migrated buckets.
  void match(const Point& full, const Point& projected,
             std::vector<SubId>& out) const;

  /// Summary filter (projected space); empty() when nothing registered.
  const HyperRect& summary() const noexcept { return summary_; }

  /// Piece last pushed to child `digit`; empty() if none yet.
  const HyperRect& child_piece(int digit) const;
  void set_child_piece(int digit, HyperRect piece);

  /// Load contribution of this zone: stored entries of any kind.
  std::size_t entry_count() const noexcept {
    return subs_.size() + (parent_piece_ ? 1 : 0) + buckets_.size();
  }
  std::size_t subscription_count() const noexcept { return subs_.size(); }
  const std::vector<StoredSub>& subscriptions() const noexcept { return subs_; }
  const std::vector<MigratedBucket>& buckets() const noexcept { return buckets_; }
  bool has_parent_piece() const noexcept { return parent_piece_.has_value(); }

  /// The installed surrogate piece and the parent zone key that registered
  /// it; nullopt if none (cross-node staleness audits).
  const std::optional<std::pair<HyperRect, Id>>& parent_piece() const noexcept {
    return parent_piece_;
  }

  /// Exact recompute of the summary filter from current contents.
  /// Returns true if it changed. (Used after removals.)
  bool recompute_summary();

 private:
  void build_index();
  void drop_index();

  ZoneAddr addr_;
  std::vector<StoredSub> subs_;
  std::optional<std::pair<HyperRect, Id>> parent_piece_;  // rect, parent key
  std::vector<MigratedBucket> buckets_;
  HyperRect summary_;  // empty() == no content
  std::vector<HyperRect> child_pieces_;  // lazily sized to the zone base

  // Matching index over subs_' full-space ranges (see sub_index.hpp).
  // slots_[i] is the index slot of subs_[i]; pos_of_slot_ inverts it.
  SubIndex index_;
  bool indexed_ = false;
  std::size_t index_threshold_;
  std::vector<std::uint32_t> slots_;
  std::vector<std::size_t> pos_of_slot_;
  mutable std::vector<std::uint32_t> cand_;  // match() scratch
};

}  // namespace hypersub::core
