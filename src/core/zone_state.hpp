#pragma once
// Per-zone repository kept by a zone's surrogate node (paper §3.3).
//
// A surrogate node manages each hosted content zone as a virtual node. The
// zone's state holds:
//   * real subscriptions mapped to this zone by LPH,
//   * at most one surrogate-subscription piece registered by the parent
//     zone (the subdivision of the parent's summary filter that falls into
//     this zone),
//   * migrated-bucket pointers left behind by dynamic load balancing,
//   * the summary filter: minimal hyper-cuboid covering all of the above,
//   * the cache of the pieces last registered at each child zone.
//
// Geometry is in the owning subscheme's projected space; real
// subscriptions also carry their full-space hyper-cuboid so final matching
// is exact.
//
// Subscriptions live in an arena (core::SubArena): SoA interval pools
// behind stable 32-bit refs, so the per-event scan streams contiguous
// memory. `order_` keeps the refs in insertion order — match() emits
// subids in exactly that order, which is the behavior contract the
// old vector<StoredSub> layout established (tests/test_match_index.cpp).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/hyperrect.hpp"
#include "common/wire.hpp"
#include "core/cover_set.hpp"
#include "core/sub_arena.hpp"
#include "core/sub_index.hpp"
#include "core/subid.hpp"
#include "lph/zone.hpp"
#include "pubsub/subscription.hpp"

namespace hypersub::core {

/// Globally unique address of a zone instance.
struct ZoneAddr {
  std::uint32_t scheme = 0;
  std::uint32_t subscheme = 0;
  lph::Zone zone;

  friend bool operator==(const ZoneAddr&, const ZoneAddr&) = default;
};

/// splitmix64 finalizer: full-avalanche mix of one 64-bit word.
inline std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Mixes all three fields through splitmix64. The previous hash xor'ed two
/// std::hash<uint64_t> values (identity on libstdc++), so sibling zones —
/// equal level, codes differing in low bits — collided structurally into
/// neighboring buckets and popular-prefix codes stacked up; see
/// tests/test_core.cpp ZoneAddrHashQuality for the measured max-bucket-load
/// difference.
struct ZoneAddrHash {
  std::size_t operator()(const ZoneAddr& a) const noexcept {
    std::uint64_t h = splitmix64(a.zone.code);
    h = splitmix64(h ^ ((std::uint64_t(a.scheme) << 32) |
                        std::uint64_t(a.subscheme)));
    h = splitmix64(h ^ std::uint64_t(std::uint32_t(a.zone.level)));
    return std::size_t(h);
  }
};

/// Pointer to subscriptions migrated away by load balancing.
struct MigratedBucket {
  HyperRect summary;  ///< projected-space hull of the migrated subs
  /// Deduplicated exact projected rects of the migrated subs. The hull
  /// alone over-covers (events in its dead corners would chase the pointer
  /// and match nothing at the acceptor); match() uses the hull as a fast
  /// reject and forwards only when one of these rects contains the point.
  std::vector<HyperRect> sub_rects;
  SubId pointer;      ///< kMigrated: acceptor node id + bucket token
};

/// Repository + summary filter of one content zone.
class ZoneState {
 public:
  /// Below this many stored subscriptions, match() linear-scans; at or
  /// above it, a SubIndex is built and maintained incrementally. The sweet
  /// spot: almost all zones in a distributed run hold a handful of subs
  /// (index overhead would dominate), while hot rendezvous zones grow into
  /// the thousands (scan dominates).
  static constexpr std::size_t kDefaultIndexThreshold = 64;

  explicit ZoneState(ZoneAddr addr,
                     std::size_t index_threshold = kDefaultIndexThreshold,
                     bool cover_aggregation = false)
      : addr_(addr),
        index_threshold_(index_threshold),
        cover_(cover_aggregation) {}

  const ZoneAddr& addr() const noexcept { return addr_; }

  /// Re-tune the fallback threshold. Lowering it below the current sub
  /// count builds the index; raising it above drops the index (forcing the
  /// linear scan — the parity tests' lever).
  void set_index_threshold(std::size_t threshold);
  std::size_t index_threshold() const noexcept { return index_threshold_; }

  /// True while match() runs through the subscription index.
  bool index_active() const noexcept { return store_ && store_->indexed; }

  /// Register a real subscription. Returns true if the summary filter grew.
  /// Under cover aggregation, a subscription whose full-space rect is
  /// contained in an already-registered one's is quenched: stored in the
  /// arena against the first covering representative (insertion order) but
  /// kept out of order_/SubIndex — it can never grow the summary, so the
  /// return is always false for quenched installs.
  bool add_subscription(StoredSub s);

  /// Remove a subscription by owner identity; returns the removed entry.
  /// Shrinks the summary filter (recomputed exactly). Removing a covering
  /// representative promotes its coverees in quench order: each either
  /// re-quenches under a surviving representative or joins order_/SubIndex.
  std::optional<StoredSub> remove_subscription(const SubId& owner);

  /// Install/refresh the surrogate piece from the parent zone. Returns true
  /// if the summary filter grew.
  bool set_parent_piece(HyperRect rect, Id parent_key);

  /// Record a migrated bucket pointer (kept by the migration origin).
  void add_migrated_bucket(MigratedBucket b);

  /// Remove and return the stored subscriptions (representatives and
  /// quenched coverees alike) whose subscriber node id lies in the
  /// clockwise ring arc [lo, hi). Used by migration. Coverees orphaned by
  /// a leaving representative are re-homed (re-quenched or promoted), and
  /// the summary filter is recomputed exactly — it used to be left
  /// unshrunk, which kept attracting events that matched nothing here for
  /// the rest of the run. Callers owning a changed summary must propagate
  /// the shrink (LoadBalancer::migrate does, like unsubscribe).
  std::vector<StoredSub> extract_subscribers_in_arc(Id lo, Id hi);

  /// Event matching for this zone (Alg. 5's event_match): appends the
  /// subids of matching real subscriptions, the parent piece if the
  /// projected point falls inside it, and any matching migrated buckets.
  void match(const Point& full, const Point& projected,
             std::vector<SubId>& out) const;

  /// Summary filter (projected space); empty() when nothing registered.
  const HyperRect& summary() const noexcept { return summary_; }

  /// Piece last pushed to child `digit`; empty() if none yet.
  const HyperRect& child_piece(int digit) const;
  void set_child_piece(int digit, HyperRect piece);

  /// Load contribution of this zone: stored entries of any kind.
  std::size_t entry_count() const noexcept {
    return subscription_count() + (parent_piece_ ? 1 : 0) +
           (store_ ? store_->buckets.size() : 0);
  }
  std::size_t subscription_count() const noexcept {
    // Arena size = representatives + quenched coverees: a quenched sub is
    // still stored (and migrated) here, so it still contributes load.
    return store_ ? store_->arena.size() : 0;
  }

  /// Cover-aggregation accounting: subscriptions registered upward (in
  /// order_/SubIndex), subscriptions quenched under a representative, and
  /// promotions performed when a representative left.
  std::size_t cover_representatives() const noexcept {
    return store_ ? store_->order.size() : 0;
  }
  std::size_t cover_quenched() const noexcept {
    return store_ ? store_->covers.quenched_count() : 0;
  }
  std::uint64_t cover_promotions() const noexcept { return cover_promotions_; }
  bool cover_aggregation() const noexcept { return cover_; }

  /// Materialized copies of the stored subscriptions, in insertion order.
  /// Audit/test convenience — O(n) allocations; the arena is the storage.
  std::vector<StoredSub> subscriptions() const;

  const std::vector<MigratedBucket>& buckets() const noexcept;
  bool has_parent_piece() const noexcept { return parent_piece_.has_value(); }

  /// The installed surrogate piece and the parent zone key that registered
  /// it; nullopt if none (cross-node staleness audits).
  const std::optional<std::pair<HyperRect, Id>>& parent_piece() const noexcept {
    return parent_piece_;
  }

  /// Exact recompute of the summary filter from current contents.
  /// Returns true if it changed. (Used after removals.)
  bool recompute_summary();

  /// The exact hull of current contents, freshly folded without touching
  /// the maintained summary (invariant audits).
  HyperRect exact_summary() const;

  /// True if a subscription with this owner identity is stored here
  /// (representative or quenched coveree).
  bool has_subscription(const SubId& owner) const;

  // -- state transfer / checkpointing ---------------------------------------

  /// Serialize the complete repository: representatives in insertion order
  /// (each with its coverees in quench order), migrated buckets, parent
  /// piece, child-piece cache, summary, index flag, promotion counter. The
  /// address is NOT included — the receiving side keys zones externally.
  void save(common::ByteWriter& w) const;

  /// Rebuild from save()'s encoding into a freshly-constructed ZoneState
  /// (same addr / threshold / cover flags). Structure-exact: insertion
  /// order, quench relations, and the indexed flag are reproduced verbatim
  /// — not re-derived — so match() emission order is identical to the
  /// source zone's.
  void restore(common::ByteReader& r);

  /// Order-insensitive semantic digest: the stored subscription set, the
  /// parent piece, buckets, non-empty child pieces, and the summary. Two
  /// zones with the same digest deliver the same events; insertion order,
  /// quench assignment, and index state are deliberately excluded (a
  /// protocol-built zone permutes them relative to an oracle-built one).
  std::uint64_t fingerprint() const;

  /// Estimated heap bytes of the structural (zone-tree) part: summary,
  /// parent piece, and the child-piece cache. Excludes the SubStore and
  /// sizeof(ZoneState) itself (the caller owns the map entry).
  std::size_t structural_bytes() const noexcept;

  /// Estimated heap bytes of subscription storage: the boxed SubStore with
  /// its arena pools, ordering/index bookkeeping, and migrated buckets.
  std::size_t store_bytes() const noexcept;

 private:
  // Subscription storage + matching index, boxed behind one pointer and
  // allocated on first use. The vast majority of zones in a large run are
  // structural: they exist only to carry a summary piece down the tree and
  // never store a subscription or bucket. Keeping the arena/index
  // machinery out-of-line cuts the per-zone footprint of those piece-only
  // zones to the address, the piece, the summary and the child-piece
  // cache — the dominant RSS term at saturation scale.
  //
  // `slots[i]` is the index slot of `order[i]`; `pos_of_slot` inverts it.
  struct SubStore {
    SubArena arena;                     // SoA storage of stored subs
    std::vector<SubArena::Ref> order;   // live representative refs,
                                        // insertion order (coverees live
                                        // only in arena + covers)
    std::vector<MigratedBucket> buckets;
    SubIndex index;
    bool indexed = false;
    std::vector<std::uint32_t> slots;
    std::vector<std::size_t> pos_of_slot;
    std::vector<std::uint32_t> cand;  // match()/find_coverer() scratch
    CoverSet covers;                  // quench bookkeeping (cover_ only)
    Point probe;                      // find_coverer() scratch point
  };

  SubStore& store();  // find-or-create
  void build_index();
  void drop_index();
  /// First representative (insertion order) whose full rect covers `full`;
  /// kNullRef if none. Index-accelerated when the index is live.
  SubArena::Ref find_coverer(SubStore& st, const HyperRect& full) const;
  /// Append a rep to order_ (+ SubIndex when live) without re-adding it to
  /// the arena — promotion of an already-stored coveree.
  void append_representative(SubStore& st, SubArena::Ref ref);
  /// Re-home a coveree whose representative left: re-quench under the
  /// first surviving coverer or promote to representative.
  void rehome_coveree(SubStore& st, SubArena::Ref ref);

  ZoneAddr addr_;
  std::unique_ptr<SubStore> store_;  // null until a sub/bucket arrives
  std::optional<std::pair<HyperRect, Id>> parent_piece_;  // rect, parent key
  HyperRect summary_;  // empty() == no content
  std::vector<HyperRect> child_pieces_;  // lazily sized to the zone base
  std::size_t index_threshold_;
  bool cover_ = false;  // covering-based quench at registration
  std::uint64_t cover_promotions_ = 0;
};

}  // namespace hypersub::core
