#include "core/zone_state.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/ids.hpp"
#include "core/state_wire.hpp"

namespace hypersub::core {

namespace {
const HyperRect kEmptyRect{};
const std::vector<MigratedBucket> kNoBuckets{};
constexpr std::size_t kNoPos = ~std::size_t{0};
}  // namespace

ZoneState::SubStore& ZoneState::store() {
  if (!store_) store_ = std::make_unique<SubStore>();
  return *store_;
}

const std::vector<MigratedBucket>& ZoneState::buckets() const noexcept {
  return store_ ? store_->buckets : kNoBuckets;
}

void ZoneState::set_index_threshold(std::size_t threshold) {
  index_threshold_ = threshold;
  // A piece-only zone holds zero subscriptions; materialize its store only
  // if the new threshold indexes the empty set (threshold 0).
  if (!store_ && threshold > 0) return;
  SubStore& st = store();
  if (!st.indexed && st.order.size() >= index_threshold_) build_index();
  if (st.indexed && st.order.size() < index_threshold_) drop_index();
}

void ZoneState::build_index() {
  SubStore& st = store();
  st.index = SubIndex{};
  st.slots.clear();
  st.pos_of_slot.clear();
  st.slots.reserve(st.order.size());
  for (std::size_t i = 0; i < st.order.size(); ++i) {
    const std::uint32_t slot = st.index.insert(st.arena.full_rect(st.order[i]));
    st.slots.push_back(slot);
    if (st.pos_of_slot.size() <= slot) st.pos_of_slot.resize(slot + 1, kNoPos);
    st.pos_of_slot[slot] = i;
  }
  st.indexed = true;
}

void ZoneState::drop_index() {
  SubStore& st = store();
  st.index = SubIndex{};
  st.slots.clear();
  st.pos_of_slot.clear();
  st.indexed = false;
}

SubArena::Ref ZoneState::find_coverer(SubStore& st,
                                      const HyperRect& full) const {
  if (!st.indexed) {
    for (const SubArena::Ref ref : st.order) {
      if (st.arena.full_covers(ref, full.dims())) return ref;
    }
    return SubArena::kNullRef;
  }
  // A coverer contains every point of `full`, including its lo corner —
  // probe the index there, then take the first covering candidate in
  // insertion order (same pick as the scan path, so indexed and scan zones
  // quench identically).
  st.probe.clear();
  for (const Interval& d : full.dims()) st.probe.push_back(d.lo);
  st.cand.clear();
  st.index.candidates(st.probe, st.cand);
  for (auto& c : st.cand) c = std::uint32_t(st.pos_of_slot[c]);
  std::sort(st.cand.begin(), st.cand.end());
  for (const std::uint32_t pos : st.cand) {
    const SubArena::Ref ref = st.order[pos];
    if (st.arena.full_covers(ref, full.dims())) return ref;
  }
  return SubArena::kNullRef;
}

void ZoneState::append_representative(SubStore& st, SubArena::Ref ref) {
  if (st.indexed) {
    const std::uint32_t slot = st.index.insert(st.arena.full_rect(ref));
    st.slots.push_back(slot);
    if (st.pos_of_slot.size() <= slot) st.pos_of_slot.resize(slot + 1, kNoPos);
    st.pos_of_slot[slot] = st.order.size();
  }
  st.order.push_back(ref);
  if (!st.indexed && st.order.size() >= index_threshold_) build_index();
}

void ZoneState::rehome_coveree(SubStore& st, SubArena::Ref ref) {
  const HyperRect full = st.arena.full_rect(ref);
  const SubArena::Ref rep = find_coverer(st, full);
  if (rep != SubArena::kNullRef) {
    st.covers.quench(rep, ref);
    return;
  }
  // Promoted representatives immediately become coverer candidates for the
  // orphans re-homed after them (exact-duplicate groups collapse back to
  // one representative).
  append_representative(st, ref);
  ++cover_promotions_;
}

bool ZoneState::add_subscription(StoredSub s) {
  SubStore& st = store();
  if (cover_) {
    const SubArena::Ref rep = find_coverer(st, s.sub.range());
    if (rep != SubArena::kNullRef) {
      // Quenched: stored and matched via the representative, but never
      // registered in order_/SubIndex. Projection is monotone, so the
      // quenched projection is inside the representative's — the summary
      // cannot grow and nothing propagates upward.
      assert(summary_.covers(s.projected));
      st.covers.quench(rep, st.arena.add(s));
      return false;
    }
  }
  const HyperRect grown = summary_.hull(s.projected);
  if (st.indexed) {
    const std::uint32_t slot = st.index.insert(s.sub.range());
    st.slots.push_back(slot);
    if (st.pos_of_slot.size() <= slot) st.pos_of_slot.resize(slot + 1, kNoPos);
    st.pos_of_slot[slot] = st.order.size();
  }
  st.order.push_back(st.arena.add(s));
  if (!st.indexed && st.order.size() >= index_threshold_) build_index();
  if (grown == summary_) return false;
  summary_ = grown;
  return true;
}

std::optional<StoredSub> ZoneState::remove_subscription(const SubId& owner) {
  if (!store_) return std::nullopt;
  SubStore& st = *store_;
  std::size_t pos = st.order.size();
  for (std::size_t i = 0; i < st.order.size(); ++i) {
    if (st.arena.owner(st.order[i]) == owner) {
      pos = i;
      break;
    }
  }
  if (pos == st.order.size()) {
    // Not a representative — maybe a quenched coveree. Enumerate via the
    // representatives (insertion order), never the hash maps, so lookup
    // order is deterministic.
    if (!cover_ || st.covers.empty()) return std::nullopt;
    for (const SubArena::Ref rep : st.order) {
      const auto* list = st.covers.coverees(rep);
      if (list == nullptr) continue;
      for (const SubArena::Ref ref : *list) {
        if (st.arena.owner(ref) == owner) {
          StoredSub out = st.arena.materialize(ref);
          st.covers.release(ref);
          st.arena.remove(ref);
          // A coveree lies inside its representative's rect, which is
          // still registered: the summary is unchanged.
          return out;
        }
      }
    }
    return std::nullopt;
  }
  const SubArena::Ref ref = st.order[pos];
  // Un-quench promotion: the leaving representative's coverees re-home in
  // quench order — each re-quenches under the first surviving coverer or
  // becomes a representative itself.
  std::vector<SubArena::Ref> orphans = st.covers.take_coverees(ref);
  StoredSub out = st.arena.materialize(ref);
  st.arena.remove(ref);
  st.order.erase(st.order.begin() + std::ptrdiff_t(pos));
  if (st.indexed) {
    // Once built, the index sticks below the threshold (hysteresis): churn
    // around the threshold should not oscillate between builds and drops.
    st.index.remove(st.slots[pos]);
    st.pos_of_slot[st.slots[pos]] = kNoPos;
    st.slots.erase(st.slots.begin() + std::ptrdiff_t(pos));
    for (std::size_t i = pos; i < st.slots.size(); ++i) {
      st.pos_of_slot[st.slots[i]] = i;
    }
  }
  for (const SubArena::Ref o : orphans) rehome_coveree(st, o);
  recompute_summary();
  return out;
}

bool ZoneState::set_parent_piece(HyperRect rect, Id parent_key) {
  // An empty rect clears the piece (the parent's summary shrank away from
  // this child). Replace-then-recompute also handles shrinking pieces.
  if (rect.empty()) {
    if (!parent_piece_) return false;
    parent_piece_.reset();
  } else {
    parent_piece_ = {std::move(rect), parent_key};
  }
  return recompute_summary();
}

void ZoneState::add_migrated_bucket(MigratedBucket b) {
  SubStore& st = store();
  st.buckets.push_back(std::move(b));
  // Migrated subs were already part of the summary before migration; the
  // bucket hull cannot grow it, but hull anyway for safety.
  summary_ = summary_.hull(st.buckets.back().summary);
}

std::vector<StoredSub> ZoneState::extract_subscribers_in_arc(Id lo, Id hi) {
  if (!store_) return {};
  SubStore& st = *store_;
  std::vector<StoredSub> out;
  // Coverees leaving with the arc (their relation is dropped and they are
  // materialized after the representatives), and coverees staying behind
  // while their representative leaves (re-homed below).
  std::vector<SubArena::Ref> leaving_coverees;
  std::vector<SubArena::Ref> orphans;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < st.order.size(); ++i) {
    const SubArena::Ref ref = st.order[i];
    const bool leaves =
        ring::in_closed_open(st.arena.owner(ref).target, lo, hi);
    if (cover_) {
      if (const auto* list = st.covers.coverees(ref)) {
        for (const SubArena::Ref c : *list) {
          if (ring::in_closed_open(st.arena.owner(c).target, lo, hi)) {
            leaving_coverees.push_back(c);
          } else if (leaves) {
            orphans.push_back(c);
          }
        }
      }
      if (leaves) st.covers.take_coverees(ref);
    }
    if (leaves) {
      if (st.indexed) st.index.remove(st.slots[i]);
      out.push_back(st.arena.materialize(ref));
      st.arena.remove(ref);
    } else {
      if (kept != i) {
        st.order[kept] = st.order[i];
        if (st.indexed) st.slots[kept] = st.slots[i];
      }
      ++kept;
    }
  }
  st.order.resize(kept);
  if (st.indexed) {
    st.slots.resize(kept);
    std::fill(st.pos_of_slot.begin(), st.pos_of_slot.end(), kNoPos);
    for (std::size_t i = 0; i < st.slots.size(); ++i) {
      st.pos_of_slot[st.slots[i]] = i;
    }
  }
  for (const SubArena::Ref c : leaving_coverees) {
    st.covers.release(c);  // no-op for coverees of a representative that left
    out.push_back(st.arena.materialize(c));
    st.arena.remove(c);
  }
  for (const SubArena::Ref o : orphans) rehome_coveree(st, o);
  // Shrink the summary exactly. Leaving it "still a valid cover" (the old
  // contract) meant a donor kept attracting events that matched nothing
  // locally forever after a migration — and after a failed pointer leg,
  // with no bucket to forward through, those events were pure waste.
  recompute_summary();
  return out;
}

void ZoneState::match(const Point& full, const Point& projected,
                      std::vector<SubId>& out) const {
  if (store_) {
    SubStore& st = *store_;
    // A representative hit is expanded to its coverees right away (quench
    // order), each re-checked exactly: a coveree's rect is contained in the
    // representative's but may still exclude this event.
    const bool expand = cover_ && !st.covers.empty();
    const auto emit = [&](SubArena::Ref ref) {
      out.push_back(st.arena.owner(ref));
      if (!expand) return;
      if (const auto* list = st.covers.coverees(ref)) {
        for (const SubArena::Ref c : *list) {
          if (st.arena.full_contains(c, full)) {
            out.push_back(st.arena.owner(c));
          }
        }
      }
    };
    if (!st.indexed) {
      for (const SubArena::Ref ref : st.order) {
        if (st.arena.full_contains(ref, full)) emit(ref);
      }
    } else {
      st.cand.clear();
      st.index.candidates(full, st.cand);
      // Candidates arrive in slot order; emit in insertion order so the
      // indexed path is bit-for-bit identical to the scan (the parity tests
      // rely on it, and so does any downstream consumer of delivery order).
      for (auto& c : st.cand) c = std::uint32_t(st.pos_of_slot[c]);
      std::sort(st.cand.begin(), st.cand.end());
      for (const std::uint32_t pos : st.cand) {
        const SubArena::Ref ref = st.order[pos];
        if (st.arena.full_contains(ref, full)) emit(ref);
      }
    }
  }
  if (parent_piece_ && parent_piece_->first.contains(projected)) {
    out.push_back(SubId{parent_piece_->second, 0, SubIdKind::kZone});
  }
  if (store_) {
    for (const auto& b : store_->buckets) {
      // Hull first (cheap reject), then the exact per-sub rects: an event in
      // the hull's dead corners would otherwise chase the pointer and match
      // nothing at the acceptor. Empty sub_rects = trust the hull (tests
      // installing bare buckets).
      if (!b.summary.contains(projected)) continue;
      if (!b.sub_rects.empty()) {
        bool hit = false;
        for (const HyperRect& r : b.sub_rects) {
          if (r.contains(projected)) {
            hit = true;
            break;
          }
        }
        if (!hit) continue;
      }
      out.push_back(b.pointer);
    }
  }
}

std::vector<StoredSub> ZoneState::subscriptions() const {
  if (!store_) return {};
  std::vector<StoredSub> out;
  out.reserve(store_->arena.size());
  for (const SubArena::Ref ref : store_->order) {
    out.push_back(store_->arena.materialize(ref));
    if (const auto* list = store_->covers.coverees(ref)) {
      for (const SubArena::Ref c : *list) {
        out.push_back(store_->arena.materialize(c));
      }
    }
  }
  return out;
}

const HyperRect& ZoneState::child_piece(int digit) const {
  if (std::size_t(digit) >= child_pieces_.size()) return kEmptyRect;
  return child_pieces_[std::size_t(digit)];
}

void ZoneState::set_child_piece(int digit, HyperRect piece) {
  if (piece.empty()) {
    // Clearing: release the cache vector entirely when the last non-empty
    // entry goes — zones demoted to structural (and later chain-absorbed)
    // must not keep a base-sized rect vector alive.
    if (std::size_t(digit) >= child_pieces_.size()) return;
    child_pieces_[std::size_t(digit)] = HyperRect{};
    for (const HyperRect& p : child_pieces_) {
      if (!p.empty()) return;
    }
    child_pieces_ = {};
    return;
  }
  if (std::size_t(digit) >= child_pieces_.size()) {
    child_pieces_.resize(std::size_t(digit) + 1);
  }
  child_pieces_[std::size_t(digit)] = std::move(piece);
}

HyperRect ZoneState::exact_summary() const {
  // Fold hulls dimension-wise over the arena's projected pool — no
  // per-subscription HyperRect temporaries (this runs after every removal).
  std::vector<Interval> acc;
  bool have = false;
  const auto fold = [&](std::span<const Interval> d) {
    if (d.empty()) return;
    if (!have) {
      acc.assign(d.begin(), d.end());
      have = true;
      return;
    }
    assert(acc.size() == d.size());
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = acc[i].hull(d[i]);
  };
  if (store_) {
    for (const SubArena::Ref ref : store_->order) {
      fold(store_->arena.projected(ref));
    }
  }
  if (parent_piece_) fold(parent_piece_->first.dims());
  if (store_) {
    for (const auto& b : store_->buckets) fold(b.summary.dims());
  }
  return have ? HyperRect(std::move(acc)) : HyperRect{};
}

bool ZoneState::recompute_summary() {
  HyperRect fresh = exact_summary();
  if (fresh == summary_) return false;
  summary_ = std::move(fresh);
  return true;
}

bool ZoneState::has_subscription(const SubId& owner) const {
  if (!store_) return false;
  const SubStore& st = *store_;
  for (const SubArena::Ref ref : st.order) {
    if (st.arena.owner(ref) == owner) return true;
    if (const auto* list = st.covers.coverees(ref)) {
      for (const SubArena::Ref c : *list) {
        if (st.arena.owner(c) == owner) return true;
      }
    }
  }
  return false;
}

void ZoneState::save(common::ByteWriter& w) const {
  // Parent piece, child-piece cache, summary, promotion counter.
  w.boolean(parent_piece_.has_value());
  if (parent_piece_) {
    save_rect(w, parent_piece_->first);
    w.u64(parent_piece_->second);
  }
  w.u32(std::uint32_t(child_pieces_.size()));
  for (const HyperRect& p : child_pieces_) save_rect(w, p);
  save_rect(w, summary_);
  w.u64(cover_promotions_);

  // The boxed store: representatives in insertion order, each carrying its
  // coverees in quench order, then migrated buckets, then the index flag.
  w.boolean(store_ != nullptr);
  if (!store_) return;
  const SubStore& st = *store_;
  w.u32(std::uint32_t(st.order.size()));
  for (const SubArena::Ref ref : st.order) {
    save_stored_sub(w, st.arena.materialize(ref));
    const auto* list = st.covers.coverees(ref);
    w.u32(list ? std::uint32_t(list->size()) : 0);
    if (list) {
      for (const SubArena::Ref c : *list) {
        save_stored_sub(w, st.arena.materialize(c));
      }
    }
  }
  w.u32(std::uint32_t(st.buckets.size()));
  for (const MigratedBucket& b : st.buckets) {
    save_rect(w, b.summary);
    w.u32(std::uint32_t(b.sub_rects.size()));
    for (const HyperRect& r : b.sub_rects) save_rect(w, r);
    save_subid(w, b.pointer);
  }
  w.boolean(st.indexed);
}

void ZoneState::restore(common::ByteReader& r) {
  assert(!store_ && summary_.empty());  // restore into a fresh zone only
  if (r.boolean()) {
    HyperRect rect = load_rect(r);
    const Id parent_key = r.u64();
    parent_piece_ = {std::move(rect), parent_key};
  }
  const std::uint32_t n_children = r.u32();
  child_pieces_.clear();
  child_pieces_.reserve(n_children);
  for (std::uint32_t i = 0; i < n_children; ++i) {
    child_pieces_.push_back(load_rect(r));
  }
  HyperRect summary = load_rect(r);
  cover_promotions_ = r.u64();

  if (r.boolean()) {
    SubStore& st = store();
    const std::uint32_t n_reps = r.u32();
    st.order.reserve(n_reps);
    for (std::uint32_t i = 0; i < n_reps; ++i) {
      // Forced structure: the serialized rep/coveree split is replayed as
      // recorded — no find_coverer re-run, no threshold-triggered index
      // build mid-restore — so refs land in the same insertion order and
      // quench relations the source zone had.
      const SubArena::Ref rep = st.arena.add(load_stored_sub(r));
      st.order.push_back(rep);
      const std::uint32_t n_cov = r.u32();
      for (std::uint32_t j = 0; j < n_cov; ++j) {
        st.covers.quench(rep, st.arena.add(load_stored_sub(r)));
      }
    }
    const std::uint32_t n_buckets = r.u32();
    st.buckets.reserve(n_buckets);
    for (std::uint32_t i = 0; i < n_buckets; ++i) {
      MigratedBucket b;
      b.summary = load_rect(r);
      const std::uint32_t n_rects = r.u32();
      b.sub_rects.reserve(n_rects);
      for (std::uint32_t j = 0; j < n_rects; ++j) {
        b.sub_rects.push_back(load_rect(r));
      }
      b.pointer = load_subid(r);
      st.buckets.push_back(std::move(b));
    }
    if (r.boolean()) build_index();
  }
  summary_ = std::move(summary);
}

std::uint64_t ZoneState::fingerprint() const {
  const auto mix_rect = [](std::uint64_t h, const HyperRect& r) {
    h = splitmix64(h ^ r.dimensions());
    for (const Interval& d : r.dims()) {
      std::uint64_t lo, hi;
      std::memcpy(&lo, &d.lo, sizeof lo);
      std::memcpy(&hi, &d.hi, sizeof hi);
      h = splitmix64(h ^ lo);
      h = splitmix64(h ^ hi);
    }
    return h;
  };
  const auto mix_subid = [](std::uint64_t h, const SubId& s) {
    h = splitmix64(h ^ s.target);
    h = splitmix64(h ^ ((std::uint64_t(s.iid) << 8) | std::uint64_t(s.kind)));
    return h;
  };

  // Order-insensitive over the stored set: hash each entry independently,
  // sort the digests, fold. Protocol joins permute insertion order and
  // quench assignment relative to an oracle build; both are semantically
  // irrelevant to delivery sets.
  std::vector<std::uint64_t> parts;
  if (store_) {
    const SubStore& st = *store_;
    const auto sub_digest = [&](SubArena::Ref ref) {
      std::uint64_t h = mix_subid(0x5b5b5b5bull, st.arena.owner(ref));
      h = mix_rect(h, st.arena.full_rect(ref));
      return mix_rect(h, st.arena.projected_rect(ref));
    };
    for (const SubArena::Ref ref : st.order) {
      parts.push_back(sub_digest(ref));
      if (const auto* list = st.covers.coverees(ref)) {
        for (const SubArena::Ref c : *list) parts.push_back(sub_digest(c));
      }
    }
    for (const MigratedBucket& b : st.buckets) {
      std::uint64_t h = mix_rect(0xb0b0b0b0ull, b.summary);
      for (const HyperRect& r : b.sub_rects) h = mix_rect(h, r);
      parts.push_back(mix_subid(h, b.pointer));
    }
  }
  std::sort(parts.begin(), parts.end());
  std::uint64_t h = 0x9e3779b9ull;
  for (const std::uint64_t p : parts) h = splitmix64(h ^ p);
  if (parent_piece_) {
    h = mix_rect(splitmix64(h ^ parent_piece_->second), parent_piece_->first);
  }
  // Child pieces compare as a sparse map digit -> piece: trailing empties
  // (a lazily-sized cache) must not distinguish two equivalent zones.
  for (std::size_t d = 0; d < child_pieces_.size(); ++d) {
    if (child_pieces_[d].empty()) continue;
    h = mix_rect(splitmix64(h ^ d), child_pieces_[d]);
  }
  return mix_rect(h, summary_);
}

namespace {

std::size_t rect_heap_bytes(const HyperRect& r) noexcept {
  return r.dims().capacity() * sizeof(Interval);
}

}  // namespace

std::size_t ZoneState::structural_bytes() const noexcept {
  std::size_t bytes = rect_heap_bytes(summary_);
  if (parent_piece_) bytes += rect_heap_bytes(parent_piece_->first);
  bytes += child_pieces_.capacity() * sizeof(HyperRect);
  for (const HyperRect& p : child_pieces_) bytes += rect_heap_bytes(p);
  return bytes;
}

std::size_t ZoneState::store_bytes() const noexcept {
  if (!store_) return 0;
  const SubStore& st = *store_;
  std::size_t bytes = sizeof(SubStore) + st.arena.memory_bytes() +
                      st.order.capacity() * sizeof(SubArena::Ref) +
                      st.buckets.capacity() * sizeof(MigratedBucket) +
                      st.slots.capacity() * sizeof(std::uint32_t) +
                      st.pos_of_slot.capacity() * sizeof(std::size_t) +
                      st.cand.capacity() * sizeof(std::uint32_t) +
                      st.probe.capacity() * sizeof(double);
  if (st.indexed) bytes += st.index.memory_bytes();
  for (const MigratedBucket& b : st.buckets) {
    bytes += rect_heap_bytes(b.summary) +
             b.sub_rects.capacity() * sizeof(HyperRect);
    for (const HyperRect& r : b.sub_rects) bytes += rect_heap_bytes(r);
  }
  return bytes;
}

}  // namespace hypersub::core
