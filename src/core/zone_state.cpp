#include "core/zone_state.hpp"

#include <algorithm>
#include <cassert>

#include "common/ids.hpp"

namespace hypersub::core {

namespace {
const HyperRect kEmptyRect{};
const std::vector<MigratedBucket> kNoBuckets{};
constexpr std::size_t kNoPos = ~std::size_t{0};
}  // namespace

ZoneState::SubStore& ZoneState::store() {
  if (!store_) store_ = std::make_unique<SubStore>();
  return *store_;
}

const std::vector<MigratedBucket>& ZoneState::buckets() const noexcept {
  return store_ ? store_->buckets : kNoBuckets;
}

void ZoneState::set_index_threshold(std::size_t threshold) {
  index_threshold_ = threshold;
  // A piece-only zone holds zero subscriptions; materialize its store only
  // if the new threshold indexes the empty set (threshold 0).
  if (!store_ && threshold > 0) return;
  SubStore& st = store();
  if (!st.indexed && st.order.size() >= index_threshold_) build_index();
  if (st.indexed && st.order.size() < index_threshold_) drop_index();
}

void ZoneState::build_index() {
  SubStore& st = store();
  st.index = SubIndex{};
  st.slots.clear();
  st.pos_of_slot.clear();
  st.slots.reserve(st.order.size());
  for (std::size_t i = 0; i < st.order.size(); ++i) {
    const std::uint32_t slot = st.index.insert(st.arena.full_rect(st.order[i]));
    st.slots.push_back(slot);
    if (st.pos_of_slot.size() <= slot) st.pos_of_slot.resize(slot + 1, kNoPos);
    st.pos_of_slot[slot] = i;
  }
  st.indexed = true;
}

void ZoneState::drop_index() {
  SubStore& st = store();
  st.index = SubIndex{};
  st.slots.clear();
  st.pos_of_slot.clear();
  st.indexed = false;
}

bool ZoneState::add_subscription(StoredSub s) {
  SubStore& st = store();
  const HyperRect grown = summary_.hull(s.projected);
  if (st.indexed) {
    const std::uint32_t slot = st.index.insert(s.sub.range());
    st.slots.push_back(slot);
    if (st.pos_of_slot.size() <= slot) st.pos_of_slot.resize(slot + 1, kNoPos);
    st.pos_of_slot[slot] = st.order.size();
  }
  st.order.push_back(st.arena.add(s));
  if (!st.indexed && st.order.size() >= index_threshold_) build_index();
  if (grown == summary_) return false;
  summary_ = grown;
  return true;
}

std::optional<StoredSub> ZoneState::remove_subscription(const SubId& owner) {
  if (!store_) return std::nullopt;
  SubStore& st = *store_;
  std::size_t pos = st.order.size();
  for (std::size_t i = 0; i < st.order.size(); ++i) {
    if (st.arena.owner(st.order[i]) == owner) {
      pos = i;
      break;
    }
  }
  if (pos == st.order.size()) return std::nullopt;
  StoredSub out = st.arena.materialize(st.order[pos]);
  st.arena.remove(st.order[pos]);
  st.order.erase(st.order.begin() + std::ptrdiff_t(pos));
  if (st.indexed) {
    // Once built, the index sticks below the threshold (hysteresis): churn
    // around the threshold should not oscillate between builds and drops.
    st.index.remove(st.slots[pos]);
    st.pos_of_slot[st.slots[pos]] = kNoPos;
    st.slots.erase(st.slots.begin() + std::ptrdiff_t(pos));
    for (std::size_t i = pos; i < st.slots.size(); ++i) {
      st.pos_of_slot[st.slots[i]] = i;
    }
  }
  recompute_summary();
  return out;
}

bool ZoneState::set_parent_piece(HyperRect rect, Id parent_key) {
  // An empty rect clears the piece (the parent's summary shrank away from
  // this child). Replace-then-recompute also handles shrinking pieces.
  if (rect.empty()) {
    if (!parent_piece_) return false;
    parent_piece_.reset();
  } else {
    parent_piece_ = {std::move(rect), parent_key};
  }
  return recompute_summary();
}

void ZoneState::add_migrated_bucket(MigratedBucket b) {
  SubStore& st = store();
  st.buckets.push_back(std::move(b));
  // Migrated subs were already part of the summary before migration; the
  // bucket hull cannot grow it, but hull anyway for safety.
  summary_ = summary_.hull(st.buckets.back().summary);
}

std::vector<StoredSub> ZoneState::extract_subscribers_in_arc(Id lo, Id hi) {
  if (!store_) return {};
  SubStore& st = *store_;
  std::vector<StoredSub> out;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < st.order.size(); ++i) {
    if (ring::in_closed_open(st.arena.owner(st.order[i]).target, lo, hi)) {
      if (st.indexed) st.index.remove(st.slots[i]);
      out.push_back(st.arena.materialize(st.order[i]));
      st.arena.remove(st.order[i]);
    } else {
      if (kept != i) {
        st.order[kept] = st.order[i];
        if (st.indexed) st.slots[kept] = st.slots[i];
      }
      ++kept;
    }
  }
  st.order.resize(kept);
  if (st.indexed) {
    st.slots.resize(kept);
    std::fill(st.pos_of_slot.begin(), st.pos_of_slot.end(), kNoPos);
    for (std::size_t i = 0; i < st.slots.size(); ++i) {
      st.pos_of_slot[st.slots[i]] = i;
    }
  }
  return out;
}

void ZoneState::match(const Point& full, const Point& projected,
                      std::vector<SubId>& out) const {
  if (store_) {
    SubStore& st = *store_;
    if (!st.indexed) {
      for (const SubArena::Ref ref : st.order) {
        if (st.arena.full_contains(ref, full)) {
          out.push_back(st.arena.owner(ref));
        }
      }
    } else {
      st.cand.clear();
      st.index.candidates(full, st.cand);
      // Candidates arrive in slot order; emit in insertion order so the
      // indexed path is bit-for-bit identical to the scan (the parity tests
      // rely on it, and so does any downstream consumer of delivery order).
      for (auto& c : st.cand) c = std::uint32_t(st.pos_of_slot[c]);
      std::sort(st.cand.begin(), st.cand.end());
      for (const std::uint32_t pos : st.cand) {
        const SubArena::Ref ref = st.order[pos];
        if (st.arena.full_contains(ref, full)) {
          out.push_back(st.arena.owner(ref));
        }
      }
    }
  }
  if (parent_piece_ && parent_piece_->first.contains(projected)) {
    out.push_back(SubId{parent_piece_->second, 0, SubIdKind::kZone});
  }
  if (store_) {
    for (const auto& b : store_->buckets) {
      if (b.summary.contains(projected)) out.push_back(b.pointer);
    }
  }
}

std::vector<StoredSub> ZoneState::subscriptions() const {
  if (!store_) return {};
  std::vector<StoredSub> out;
  out.reserve(store_->order.size());
  for (const SubArena::Ref ref : store_->order) {
    out.push_back(store_->arena.materialize(ref));
  }
  return out;
}

const HyperRect& ZoneState::child_piece(int digit) const {
  if (std::size_t(digit) >= child_pieces_.size()) return kEmptyRect;
  return child_pieces_[std::size_t(digit)];
}

void ZoneState::set_child_piece(int digit, HyperRect piece) {
  if (std::size_t(digit) >= child_pieces_.size()) {
    child_pieces_.resize(std::size_t(digit) + 1);
  }
  child_pieces_[std::size_t(digit)] = std::move(piece);
}

HyperRect ZoneState::exact_summary() const {
  // Fold hulls dimension-wise over the arena's projected pool — no
  // per-subscription HyperRect temporaries (this runs after every removal).
  std::vector<Interval> acc;
  bool have = false;
  const auto fold = [&](std::span<const Interval> d) {
    if (d.empty()) return;
    if (!have) {
      acc.assign(d.begin(), d.end());
      have = true;
      return;
    }
    assert(acc.size() == d.size());
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = acc[i].hull(d[i]);
  };
  if (store_) {
    for (const SubArena::Ref ref : store_->order) {
      fold(store_->arena.projected(ref));
    }
  }
  if (parent_piece_) fold(parent_piece_->first.dims());
  if (store_) {
    for (const auto& b : store_->buckets) fold(b.summary.dims());
  }
  return have ? HyperRect(std::move(acc)) : HyperRect{};
}

bool ZoneState::recompute_summary() {
  HyperRect fresh = exact_summary();
  if (fresh == summary_) return false;
  summary_ = std::move(fresh);
  return true;
}

}  // namespace hypersub::core
