#include "core/zone_state.hpp"

#include <algorithm>
#include <cassert>

#include "common/ids.hpp"

namespace hypersub::core {

namespace {
const HyperRect kEmptyRect{};
}

bool ZoneState::add_subscription(StoredSub s) {
  const HyperRect grown = summary_.hull(s.projected);
  subs_.push_back(std::move(s));
  if (grown == summary_) return false;
  summary_ = grown;
  return true;
}

std::optional<StoredSub> ZoneState::remove_subscription(const SubId& owner) {
  const auto it = std::find_if(
      subs_.begin(), subs_.end(),
      [&owner](const StoredSub& s) { return s.owner == owner; });
  if (it == subs_.end()) return std::nullopt;
  StoredSub out = std::move(*it);
  subs_.erase(it);
  recompute_summary();
  return out;
}

bool ZoneState::set_parent_piece(HyperRect rect, Id parent_key) {
  // An empty rect clears the piece (the parent's summary shrank away from
  // this child). Replace-then-recompute also handles shrinking pieces.
  if (rect.empty()) {
    if (!parent_piece_) return false;
    parent_piece_.reset();
  } else {
    parent_piece_ = {std::move(rect), parent_key};
  }
  return recompute_summary();
}

void ZoneState::add_migrated_bucket(MigratedBucket b) {
  buckets_.push_back(std::move(b));
  // Migrated subs were already part of the summary before migration; the
  // bucket hull cannot grow it, but hull anyway for safety.
  summary_ = summary_.hull(buckets_.back().summary);
}

std::vector<StoredSub> ZoneState::extract_subscribers_in_arc(Id lo, Id hi) {
  std::vector<StoredSub> out;
  auto it = subs_.begin();
  while (it != subs_.end()) {
    if (ring::in_closed_open(it->owner.target, lo, hi)) {
      out.push_back(std::move(*it));
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void ZoneState::match(const Point& full, const Point& projected,
                      std::vector<SubId>& out) const {
  for (const auto& s : subs_) {
    if (s.sub.matches(full)) out.push_back(s.owner);
  }
  if (parent_piece_ && parent_piece_->first.contains(projected)) {
    out.push_back(SubId{parent_piece_->second, 0, SubIdKind::kZone});
  }
  for (const auto& b : buckets_) {
    if (b.summary.contains(projected)) out.push_back(b.pointer);
  }
}

const HyperRect& ZoneState::child_piece(int digit) const {
  if (std::size_t(digit) >= child_pieces_.size()) return kEmptyRect;
  return child_pieces_[std::size_t(digit)];
}

void ZoneState::set_child_piece(int digit, HyperRect piece) {
  if (std::size_t(digit) >= child_pieces_.size()) {
    child_pieces_.resize(std::size_t(digit) + 1);
  }
  child_pieces_[std::size_t(digit)] = std::move(piece);
}

bool ZoneState::recompute_summary() {
  HyperRect fresh;
  for (const auto& s : subs_) fresh = fresh.hull(s.projected);
  if (parent_piece_) fresh = fresh.hull(parent_piece_->first);
  for (const auto& b : buckets_) fresh = fresh.hull(b.summary);
  if (fresh == summary_) return false;
  summary_ = std::move(fresh);
  return true;
}

}  // namespace hypersub::core
