#include "core/zone_state.hpp"

#include <algorithm>
#include <cassert>

#include "common/ids.hpp"

namespace hypersub::core {

namespace {
const HyperRect kEmptyRect{};
constexpr std::size_t kNoPos = ~std::size_t{0};
}  // namespace

void ZoneState::set_index_threshold(std::size_t threshold) {
  index_threshold_ = threshold;
  if (!indexed_ && subs_.size() >= index_threshold_) build_index();
  if (indexed_ && subs_.size() < index_threshold_) drop_index();
}

void ZoneState::build_index() {
  index_ = SubIndex{};
  slots_.clear();
  pos_of_slot_.clear();
  slots_.reserve(subs_.size());
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const std::uint32_t slot = index_.insert(subs_[i].sub.range());
    slots_.push_back(slot);
    if (pos_of_slot_.size() <= slot) pos_of_slot_.resize(slot + 1, kNoPos);
    pos_of_slot_[slot] = i;
  }
  indexed_ = true;
}

void ZoneState::drop_index() {
  index_ = SubIndex{};
  slots_.clear();
  pos_of_slot_.clear();
  indexed_ = false;
}

bool ZoneState::add_subscription(StoredSub s) {
  const HyperRect grown = summary_.hull(s.projected);
  subs_.push_back(std::move(s));
  if (indexed_) {
    const std::uint32_t slot = index_.insert(subs_.back().sub.range());
    slots_.push_back(slot);
    if (pos_of_slot_.size() <= slot) pos_of_slot_.resize(slot + 1, kNoPos);
    pos_of_slot_[slot] = subs_.size() - 1;
  } else if (subs_.size() >= index_threshold_) {
    build_index();
  }
  if (grown == summary_) return false;
  summary_ = grown;
  return true;
}

std::optional<StoredSub> ZoneState::remove_subscription(const SubId& owner) {
  const auto it = std::find_if(
      subs_.begin(), subs_.end(),
      [&owner](const StoredSub& s) { return s.owner == owner; });
  if (it == subs_.end()) return std::nullopt;
  const std::size_t pos = std::size_t(it - subs_.begin());
  StoredSub out = std::move(*it);
  subs_.erase(it);
  if (indexed_) {
    // Once built, the index sticks below the threshold (hysteresis): churn
    // around the threshold should not oscillate between builds and drops.
    index_.remove(slots_[pos]);
    pos_of_slot_[slots_[pos]] = kNoPos;
    slots_.erase(slots_.begin() + std::ptrdiff_t(pos));
    for (std::size_t i = pos; i < slots_.size(); ++i) {
      pos_of_slot_[slots_[i]] = i;
    }
  }
  recompute_summary();
  return out;
}

bool ZoneState::set_parent_piece(HyperRect rect, Id parent_key) {
  // An empty rect clears the piece (the parent's summary shrank away from
  // this child). Replace-then-recompute also handles shrinking pieces.
  if (rect.empty()) {
    if (!parent_piece_) return false;
    parent_piece_.reset();
  } else {
    parent_piece_ = {std::move(rect), parent_key};
  }
  return recompute_summary();
}

void ZoneState::add_migrated_bucket(MigratedBucket b) {
  buckets_.push_back(std::move(b));
  // Migrated subs were already part of the summary before migration; the
  // bucket hull cannot grow it, but hull anyway for safety.
  summary_ = summary_.hull(buckets_.back().summary);
}

std::vector<StoredSub> ZoneState::extract_subscribers_in_arc(Id lo, Id hi) {
  std::vector<StoredSub> out;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    if (ring::in_closed_open(subs_[i].owner.target, lo, hi)) {
      if (indexed_) index_.remove(slots_[i]);
      out.push_back(std::move(subs_[i]));
    } else {
      if (kept != i) {
        subs_[kept] = std::move(subs_[i]);
        if (indexed_) slots_[kept] = slots_[i];
      }
      ++kept;
    }
  }
  subs_.resize(kept);
  if (indexed_) {
    slots_.resize(kept);
    std::fill(pos_of_slot_.begin(), pos_of_slot_.end(), kNoPos);
    for (std::size_t i = 0; i < slots_.size(); ++i) pos_of_slot_[slots_[i]] = i;
  }
  return out;
}

void ZoneState::match(const Point& full, const Point& projected,
                      std::vector<SubId>& out) const {
  if (!indexed_) {
    for (const auto& s : subs_) {
      if (s.sub.matches(full)) out.push_back(s.owner);
    }
  } else {
    cand_.clear();
    index_.candidates(full, cand_);
    // Candidates arrive in slot order; emit in subs_ order so the indexed
    // path is bit-for-bit identical to the scan (the parity tests rely on
    // it, and so does any downstream consumer of delivery order).
    for (auto& c : cand_) c = std::uint32_t(pos_of_slot_[c]);
    std::sort(cand_.begin(), cand_.end());
    for (const std::uint32_t pos : cand_) {
      const StoredSub& s = subs_[pos];
      if (s.sub.matches(full)) out.push_back(s.owner);
    }
  }
  if (parent_piece_ && parent_piece_->first.contains(projected)) {
    out.push_back(SubId{parent_piece_->second, 0, SubIdKind::kZone});
  }
  for (const auto& b : buckets_) {
    if (b.summary.contains(projected)) out.push_back(b.pointer);
  }
}

const HyperRect& ZoneState::child_piece(int digit) const {
  if (std::size_t(digit) >= child_pieces_.size()) return kEmptyRect;
  return child_pieces_[std::size_t(digit)];
}

void ZoneState::set_child_piece(int digit, HyperRect piece) {
  if (std::size_t(digit) >= child_pieces_.size()) {
    child_pieces_.resize(std::size_t(digit) + 1);
  }
  child_pieces_[std::size_t(digit)] = std::move(piece);
}

bool ZoneState::recompute_summary() {
  HyperRect fresh;
  for (const auto& s : subs_) fresh = fresh.hull(s.projected);
  if (parent_piece_) fresh = fresh.hull(parent_piece_->first);
  for (const auto& b : buckets_) fresh = fresh.hull(b.summary);
  if (fresh == summary_) return false;
  summary_ = std::move(fresh);
  return true;
}

}  // namespace hypersub::core
