#pragma once
// Arena-backed SoA storage for stored subscriptions.
//
// A zone repository used to keep a std::vector<StoredSub>, where every
// entry owned two heap-allocated interval vectors (the full-space range
// and its subscheme projection). At rendezvous-zone scale that layout is
// two pointer chases per scanned subscription and two allocator round
// trips per install — the dominant memory cost of a million-subscription
// run.
//
// SubArena stores the same data as three parallel structures:
//   * a slot table (owner id + offsets/dim counts),
//   * one contiguous Interval pool for the full-space ranges,
//   * a second contiguous pool for the projected rects,
// so match() streams cache lines instead of chasing pointers, and the
// per-subscription allocation count drops to zero amortized. Slots are
// stable 32-bit refs handed back on add() and recycled through a free
// list; pool space is reused in place when the recycled slot's dimension
// counts match the incoming subscription (within one zone they always do —
// full dims are the scheme's, projected dims the subscheme's).
//
// The full ranges and the projected rects live in *separate* pools on
// purpose: the exact-match hot loop touches only full-space intervals,
// while summary recomputation touches only projections; mixing them would
// halve the useful bytes per cache line in both loops.
//
// StoredSub remains the materialized exchange format (wire format of
// migrations, return type of removals/extractions); the arena converts at
// the edges.

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/hyperrect.hpp"
#include "core/subid.hpp"
#include "pubsub/subscription.hpp"

namespace hypersub::core {

/// A real subscription stored at its covering zone.
struct StoredSub {
  SubId owner;               ///< kSubscriber: subscriber node id + iid
  pubsub::Subscription sub;  ///< full-space range (exact matching)
  HyperRect projected;       ///< range projected onto the subscheme
};

class SubArena {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kNullRef = 0xffffffffu;

  /// Store a subscription; returns its stable ref.
  Ref add(const SubId& owner, std::span<const Interval> full,
          std::span<const Interval> projected) {
    Ref r;
    if (!free_.empty() && slot_fits(free_.back(), full, projected)) {
      r = free_.back();
      free_.pop_back();
      Slot& s = slots_[r];
      s.owner = owner;
      std::copy(full.begin(), full.end(), full_pool_.begin() + s.full_off);
      std::copy(projected.begin(), projected.end(),
                proj_pool_.begin() + s.proj_off);
      s.live = true;
    } else {
      r = Ref(slots_.size());
      Slot s;
      s.owner = owner;
      s.full_off = std::uint32_t(full_pool_.size());
      s.full_dims = std::uint16_t(full.size());
      s.proj_off = std::uint32_t(proj_pool_.size());
      s.proj_dims = std::uint16_t(projected.size());
      s.live = true;
      full_pool_.insert(full_pool_.end(), full.begin(), full.end());
      proj_pool_.insert(proj_pool_.end(), projected.begin(), projected.end());
      slots_.push_back(s);
    }
    ++live_;
    return r;
  }

  Ref add(const StoredSub& s) {
    return add(s.owner, s.sub.range().dims(), s.projected.dims());
  }

  /// Free a ref; its slot (and, dims permitting, its pool space) is
  /// recycled by a later add().
  void remove(Ref r) {
    assert(slots_[r].live);
    slots_[r].live = false;
    free_.push_back(r);
    --live_;
  }

  std::size_t size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  const SubId& owner(Ref r) const {
    assert(slots_[r].live);
    return slots_[r].owner;
  }

  std::span<const Interval> full(Ref r) const {
    const Slot& s = slots_[r];
    return {full_pool_.data() + s.full_off, s.full_dims};
  }

  std::span<const Interval> projected(Ref r) const {
    const Slot& s = slots_[r];
    return {proj_pool_.data() + s.proj_off, s.proj_dims};
  }

  /// Exact containment of `p` in the full-space range — the match() hot
  /// path; reads only full-pool cache lines.
  bool full_contains(Ref r, const Point& p) const {
    const Slot& s = slots_[r];
    assert(p.size() == s.full_dims);
    const Interval* iv = full_pool_.data() + s.full_off;
    for (std::uint16_t i = 0; i < s.full_dims; ++i) {
      if (!iv[i].contains(p[i])) return false;
    }
    return true;
  }

  /// Full containment of another range in r's full-space range
  /// (interval-wise, dimension counts must match) — the covering test
  /// CoverSet quenching runs at registration; allocation-free like
  /// full_contains.
  bool full_covers(Ref r, std::span<const Interval> inner) const {
    const Slot& s = slots_[r];
    assert(inner.size() == s.full_dims);
    const Interval* iv = full_pool_.data() + s.full_off;
    for (std::uint16_t i = 0; i < s.full_dims; ++i) {
      if (iv[i].lo > inner[i].lo || iv[i].hi < inner[i].hi) return false;
    }
    return true;
  }

  HyperRect full_rect(Ref r) const {
    const auto d = full(r);
    return HyperRect(std::vector<Interval>(d.begin(), d.end()));
  }

  HyperRect projected_rect(Ref r) const {
    const auto d = projected(r);
    return HyperRect(std::vector<Interval>(d.begin(), d.end()));
  }

  /// Materialize the heap-owning exchange form.
  StoredSub materialize(Ref r) const {
    return StoredSub{owner(r), pubsub::Subscription(full_rect(r)),
                     projected_rect(r)};
  }

  /// Flat-array footprint of the SoA pools (capacity, not size — this is
  /// what the allocator actually holds).
  std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) +
           (full_pool_.capacity() + proj_pool_.capacity()) * sizeof(Interval) +
           free_.capacity() * sizeof(Ref);
  }

 private:
  struct Slot {
    SubId owner;
    std::uint32_t full_off = 0;
    std::uint32_t proj_off = 0;
    std::uint16_t full_dims = 0;
    std::uint16_t proj_dims = 0;
    bool live = false;
  };

  bool slot_fits(Ref r, std::span<const Interval> full,
                 std::span<const Interval> projected) const {
    const Slot& s = slots_[r];
    return s.full_dims == full.size() && s.proj_dims == projected.size();
  }

  std::vector<Slot> slots_;
  std::vector<Interval> full_pool_;  ///< match() streams this
  std::vector<Interval> proj_pool_;  ///< summary/piece math streams this
  std::vector<Ref> free_;
  std::size_t live_ = 0;
};

}  // namespace hypersub::core
