#include "core/hypersub_system.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <thread>

namespace hypersub::core {

HyperSubSystem::HyperSubSystem(overlay::Overlay& dht, Config cfg)
    : dht_(dht), cfg_(cfg), channel_(dht.network(), cfg.reliable) {
  nodes_.reserve(dht.size());
  caches_.reserve(dht.size());
  for (net::HostIndex h = 0; h < dht.size(); ++h) {
    nodes_.push_back(std::make_unique<HyperSubNode>(
        h, dht.id_of(h), cfg_.match_index_threshold,
        cfg_.cover_aggregation));
    caches_.push_back(
        std::make_unique<RouteCache>(cfg_.route_cache_capacity));
  }
  batches_.resize(dht.size());
  delivered_subs_.resize(dht.size());
  event_metrics_.set_streaming(cfg_.stream_event_metrics);
  if (cfg_.route_cache) {
    // Coherence hook: when a node's owned key range moves (stabilization,
    // failure repair, oracle rebuild), cached resolutions pointing at it
    // may now land on a non-owner. Stale hits would still self-repair via
    // forward-and-correct; invalidating eagerly keeps the detour window
    // small and the hit counters honest. The listener can fire on any
    // shard; route caches are global structures, so the sweep is deferred
    // to the barrier (inline in sequential mode).
    dht_.set_ownership_listener([this](net::HostIndex h) {
      simulator().defer_ordered([this, h] {
        for (auto& c : caches_) c->invalidate_host(h);
      });
    });
    owns_ownership_listener_ = true;
  }
}

HyperSubSystem::~HyperSubSystem() {
  if (owns_ownership_listener_) dht_.set_ownership_listener({});
}

std::uint32_t HyperSubSystem::add_scheme(pubsub::Scheme scheme,
                                         const SchemeOptions& opt) {
  schemes_.push_back(
      std::make_unique<SchemeRuntime>(std::move(scheme), opt));
  return std::uint32_t(schemes_.size() - 1);
}

// ---------------------------------------------------------------------------
// Subscription installation (Alg. 2 + Alg. 3)
// ---------------------------------------------------------------------------

SubscriptionHandle HyperSubSystem::subscribe(net::HostIndex subscriber,
                                             std::uint32_t scheme,
                                             pubsub::Subscription sub) {
  assert(scheme < schemes_.size());
  HyperSubNode& me = *nodes_[subscriber];
  const std::uint32_t iid = me.next_iid();
  me.record_local(iid, sub);
  ++total_subs_;

  const SchemeRuntime& rt = *schemes_[scheme];
  const std::uint32_t ssi = std::uint32_t(rt.choose_subscheme(sub));
  const Subscheme& ss = rt.subscheme(ssi);
  const HyperRect projected = ss.project(sub.range());
  const auto lph = lph::hash_subscription(ss.zones(), projected,
                                          ss.rotation());
  const ZoneAddr addr{scheme, ssi, lph.zone};
  StoredSub stored{SubId{me.node_id(), iid, SubIdKind::kSubscriber},
                   std::move(sub), projected};

  // Tracing: one trace per sampled installation — an install root span at
  // the subscriber, route-hop spans recorded by the substrate, and a
  // register span at the surrogate (chained under the last hop via the
  // ambient context the substrate parks around the owner callback).
  trace::SpanId install_span = trace::kNoSpan;
  if (auto* tr = trace::maybe(tracer_)) {
    const trace::TraceId tid = tr->start_trace(cfg_.trace_sample_rate);
    if (tid != trace::kNoTrace) {
      install_span =
          tr->begin(tid, trace::kNoSpan, trace::SpanKind::kInstall,
                    subscriber, simulator().now(), scheme, iid);
      tr->set_ambient(trace::TraceCtx{tid, install_span});
    }
  }
  const std::size_t dims = ss.attributes().size();
  dht_.route(subscriber, lph.key, install_bytes(dims),
               [this, addr, key = lph.key, install_span,
                stored = std::move(stored)](
                   const overlay::Overlay::RouteResult& r) mutable {
                 if (auto* tr = trace::maybe(tracer_)) {
                   const trace::TraceCtx at = tr->take_ambient();
                   if (at.active()) {
                     const double now = simulator().now();
                     tr->point(at.trace, at.parent,
                               trace::SpanKind::kRegister, r.owner.host, now,
                               std::uint64_t(r.hops));
                     tr->end(install_span, now);
                   }
                 }
                 register_subscription_at(r.owner.host, addr, key,
                                          std::move(stored));
               });
  // A substrate that ignores set_tracer never consumes the parked context;
  // clear it so the next route cannot adopt it. (If the install message is
  // dropped en route, the install span stays open — a recorded lost edge.)
  if (auto* tr = trace::maybe(tracer_)) tr->take_ambient();
  return SubscriptionHandle{scheme, iid, subscriber};
}

void HyperSubSystem::unsubscribe(const SubscriptionHandle& handle) {
  if (!handle.valid()) return;
  const HyperSubNode& me = *nodes_[handle.subscriber];
  const auto sub = me.local_sub(handle.iid);
  if (!sub) return;  // unknown or already removed
  unsubscribe_impl(handle.subscriber, handle.scheme, handle.iid, *sub);
}

void HyperSubSystem::unsubscribe_impl(net::HostIndex subscriber,
                                      std::uint32_t scheme, std::uint32_t iid,
                                      const pubsub::Subscription& sub) {
  assert(scheme < schemes_.size());
  HyperSubNode& me = *nodes_[subscriber];
  if (!me.erase_local(iid)) return;
  assert(total_subs_ > 0);
  --total_subs_;

  const SchemeRuntime& rt = *schemes_[scheme];
  const std::uint32_t ssi = std::uint32_t(rt.choose_subscheme(sub));
  const Subscheme& ss = rt.subscheme(ssi);
  const HyperRect projected = ss.project(sub.range());
  const auto lph = lph::hash_subscription(ss.zones(), projected,
                                          ss.rotation());
  const ZoneAddr addr{scheme, ssi, lph.zone};
  const SubId owner{me.node_id(), iid, SubIdKind::kSubscriber};

  dht_.route(subscriber, lph.key, install_bytes(ss.attributes().size()),
               [this, addr, key = lph.key, owner](
                   const overlay::Overlay::RouteResult& r) {
                 HyperSubNode& nd = *nodes_[r.owner.host];
                 ZoneState& zs = nd.zone_state(addr, key);
                 const HyperRect before = zs.summary();
                 if (!zs.remove_subscription(owner)) return;
                 // Mirror the removal at the replicas.
                 if (cfg_.replicas > 0) {
                   const std::size_t dims =
                       scheme_runtime(addr.scheme).scheme().arity();
                   for (const auto& peer :
                        dht_.replica_set(r.owner.host, cfg_.replicas)) {
                     network().send(
                         r.owner.host, peer.host, install_bytes(dims),
                         [this, host = peer.host, addr, key, owner] {
                           nodes_[host]
                               ->replica_zone_state(addr, key)
                               .remove_subscription(owner);
                         });
                   }
                 }
                 if (!(zs.summary() == before)) {
                   propagate_pieces(r.owner.host, addr);
                 }
               });
}

namespace {

/// Owner of `key` in an oracle owner table with successor geometry: the
/// first id >= key, wrapping to the front (same contract as
/// Overlay::oracle_owner_table / chord::successor_index).
std::size_t bulk_owner_index(const std::vector<Id>& sorted_ids, Id key) {
  const auto it = std::lower_bound(sorted_ids.begin(), sorted_ids.end(), key);
  return it == sorted_ids.end() ? 0 : std::size_t(it - sorted_ids.begin());
}

/// Run `body(lo, hi)` over a partition of [0, hosts) into up to `threads`
/// contiguous ranges. Each worker owns a disjoint host range, so per-host
/// state needs no synchronization and the combined result is independent
/// of the thread count.
template <typename F>
void for_host_ranges(unsigned threads, std::size_t hosts, F&& body) {
  const std::size_t workers =
      std::min<std::size_t>(std::max(1u, threads), hosts);
  if (workers <= 1) {
    body(std::size_t{0}, hosts);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&body, lo = hosts * w / workers,
                       hi = hosts * (w + 1) / workers] { body(lo, hi); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace

std::vector<SubscriptionHandle> HyperSubSystem::bulk_subscribe(
    std::uint32_t scheme, std::vector<BulkSub> subs, unsigned threads) {
  assert(scheme < schemes_.size());
  std::vector<SubscriptionHandle> handles(subs.size());
  const auto ring = dht_.oracle_owner_table();
  if (ring.empty()) {
    // No global knowledge — routed installs (caller drains the simulator).
    for (std::size_t i = 0; i < subs.size(); ++i) {
      handles[i] =
          subscribe(subs[i].subscriber, scheme, std::move(subs[i].sub));
    }
    return handles;
  }
  std::vector<Id> ring_ids;
  ring_ids.reserve(ring.size());
  for (const auto& peer : ring) ring_ids.push_back(peer.id);

  const SchemeRuntime& rt = *schemes_[scheme];
  struct Planned {
    std::uint32_t iid = 0;
    std::uint32_t ssi = 0;
    net::HostIndex owner = 0;
    Id key = 0;
    lph::Zone zone;
    HyperRect projected;
  };
  std::vector<Planned> plan(subs.size());

  // Phase A — subscriber-side bookkeeping + zone planning, sharded by
  // subscriber host: iid allocation and the local store are per-host
  // state, and everything else read here (scheme runtime, LPH, zone-key
  // memoization) is immutable or internally synchronized. Each host's
  // subscriptions are planned in batch order, so iids match what a
  // sequential subscribe() loop would assign.
  for_host_ranges(threads, nodes_.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = 0; i < subs.size(); ++i) {
      const net::HostIndex sh = subs[i].subscriber;
      if (sh < lo || sh >= hi) continue;
      HyperSubNode& me = *nodes_[sh];
      Planned& p = plan[i];
      p.iid = me.next_iid();
      me.record_local(p.iid, subs[i].sub);
      p.ssi = std::uint32_t(rt.choose_subscheme(subs[i].sub));
      const Subscheme& ss = rt.subscheme(p.ssi);
      p.projected = ss.project(subs[i].sub.range());
      const auto lph =
          lph::hash_subscription(ss.zones(), p.projected, ss.rotation());
      p.zone = lph.zone;
      p.key = lph.key;
      p.owner = ring[bulk_owner_index(ring_ids, p.key)].host;
    }
  });
  total_subs_ += subs.size();
  for (std::size_t i = 0; i < subs.size(); ++i) {
    handles[i] = SubscriptionHandle{scheme, plan[i].iid, subs[i].subscriber};
  }

  // Phase B — replica copies first (mirrors register_subscription_at,
  // which copies to the heirs before the primary insert), sharded by
  // replica host; then the primary installs, sharded by owner host. Within
  // one host everything lands in batch order.
  if (cfg_.replicas > 0) {
    for_host_ranges(
        threads, nodes_.size(), [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = 0; i < subs.size(); ++i) {
            const Planned& p = plan[i];
            for (const auto& peer :
                 dht_.replica_set(p.owner, cfg_.replicas)) {
              if (peer.host < lo || peer.host >= hi) continue;
              const ZoneAddr addr{scheme, p.ssi, p.zone};
              nodes_[peer.host]
                  ->replica_zone_state(addr, p.key)
                  .add_subscription(StoredSub{
                      SubId{nodes_[subs[i].subscriber]->node_id(), p.iid,
                            SubIdKind::kSubscriber},
                      subs[i].sub, p.projected});
            }
          }
        });
  }
  for_host_ranges(threads, nodes_.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = 0; i < subs.size(); ++i) {
      Planned& p = plan[i];
      if (p.owner < lo || p.owner >= hi) continue;
      const ZoneAddr addr{scheme, p.ssi, p.zone};
      nodes_[p.owner]->zone_state(addr, p.key).add_subscription(
          StoredSub{SubId{nodes_[subs[i].subscriber]->node_id(), p.iid,
                          SubIdKind::kSubscriber},
                    std::move(subs[i].sub), std::move(p.projected)});
    }
  });

  // Phase C — one sequential top-down piece fixpoint per subscheme
  // (skipped under ancestor probing, exactly like the routed path). A
  // summary piece only flows parent -> child, and a zone's outgoing pieces
  // depend on its parent piece, so processing pending zones by ascending
  // level reaches the same fixpoint the drained install cascade converges
  // to: piece(child) = final summary(parent) ∩ extent(child).
  //
  // This loop visits every zone the cascade saturates (the whole tree when
  // summaries hull up to the domain), so its constants matter: the work
  // queue is one plain vector per level, deduped by sort+unique at batch
  // start; zone keys are computed directly (lph::zone_key) and carried in
  // the queue entries rather than going through the Subscheme's memoized
  // key cache, which would grow by one mutex-guarded map entry per zone.
  if (!cfg_.ancestor_probing) {
    struct PendingZone {
      std::uint32_t ssi = 0;
      Id code = 0;
      Id key = 0;  // rotated zone key (a pure function of ssi + zone)
    };
    int max_level = 0;
    for (std::uint32_t ssi = 0; ssi < rt.subscheme_count(); ++ssi) {
      max_level = std::max(max_level, rt.subscheme(ssi).zones().max_level());
    }
    std::vector<std::vector<PendingZone>> pending(std::size_t(max_level) + 1);
    for (const Planned& p : plan) {
      pending[std::size_t(p.zone.level)].push_back({p.ssi, p.zone.code, p.key});
    }
    // The cascade only appends below the current level; the planning and
    // input buffers are dead weight from here on, so release them before
    // the tree-sized allocation wave defines peak RSS.
    plan = {};
    subs = {};
    for (int level = 0; level <= max_level; ++level) {
      auto& batch = pending[std::size_t(level)];
      std::sort(batch.begin(), batch.end(),
                [](const PendingZone& a, const PendingZone& b) {
                  return a.ssi != b.ssi ? a.ssi < b.ssi : a.code < b.code;
                });
      batch.erase(std::unique(batch.begin(), batch.end(),
                              [](const PendingZone& a, const PendingZone& b) {
                                return a.ssi == b.ssi && a.code == b.code;
                              }),
                  batch.end());
      for (const PendingZone& pz : batch) {
        const Subscheme& ss = rt.subscheme(pz.ssi);
        const lph::ZoneSystem& zsys = ss.zones();
        const lph::Zone zone{pz.code, level};
        if (zsys.is_leaf(zone)) continue;
        const net::HostIndex host =
            ring[bulk_owner_index(ring_ids, pz.key)].host;
        const ZoneAddr addr{scheme, pz.ssi, zone};
        HyperSubNode& nd = *nodes_[host];
        const auto zit = nd.zones().find(addr);
        if (zit == nd.zones().end()) continue;
        ZoneState& zs = zit->second;
        const HyperRect summary = zs.summary();
        for (int digit = 0; digit < zsys.base(); ++digit) {
          const lph::Zone child = zsys.child(zone, digit);
          HyperRect piece;
          if (!summary.empty()) {
            const HyperRect ext = zsys.extent(child);
            if (summary.overlaps(ext)) piece = summary.intersect(ext);
          }
          if (piece == zs.child_piece(digit)) continue;
          zs.set_child_piece(digit, piece);
          const ZoneAddr child_addr{scheme, pz.ssi, child};
          const Id child_key = lph::zone_key(zsys, child, ss.rotation());
          const net::HostIndex child_host =
              ring[bulk_owner_index(ring_ids, child_key)].host;
          if (cfg_.replicas > 0) {
            for (const auto& peer :
                 dht_.replica_set(child_host, cfg_.replicas)) {
              nodes_[peer.host]
                  ->replica_zone_state(child_addr, child_key)
                  .set_parent_piece(piece, pz.key);
            }
          }
          ZoneState& czs =
              nodes_[child_host]->zone_state(child_addr, child_key);
          if (czs.set_parent_piece(std::move(piece), pz.key)) {
            pending[std::size_t(child.level)].push_back(
                {pz.ssi, child.code, child_key});
          }
        }
      }
      batch = {};  // processed — free before the next level's wave
    }
  }
  return handles;
}

void HyperSubSystem::register_subscription_at(net::HostIndex owner,
                                              const ZoneAddr& addr,
                                              Id rotated_key,
                                              StoredSub stored) {
  HyperSubNode& nd = *nodes_[owner];
  ZoneState& zs = nd.zone_state(addr, rotated_key);
  if (cfg_.replicas > 0) {
    // Copy to the owner's heirs before the move below consumes `stored`.
    const std::size_t dims = stored.projected.dimensions();
    for (const auto& peer : dht_.replica_set(owner, cfg_.replicas)) {
      network().send(owner, peer.host, install_bytes(dims),
                     [this, host = peer.host, addr, rotated_key, stored] {
                       nodes_[host]
                           ->replica_zone_state(addr, rotated_key)
                           .add_subscription(stored);
                     });
    }
  }
  const bool grew = zs.add_subscription(std::move(stored));
  if (grew && !cfg_.ancestor_probing) propagate_pieces(owner, addr);
}

void HyperSubSystem::register_piece_at(net::HostIndex owner,
                                       const ZoneAddr& addr, Id rotated_key,
                                       HyperRect piece, Id parent_key) {
  HyperSubNode& nd = *nodes_[owner];
  ZoneState& zs = nd.zone_state(addr, rotated_key);
  if (cfg_.replicas > 0) {
    const std::size_t dims = piece.empty()
                                 ? schemes_[addr.scheme]
                                       ->subscheme(addr.subscheme)
                                       .attributes()
                                       .size()
                                 : piece.dimensions();
    for (const auto& peer : dht_.replica_set(owner, cfg_.replicas)) {
      network().send(owner, peer.host, install_bytes(dims),
                     [this, host = peer.host, addr, rotated_key, piece,
                      parent_key] {
                       nodes_[host]
                           ->replica_zone_state(addr, rotated_key)
                           .set_parent_piece(piece, parent_key);
                     });
    }
  }
  const bool changed = zs.set_parent_piece(std::move(piece), parent_key);
  if (changed) propagate_pieces(owner, addr);
}

void HyperSubSystem::propagate_pieces(net::HostIndex host,
                                      const ZoneAddr& addr) {
  const SchemeRuntime& rt = *schemes_[addr.scheme];
  const Subscheme& ss = rt.subscheme(addr.subscheme);
  const lph::ZoneSystem& zsys = ss.zones();
  if (zsys.is_leaf(addr.zone)) return;

  HyperSubNode& nd = *nodes_[host];
  ZoneState* zs = nd.zones().contains(addr) ? &nd.zones().at(addr) : nullptr;
  if (zs == nullptr) return;
  const HyperRect summary = zs->summary();
  const Id my_key = ss.zone_key(addr.zone);

  for (int digit = 0; digit < zsys.base(); ++digit) {
    const lph::Zone child = zsys.child(addr.zone, digit);
    HyperRect piece;
    if (!summary.empty()) {
      const HyperRect ext = zsys.extent(child);
      if (summary.overlaps(ext)) piece = summary.intersect(ext);
    }
    if (piece == zs->child_piece(digit)) continue;
    zs->set_child_piece(digit, piece);

    const ZoneAddr child_addr{addr.scheme, addr.subscheme, child};
    const Id child_key = ss.zone_key(child);
    dht_.route(host, child_key, install_bytes(ss.attributes().size()),
                 [this, child_addr, child_key, piece, my_key](
                     const overlay::Overlay::RouteResult& r) {
                   register_piece_at(r.owner.host, child_addr, child_key,
                                     piece, my_key);
                 });
  }
}

// ---------------------------------------------------------------------------
// Event publication + delivery (Alg. 4 + Alg. 5)
// ---------------------------------------------------------------------------

std::uint64_t HyperSubSystem::publish(net::HostIndex publisher,
                                      std::uint32_t scheme,
                                      pubsub::Event event,
                                      DeliveryCallback on_delivery) {
  assert(scheme < schemes_.size());
  // publish() is a driver-facing entry point: it allocates the global
  // event sequence number and the tracker, so it must run in the main
  // (exclusive) context, never inside a sharded event handler.
  assert(!simulator().in_worker_context());
  const SchemeRuntime& rt = *schemes_[scheme];
  assert(pubsub::valid_event(rt.scheme(), event));

  const std::uint64_t seq = ++event_seq_;
  event.seq = seq;

  auto ctx = std::make_shared<EventCtx>();
  ctx->seq = seq;
  ctx->scheme = scheme;
  ctx->origin = publisher;
  ctx->event = std::move(event);
  ctx->on_delivery = std::move(on_delivery);
  ctx->projected.reserve(rt.subscheme_count());
  for (std::size_t i = 0; i < rt.subscheme_count(); ++i) {
    ctx->projected.push_back(rt.subscheme(i).project(ctx->event.point));
  }

  // Tracing: one trace per sampled publish; the publish span is the root
  // of the event's causal tree and closes when the tracker finalizes.
  if (auto* tr = trace::maybe(tracer_)) {
    ctx->trace = tr->start_trace(cfg_.trace_sample_rate);
    if (ctx->trace != trace::kNoTrace) {
      ctx->root = tr->begin(ctx->trace, trace::kNoSpan,
                            trace::SpanKind::kPublish, publisher,
                            simulator().now(), seq, scheme);
    }
  }

  Tracker& t = trackers_[seq];
  t.publish_time = simulator().now();
  t.root = ctx->root;

  // Initial subid list: one rendezvous (leaf zone) per subscheme; in
  // ancestor-probing mode additionally every ancestor zone. With the route
  // cache on, rendezvous probes whose zone key has a cached owner skip the
  // greedy route and are handed straight to that owner (fast lane); the
  // rest ride normal routing from the publisher.
  std::vector<SubId> list;
  std::vector<std::pair<net::HostIndex, SubId>> direct;
  ctx->rendezvous.reserve(rt.subscheme_count());
  for (std::uint32_t i = 0; i < rt.subscheme_count(); ++i) {
    const Subscheme& ss = rt.subscheme(i);
    const lph::Zone leaf = ss.zones().locate(ctx->projected[i]);
    const Id key = ss.zone_key(leaf);
    const SubId rendezvous{key, 0, SubIdKind::kRendezvous};
    net::HostIndex cached = overlay::Peer::kInvalidHost;
    if (cfg_.route_cache) {
      cached = caches_[publisher]->lookup(key);
      if (cached == publisher) cached = overlay::Peer::kInvalidHost;
    }
    ctx->rendezvous.push_back(RendezvousProbe{key, cached});
    if (cached != overlay::Peer::kInvalidHost) {
      if (auto* tr = trace::maybe(tracer_);
          tr && ctx->trace != trace::kNoTrace) {
        tr->point(ctx->trace, ctx->root, trace::SpanKind::kCacheHit,
                  publisher, simulator().now(), std::uint64_t(cached));
      }
      direct.emplace_back(cached, rendezvous);
    } else {
      list.push_back(rendezvous);
    }
    if (cfg_.ancestor_probing) {
      lph::Zone z = leaf;
      while (z.level > 0) {
        z = ss.zones().parent(z);
        list.push_back(SubId{ss.zone_key(z), 0, SubIdKind::kZone});
      }
    }
  }

  std::stable_sort(direct.begin(), direct.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < direct.size();) {
    const net::HostIndex to = direct[i].first;
    std::size_t j = i;
    while (j < direct.size() && direct[j].first == to) ++j;
    auto sublist = std::make_shared<std::vector<SubId>>();
    sublist->reserve(j - i);
    for (std::size_t k = i; k < j; ++k) sublist->push_back(direct[k].second);
    i = j;
    ++t.outstanding;
    forward_event(publisher, to, ctx, std::move(sublist), 0,
                  overlay::Peer::kInvalidHost, ctx->root);
  }

  if (!list.empty()) {
    ++t.outstanding;
    // The publisher-local pass runs on the publisher's shard, like every
    // other event message (process_event_message touches that node's
    // zones, scratch, and forwarding queues).
    simulator().schedule_on(publisher, 0.0,
                            [this, publisher, ctx = std::move(ctx),
                             list = std::move(list)]() mutable {
      process_event_message(publisher, ctx, std::move(list), 0, ctx->root);
    });
  }
  return seq;
}

void HyperSubSystem::process_event_message(net::HostIndex host,
                                           const EventCtxPtr& ctx,
                                           std::vector<SubId> list,
                                           int hops, trace::SpanId via) {
  HyperSubNode& nd = *nodes_[host];
  // Tracker accounting is deferred: trackers_ is a system-global map, so
  // worker-context touches are applied at the window barrier in
  // deterministic order (inline in sequential mode). Each closure re-finds
  // the tracker — it may already have been force-finalized
  // (finalize_events() during churn runs); keep delivering, just stop
  // accounting.
  simulator().defer_ordered([this, seq = ctx->seq, hops] {
    if (const auto it = trackers_.find(seq); it != trackers_.end()) {
      it->second.max_hops = std::max(it->second.max_hops, hops);
    }
  });

  // One match span per processed message; everything this node records
  // (deliveries, drops, cache corrections, outgoing forwards) chains under
  // it, and it chains under the message that brought the event here.
  trace::SpanId match_span = trace::kNoSpan;
  if (auto* tr = trace::maybe(tracer_);
      tr && ctx->trace != trace::kNoTrace) {
    match_span = tr->begin(ctx->trace, via, trace::SpanKind::kMatch, host,
                           simulator().now(), std::uint64_t(hops),
                           list.size());
  }

  // Phase 1 (Alg. 5 lines 3-23): consume subids targeting this node; their
  // matches go back on the worklist because a freshly matched target (a
  // parent zone, a subscriber, a migration acceptor) may be owned by this
  // very node. `pending` and `matched_keys` are system-held scratch — the
  // delivery path allocates nothing per message beyond the outgoing
  // per-neighbor sublists, which the send closures must own anyway.
  Scratch& scratch = scratch_[simulator().worker_slot()];
  std::vector<SubId>& pending = scratch.pending;
  pending.clear();
  // One zone key can alias a whole rightmost zone chain, and a chain's
  // parent pointer may target the same key the rendezvous already did —
  // process each key at most once per message. The handful of keys per
  // message makes a linear find over a flat vector cheaper than hashing.
  std::vector<Id>& matched_keys = scratch.keys;
  matched_keys.clear();
  std::size_t cursor = 0;
  while (cursor < list.size()) {
    const SubId subid = list[cursor++];
    if (!dht_.owns(host, subid.target)) {
      pending.push_back(subid);
      continue;
    }
    switch (subid.kind) {
      case SubIdKind::kRendezvous:
      case SubIdKind::kZone: {
        if (subid.kind == SubIdKind::kRendezvous && cfg_.route_cache) {
          note_rendezvous_owner(host, ctx, subid.target, match_span);
        }
        if (std::find(matched_keys.begin(), matched_keys.end(),
                      subid.target) != matched_keys.end()) {
          break;
        }
        matched_keys.push_back(subid.target);
        auto& zlist = scratch.zones;
        zlist.clear();
        nd.append_zones_by_key(subid.target, zlist);
        for (ZoneState* zs : zlist) {
          if (zs->addr().scheme != ctx->scheme) continue;
          const Point& proj = ctx->projected[zs->addr().subscheme];
          zs->match(ctx->event.point, proj, list);
        }
        // Failover path: we own this key (possibly inherited after the
        // primary's failure) — replicated state counts too. While the
        // primary is alive this node never owns the key, so replicas are
        // never matched redundantly; post-failover, a subscription lives
        // either in the replica (pre-failure) or in fresh primary state
        // (post-failure), never both, and duplicate zone pointers collapse
        // in the per-message key dedupe above.
        zlist.clear();
        nd.append_replica_zones_by_key(subid.target, zlist);
        for (ZoneState* zs : zlist) {
          if (zs->addr().scheme != ctx->scheme) continue;
          const Point& proj = ctx->projected[zs->addr().subscheme];
          zs->match(ctx->event.point, proj, list);
        }
        break;
      }
      case SubIdKind::kSubscriber: {
        // Deliver only if this node *is* the subscriber (a successor that
        // merely inherited the id range after a failure drops it).
        if (subid.target == nd.node_id()) {
          // End-to-end dedupe: a rerouted subtree can re-match the same
          // subscription through a different path. The seen-set is
          // per-subscriber-host, so it lives on this shard.
          if (cfg_.reliable_delivery &&
              !delivered_subs_[host][ctx->seq]
                   .emplace(subid.target, subid.iid)
                   .second) {
            simulator().defer_ordered(
                [this] { ++rel_.duplicates_suppressed; });
            break;
          }
          if (auto* tr = trace::maybe(tracer_);
              tr && ctx->trace != trace::kNoTrace) {
            tr->point(ctx->trace, match_span, trace::SpanKind::kDeliver,
                      host, simulator().now(), subid.iid,
                      std::uint64_t(hops));
          }
          // The delivery record needs the tracker (latency base, matched
          // count) and feeds system-global state (sink, metrics), so the
          // whole tail is deferred; its closure sees the tracker in the
          // same state a sequential run would at this point. NOTE: the
          // per-publish on_delivery observer consequently must not
          // schedule events (it runs inside a barrier in parallel mode).
          simulator().defer_ordered([this, ctx, host, iid = subid.iid, hops,
                                     now = simulator().now()] {
            double lat = 0.0;
            if (const auto it = trackers_.find(ctx->seq);
                it != trackers_.end()) {
              ++it->second.matched;
              lat = now - it->second.publish_time;
              it->second.max_latency = std::max(it->second.max_latency, lat);
            }
            const Delivery d{ctx->seq, host, iid, hops, lat};
            sink_->on_delivery(d);
            if (ctx->on_delivery) ctx->on_delivery(d);
          });
        }
        break;
      }
      case SubIdKind::kMigrated: {
        if (subid.target == nd.node_id()) {
          if (const MigratedRepo* repo = nd.find_migrated(subid.iid)) {
            repo->match(ctx->event.point, list, scratch.cand);
          }
        }
        break;
      }
    }
  }

  // Phase 2 (Alg. 5 lines 20-29): split the remaining subids across DHT
  // links; all subids sharing a next hop ride in one message. Grouping by
  // a stable sort over a flat (next hop, subid) vector keeps each group's
  // subid order identical to the old per-bucket insertion order.
  auto& routed = scratch.routed;
  routed.clear();
  if (cfg_.reliable_delivery && hops >= cfg_.max_event_hops) {
    // Hop TTL: reroutes can detour through stale routing state; bound any
    // livelock with a counted, truncated-flagged drop.
    if (auto* tr = trace::maybe(tracer_);
        tr && ctx->trace != trace::kNoTrace && !pending.empty()) {
      tr->point(ctx->trace, match_span, trace::SpanKind::kDrop, host,
                simulator().now(), pending.size());
    }
    note_event_drop(ctx->seq, pending.size());
    pending.clear();
  }
  for (const SubId& subid : pending) {
    const overlay::Peer next = dht_.next_hop(host, subid.target);
    if (!next.valid()) {  // isolated node; drop
      if (cfg_.reliable_delivery) {
        if (auto* tr = trace::maybe(tracer_);
            tr && ctx->trace != trace::kNoTrace) {
          tr->point(ctx->trace, match_span, trace::SpanKind::kDrop, host,
                    simulator().now(), 1);
        }
        note_event_drop(ctx->seq, 1);
      }
      continue;
    }
    routed.emplace_back(next.host, subid);
  }
  // Under cover aggregation the sort additionally orders each hop's sublist
  // by subid target, so same-subscriber runs sit adjacent for the grouped
  // wire encoding (subid_list_wire_bytes). Off-path the host-only stable
  // sort keeps the historical per-group insertion order byte-for-byte.
  if (cfg_.cover_aggregation) {
    std::stable_sort(routed.begin(), routed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first != b.first
                                  ? a.first < b.first
                                  : a.second.target < b.second.target;
                     });
  } else {
    std::stable_sort(routed.begin(), routed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }
  for (std::size_t i = 0; i < routed.size();) {
    const net::HostIndex to = routed[i].first;
    std::size_t j = i;
    while (j < routed.size() && routed[j].first == to) ++j;
    auto sublist = std::make_shared<std::vector<SubId>>();
    sublist->reserve(j - i);
    for (std::size_t k = i; k < j; ++k) sublist->push_back(routed[k].second);
    i = j;
    simulator().defer_ordered([this, seq = ctx->seq] {
      if (const auto it = trackers_.find(seq); it != trackers_.end()) {
        ++it->second.outstanding;
      }
    });
    forward_event(host, to, ctx, std::move(sublist), hops,
                  overlay::Peer::kInvalidHost, match_span);
  }
  if (auto* tr = trace::maybe(tracer_)) {
    tr->end(match_span, simulator().now());
  }

  // Retire this hop's outstanding slot. Deferred like every other tracker
  // touch; the closures above/below apply in this textual order, so the
  // count never dips below the increments already folded in.
  simulator().defer_ordered([this, seq = ctx->seq] {
    if (const auto it = trackers_.find(seq); it != trackers_.end()) {
      assert(it->second.outstanding > 0);
      --it->second.outstanding;
      finalize_if_done(seq);
    }
  });
}

void HyperSubSystem::forward_event(net::HostIndex host, net::HostIndex to,
                                   const EventCtxPtr& ctx,
                                   std::shared_ptr<std::vector<SubId>> sublist,
                                   int hops, net::HostIndex failed,
                                   trace::SpanId parent) {
  // The forward span covers the message's time on the wire: opened here at
  // the sender, closed when the receiver takes delivery (or at ack expiry
  // when the hop is dead). It travels with the chunk through batching.
  trace::SpanId fwd = trace::kNoSpan;
  if (auto* tr = trace::maybe(tracer_);
      tr && ctx->trace != trace::kNoTrace) {
    fwd = tr->begin(ctx->trace, parent, trace::SpanKind::kForward, host,
                    simulator().now(), std::uint64_t(to), sublist->size());
  }
  if (!cfg_.batch_forwarding) {
    auto chunks = std::make_shared<std::vector<FrameChunk>>();
    chunks->push_back(FrameChunk{ctx, std::move(sublist), hops, failed, fwd});
    send_frame(host, to, std::move(chunks));
    return;
  }
  // Batched: queue the chunk and flush once this timestep. The simulator
  // breaks equal-time ties FIFO, so the flush scheduled at +0 runs after
  // every already-queued message of this timestep has had its chance to
  // add chunks for the same hop.
  auto& queue = batches_[host][to];
  if (queue.empty()) {
    // Inherits the current (sender's) shard, like every queued chunk.
    simulator().schedule(0.0, [this, host, to] { flush_batch(host, to); });
  }
  queue.push_back(FrameChunk{ctx, std::move(sublist), hops, failed, fwd});
}

void HyperSubSystem::flush_batch(net::HostIndex host, net::HostIndex to) {
  auto& mine = batches_[host];
  const auto it = mine.find(to);
  if (it == mine.end() || it->second.empty()) return;
  auto chunks =
      std::make_shared<std::vector<FrameChunk>>(std::move(it->second));
  mine.erase(it);
  if (chunks->size() > 1) {
    simulator().defer_ordered([this, n = chunks->size()] {
      batch_.header_bytes_saved += overlay::kHeaderBytes * (n - 1);
    });
  }
  send_frame(host, to, std::move(chunks));
}

void HyperSubSystem::send_frame(
    net::HostIndex host, net::HostIndex to,
    std::shared_ptr<std::vector<FrameChunk>> chunks) {
  // One header per frame; each chunk pays its own event + subid payload.
  // The header is attributed to the first chunk with a live tracker. The
  // frame size is needed synchronously (it goes on the wire); the tracker
  // and batch-counter attribution is deferred, with the per-chunk sizes
  // snapshotted now — the receiver consumes the sublists later.
  std::uint64_t bytes = overlay::kHeaderBytes;
  std::uint64_t grouping_saved = 0;
  std::uint64_t subid_wire = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sizes;
  sizes.reserve(chunks->size());
  for (const FrameChunk& c : *chunks) {
    const std::uint64_t subid_bytes =
        subid_list_wire_bytes(*c.subids, cfg_.cover_aggregation);
    const std::uint64_t chunk_bytes = kEventBytes + subid_bytes;
    subid_wire += subid_bytes;
    if (cfg_.cover_aggregation) {
      grouping_saved +=
          kSubIdBytes * c.subids->size() -
          subid_list_wire_bytes(*c.subids, true);
    }
    bytes += chunk_bytes;
    sizes.emplace_back(c.ctx->seq, chunk_bytes);
  }
  if (subid_wire > 0 || grouping_saved > 0) {
    simulator().defer_ordered([this, subid_wire, grouping_saved] {
      subid_wire_bytes_ += subid_wire;
      cover_subid_bytes_saved_ += grouping_saved;
    });
  }
  simulator().defer_ordered([this, sizes = std::move(sizes)] {
    bool header_charged = false;
    for (const auto& [seq, chunk_bytes] : sizes) {
      if (const auto it = trackers_.find(seq); it != trackers_.end()) {
        it->second.bytes += chunk_bytes;
        if (!header_charged) {
          it->second.bytes += overlay::kHeaderBytes;
          it->second.header_bytes += overlay::kHeaderBytes;
          header_charged = true;
        }
      }
    }
    ++batch_.frames;
    batch_.chunks += sizes.size();
  });

  const Id sender = dht_.id_of(host);
  if (!cfg_.reliable_delivery) {
    network().send(host, to, bytes,
                   [this, to, sender, chunks = std::move(chunks)] {
                     // §6 piggyback: event traffic doubles as liveness
                     // evidence for the DHT layer (no-op unless enabled).
                     dht_.note_app_contact(to, sender);
                     if (auto* tr = trace::maybe(tracer_)) {
                       const double now = simulator().now();
                       for (const FrameChunk& c : *chunks) {
                         tr->end(c.fwd_span, now);
                       }
                     }
                     for (FrameChunk& c : *chunks) {
                       process_event_message(to, c.ctx,
                                             std::move(*c.subids),
                                             c.hops + 1, c.fwd_span);
                     }
                   });
    return;
  }
  // The channel's retry/expire spans attach under the first traced chunk's
  // forward span (one ack per frame; attributing its retransmissions to
  // one chunk of the frame keeps the export honest enough).
  trace::TraceCtx tctx;
  if (trace::maybe(tracer_)) {
    for (const FrameChunk& c : *chunks) {
      if (c.ctx->trace != trace::kNoTrace && c.fwd_span != trace::kNoSpan) {
        tctx = trace::TraceCtx{c.ctx->trace, c.fwd_span};
        break;
      }
    }
  }
  channel_.send(
      host, to, bytes,
      [this, host, to, sender, chunks] {
        // Piggybacked failure gossip: the sender detoured around a dead
        // hop to reach us; drop it from our routing state (and our route
        // cache) and treat the sender as a predecessor candidate for the
        // inherited range.
        for (const FrameChunk& c : *chunks) {
          if (c.failed == overlay::Peer::kInvalidHost) continue;
          dht_.note_peer_failure(to, c.failed, host);
          if (cfg_.route_cache) {
            // Caches are read on the (exclusive) publish path; mutations
            // from shard contexts go through the deferred stream.
            simulator().defer_ordered([this, to, failed = c.failed] {
              caches_[to]->invalidate_host(failed);
            });
          }
        }
        dht_.note_app_contact(to, sender);
        if (auto* tr = trace::maybe(tracer_)) {
          const double now = simulator().now();
          for (const FrameChunk& c : *chunks) tr->end(c.fwd_span, now);
        }
        for (FrameChunk& c : *chunks) {
          process_event_message(to, c.ctx, std::move(*c.subids), c.hops + 1,
                                c.fwd_span);
        }
      },
      [this, host, to, chunks] {
        // All retransmissions expired: the next hop is dead. Drop it from
        // the sender's routing state and route cache, reroute every
        // chunk's sublist through recomputed hops, then retire each
        // chunk's outstanding slot. Forward spans close here — the hop
        // they describe is over, even though it failed; the reroute's new
        // forward spans chain under them.
        dht_.note_peer_failure(host, to);
        if (cfg_.route_cache) {
          simulator().defer_ordered(
              [this, host, to] { caches_[host]->invalidate_host(to); });
        }
        if (auto* tr = trace::maybe(tracer_)) {
          const double now = simulator().now();
          for (const FrameChunk& c : *chunks) tr->end(c.fwd_span, now);
        }
        for (const FrameChunk& c : *chunks) {
          reroute_event(host, c.ctx, *c.subids, c.hops, to, c.fwd_span);
          // reroute_event defers its outstanding increments first, so this
          // decrement folds in after them — the count stays positive.
          simulator().defer_ordered([this, seq = c.ctx->seq] {
            if (const auto it = trackers_.find(seq); it != trackers_.end()) {
              assert(it->second.outstanding > 0);
              --it->second.outstanding;
              finalize_if_done(seq);
            }
          });
        }
      },
      tctx);
}

void HyperSubSystem::reroute_event(net::HostIndex host, const EventCtxPtr& ctx,
                                   const std::vector<SubId>& subids, int hops,
                                   net::HostIndex failed,
                                   trace::SpanId parent) {
  // Cold failover path: a local grouping buffer (the scratch vectors may
  // hold a caller's live state — ack expiries interleave arbitrarily with
  // event processing).
  auto* tr = trace::maybe(tracer_);
  const bool traced = tr != nullptr && ctx->trace != trace::kNoTrace;
  std::vector<std::pair<net::HostIndex, SubId>> routed;
  routed.reserve(subids.size());
  for (const SubId& subid : subids) {
    const overlay::Peer next = dht_.next_hop(host, subid.target);
    if (!next.valid() || next.host == failed) {
      // No viable alternative hop: an unmasked drop.
      if (traced) {
        tr->point(ctx->trace, parent, trace::SpanKind::kDrop, host,
                  simulator().now(), 1, std::uint64_t(failed));
      }
      note_event_drop(ctx->seq, 1);
      continue;
    }
    routed.emplace_back(next.host, subid);
  }
  std::stable_sort(routed.begin(), routed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < routed.size();) {
    const net::HostIndex to = routed[i].first;
    std::size_t j = i;
    while (j < routed.size() && routed[j].first == to) ++j;
    auto sublist = std::make_shared<std::vector<SubId>>();
    sublist->reserve(j - i);
    for (std::size_t k = i; k < j; ++k) sublist->push_back(routed[k].second);
    i = j;
    simulator().defer_ordered([this, seq = ctx->seq] {
      ++rel_.reroutes;
      if (const auto it = trackers_.find(seq); it != trackers_.end()) {
        ++it->second.outstanding;
      }
    });
    if (traced) {
      tr->point(ctx->trace, parent, trace::SpanKind::kReroute, host,
                simulator().now(), std::uint64_t(to),
                std::uint64_t(failed));
    }
    // Same hop count: the detour replaces the failed hop rather than
    // extending the logical path (the TTL still bounds repeated detours
    // through the receiver's own forwarding).
    forward_event(host, to, ctx, std::move(sublist), hops, failed, parent);
  }
}

void HyperSubSystem::note_rendezvous_owner(net::HostIndex host,
                                           const EventCtxPtr& ctx, Id key,
                                           trace::SpanId parent) {
  if (ctx->origin == overlay::Peer::kInvalidHost) return;
  for (const RendezvousProbe& rv : ctx->rendezvous) {
    if (rv.key != key) continue;
    if (host == ctx->origin) {
      // The publisher itself owns the rendezvous: a cache-directed probe
      // that came back here means the entry detoured through a non-owner —
      // drop it so the next publish resolves locally.
      if (rv.sent_to != overlay::Peer::kInvalidHost && rv.sent_to != host) {
        if (auto* tr = trace::maybe(tracer_);
            tr && ctx->trace != trace::kNoTrace) {
          tr->point(ctx->trace, parent, trace::SpanKind::kCacheCorrect,
                    host, simulator().now(), std::uint64_t(ctx->origin));
        }
        simulator().defer_ordered(
            [this, host, key] { caches_[host]->forget(key); });
      }
    } else if (rv.sent_to != host) {
      // Miss (probe rode normal routing) or stale hit (probe was handed to
      // a former owner, which forwarded it here): tell the publisher who
      // really owns the key. A small untracked control message — it rides
      // the network (and its traffic counters) but is not part of the
      // event's delivery tree.
      if (auto* tr = trace::maybe(tracer_);
          tr && ctx->trace != trace::kNoTrace) {
        tr->point(ctx->trace, parent, trace::SpanKind::kCacheCorrect, host,
                  simulator().now(), std::uint64_t(ctx->origin));
      }
      network().send(
          host, ctx->origin,
          overlay::kHeaderBytes + overlay::kKeyBytes + overlay::kNodeRefBytes,
          [this, origin = ctx->origin, key, owner = host] {
            // Runs on the origin's shard; the cache write joins the
            // deferred stream like every other cache mutation.
            simulator().defer_ordered([this, origin, key, owner] {
              caches_[origin]->learn(key, owner);
            });
          });
    }
    return;  // duplicate keys across subschemes alias the same owner
  }
}

void HyperSubSystem::invalidate_cached_route(Id key) {
  if (!cfg_.route_cache) return;
  // Callers include shard-context paths (migration replies); the sweep over
  // every host's cache is global state, so it rides the deferred stream.
  simulator().defer_ordered([this, key] {
    for (auto& c : caches_) c->forget(key);
  });
}

void HyperSubSystem::note_event_drop(std::uint64_t seq, std::size_t subids) {
  if (subids == 0) return;
  // Global counters + tracker flag; deferred so shard-context drops fold in
  // at the barrier in the sequential order.
  simulator().defer_ordered([this, seq, subids] {
    rel_.unmasked_drops += subids;
    if (const auto it = trackers_.find(seq); it != trackers_.end()) {
      it->second.truncated = true;
    }
  });
}

void HyperSubSystem::finalize_if_done(std::uint64_t seq) {
  const auto it = trackers_.find(seq);
  if (it == trackers_.end() || it->second.outstanding != 0) return;
  const Tracker& t = it->second;
  if (auto* tr = trace::maybe(tracer_)) {
    tr->end(t.root, simulator().now());
  }
  metrics::EventRecord r;
  r.seq = seq;
  r.matched = t.matched;
  r.pct_matched = total_subs_ > 0
                      ? 100.0 * double(t.matched) / double(total_subs_)
                      : 0.0;
  r.max_hops = t.max_hops;
  r.max_latency_ms = t.max_latency;
  r.bandwidth_bytes = t.bytes;
  r.header_bytes = t.header_bytes;
  r.truncated = t.truncated;
  if (t.truncated) ++rel_.truncated_events;
  event_metrics_.add(r);
  trackers_.erase(it);
}

void HyperSubSystem::finalize_events() {
  // Messages dropped at dead nodes leave outstanding counts above zero;
  // flush whatever remains (their partial costs are still meaningful) and
  // flag them truncated — part of the tree never completed.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(trackers_.size());
  for (const auto& [seq, t] : trackers_) seqs.push_back(seq);
  for (const std::uint64_t seq : seqs) {
    Tracker& t = trackers_[seq];
    if (t.outstanding > 0) t.truncated = true;
    t.outstanding = 0;
    finalize_if_done(seq);
  }
}

metrics::ReliabilityCounters HyperSubSystem::reliability_counters() const {
  const net::ReliableChannel::Stats& s = channel_.stats();
  metrics::ReliabilityCounters c = rel_;
  c.messages_sent += s.sent;
  c.acks += s.acked;
  c.retries += s.retries;
  c.expirations += s.expired;
  c.duplicates_suppressed += s.duplicates_suppressed;
  return c;
}

void HyperSubSystem::reset_metrics() {
  event_metrics_ = metrics::EventMetrics{};
  event_metrics_.set_streaming(cfg_.stream_event_metrics);
  sink_->reset();
  default_sink_.reset();
  for (auto& m : delivered_subs_) m.clear();
  rel_ = metrics::ReliabilityCounters{};
  channel_.reset_stats();
  batch_ = metrics::BatchCounters{};
  cover_subid_bytes_saved_ = 0;
  subid_wire_bytes_ = 0;
  // Cached routes stay warm across a reset; only their counters restart.
  for (auto& c : caches_) c->reset_counters();
}

metrics::CoverCounters HyperSubSystem::cover_counters() const {
  metrics::CoverCounters sum;
  sum.subid_bytes_saved = cover_subid_bytes_saved_;
  sum.subid_wire_bytes = subid_wire_bytes_;
  // Primary zones only: replica zones mirror the same subscriptions and
  // would double-count the gauges.
  for (const auto& nd : nodes_) {
    for (const auto& [addr, z] : nd->zones()) {
      sum.representatives += z.cover_representatives();
      sum.quenched += z.cover_quenched();
      sum.promotions += z.cover_promotions();
    }
  }
  return sum;
}

metrics::RouteCacheCounters HyperSubSystem::route_cache_counters() const {
  metrics::RouteCacheCounters sum;
  for (const auto& c : caches_) sum += c->counters();
  return sum;
}

bool HyperSubSystem::check_zone_invariants() const {
  for (const auto& nd : nodes_) {
    for (const auto& [addr, zone] : nd->zones()) {
      const SchemeRuntime& rt = *schemes_[addr.scheme];
      const Subscheme& ss = rt.subscheme(addr.subscheme);
      const lph::ZoneSystem& zsys = ss.zones();
      const HyperRect extent = zsys.extent(addr.zone);
      // Stored subscriptions project inside the zone's extent (LPH put
      // them at their covering zone).
      for (const auto& s : zone.subscriptions()) {
        if (!extent.covers(s.projected)) return false;
      }
      // Summary is the exact hull of contents.
      if (!(zone.exact_summary() == zone.summary())) return false;
      // Migrated buckets with exact rects: the hull of the recorded
      // per-sub rects must equal the bucket summary (an over-covering
      // summary forwards events into the hull's dead corners; an
      // under-covering one loses deliveries), and the rects must be
      // exactly the deduplicated projected rects of the subscriptions the
      // live acceptor actually holds under the pointer's token.
      for (const auto& b : zone.buckets()) {
        if (b.sub_rects.empty()) continue;  // bare bucket (hull-only mode)
        HyperRect hull;
        for (const HyperRect& r : b.sub_rects) hull = hull.hull(r);
        if (!(hull == b.summary)) return false;
        if (b.pointer.kind != SubIdKind::kMigrated) continue;
        const HyperSubNode* acceptor = nullptr;
        for (const auto& n2 : nodes_) {
          if (n2->node_id() == b.pointer.target) {
            acceptor = n2.get();
            break;
          }
        }
        if (acceptor == nullptr || !dht_.network().alive(acceptor->host())) {
          continue;  // acceptor gone — the pointer is dead weight, not wrong
        }
        const MigratedRepo* repo = acceptor->find_migrated(b.pointer.iid);
        if (repo == nullptr) return false;
        std::vector<HyperRect> expect;
        for (std::uint32_t r = 0; r < std::uint32_t(repo->subs.size()); ++r) {
          const HyperRect pr = repo->subs.projected_rect(r);
          bool dup = false;
          for (const HyperRect& e : expect) {
            if (e == pr) {
              dup = true;
              break;
            }
          }
          if (!dup) expect.push_back(pr);
        }
        if (expect.size() != b.sub_rects.size()) return false;
        for (const HyperRect& e : expect) {
          bool found = false;
          for (const HyperRect& r : b.sub_rects) {
            if (r == e) {
              found = true;
              break;
            }
          }
          if (!found) return false;
        }
      }
      // Cached child pieces are exactly summary ∩ child extent.
      if (!zsys.is_leaf(addr.zone)) {
        for (int c = 0; c < zsys.base(); ++c) {
          HyperRect expect;
          if (!zone.summary().empty()) {
            const HyperRect ce = zsys.extent(zsys.child(addr.zone, c));
            if (zone.summary().overlaps(ce)) {
              expect = zone.summary().intersect(ce);
            }
          }
          if (!(zone.child_piece(c) == expect) &&
              !(zone.child_piece(c).empty() && expect.empty())) {
            return false;
          }
        }
      }
    }
  }
  // Cross-node pass: the piece a parent zone caches for each child must
  // equal the piece actually installed at the child zone's live owner —
  // otherwise events filtered by the stale child piece die (or detour)
  // between the two nodes. Only authoritative state is compared: the
  // parent's host must still own the parent key, and exactly one live node
  // may claim the child key (ownership is ambiguous mid-repair).
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    if (!dht_.network().alive(h)) continue;
    for (const auto& [addr, zone] : nodes_[h]->zones()) {
      const SchemeRuntime& rt = *schemes_[addr.scheme];
      const Subscheme& ss = rt.subscheme(addr.subscheme);
      const lph::ZoneSystem& zsys = ss.zones();
      if (zsys.is_leaf(addr.zone)) continue;
      if (!dht_.owns(h, ss.zone_key(addr.zone))) continue;
      const Id my_key = ss.zone_key(addr.zone);
      for (int c = 0; c < zsys.base(); ++c) {
        const lph::Zone child = zsys.child(addr.zone, c);
        const Id child_key = ss.zone_key(child);
        net::HostIndex owner = overlay::Peer::kInvalidHost;
        bool ambiguous = false;
        for (net::HostIndex o = 0; o < nodes_.size(); ++o) {
          if (!dht_.network().alive(o) || !dht_.owns(o, child_key)) continue;
          if (owner != overlay::Peer::kInvalidHost) {
            ambiguous = true;
            break;
          }
          owner = o;
        }
        if (owner == overlay::Peer::kInvalidHost || ambiguous) continue;
        HyperRect installed;
        const ZoneAddr child_addr{addr.scheme, addr.subscheme, child};
        const auto& child_zones = nodes_[owner]->zones();
        if (const auto it = child_zones.find(child_addr);
            it != child_zones.end()) {
          const auto& pp = it->second.parent_piece();
          if (pp && pp->second == my_key) installed = pp->first;
        }
        const HyperRect& cached = zone.child_piece(c);
        if (!(installed == cached) &&
            !(installed.empty() && cached.empty())) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<std::size_t> HyperSubSystem::node_loads() const {
  std::vector<std::size_t> loads;
  loads.reserve(nodes_.size());
  for (const auto& n : nodes_) loads.push_back(n->load());
  return loads;
}

std::vector<std::size_t> HyperSubSystem::node_stored_entries() const {
  std::vector<std::size_t> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->stored_entries());
  return out;
}

}  // namespace hypersub::core
