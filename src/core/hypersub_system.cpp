#include "core/hypersub_system.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <thread>

#include "core/state_wire.hpp"

namespace hypersub::core {

HyperSubSystem::HyperSubSystem(overlay::Overlay& dht, Config cfg)
    : dht_(dht), cfg_(cfg), channel_(dht.network(), cfg.reliable) {
  nodes_.reserve(dht.size());
  caches_.reserve(dht.size());
  for (net::HostIndex h = 0; h < dht.size(); ++h) {
    nodes_.push_back(std::make_unique<HyperSubNode>(
        h, dht.id_of(h), cfg_.match_index_threshold,
        cfg_.cover_aggregation));
    caches_.push_back(
        std::make_unique<RouteCache>(cfg_.route_cache_capacity));
  }
  batches_.resize(dht.size());
  delivered_subs_.resize(dht.size());
  transfers_out_.resize(dht.size());
  warm_.resize(dht.size());
  event_metrics_.set_streaming(cfg_.stream_event_metrics);
  if (cfg_.bootstrap == BootstrapMode::kOracle) {
    // Setup, not a runtime flip: build before the ownership listener goes
    // in so the initial table construction does not spam invalidations.
    dht_.build(cfg_.build_threads);
  }
  if (cfg_.route_cache) {
    // Coherence hook: when a node's owned key range moves (stabilization,
    // failure repair, oracle rebuild), cached resolutions pointing at it
    // may now land on a non-owner. Stale hits would still self-repair via
    // forward-and-correct; invalidating eagerly keeps the detour window
    // small and the hit counters honest. The listener can fire on any
    // shard; route caches are global structures, so the sweep is deferred
    // to the barrier (inline in sequential mode).
    dht_.set_ownership_listener([this](net::HostIndex h) {
      simulator().defer_ordered([this, h] {
        for (auto& c : caches_) c->invalidate_host(h);
      });
    });
    owns_ownership_listener_ = true;
  }
}

HyperSubSystem::~HyperSubSystem() {
  if (owns_ownership_listener_) dht_.set_ownership_listener({});
}

std::uint32_t HyperSubSystem::add_scheme(pubsub::Scheme scheme,
                                         const SchemeOptions& opt) {
  schemes_.push_back(
      std::make_unique<SchemeRuntime>(std::move(scheme), opt));
  return std::uint32_t(schemes_.size() - 1);
}

// ---------------------------------------------------------------------------
// Subscription installation (Alg. 2 + Alg. 3)
// ---------------------------------------------------------------------------

SubscriptionHandle HyperSubSystem::subscribe(net::HostIndex subscriber,
                                             std::uint32_t scheme,
                                             pubsub::Subscription sub) {
  assert(scheme < schemes_.size());
  HyperSubNode& me = *nodes_[subscriber];
  const std::uint32_t iid = me.next_iid();
  me.record_local(iid, sub);
  ++total_subs_;

  const SchemeRuntime& rt = *schemes_[scheme];
  const std::uint32_t ssi = std::uint32_t(rt.choose_subscheme(sub));
  const Subscheme& ss = rt.subscheme(ssi);
  const HyperRect projected = ss.project(sub.range());
  const auto lph = lph::hash_subscription(ss.zones(), projected,
                                          ss.rotation());
  const ZoneAddr addr{scheme, ssi, lph.zone};
  StoredSub stored{SubId{me.node_id(), iid, SubIdKind::kSubscriber},
                   std::move(sub), projected};

  // Tracing: one trace per sampled installation — an install root span at
  // the subscriber, route-hop spans recorded by the substrate, and a
  // register span at the surrogate (chained under the last hop via the
  // ambient context the substrate parks around the owner callback).
  trace::SpanId install_span = trace::kNoSpan;
  if (auto* tr = trace::maybe(tracer_)) {
    const trace::TraceId tid = tr->start_trace(cfg_.trace_sample_rate);
    if (tid != trace::kNoTrace) {
      install_span =
          tr->begin(tid, trace::kNoSpan, trace::SpanKind::kInstall,
                    subscriber, simulator().now(), scheme, iid);
      tr->set_ambient(trace::TraceCtx{tid, install_span});
    }
  }
  const std::size_t dims = ss.attributes().size();
  dht_.route(subscriber, lph.key, install_bytes(dims),
               [this, addr, key = lph.key, install_span,
                stored = std::move(stored)](
                   const overlay::Overlay::RouteResult& r) mutable {
                 if (auto* tr = trace::maybe(tracer_)) {
                   const trace::TraceCtx at = tr->take_ambient();
                   if (at.active()) {
                     const double now = simulator().now();
                     tr->point(at.trace, at.parent,
                               trace::SpanKind::kRegister, r.owner.host, now,
                               std::uint64_t(r.hops));
                     tr->end(install_span, now);
                   }
                 }
                 register_subscription_at(r.owner.host, addr, key,
                                          std::move(stored));
               });
  // A substrate that ignores set_tracer never consumes the parked context;
  // clear it so the next route cannot adopt it. (If the install message is
  // dropped en route, the install span stays open — a recorded lost edge.)
  if (auto* tr = trace::maybe(tracer_)) tr->take_ambient();
  return SubscriptionHandle{scheme, iid, subscriber};
}

void HyperSubSystem::unsubscribe(const SubscriptionHandle& handle) {
  if (!handle.valid()) return;
  const HyperSubNode& me = *nodes_[handle.subscriber];
  const auto sub = me.local_sub(handle.iid);
  if (!sub) return;  // unknown or already removed
  unsubscribe_impl(handle.subscriber, handle.scheme, handle.iid, *sub);
}

void HyperSubSystem::unsubscribe_impl(net::HostIndex subscriber,
                                      std::uint32_t scheme, std::uint32_t iid,
                                      const pubsub::Subscription& sub) {
  assert(scheme < schemes_.size());
  HyperSubNode& me = *nodes_[subscriber];
  if (!me.erase_local(iid)) return;
  assert(total_subs_ > 0);
  --total_subs_;

  const SchemeRuntime& rt = *schemes_[scheme];
  const std::uint32_t ssi = std::uint32_t(rt.choose_subscheme(sub));
  const Subscheme& ss = rt.subscheme(ssi);
  const HyperRect projected = ss.project(sub.range());
  const auto lph = lph::hash_subscription(ss.zones(), projected,
                                          ss.rotation());
  const ZoneAddr addr{scheme, ssi, lph.zone};
  const SubId owner{me.node_id(), iid, SubIdKind::kSubscriber};

  dht_.route(subscriber, lph.key, install_bytes(ss.attributes().size()),
               [this, addr, key = lph.key, owner](
                   const overlay::Overlay::RouteResult& r) {
                 remove_subscription_at(r.owner.host, addr, key, owner);
               });
}

void HyperSubSystem::remove_subscription_at(net::HostIndex owner,
                                            const ZoneAddr& addr,
                                            Id rotated_key, const SubId& sub) {
  if (WarmState& ws = warm_[owner]; ws.warming) {
    // The authoritative copy is still in flight; run the removal once the
    // transferred state has landed.
    ws.ops.push_back([this, owner, addr, rotated_key, sub] {
      remove_subscription_at(owner, addr, rotated_key, sub);
    });
    return;
  }
  if (TransferOut& t = transfers_out_[owner];
      t.active && transfer_moves(t, rotated_key)) {
    if (t.committed) {
      // Leave bridge: this node already shipped the range; hand the
      // removal to the new owner through the full path.
      const std::size_t dims = scheme_runtime(addr.scheme).scheme().arity();
      network().send(owner, t.target, install_bytes(dims),
                     [this, to = t.target, addr, rotated_key, sub] {
                       remove_subscription_at(to, addr, rotated_key, sub);
                     });
      return;
    }
    // Write-behind: apply locally below AND queue a zone-local replay.
    queue_transfer_op(
        t, install_bytes(scheme_runtime(addr.scheme).scheme().arity()),
        [this, to = t.target, addr, rotated_key, sub] {
          HyperSubNode& tn = *nodes_[to];
          if (compress_enabled() && tn.zones().find(addr) == tn.zones().end())
            return;  // nothing stored there — don't create a husk
          tn.zone_state(addr, rotated_key).remove_subscription(sub);
        });
  }
  HyperSubNode& nd = *nodes_[owner];
  if (compress_enabled() && nd.zones().find(addr) == nd.zones().end()) {
    // Under compression a removal miss must not materialize a husk; a
    // compressed chain member cannot hold subscriptions, so there is
    // nothing to remove either way.
    return;
  }
  ZoneState& zs = nd.zone_state(addr, rotated_key);
  const HyperRect before = zs.summary();
  if (!zs.remove_subscription(sub)) return;
  // Mirror the removal at the replicas.
  if (cfg_.replicas > 0) {
    const std::size_t dims = scheme_runtime(addr.scheme).scheme().arity();
    for (const auto& peer : dht_.replica_set(owner, cfg_.replicas)) {
      network().send(owner, peer.host, install_bytes(dims),
                     [this, host = peer.host, addr, rotated_key, sub] {
                       nodes_[host]
                           ->replica_zone_state(addr, rotated_key)
                           .remove_subscription(sub);
                     });
    }
  }
  if (!(zs.summary() == before)) {
    propagate_pieces(owner, addr);
  }
  // The removal may have drained the zone down to a bare summary-filter
  // piece; fold it back into a compressed chain.
  try_absorb_zone(owner, addr, rotated_key);
}

namespace {

/// Owner of `key` in an oracle owner table with successor geometry: the
/// first id >= key, wrapping to the front (same contract as
/// Overlay::oracle_owner_table / chord::successor_index).
std::size_t bulk_owner_index(const std::vector<Id>& sorted_ids, Id key) {
  const auto it = std::lower_bound(sorted_ids.begin(), sorted_ids.end(), key);
  return it == sorted_ids.end() ? 0 : std::size_t(it - sorted_ids.begin());
}

/// Run `body(lo, hi)` over a partition of [0, hosts) into up to `threads`
/// contiguous ranges. Each worker owns a disjoint host range, so per-host
/// state needs no synchronization and the combined result is independent
/// of the thread count.
template <typename F>
void for_host_ranges(unsigned threads, std::size_t hosts, F&& body) {
  const std::size_t workers =
      std::min<std::size_t>(std::max(1u, threads), hosts);
  if (workers <= 1) {
    body(std::size_t{0}, hosts);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&body, lo = hosts * w / workers,
                       hi = hosts * (w + 1) / workers] { body(lo, hi); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace

std::vector<SubscriptionHandle> HyperSubSystem::bulk_subscribe(
    std::uint32_t scheme, std::vector<BulkSub> subs, unsigned threads) {
  assert(scheme < schemes_.size());
  std::vector<SubscriptionHandle> handles(subs.size());
  const auto ring = dht_.oracle_owner_table();
  if (ring.empty()) {
    // No global knowledge — routed installs (caller drains the simulator).
    for (std::size_t i = 0; i < subs.size(); ++i) {
      handles[i] =
          subscribe(subs[i].subscriber, scheme, std::move(subs[i].sub));
    }
    return handles;
  }
  std::vector<Id> ring_ids;
  ring_ids.reserve(ring.size());
  for (const auto& peer : ring) ring_ids.push_back(peer.id);

  const SchemeRuntime& rt = *schemes_[scheme];
  struct Planned {
    std::uint32_t iid = 0;
    std::uint32_t ssi = 0;
    net::HostIndex owner = 0;
    Id key = 0;
    lph::Zone zone;
    HyperRect projected;
  };
  std::vector<Planned> plan(subs.size());

  // Phase A — subscriber-side bookkeeping + zone planning, sharded by
  // subscriber host: iid allocation and the local store are per-host
  // state, and everything else read here (scheme runtime, LPH, zone-key
  // memoization) is immutable or internally synchronized. Each host's
  // subscriptions are planned in batch order, so iids match what a
  // sequential subscribe() loop would assign.
  for_host_ranges(threads, nodes_.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = 0; i < subs.size(); ++i) {
      const net::HostIndex sh = subs[i].subscriber;
      if (sh < lo || sh >= hi) continue;
      HyperSubNode& me = *nodes_[sh];
      Planned& p = plan[i];
      p.iid = me.next_iid();
      me.record_local(p.iid, subs[i].sub);
      p.ssi = std::uint32_t(rt.choose_subscheme(subs[i].sub));
      const Subscheme& ss = rt.subscheme(p.ssi);
      p.projected = ss.project(subs[i].sub.range());
      const auto lph =
          lph::hash_subscription(ss.zones(), p.projected, ss.rotation());
      p.zone = lph.zone;
      p.key = lph.key;
      p.owner = ring[bulk_owner_index(ring_ids, p.key)].host;
    }
  });
  total_subs_ += subs.size();
  for (std::size_t i = 0; i < subs.size(); ++i) {
    handles[i] = SubscriptionHandle{scheme, plan[i].iid, subs[i].subscriber};
  }

  // Phase B — replica copies first (mirrors register_subscription_at,
  // which copies to the heirs before the primary insert), sharded by
  // replica host; then the primary installs, sharded by owner host. Within
  // one host everything lands in batch order.
  if (cfg_.replicas > 0) {
    for_host_ranges(
        threads, nodes_.size(), [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = 0; i < subs.size(); ++i) {
            const Planned& p = plan[i];
            for (const auto& peer :
                 dht_.replica_set(p.owner, cfg_.replicas)) {
              if (peer.host < lo || peer.host >= hi) continue;
              const ZoneAddr addr{scheme, p.ssi, p.zone};
              nodes_[peer.host]
                  ->replica_zone_state(addr, p.key)
                  .add_subscription(StoredSub{
                      SubId{nodes_[subs[i].subscriber]->node_id(), p.iid,
                            SubIdKind::kSubscriber},
                      subs[i].sub, p.projected});
            }
          }
        });
  }
  for_host_ranges(threads, nodes_.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = 0; i < subs.size(); ++i) {
      Planned& p = plan[i];
      if (p.owner < lo || p.owner >= hi) continue;
      const ZoneAddr addr{scheme, p.ssi, p.zone};
      nodes_[p.owner]->zone_state(addr, p.key).add_subscription(
          StoredSub{SubId{nodes_[subs[i].subscriber]->node_id(), p.iid,
                          SubIdKind::kSubscriber},
                    std::move(subs[i].sub), std::move(p.projected)});
    }
  });

  // Phase C — one sequential top-down piece fixpoint per subscheme
  // (skipped under ancestor probing, exactly like the routed path). A
  // summary piece only flows parent -> child, and a zone's outgoing pieces
  // depend on its parent piece, so processing pending zones by ascending
  // level reaches the same fixpoint the drained install cascade converges
  // to: piece(child) = final summary(parent) ∩ extent(child).
  //
  // This loop visits every zone the cascade saturates (the whole tree when
  // summaries hull up to the domain), so its constants matter: the work
  // queue is one plain vector per level, deduped by sort+unique at batch
  // start; zone keys are computed directly (lph::zone_key) and carried in
  // the queue entries rather than going through the Subscheme's memoized
  // key cache, which would grow by one mutex-guarded map entry per zone.
  if (!cfg_.ancestor_probing) {
    const bool comp = compress_enabled();
    struct PendingZone {
      std::uint32_t ssi = 0;
      Id code = 0;
      Id key = 0;  // rotated zone key (a pure function of ssi + zone)
    };
    int max_level = 0;
    for (std::uint32_t ssi = 0; ssi < rt.subscheme_count(); ++ssi) {
      max_level = std::max(max_level, rt.subscheme(ssi).zones().max_level());
    }
    std::vector<std::vector<PendingZone>> pending(std::size_t(max_level) + 1);
    for (const Planned& p : plan) {
      pending[std::size_t(p.zone.level)].push_back({p.ssi, p.zone.code, p.key});
    }
    // The cascade only appends below the current level; the planning and
    // input buffers are dead weight from here on, so release them before
    // the tree-sized allocation wave defines peak RSS.
    plan = {};
    subs = {};
    for (int level = 0; level <= max_level; ++level) {
      auto& batch = pending[std::size_t(level)];
      std::sort(batch.begin(), batch.end(),
                [](const PendingZone& a, const PendingZone& b) {
                  return a.ssi != b.ssi ? a.ssi < b.ssi : a.code < b.code;
                });
      batch.erase(std::unique(batch.begin(), batch.end(),
                              [](const PendingZone& a, const PendingZone& b) {
                                return a.ssi == b.ssi && a.code == b.code;
                              }),
                  batch.end());
      for (const PendingZone& pz : batch) {
        const Subscheme& ss = rt.subscheme(pz.ssi);
        const lph::ZoneSystem& zsys = ss.zones();
        const int bb = zsys.base_bits();
        const lph::Zone zone{pz.code, level};
        if (zsys.is_leaf(zone)) continue;
        const net::HostIndex host =
            ring[bulk_owner_index(ring_ids, pz.key)].host;
        const ZoneAddr addr{scheme, pz.ssi, zone};
        HyperSubNode& nd = *nodes_[host];
        const auto zit = nd.zones().find(addr);
        ZoneState* zs = zit == nd.zones().end() ? nullptr : &zit->second;
        // Under compression a pending structural zone lives in a chain
        // created or extended earlier in this pass; its summary is the
        // derived rect, and — because a zone is enqueued exactly when it
        // first gets a piece, before its own children are visited — it is
        // that chain's tail. (An interior member's children already carry
        // their derived state; nothing to do.)
        std::uint32_t cid = ZoneChainSet::kNone;
        HyperRect summary;
        if (zs != nullptr) {
          summary = zs->summary();
        } else {
          if (!comp) continue;
          cid = nd.chains().find_containing(scheme, pz.ssi, zone, pz.key, bb);
          if (cid == ZoneChainSet::kNone) continue;
          const CompressedChain& c = nd.chains().get(cid);
          if (!(c.tail == zone)) continue;
          const HyperRect ext = zsys.extent(zone);
          if (c.piece.overlaps(ext)) summary = c.piece.intersect(ext);
        }
        // A chain may only grow through a sole non-empty child piece.
        int nonempty_children = 0;
        if (cid != ZoneChainSet::kNone && !summary.empty()) {
          for (int digit = 0; digit < zsys.base(); ++digit) {
            if (summary.overlaps(zsys.extent(zsys.child(zone, digit))))
              ++nonempty_children;
          }
        }
        for (int digit = 0; digit < zsys.base(); ++digit) {
          const lph::Zone child = zsys.child(zone, digit);
          HyperRect piece;
          if (!summary.empty()) {
            const HyperRect ext = zsys.extent(child);
            if (summary.overlaps(ext)) piece = summary.intersect(ext);
          }
          if (zs != nullptr) {
            if (piece == zs->child_piece(digit)) continue;
            zs->set_child_piece(digit, piece);
          } else if (piece.empty()) {
            continue;  // chained parent: no implicit state below this edge
          }
          const ZoneAddr child_addr{scheme, pz.ssi, child};
          const Id child_key = lph::zone_key(zsys, child, ss.rotation());
          const net::HostIndex child_host =
              ring[bulk_owner_index(ring_ids, child_key)].host;
          if (cfg_.replicas > 0) {
            for (const auto& peer :
                 dht_.replica_set(child_host, cfg_.replicas)) {
              nodes_[peer.host]
                  ->replica_zone_state(child_addr, child_key)
                  .set_parent_piece(piece, pz.key);
            }
          }
          if (!comp) {
            ZoneState& czs =
                nodes_[child_host]->zone_state(child_addr, child_key);
            if (czs.set_parent_piece(std::move(piece), pz.key)) {
              pending[std::size_t(child.level)].push_back(
                  {pz.ssi, child.code, child_key});
            }
            continue;
          }
          // Compression: apply at the child without materializing husks.
          // The cascade from an empty tree only ever grows pieces, so a
          // child with no state and an empty piece needs nothing.
          HyperSubNode& cnd = *nodes_[child_host];
          if (const auto cit = cnd.zones().find(child_addr);
              cit != cnd.zones().end()) {
            if (cit->second.set_parent_piece(std::move(piece), pz.key)) {
              pending[std::size_t(child.level)].push_back(
                  {pz.ssi, child.code, child_key});
            }
            continue;
          }
          if (const std::uint32_t ccid = cnd.chains().find_containing(
                  scheme, pz.ssi, child, child_key, bb);
              ccid != ZoneChainSet::kNone) {
            // Re-entrant build over an already-compressed tree. If the
            // member's derived state already equals the incoming piece the
            // install is a no-op; otherwise split the member out and apply
            // normally.
            {
              const CompressedChain& cc = cnd.chains().get(ccid);
              const HyperRect ext = zsys.extent(child);
              HyperRect derived;
              if (cc.piece.overlaps(ext)) derived = cc.piece.intersect(ext);
              if (derived == piece && cc.parent_key_at(child.level) == pz.key)
                continue;
            }
            materialize_if_chained(child_host, child_addr, child_key);
            if (cnd.zone_state(child_addr, child_key)
                    .set_parent_piece(std::move(piece), pz.key)) {
              pending[std::size_t(child.level)].push_back(
                  {pz.ssi, child.code, child_key});
            }
            continue;
          }
          if (piece.empty()) continue;
          // Fresh structural child: grow the parent's chain when this is
          // its sole non-empty child on the same node, else start a new
          // single-member chain. Either way the child joins the queue (its
          // piece grew from nothing).
          if (cid != ZoneChainSet::kNone && nonempty_children == 1 &&
              child_host == host) {
            CompressedChain grown = nd.chains().get(cid);
            nd.chains().erase(cid);
            grown.tail = child;
            grown.span += 1;
            grown.level_keys.push_back(child_key);
            cid = nd.chains().insert(std::move(grown));
          } else {
            CompressedChain fresh;
            fresh.scheme = scheme;
            fresh.subscheme = pz.ssi;
            fresh.tail = child;
            fresh.span = 1;
            fresh.piece = std::move(piece);
            fresh.parent_key = pz.key;
            fresh.level_keys.assign(1, child_key);
            cnd.chains().insert(std::move(fresh));
          }
          pending[std::size_t(child.level)].push_back(
              {pz.ssi, child.code, child_key});
        }
      }
      batch = {};  // processed — free before the next level's wave
    }
  }
  return handles;
}

void HyperSubSystem::register_subscription_at(net::HostIndex owner,
                                              const ZoneAddr& addr,
                                              Id rotated_key,
                                              StoredSub stored) {
  if (WarmState& ws = warm_[owner]; ws.warming) {
    // The routed install reached a warming joiner: the zone's prior
    // contents are still in flight, so defer the full registration (with
    // its replica copies and piece propagation) until commit.
    ws.ops.push_back([this, owner, addr, rotated_key,
                      stored = std::move(stored)]() mutable {
      register_subscription_at(owner, addr, rotated_key, std::move(stored));
    });
    return;
  }
  if (TransferOut& t = transfers_out_[owner];
      t.active && transfer_moves(t, rotated_key)) {
    if (t.committed) {
      // Leave bridge: the range already shipped; forward to the new owner.
      const std::uint64_t bytes = install_bytes(stored.projected.dimensions());
      network().send(owner, t.target, bytes,
                     [this, to = t.target, addr, rotated_key,
                      stored = std::move(stored)]() mutable {
                       register_subscription_at(to, addr, rotated_key,
                                                std::move(stored));
                     });
      return;
    }
    // Write-behind: apply locally below AND queue a zone-local replay.
    queue_transfer_op(t, install_bytes(stored.projected.dimensions()),
                      [this, to = t.target, addr, rotated_key, stored] {
                        materialize_if_chained(to, addr, rotated_key);
                        nodes_[to]
                            ->zone_state(addr, rotated_key)
                            .add_subscription(stored);
                      });
  }
  // A compressed chain member can't hold subscriptions: split it out into a
  // real ZoneState first (no-op when compression is off or nothing covers
  // the address).
  materialize_if_chained(owner, addr, rotated_key);
  HyperSubNode& nd = *nodes_[owner];
  ZoneState& zs = nd.zone_state(addr, rotated_key);
  if (cfg_.replicas > 0) {
    // Copy to the owner's heirs before the move below consumes `stored`.
    const std::size_t dims = stored.projected.dimensions();
    for (const auto& peer : dht_.replica_set(owner, cfg_.replicas)) {
      network().send(owner, peer.host, install_bytes(dims),
                     [this, host = peer.host, addr, rotated_key, stored] {
                       nodes_[host]
                           ->replica_zone_state(addr, rotated_key)
                           .add_subscription(stored);
                     });
    }
  }
  const bool grew = zs.add_subscription(std::move(stored));
  if (grew && !cfg_.ancestor_probing) propagate_pieces(owner, addr);
}

void HyperSubSystem::register_piece_at(net::HostIndex owner,
                                       const ZoneAddr& addr, Id rotated_key,
                                       HyperRect piece, Id parent_key) {
  if (WarmState& ws = warm_[owner]; ws.warming) {
    ws.ops.push_back(
        [this, owner, addr, rotated_key, piece = std::move(piece),
         parent_key]() mutable {
          register_piece_at(owner, addr, rotated_key, std::move(piece),
                            parent_key);
        });
    return;
  }
  if (TransferOut& t = transfers_out_[owner];
      t.active && transfer_moves(t, rotated_key)) {
    const std::size_t dims =
        piece.empty()
            ? schemes_[addr.scheme]->subscheme(addr.subscheme).attributes().size()
            : piece.dimensions();
    if (t.committed) {
      network().send(owner, t.target, install_bytes(dims),
                     [this, to = t.target, addr, rotated_key, piece,
                      parent_key]() mutable {
                       register_piece_at(to, addr, rotated_key,
                                         std::move(piece), parent_key);
                     });
      return;
    }
    queue_transfer_op(t, install_bytes(dims),
                      [this, to = t.target, addr, rotated_key, piece,
                       parent_key] {
                        // Zone-local replay at the transfer target: the old
                        // owner already cascaded to the children, so a
                        // materialized zone just takes the value. A
                        // compressed target restructures its chain; the
                        // deltas it routes are idempotent at the receivers.
                        HyperSubNode& tn = *nodes_[to];
                        if (const auto it = tn.zones().find(addr);
                            it != tn.zones().end()) {
                          it->second.set_parent_piece(piece, parent_key);
                        } else if (compress_enabled()) {
                          chain_install_piece(to, addr, rotated_key, piece,
                                              parent_key);
                        } else {
                          tn.zone_state(addr, rotated_key)
                              .set_parent_piece(piece, parent_key);
                        }
                      });
  }
  HyperSubNode& nd = *nodes_[owner];
  if (compress_enabled() && nd.zones().find(addr) == nd.zones().end()) {
    // Structural zone with no materialized state: absorb the piece into the
    // path-compressed chain representation (replicas are 0 whenever
    // compression is on, so the replica fan-out below is dead here).
    chain_install_piece(owner, addr, rotated_key, std::move(piece),
                        parent_key);
    return;
  }
  ZoneState& zs = nd.zone_state(addr, rotated_key);
  if (cfg_.replicas > 0) {
    const std::size_t dims = piece.empty()
                                 ? schemes_[addr.scheme]
                                       ->subscheme(addr.subscheme)
                                       .attributes()
                                       .size()
                                 : piece.dimensions();
    for (const auto& peer : dht_.replica_set(owner, cfg_.replicas)) {
      network().send(owner, peer.host, install_bytes(dims),
                     [this, host = peer.host, addr, rotated_key, piece,
                      parent_key] {
                       nodes_[host]
                           ->replica_zone_state(addr, rotated_key)
                           .set_parent_piece(piece, parent_key);
                     });
    }
  }
  const bool changed = zs.set_parent_piece(std::move(piece), parent_key);
  if (changed) propagate_pieces(owner, addr);
  // If the zone was already a bare piece holder (or just became one), fold
  // it into a chain; no-op with compression off or while it stores more.
  try_absorb_zone(owner, addr, rotated_key);
}

void HyperSubSystem::propagate_pieces(net::HostIndex host,
                                      const ZoneAddr& addr) {
  const SchemeRuntime& rt = *schemes_[addr.scheme];
  const Subscheme& ss = rt.subscheme(addr.subscheme);
  const lph::ZoneSystem& zsys = ss.zones();
  if (zsys.is_leaf(addr.zone)) return;

  HyperSubNode& nd = *nodes_[host];
  ZoneState* zs = nd.zones().contains(addr) ? &nd.zones().at(addr) : nullptr;
  if (zs == nullptr) return;
  const HyperRect summary = zs->summary();
  const Id my_key = ss.zone_key(addr.zone);

  for (int digit = 0; digit < zsys.base(); ++digit) {
    const lph::Zone child = zsys.child(addr.zone, digit);
    HyperRect piece;
    if (!summary.empty()) {
      const HyperRect ext = zsys.extent(child);
      if (summary.overlaps(ext)) piece = summary.intersect(ext);
    }
    if (piece == zs->child_piece(digit)) continue;
    zs->set_child_piece(digit, piece);

    const ZoneAddr child_addr{addr.scheme, addr.subscheme, child};
    const Id child_key = ss.zone_key(child);
    dht_.route(host, child_key, install_bytes(ss.attributes().size()),
                 [this, child_addr, child_key, piece, my_key](
                     const overlay::Overlay::RouteResult& r) {
                   register_piece_at(r.owner.host, child_addr, child_key,
                                     piece, my_key);
                 });
  }
}

// ---------------------------------------------------------------------------
// Path-compressed structural zone chains
//
// All chain state lives in the owning node's ZoneChainSet; every mutation
// below happens on that node's shard, so the compressed representation is
// exactly as parallel-deterministic as the materialized one. Pieces still
// enter a chain only through its head (children of the tail receive routed
// register_piece_at like before), which is what lets a cascade cross a
// whole chain in one step instead of one hop per level.
// ---------------------------------------------------------------------------

namespace {

/// Derived rectangle a chain stores implicitly at member `z`: the head
/// piece clipped to the member's extent. Extents nest along the chain, so
/// this is simultaneously the member's installed parent piece and its
/// summary.
HyperRect chain_rect_at(const CompressedChain& c, const lph::ZoneSystem& zsys,
                        const lph::Zone& z) {
  const HyperRect ext = zsys.extent(z);
  if (c.piece.empty() || !c.piece.overlaps(ext)) return HyperRect{};
  return c.piece.intersect(ext);
}

/// `down` can be appended to `up` as one chain: up's tail is down's head's
/// parent, its only non-empty derived child piece is exactly down's head,
/// that piece equals down's, and the stored parent key links match.
bool chains_mergeable(const CompressedChain& up, const CompressedChain& down,
                      const lph::ZoneSystem& zsys, int bb) {
  if (up.scheme != down.scheme || up.subscheme != down.subscheme) return false;
  const lph::Zone head = down.member(down.head_level(), bb);
  if (head.level != up.tail.level + 1) return false;
  if (zsys.is_leaf(up.tail)) return false;
  if (!(zsys.parent(head) == up.tail)) return false;
  if (down.parent_key != up.level_keys.back()) return false;
  for (int digit = 0; digit < zsys.base(); ++digit) {
    const lph::Zone ch = zsys.child(up.tail, digit);
    const bool nonempty =
        !up.piece.empty() && up.piece.overlaps(zsys.extent(ch));
    if (nonempty != (ch.code == head.code)) return false;
  }
  return chain_rect_at(up, zsys, head) == down.piece;
}

/// Concatenate `up` + `down` into one record (callers check mergeability).
CompressedChain chains_concat(const CompressedChain& up,
                              const CompressedChain& down) {
  CompressedChain m;
  m.scheme = up.scheme;
  m.subscheme = up.subscheme;
  m.tail = down.tail;
  m.span = up.span + down.span;
  m.piece = up.piece;
  m.parent_key = up.parent_key;
  m.level_keys.reserve(up.level_keys.size() + down.level_keys.size());
  m.level_keys = up.level_keys;
  m.level_keys.insert(m.level_keys.end(), down.level_keys.begin(),
                      down.level_keys.end());
  return m;
}

}  // namespace

void HyperSubSystem::route_tail_child_deltas(
    net::HostIndex owner, std::uint32_t scheme, std::uint32_t subscheme,
    const lph::Zone& tail, Id tail_key, const HyperRect& old_piece,
    const HyperRect& new_piece) {
  const Subscheme& ss = schemes_[scheme]->subscheme(subscheme);
  const lph::ZoneSystem& zsys = ss.zones();
  if (zsys.is_leaf(tail)) return;
  for (int digit = 0; digit < zsys.base(); ++digit) {
    const lph::Zone child = zsys.child(tail, digit);
    const HyperRect ext = zsys.extent(child);
    HyperRect oldp;
    if (!old_piece.empty() && old_piece.overlaps(ext))
      oldp = old_piece.intersect(ext);
    HyperRect newp;
    if (!new_piece.empty() && new_piece.overlaps(ext))
      newp = new_piece.intersect(ext);
    if (oldp == newp) continue;
    const ZoneAddr child_addr{scheme, subscheme, child};
    const Id child_key = lph::zone_key(zsys, child, ss.rotation());
    dht_.route(owner, child_key, install_bytes(ss.attributes().size()),
               [this, child_addr, child_key, piece = std::move(newp),
                tail_key](const overlay::Overlay::RouteResult& r) {
                 register_piece_at(r.owner.host, child_addr, child_key, piece,
                                   tail_key);
               });
  }
}

void HyperSubSystem::chain_install_piece(net::HostIndex owner,
                                         const ZoneAddr& addr, Id rotated_key,
                                         HyperRect piece, Id parent_key) {
  HyperSubNode& nd = *nodes_[owner];
  const Subscheme& ss = schemes_[addr.scheme]->subscheme(addr.subscheme);
  const lph::ZoneSystem& zsys = ss.zones();
  const int bb = zsys.base_bits();

  const std::uint32_t id = nd.chains().find_containing(
      addr.scheme, addr.subscheme, addr.zone, rotated_key, bb);
  if (id == ZoneChainSet::kNone) {
    if (piece.empty()) return;  // clearing a zone that stores nothing
    // Fresh structural zone: a single-member chain, then the fresh-zone
    // cascade to every child whose derived piece is non-empty.
    CompressedChain c;
    c.scheme = addr.scheme;
    c.subscheme = addr.subscheme;
    c.tail = addr.zone;
    c.span = 1;
    c.piece = std::move(piece);
    c.parent_key = parent_key;
    c.level_keys.assign(1, rotated_key);
    const HyperRect sent = c.piece;
    nd.chains().insert(std::move(c));
    // Routing can resolve synchronously (the child's owner may be this very
    // node), re-entering the chain machinery — so no chain ids or
    // references survive across it; the merge re-resolves by address.
    route_tail_child_deltas(owner, addr.scheme, addr.subscheme, addr.zone,
                            rotated_key, HyperRect{}, sent);
    chain_merge_at(owner, addr.scheme, addr.subscheme, addr.zone, rotated_key);
    return;
  }

  CompressedChain c = nd.chains().get(id);
  const int level = addr.zone.level;
  if (level > c.head_level()) {
    // A piece reached a member below the head. The only legitimate such
    // arrival is a converging duplicate of the member's derived state (an
    // idempotent re-propagation after a merge or handover) — drop it.
    // Anything else predates the chain's current shape: split the prefix
    // off and re-run the install against the suffix headed here.
    if (piece == chain_rect_at(c, zsys, addr.zone) &&
        parent_key == c.parent_key_at(level)) {
      return;
    }
    nd.chains().erase(id);
    CompressedChain pre;
    pre.scheme = c.scheme;
    pre.subscheme = c.subscheme;
    pre.tail = c.member(level - 1, bb);
    pre.span = std::uint32_t(level - c.head_level());
    pre.piece = c.piece;
    pre.parent_key = c.parent_key;
    pre.level_keys.assign(c.level_keys.begin(),
                          c.level_keys.begin() + (level - c.head_level()));
    nd.chains().insert(std::move(pre));
    CompressedChain suf;
    suf.scheme = c.scheme;
    suf.subscheme = c.subscheme;
    suf.tail = c.tail;
    suf.span = std::uint32_t(c.tail.level - level + 1);
    suf.piece = chain_rect_at(c, zsys, addr.zone);
    suf.parent_key = c.parent_key_at(level);
    suf.level_keys.assign(
        c.level_keys.begin() + (level - c.head_level()),
        c.level_keys.end());
    chain_reshape(owner, std::move(suf), std::move(piece), parent_key);
    return;
  }

  // Install at the head.
  if (piece == c.piece && parent_key == c.parent_key) return;
  nd.chains().erase(id);
  chain_reshape(owner, std::move(c), std::move(piece), parent_key);
}

void HyperSubSystem::chain_reshape(net::HostIndex owner, CompressedChain old_c,
                                   HyperRect piece, Id parent_key) {
  HyperSubNode& nd = *nodes_[owner];
  const Subscheme& ss = schemes_[old_c.scheme]->subscheme(old_c.subscheme);
  const lph::ZoneSystem& zsys = ss.zones();
  const int bb = zsys.base_bits();
  const int head = old_c.head_level();
  const int tail_level = old_c.tail.level;

  if (piece.empty()) {
    // The head stores nothing now: the whole chain dissolves. Only the old
    // tail's children carry installed state derived from it (interior
    // members' other children were empty by the chain invariant), so clear
    // those and stop.
    route_tail_child_deltas(owner, old_c.scheme, old_c.subscheme, old_c.tail,
                            old_c.level_keys.back(), old_c.piece, HyperRect{});
    return;
  }

  // Longest surviving prefix: member L stays interior while, under the new
  // piece, exactly one of its children derives a non-empty piece and it is
  // the stored next member.
  int keep = head;
  for (int L = head; L < tail_level; ++L) {
    const lph::Zone zl = old_c.member(L, bb);
    const lph::Zone next = old_c.member(L + 1, bb);
    bool still_interior = true;
    for (int digit = 0; digit < zsys.base(); ++digit) {
      const lph::Zone ch = zsys.child(zl, digit);
      const bool nonempty = piece.overlaps(zsys.extent(ch));
      if (nonempty != (ch.code == next.code)) {
        still_interior = false;
        break;
      }
    }
    if (!still_interior) break;
    keep = L + 1;
  }

  CompressedChain pre;
  pre.scheme = old_c.scheme;
  pre.subscheme = old_c.subscheme;
  pre.tail = old_c.member(keep, bb);
  pre.span = std::uint32_t(keep - head + 1);
  pre.piece = piece;
  pre.parent_key = parent_key;
  pre.level_keys.assign(old_c.level_keys.begin(),
                        old_c.level_keys.begin() + (keep - head + 1));
  nd.chains().insert(std::move(pre));

  if (keep == tail_level) {
    // Shape preserved head-to-tail: the whole cascade below collapses to
    // one frontier diff at the old tail. The routed installs may re-enter
    // synchronously and reshape this very chain, so `pid` is dead after the
    // call — the merge re-resolves by address.
    route_tail_child_deltas(owner, old_c.scheme, old_c.subscheme, old_c.tail,
                            old_c.level_keys.back(), old_c.piece, piece);
    chain_merge_at(owner, old_c.scheme, old_c.subscheme, old_c.member(head, bb),
                   old_c.key_at(head));
    return;
  }

  // The suffix [keep+1 .. old tail] detaches. It keeps its old derived
  // state as its own chain, then takes whatever the new piece derives for
  // its head (possibly empty, dissolving it) — exactly as if the parent
  // had re-sent the piece down that edge.
  const lph::Zone sh = old_c.member(keep + 1, bb);
  const Id suf_parent = old_c.key_at(keep);
  CompressedChain suf;
  suf.scheme = old_c.scheme;
  suf.subscheme = old_c.subscheme;
  suf.tail = old_c.tail;
  suf.span = std::uint32_t(tail_level - keep);
  suf.piece = chain_rect_at(old_c, zsys, sh);
  suf.parent_key = suf_parent;
  suf.level_keys.assign(old_c.level_keys.begin() + (keep + 1 - head),
                        old_c.level_keys.end());
  HyperRect fresh;
  {
    const HyperRect ext = zsys.extent(sh);
    if (piece.overlaps(ext)) fresh = piece.intersect(ext);
  }
  chain_reshape(owner, std::move(suf), std::move(fresh), suf_parent);

  // New frontier at `keep`: children other than the old on-path member had
  // empty derived pieces before; install any that are non-empty now.
  const lph::Zone kz = old_c.member(keep, bb);
  for (int digit = 0; digit < zsys.base(); ++digit) {
    const lph::Zone ch = zsys.child(kz, digit);
    if (ch.code == sh.code) continue;  // handled via the suffix above
    const HyperRect ext = zsys.extent(ch);
    if (!piece.overlaps(ext)) continue;
    HyperRect np = piece.intersect(ext);
    const ZoneAddr child_addr{old_c.scheme, old_c.subscheme, ch};
    const Id child_key = lph::zone_key(zsys, ch, ss.rotation());
    dht_.route(owner, child_key, install_bytes(ss.attributes().size()),
               [this, child_addr, child_key, np = std::move(np),
                pk = suf_parent](const overlay::Overlay::RouteResult& r) {
                 register_piece_at(r.owner.host, child_addr, child_key, np,
                                   pk);
               });
  }
  chain_merge_at(owner, old_c.scheme, old_c.subscheme, old_c.member(head, bb),
                 old_c.key_at(head));
}

void HyperSubSystem::chain_merge_at(net::HostIndex owner, std::uint32_t scheme,
                                    std::uint32_t subscheme, const lph::Zone& z,
                                    Id key) {
  HyperSubNode& nd = *nodes_[owner];
  const int bb = schemes_[scheme]->subscheme(subscheme).zones().base_bits();
  const std::uint32_t id =
      nd.chains().find_containing(scheme, subscheme, z, key, bb);
  if (id != ZoneChainSet::kNone) chain_try_merge(owner, id);
}

std::uint32_t HyperSubSystem::chain_try_merge(net::HostIndex owner,
                                              std::uint32_t id) {
  HyperSubNode& nd = *nodes_[owner];
  bool progressed = true;
  while (progressed) {
    progressed = false;
    const CompressedChain& c = nd.chains().get(id);
    const Subscheme& ss = schemes_[c.scheme]->subscheme(c.subscheme);
    const lph::ZoneSystem& zsys = ss.zones();
    const int bb = zsys.base_bits();

    // Merge up: a chain on this node ending at our head's parent.
    if (c.head_level() > 1) {
      const lph::Zone head = c.member(c.head_level(), bb);
      const lph::Zone par = zsys.parent(head);
      const std::uint32_t up = nd.chains().find_containing(
          c.scheme, c.subscheme, par, c.parent_key, bb);
      if (up != ZoneChainSet::kNone && up != id) {
        const CompressedChain& d = nd.chains().get(up);
        if (d.tail == par && d.key_at(par.level) == c.parent_key &&
            chains_mergeable(d, c, zsys, bb)) {
          CompressedChain m = chains_concat(d, c);
          nd.chains().erase(up);
          nd.chains().erase(id);
          id = nd.chains().insert(std::move(m));
          progressed = true;
          continue;
        }
      }
    }

    // Merge down: our tail's single non-empty derived child heads a chain
    // on this node carrying exactly the derived state.
    if (!zsys.is_leaf(c.tail)) {
      int nonempty = 0;
      lph::Zone only{};
      for (int digit = 0; digit < zsys.base(); ++digit) {
        const lph::Zone ch = zsys.child(c.tail, digit);
        if (c.piece.overlaps(zsys.extent(ch))) {
          ++nonempty;
          only = ch;
        }
      }
      if (nonempty == 1) {
        const Id ck = lph::zone_key(zsys, only, ss.rotation());
        const std::uint32_t dn = nd.chains().find_containing(
            c.scheme, c.subscheme, only, ck, bb);
        if (dn != ZoneChainSet::kNone && dn != id) {
          const CompressedChain& s = nd.chains().get(dn);
          if (s.head_level() == only.level && chains_mergeable(c, s, zsys, bb)) {
            CompressedChain m = chains_concat(c, s);
            nd.chains().erase(dn);
            nd.chains().erase(id);
            id = nd.chains().insert(std::move(m));
            progressed = true;
          }
        }
      }
    }
  }
  return id;
}

void HyperSubSystem::materialize_if_chained(net::HostIndex owner,
                                            const ZoneAddr& addr,
                                            Id rotated_key) {
  if (!compress_enabled()) return;
  HyperSubNode& nd = *nodes_[owner];
  const Subscheme& ss = schemes_[addr.scheme]->subscheme(addr.subscheme);
  const lph::ZoneSystem& zsys = ss.zones();
  const int bb = zsys.base_bits();
  const std::uint32_t id = nd.chains().find_containing(
      addr.scheme, addr.subscheme, addr.zone, rotated_key, bb);
  if (id == ZoneChainSet::kNone) return;
  const CompressedChain c = nd.chains().get(id);
  nd.chains().erase(id);
  const int level = addr.zone.level;
  const int head = c.head_level();
  if (level > head) {
    CompressedChain pre;
    pre.scheme = c.scheme;
    pre.subscheme = c.subscheme;
    pre.tail = c.member(level - 1, bb);
    pre.span = std::uint32_t(level - head);
    pre.piece = c.piece;
    pre.parent_key = c.parent_key;
    pre.level_keys.assign(c.level_keys.begin(),
                          c.level_keys.begin() + (level - head));
    nd.chains().insert(std::move(pre));
  }
  if (level < c.tail.level) {
    CompressedChain suf;
    suf.scheme = c.scheme;
    suf.subscheme = c.subscheme;
    suf.tail = c.tail;
    suf.span = std::uint32_t(c.tail.level - level);
    suf.piece = chain_rect_at(c, zsys, c.member(level + 1, bb));
    suf.parent_key = c.key_at(level);
    suf.level_keys.assign(c.level_keys.begin() + (level + 1 - head),
                          c.level_keys.end());
    nd.chains().insert(std::move(suf));
  }
  // Materialize the member with its derived piece, seeding the child-piece
  // cache with the derived values so the next propagate resends nothing.
  const HyperRect rect = chain_rect_at(c, zsys, addr.zone);
  const Id pk = c.parent_key_at(level);
  ZoneState& zs = nd.zone_state(addr, rotated_key);
  zs.set_parent_piece(rect, pk);
  if (!rect.empty() && !zsys.is_leaf(addr.zone)) {
    for (int digit = 0; digit < zsys.base(); ++digit) {
      const lph::Zone ch = zsys.child(addr.zone, digit);
      const HyperRect ext = zsys.extent(ch);
      if (!rect.overlaps(ext)) continue;
      zs.set_child_piece(digit, rect.intersect(ext));
    }
  }
}

void HyperSubSystem::drop_chain_member(HyperSubNode& nd, std::uint32_t id,
                                       const lph::Zone& z) {
  const CompressedChain c = nd.chains().get(id);
  const Subscheme& ss = schemes_[c.scheme]->subscheme(c.subscheme);
  const lph::ZoneSystem& zsys = ss.zones();
  const int bb = zsys.base_bits();
  nd.chains().erase(id);
  const int head = c.head_level();
  if (z.level > head) {
    CompressedChain pre;
    pre.scheme = c.scheme;
    pre.subscheme = c.subscheme;
    pre.tail = c.member(z.level - 1, bb);
    pre.span = std::uint32_t(z.level - head);
    pre.piece = c.piece;
    pre.parent_key = c.parent_key;
    pre.level_keys.assign(c.level_keys.begin(),
                          c.level_keys.begin() + (z.level - head));
    nd.chains().insert(std::move(pre));
  }
  if (z.level < c.tail.level) {
    CompressedChain suf;
    suf.scheme = c.scheme;
    suf.subscheme = c.subscheme;
    suf.tail = c.tail;
    suf.span = std::uint32_t(c.tail.level - z.level);
    suf.piece = chain_rect_at(c, zsys, c.member(z.level + 1, bb));
    suf.parent_key = c.key_at(z.level);
    suf.level_keys.assign(c.level_keys.begin() + (z.level + 1 - head),
                          c.level_keys.end());
    nd.chains().insert(std::move(suf));
  }
}

void HyperSubSystem::try_absorb_zone(net::HostIndex owner, const ZoneAddr& addr,
                                     Id rotated_key) {
  if (!compress_enabled()) return;
  HyperSubNode& nd = *nodes_[owner];
  const auto it = nd.zones().find(addr);
  if (it == nd.zones().end()) return;
  ZoneState& zs = it->second;
  if (addr.zone.level < 1) return;  // the root never joins a chain
  if (zs.subscription_count() > 0 || !zs.buckets().empty()) return;
  if (!zs.has_parent_piece() || zs.parent_piece()->first.empty()) {
    // Stores nothing at all: a husk (e.g. restored from an image taken
    // before compression) — drop it outright.
    if (zs.summary().empty()) nd.erase_zone(addr, rotated_key);
    return;
  }
  const HyperRect piece = zs.parent_piece()->first;
  const Id pk = zs.parent_piece()->second;
  nd.erase_zone(addr, rotated_key);
  CompressedChain c;
  c.scheme = addr.scheme;
  c.subscheme = addr.subscheme;
  c.tail = addr.zone;
  c.span = 1;
  c.piece = piece;
  c.parent_key = pk;
  c.level_keys.assign(1, rotated_key);
  chain_try_merge(owner, nd.chains().insert(std::move(c)));
}

void HyperSubSystem::repush_chain_frontiers(net::HostIndex host) {
  if (!compress_enabled()) return;
  HyperSubNode& nd = *nodes_[host];
  if (nd.chains().empty()) return;
  std::vector<CompressedChain> cs;
  cs.reserve(nd.chains().size());
  nd.chains().for_each(
      [&](std::uint32_t, const CompressedChain& c) { cs.push_back(c); });
  std::sort(cs.begin(), cs.end(),
            [](const CompressedChain& a, const CompressedChain& b) {
              return std::tie(a.scheme, a.subscheme, a.tail.level,
                              a.tail.code) <
                     std::tie(b.scheme, b.subscheme, b.tail.level,
                              b.tail.code);
            });
  // Passing an empty "old" forces every non-empty derived tail child to be
  // re-sent; the installs are exact duplicates at up-to-date receivers and
  // repairs at stale ones.
  for (const CompressedChain& c : cs) {
    route_tail_child_deltas(host, c.scheme, c.subscheme, c.tail,
                            c.level_keys.back(), HyperRect{}, c.piece);
  }
}

// ---------------------------------------------------------------------------
// Event publication + delivery (Alg. 4 + Alg. 5)
// ---------------------------------------------------------------------------

std::uint64_t HyperSubSystem::publish(net::HostIndex publisher,
                                      std::uint32_t scheme,
                                      pubsub::Event event,
                                      DeliveryCallback on_delivery) {
  assert(scheme < schemes_.size());
  // publish() is a driver-facing entry point: it allocates the global
  // event sequence number and the tracker, so it must run in the main
  // (exclusive) context, never inside a sharded event handler.
  assert(!simulator().in_worker_context());
  const SchemeRuntime& rt = *schemes_[scheme];
  assert(pubsub::valid_event(rt.scheme(), event));

  const std::uint64_t seq = ++event_seq_;
  event.seq = seq;

  auto ctx = std::make_shared<EventCtx>();
  ctx->seq = seq;
  ctx->scheme = scheme;
  ctx->origin = publisher;
  ctx->event = std::move(event);
  ctx->on_delivery = std::move(on_delivery);
  ctx->projected.reserve(rt.subscheme_count());
  for (std::size_t i = 0; i < rt.subscheme_count(); ++i) {
    ctx->projected.push_back(rt.subscheme(i).project(ctx->event.point));
  }

  // Tracing: one trace per sampled publish; the publish span is the root
  // of the event's causal tree and closes when the tracker finalizes.
  if (auto* tr = trace::maybe(tracer_)) {
    ctx->trace = tr->start_trace(cfg_.trace_sample_rate);
    if (ctx->trace != trace::kNoTrace) {
      ctx->root = tr->begin(ctx->trace, trace::kNoSpan,
                            trace::SpanKind::kPublish, publisher,
                            simulator().now(), seq, scheme);
    }
  }

  Tracker& t = trackers_[seq];
  t.publish_time = simulator().now();
  t.root = ctx->root;

  // Initial subid list: one rendezvous (leaf zone) per subscheme; in
  // ancestor-probing mode additionally every ancestor zone. With the route
  // cache on, rendezvous probes whose zone key has a cached owner skip the
  // greedy route and are handed straight to that owner (fast lane); the
  // rest ride normal routing from the publisher.
  std::vector<SubId> list;
  std::vector<std::pair<net::HostIndex, SubId>> direct;
  ctx->rendezvous.reserve(rt.subscheme_count());
  for (std::uint32_t i = 0; i < rt.subscheme_count(); ++i) {
    const Subscheme& ss = rt.subscheme(i);
    const lph::Zone leaf = ss.zones().locate(ctx->projected[i]);
    const Id key = ss.zone_key(leaf);
    const SubId rendezvous{key, 0, SubIdKind::kRendezvous};
    net::HostIndex cached = overlay::Peer::kInvalidHost;
    if (cfg_.route_cache) {
      cached = caches_[publisher]->lookup(key);
      if (cached == publisher) cached = overlay::Peer::kInvalidHost;
    }
    ctx->rendezvous.push_back(RendezvousProbe{key, cached});
    if (cached != overlay::Peer::kInvalidHost) {
      if (auto* tr = trace::maybe(tracer_);
          tr && ctx->trace != trace::kNoTrace) {
        tr->point(ctx->trace, ctx->root, trace::SpanKind::kCacheHit,
                  publisher, simulator().now(), std::uint64_t(cached));
      }
      direct.emplace_back(cached, rendezvous);
    } else {
      list.push_back(rendezvous);
    }
    if (cfg_.ancestor_probing) {
      lph::Zone z = leaf;
      while (z.level > 0) {
        z = ss.zones().parent(z);
        list.push_back(SubId{ss.zone_key(z), 0, SubIdKind::kZone});
      }
    }
  }

  std::stable_sort(direct.begin(), direct.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < direct.size();) {
    const net::HostIndex to = direct[i].first;
    std::size_t j = i;
    while (j < direct.size() && direct[j].first == to) ++j;
    auto sublist = std::make_shared<std::vector<SubId>>();
    sublist->reserve(j - i);
    for (std::size_t k = i; k < j; ++k) sublist->push_back(direct[k].second);
    i = j;
    ++t.outstanding;
    forward_event(publisher, to, ctx, std::move(sublist), 0,
                  overlay::Peer::kInvalidHost, ctx->root);
  }

  if (!list.empty()) {
    ++t.outstanding;
    // The publisher-local pass runs on the publisher's shard, like every
    // other event message (process_event_message touches that node's
    // zones, scratch, and forwarding queues).
    simulator().schedule_on(publisher, 0.0,
                            [this, publisher, ctx = std::move(ctx),
                             list = std::move(list)]() mutable {
      process_event_message(publisher, ctx, std::move(list), 0, ctx->root);
    });
  }
  return seq;
}

void HyperSubSystem::process_event_message(net::HostIndex host,
                                           const EventCtxPtr& ctx,
                                           std::vector<SubId> list,
                                           int hops, trace::SpanId via) {
  if (WarmState& ws = warm_[host]; ws.warming) {
    // A warming joiner already owns its key range but its zone state is
    // still in flight. Park any message that would match here (it would
    // match against emptiness and silently lose deliveries) and replay it
    // after the transferred state lands. Pure forwarding work (no owned
    // subid) proceeds normally.
    bool owned = false;
    for (const SubId& subid : list) {
      if (dht_.owns(host, subid.target)) {
        owned = true;
        break;
      }
    }
    if (owned) {
      ws.ops.push_back([this, host, ctx, list = std::move(list), hops,
                        via]() mutable {
        process_event_message(host, ctx, std::move(list), hops, via);
      });
      simulator().defer_ordered([this] { ++join_stats_.events_buffered; });
      return;
    }
  }
  HyperSubNode& nd = *nodes_[host];
  // Tracker accounting is deferred: trackers_ is a system-global map, so
  // worker-context touches are applied at the window barrier in
  // deterministic order (inline in sequential mode). Each closure re-finds
  // the tracker — it may already have been force-finalized
  // (finalize_events() during churn runs); keep delivering, just stop
  // accounting.
  simulator().defer_ordered([this, seq = ctx->seq, hops] {
    if (const auto it = trackers_.find(seq); it != trackers_.end()) {
      it->second.max_hops = std::max(it->second.max_hops, hops);
    }
  });

  // One match span per processed message; everything this node records
  // (deliveries, drops, cache corrections, outgoing forwards) chains under
  // it, and it chains under the message that brought the event here.
  trace::SpanId match_span = trace::kNoSpan;
  if (auto* tr = trace::maybe(tracer_);
      tr && ctx->trace != trace::kNoTrace) {
    match_span = tr->begin(ctx->trace, via, trace::SpanKind::kMatch, host,
                           simulator().now(), std::uint64_t(hops),
                           list.size());
  }

  // Phase 1 (Alg. 5 lines 3-23): consume subids targeting this node; their
  // matches go back on the worklist because a freshly matched target (a
  // parent zone, a subscriber, a migration acceptor) may be owned by this
  // very node. `pending` and `matched_keys` are system-held scratch — the
  // delivery path allocates nothing per message beyond the outgoing
  // per-neighbor sublists, which the send closures must own anyway.
  Scratch& scratch = scratch_[simulator().worker_slot()];
  std::vector<SubId>& pending = scratch.pending;
  pending.clear();
  // One zone key can alias a whole rightmost zone chain, and a chain's
  // parent pointer may target the same key the rendezvous already did —
  // process each key at most once per message. The handful of keys per
  // message makes a linear find over a flat vector cheaper than hashing.
  std::vector<Id>& matched_keys = scratch.keys;
  matched_keys.clear();
  std::size_t cursor = 0;
  while (cursor < list.size()) {
    const SubId subid = list[cursor++];
    if (!dht_.owns(host, subid.target)) {
      pending.push_back(subid);
      continue;
    }
    switch (subid.kind) {
      case SubIdKind::kRendezvous:
      case SubIdKind::kZone: {
        if (subid.kind == SubIdKind::kRendezvous && cfg_.route_cache) {
          note_rendezvous_owner(host, ctx, subid.target, match_span);
        }
        if (std::find(matched_keys.begin(), matched_keys.end(),
                      subid.target) != matched_keys.end()) {
          break;
        }
        matched_keys.push_back(subid.target);
        auto& zlist = scratch.zones;
        zlist.clear();
        nd.append_zones_by_key(subid.target, zlist);
        for (ZoneState* zs : zlist) {
          if (zs->addr().scheme != ctx->scheme) continue;
          const Point& proj = ctx->projected[zs->addr().subscheme];
          zs->match(ctx->event.point, proj, list);
        }
        // Failover path: we own this key (possibly inherited after the
        // primary's failure) — replicated state counts too. While the
        // primary is alive this node never owns the key, so replicas are
        // never matched redundantly; post-failover, a subscription lives
        // either in the replica (pre-failure) or in fresh primary state
        // (post-failure), never both, and duplicate zone pointers collapse
        // in the per-message key dedupe above.
        zlist.clear();
        nd.append_replica_zones_by_key(subid.target, zlist);
        for (ZoneState* zs : zlist) {
          if (zs->addr().scheme != ctx->scheme) continue;
          const Point& proj = ctx->projected[zs->addr().subscheme];
          zs->match(ctx->event.point, proj, list);
        }
        // Implicit chain members indexed under this key. Each matches
        // exactly like the piece-only ZoneState it replaces: the member's
        // installed piece (head piece ∩ member extent) contains the
        // projected point iff both factors do, and a match climbs by
        // emitting the member's parent key. Members sharing one key sit on
        // consecutive levels and their extents nest, so the first extent
        // miss ends the run; the per-message key dedupe above absorbs
        // re-emissions.
        if (!nd.chains().empty()) {
          nd.chains().for_each_at_key(
              subid.target, [&](std::uint32_t, const CompressedChain& c) {
                if (c.scheme != ctx->scheme) return;
                const Subscheme& ss =
                    schemes_[c.scheme]->subscheme(c.subscheme);
                const lph::ZoneSystem& zsys = ss.zones();
                const int bb = zsys.base_bits();
                const Point& proj = ctx->projected[c.subscheme];
                if (!c.piece.contains(proj)) return;
                for (int L = c.head_level(); L <= c.tail.level; ++L) {
                  if (c.key_at(L) != subid.target) continue;
                  if (!zsys.extent(c.member(L, bb)).contains(proj)) break;
                  list.push_back(
                      SubId{c.parent_key_at(L), 0, SubIdKind::kZone});
                }
              });
        }
        break;
      }
      case SubIdKind::kSubscriber: {
        // Deliver only if this node *is* the subscriber (a successor that
        // merely inherited the id range after a failure drops it).
        if (subid.target == nd.node_id()) {
          // End-to-end dedupe: a rerouted subtree can re-match the same
          // subscription through a different path. The seen-set is
          // per-subscriber-host, so it lives on this shard.
          if (cfg_.reliable_delivery &&
              !delivered_subs_[host][ctx->seq]
                   .emplace(subid.target, subid.iid)
                   .second) {
            simulator().defer_ordered(
                [this] { ++rel_.duplicates_suppressed; });
            break;
          }
          if (auto* tr = trace::maybe(tracer_);
              tr && ctx->trace != trace::kNoTrace) {
            tr->point(ctx->trace, match_span, trace::SpanKind::kDeliver,
                      host, simulator().now(), subid.iid,
                      std::uint64_t(hops));
          }
          // The delivery record needs the tracker (latency base, matched
          // count) and feeds system-global state (sink, metrics), so the
          // whole tail is deferred; its closure sees the tracker in the
          // same state a sequential run would at this point. NOTE: the
          // per-publish on_delivery observer consequently must not
          // schedule events (it runs inside a barrier in parallel mode).
          simulator().defer_ordered([this, ctx, host, iid = subid.iid, hops,
                                     now = simulator().now()] {
            double lat = 0.0;
            if (const auto it = trackers_.find(ctx->seq);
                it != trackers_.end()) {
              ++it->second.matched;
              lat = now - it->second.publish_time;
              it->second.max_latency = std::max(it->second.max_latency, lat);
            }
            const Delivery d{ctx->seq, host, iid, hops, lat};
            sink_->on_delivery(d);
            if (ctx->on_delivery) ctx->on_delivery(d);
          });
        }
        break;
      }
      case SubIdKind::kMigrated: {
        if (subid.target == nd.node_id()) {
          if (const MigratedRepo* repo = nd.find_migrated(subid.iid)) {
            repo->match(ctx->event.point, list, scratch.cand);
          }
        }
        break;
      }
    }
  }

  // Phase 2 (Alg. 5 lines 20-29): split the remaining subids across DHT
  // links; all subids sharing a next hop ride in one message. Grouping by
  // a stable sort over a flat (next hop, subid) vector keeps each group's
  // subid order identical to the old per-bucket insertion order.
  auto& routed = scratch.routed;
  routed.clear();
  if (cfg_.reliable_delivery && hops >= cfg_.max_event_hops) {
    // Hop TTL: reroutes can detour through stale routing state; bound any
    // livelock with a counted, truncated-flagged drop.
    if (auto* tr = trace::maybe(tracer_);
        tr && ctx->trace != trace::kNoTrace && !pending.empty()) {
      tr->point(ctx->trace, match_span, trace::SpanKind::kDrop, host,
                simulator().now(), pending.size());
    }
    note_event_drop(ctx->seq, pending.size());
    pending.clear();
  }
  for (const SubId& subid : pending) {
    const overlay::Peer next = dht_.next_hop(host, subid.target);
    if (!next.valid()) {  // isolated node; drop
      if (cfg_.reliable_delivery) {
        if (auto* tr = trace::maybe(tracer_);
            tr && ctx->trace != trace::kNoTrace) {
          tr->point(ctx->trace, match_span, trace::SpanKind::kDrop, host,
                    simulator().now(), 1);
        }
        note_event_drop(ctx->seq, 1);
      }
      continue;
    }
    routed.emplace_back(next.host, subid);
  }
  // Under cover aggregation the sort additionally orders each hop's sublist
  // by subid target, so same-subscriber runs sit adjacent for the grouped
  // wire encoding (subid_list_wire_bytes). Off-path the host-only stable
  // sort keeps the historical per-group insertion order byte-for-byte.
  if (cfg_.cover_aggregation) {
    std::stable_sort(routed.begin(), routed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first != b.first
                                  ? a.first < b.first
                                  : a.second.target < b.second.target;
                     });
  } else {
    std::stable_sort(routed.begin(), routed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }
  for (std::size_t i = 0; i < routed.size();) {
    const net::HostIndex to = routed[i].first;
    std::size_t j = i;
    while (j < routed.size() && routed[j].first == to) ++j;
    auto sublist = std::make_shared<std::vector<SubId>>();
    sublist->reserve(j - i);
    for (std::size_t k = i; k < j; ++k) sublist->push_back(routed[k].second);
    i = j;
    simulator().defer_ordered([this, seq = ctx->seq] {
      if (const auto it = trackers_.find(seq); it != trackers_.end()) {
        ++it->second.outstanding;
      }
    });
    forward_event(host, to, ctx, std::move(sublist), hops,
                  overlay::Peer::kInvalidHost, match_span);
  }
  if (auto* tr = trace::maybe(tracer_)) {
    tr->end(match_span, simulator().now());
  }

  // Retire this hop's outstanding slot. Deferred like every other tracker
  // touch; the closures above/below apply in this textual order, so the
  // count never dips below the increments already folded in.
  simulator().defer_ordered([this, seq = ctx->seq] {
    if (const auto it = trackers_.find(seq); it != trackers_.end()) {
      assert(it->second.outstanding > 0);
      --it->second.outstanding;
      finalize_if_done(seq);
    }
  });
}

void HyperSubSystem::forward_event(net::HostIndex host, net::HostIndex to,
                                   const EventCtxPtr& ctx,
                                   std::shared_ptr<std::vector<SubId>> sublist,
                                   int hops, net::HostIndex failed,
                                   trace::SpanId parent) {
  // The forward span covers the message's time on the wire: opened here at
  // the sender, closed when the receiver takes delivery (or at ack expiry
  // when the hop is dead). It travels with the chunk through batching.
  trace::SpanId fwd = trace::kNoSpan;
  if (auto* tr = trace::maybe(tracer_);
      tr && ctx->trace != trace::kNoTrace) {
    fwd = tr->begin(ctx->trace, parent, trace::SpanKind::kForward, host,
                    simulator().now(), std::uint64_t(to), sublist->size());
  }
  if (!cfg_.batch_forwarding) {
    auto chunks = std::make_shared<std::vector<FrameChunk>>();
    chunks->push_back(FrameChunk{ctx, std::move(sublist), hops, failed, fwd});
    send_frame(host, to, std::move(chunks));
    return;
  }
  // Batched: queue the chunk and flush once this timestep. The simulator
  // breaks equal-time ties FIFO, so the flush scheduled at +0 runs after
  // every already-queued message of this timestep has had its chance to
  // add chunks for the same hop.
  auto& queue = batches_[host][to];
  if (queue.empty()) {
    // Inherits the current (sender's) shard, like every queued chunk.
    simulator().schedule(0.0, [this, host, to] { flush_batch(host, to); });
  }
  queue.push_back(FrameChunk{ctx, std::move(sublist), hops, failed, fwd});
}

void HyperSubSystem::flush_batch(net::HostIndex host, net::HostIndex to) {
  auto& mine = batches_[host];
  const auto it = mine.find(to);
  if (it == mine.end() || it->second.empty()) return;
  auto chunks =
      std::make_shared<std::vector<FrameChunk>>(std::move(it->second));
  mine.erase(it);
  if (chunks->size() > 1) {
    simulator().defer_ordered([this, n = chunks->size()] {
      batch_.header_bytes_saved += overlay::kHeaderBytes * (n - 1);
    });
  }
  send_frame(host, to, std::move(chunks));
}

void HyperSubSystem::send_frame(
    net::HostIndex host, net::HostIndex to,
    std::shared_ptr<std::vector<FrameChunk>> chunks) {
  // One header per frame; each chunk pays its own event + subid payload.
  // The header is attributed to the first chunk with a live tracker. The
  // frame size is needed synchronously (it goes on the wire); the tracker
  // and batch-counter attribution is deferred, with the per-chunk sizes
  // snapshotted now — the receiver consumes the sublists later.
  std::uint64_t bytes = overlay::kHeaderBytes;
  std::uint64_t grouping_saved = 0;
  std::uint64_t subid_wire = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sizes;
  sizes.reserve(chunks->size());
  for (const FrameChunk& c : *chunks) {
    const std::uint64_t subid_bytes =
        subid_list_wire_bytes(*c.subids, cfg_.cover_aggregation);
    const std::uint64_t chunk_bytes = kEventBytes + subid_bytes;
    subid_wire += subid_bytes;
    if (cfg_.cover_aggregation) {
      grouping_saved +=
          kSubIdBytes * c.subids->size() -
          subid_list_wire_bytes(*c.subids, true);
    }
    bytes += chunk_bytes;
    sizes.emplace_back(c.ctx->seq, chunk_bytes);
  }
  if (subid_wire > 0 || grouping_saved > 0) {
    simulator().defer_ordered([this, subid_wire, grouping_saved] {
      subid_wire_bytes_ += subid_wire;
      cover_subid_bytes_saved_ += grouping_saved;
    });
  }
  simulator().defer_ordered([this, sizes = std::move(sizes)] {
    bool header_charged = false;
    for (const auto& [seq, chunk_bytes] : sizes) {
      if (const auto it = trackers_.find(seq); it != trackers_.end()) {
        it->second.bytes += chunk_bytes;
        if (!header_charged) {
          it->second.bytes += overlay::kHeaderBytes;
          it->second.header_bytes += overlay::kHeaderBytes;
          header_charged = true;
        }
      }
    }
    ++batch_.frames;
    batch_.chunks += sizes.size();
  });

  const Id sender = dht_.id_of(host);
  if (!cfg_.reliable_delivery) {
    network().send(host, to, bytes,
                   [this, to, sender, chunks = std::move(chunks)] {
                     // §6 piggyback: event traffic doubles as liveness
                     // evidence for the DHT layer (no-op unless enabled).
                     dht_.note_app_contact(to, sender);
                     if (auto* tr = trace::maybe(tracer_)) {
                       const double now = simulator().now();
                       for (const FrameChunk& c : *chunks) {
                         tr->end(c.fwd_span, now);
                       }
                     }
                     for (FrameChunk& c : *chunks) {
                       process_event_message(to, c.ctx,
                                             std::move(*c.subids),
                                             c.hops + 1, c.fwd_span);
                     }
                   });
    return;
  }
  // The channel's retry/expire spans attach under the first traced chunk's
  // forward span (one ack per frame; attributing its retransmissions to
  // one chunk of the frame keeps the export honest enough).
  trace::TraceCtx tctx;
  if (trace::maybe(tracer_)) {
    for (const FrameChunk& c : *chunks) {
      if (c.ctx->trace != trace::kNoTrace && c.fwd_span != trace::kNoSpan) {
        tctx = trace::TraceCtx{c.ctx->trace, c.fwd_span};
        break;
      }
    }
  }
  channel_.send(
      host, to, bytes,
      [this, host, to, sender, chunks] {
        // Piggybacked failure gossip: the sender detoured around a dead
        // hop to reach us; drop it from our routing state (and our route
        // cache) and treat the sender as a predecessor candidate for the
        // inherited range.
        for (const FrameChunk& c : *chunks) {
          if (c.failed == overlay::Peer::kInvalidHost) continue;
          dht_.note_peer_failure(to, c.failed, host);
          if (cfg_.route_cache) {
            // Caches are read on the (exclusive) publish path; mutations
            // from shard contexts go through the deferred stream.
            simulator().defer_ordered([this, to, failed = c.failed] {
              caches_[to]->invalidate_host(failed);
            });
          }
        }
        dht_.note_app_contact(to, sender);
        if (auto* tr = trace::maybe(tracer_)) {
          const double now = simulator().now();
          for (const FrameChunk& c : *chunks) tr->end(c.fwd_span, now);
        }
        for (FrameChunk& c : *chunks) {
          process_event_message(to, c.ctx, std::move(*c.subids), c.hops + 1,
                                c.fwd_span);
        }
      },
      [this, host, to, chunks] {
        // All retransmissions expired: the next hop is dead. Drop it from
        // the sender's routing state and route cache, reroute every
        // chunk's sublist through recomputed hops, then retire each
        // chunk's outstanding slot. Forward spans close here — the hop
        // they describe is over, even though it failed; the reroute's new
        // forward spans chain under them.
        dht_.note_peer_failure(host, to);
        if (cfg_.route_cache) {
          simulator().defer_ordered(
              [this, host, to] { caches_[host]->invalidate_host(to); });
        }
        if (auto* tr = trace::maybe(tracer_)) {
          const double now = simulator().now();
          for (const FrameChunk& c : *chunks) tr->end(c.fwd_span, now);
        }
        for (const FrameChunk& c : *chunks) {
          reroute_event(host, c.ctx, *c.subids, c.hops, to, c.fwd_span);
          // reroute_event defers its outstanding increments first, so this
          // decrement folds in after them — the count stays positive.
          simulator().defer_ordered([this, seq = c.ctx->seq] {
            if (const auto it = trackers_.find(seq); it != trackers_.end()) {
              assert(it->second.outstanding > 0);
              --it->second.outstanding;
              finalize_if_done(seq);
            }
          });
        }
      },
      tctx);
}

void HyperSubSystem::reroute_event(net::HostIndex host, const EventCtxPtr& ctx,
                                   const std::vector<SubId>& subids, int hops,
                                   net::HostIndex failed,
                                   trace::SpanId parent) {
  // Cold failover path: a local grouping buffer (the scratch vectors may
  // hold a caller's live state — ack expiries interleave arbitrarily with
  // event processing).
  auto* tr = trace::maybe(tracer_);
  const bool traced = tr != nullptr && ctx->trace != trace::kNoTrace;
  std::vector<std::pair<net::HostIndex, SubId>> routed;
  routed.reserve(subids.size());
  for (const SubId& subid : subids) {
    const overlay::Peer next = dht_.next_hop(host, subid.target);
    if (!next.valid() || next.host == failed) {
      // No viable alternative hop: an unmasked drop.
      if (traced) {
        tr->point(ctx->trace, parent, trace::SpanKind::kDrop, host,
                  simulator().now(), 1, std::uint64_t(failed));
      }
      note_event_drop(ctx->seq, 1);
      continue;
    }
    routed.emplace_back(next.host, subid);
  }
  std::stable_sort(routed.begin(), routed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < routed.size();) {
    const net::HostIndex to = routed[i].first;
    std::size_t j = i;
    while (j < routed.size() && routed[j].first == to) ++j;
    auto sublist = std::make_shared<std::vector<SubId>>();
    sublist->reserve(j - i);
    for (std::size_t k = i; k < j; ++k) sublist->push_back(routed[k].second);
    i = j;
    simulator().defer_ordered([this, seq = ctx->seq] {
      ++rel_.reroutes;
      if (const auto it = trackers_.find(seq); it != trackers_.end()) {
        ++it->second.outstanding;
      }
    });
    if (traced) {
      tr->point(ctx->trace, parent, trace::SpanKind::kReroute, host,
                simulator().now(), std::uint64_t(to),
                std::uint64_t(failed));
    }
    // Same hop count: the detour replaces the failed hop rather than
    // extending the logical path (the TTL still bounds repeated detours
    // through the receiver's own forwarding).
    forward_event(host, to, ctx, std::move(sublist), hops, failed, parent);
  }
}

void HyperSubSystem::note_rendezvous_owner(net::HostIndex host,
                                           const EventCtxPtr& ctx, Id key,
                                           trace::SpanId parent) {
  if (ctx->origin == overlay::Peer::kInvalidHost) return;
  for (const RendezvousProbe& rv : ctx->rendezvous) {
    if (rv.key != key) continue;
    if (host == ctx->origin) {
      // The publisher itself owns the rendezvous: a cache-directed probe
      // that came back here means the entry detoured through a non-owner —
      // drop it so the next publish resolves locally.
      if (rv.sent_to != overlay::Peer::kInvalidHost && rv.sent_to != host) {
        if (auto* tr = trace::maybe(tracer_);
            tr && ctx->trace != trace::kNoTrace) {
          tr->point(ctx->trace, parent, trace::SpanKind::kCacheCorrect,
                    host, simulator().now(), std::uint64_t(ctx->origin));
        }
        simulator().defer_ordered(
            [this, host, key] { caches_[host]->forget(key); });
      }
    } else if (rv.sent_to != host) {
      // Miss (probe rode normal routing) or stale hit (probe was handed to
      // a former owner, which forwarded it here): tell the publisher who
      // really owns the key. A small untracked control message — it rides
      // the network (and its traffic counters) but is not part of the
      // event's delivery tree.
      if (auto* tr = trace::maybe(tracer_);
          tr && ctx->trace != trace::kNoTrace) {
        tr->point(ctx->trace, parent, trace::SpanKind::kCacheCorrect, host,
                  simulator().now(), std::uint64_t(ctx->origin));
      }
      network().send(
          host, ctx->origin,
          overlay::kHeaderBytes + overlay::kKeyBytes + overlay::kNodeRefBytes,
          [this, origin = ctx->origin, key, owner = host] {
            // Runs on the origin's shard; the cache write joins the
            // deferred stream like every other cache mutation.
            simulator().defer_ordered([this, origin, key, owner] {
              caches_[origin]->learn(key, owner);
            });
          });
    }
    return;  // duplicate keys across subschemes alias the same owner
  }
}

void HyperSubSystem::invalidate_cached_route(Id key) {
  if (!cfg_.route_cache) return;
  // Callers include shard-context paths (migration replies); the sweep over
  // every host's cache is global state, so it rides the deferred stream.
  simulator().defer_ordered([this, key] {
    for (auto& c : caches_) c->forget(key);
  });
}

void HyperSubSystem::note_event_drop(std::uint64_t seq, std::size_t subids) {
  if (subids == 0) return;
  // Global counters + tracker flag; deferred so shard-context drops fold in
  // at the barrier in the sequential order.
  simulator().defer_ordered([this, seq, subids] {
    rel_.unmasked_drops += subids;
    if (const auto it = trackers_.find(seq); it != trackers_.end()) {
      it->second.truncated = true;
    }
  });
}

void HyperSubSystem::finalize_if_done(std::uint64_t seq) {
  const auto it = trackers_.find(seq);
  if (it == trackers_.end() || it->second.outstanding != 0) return;
  const Tracker& t = it->second;
  if (auto* tr = trace::maybe(tracer_)) {
    tr->end(t.root, simulator().now());
  }
  metrics::EventRecord r;
  r.seq = seq;
  r.matched = t.matched;
  r.pct_matched = total_subs_ > 0
                      ? 100.0 * double(t.matched) / double(total_subs_)
                      : 0.0;
  r.max_hops = t.max_hops;
  r.max_latency_ms = t.max_latency;
  r.bandwidth_bytes = t.bytes;
  r.header_bytes = t.header_bytes;
  r.truncated = t.truncated;
  if (t.truncated) ++rel_.truncated_events;
  event_metrics_.add(r);
  trackers_.erase(it);
}

void HyperSubSystem::finalize_events() {
  // Messages dropped at dead nodes leave outstanding counts above zero;
  // flush whatever remains (their partial costs are still meaningful) and
  // flag them truncated — part of the tree never completed.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(trackers_.size());
  for (const auto& [seq, t] : trackers_) seqs.push_back(seq);
  for (const std::uint64_t seq : seqs) {
    Tracker& t = trackers_[seq];
    if (t.outstanding > 0) t.truncated = true;
    t.outstanding = 0;
    finalize_if_done(seq);
  }
}

metrics::ReliabilityCounters HyperSubSystem::reliability_counters() const {
  const net::ReliableChannel::Stats& s = channel_.stats();
  metrics::ReliabilityCounters c = rel_;
  c.messages_sent += s.sent;
  c.acks += s.acked;
  c.retries += s.retries;
  c.expirations += s.expired;
  c.duplicates_suppressed += s.duplicates_suppressed;
  return c;
}

void HyperSubSystem::reset_metrics() {
  event_metrics_ = metrics::EventMetrics{};
  event_metrics_.set_streaming(cfg_.stream_event_metrics);
  sink_->reset();
  default_sink_.reset();
  for (auto& m : delivered_subs_) m.clear();
  rel_ = metrics::ReliabilityCounters{};
  channel_.reset_stats();
  batch_ = metrics::BatchCounters{};
  cover_subid_bytes_saved_ = 0;
  subid_wire_bytes_ = 0;
  // Cached routes stay warm across a reset; only their counters restart.
  for (auto& c : caches_) c->reset_counters();
}

metrics::CoverCounters HyperSubSystem::cover_counters() const {
  metrics::CoverCounters sum;
  sum.subid_bytes_saved = cover_subid_bytes_saved_;
  sum.subid_wire_bytes = subid_wire_bytes_;
  // Primary zones only: replica zones mirror the same subscriptions and
  // would double-count the gauges.
  for (const auto& nd : nodes_) {
    for (const auto& [addr, z] : nd->zones()) {
      sum.representatives += z.cover_representatives();
      sum.quenched += z.cover_quenched();
      sum.promotions += z.cover_promotions();
    }
  }
  return sum;
}

metrics::RouteCacheCounters HyperSubSystem::route_cache_counters() const {
  metrics::RouteCacheCounters sum;
  for (const auto& c : caches_) sum += c->counters();
  return sum;
}

bool HyperSubSystem::check_zone_invariants() const {
  for (const auto& nd : nodes_) {
    for (const auto& [addr, zone] : nd->zones()) {
      const SchemeRuntime& rt = *schemes_[addr.scheme];
      const Subscheme& ss = rt.subscheme(addr.subscheme);
      const lph::ZoneSystem& zsys = ss.zones();
      const HyperRect extent = zsys.extent(addr.zone);
      // Stored subscriptions project inside the zone's extent (LPH put
      // them at their covering zone).
      for (const auto& s : zone.subscriptions()) {
        if (!extent.covers(s.projected)) return false;
      }
      // Summary is the exact hull of contents.
      if (!(zone.exact_summary() == zone.summary())) return false;
      // Migrated buckets with exact rects: the hull of the recorded
      // per-sub rects must equal the bucket summary (an over-covering
      // summary forwards events into the hull's dead corners; an
      // under-covering one loses deliveries), and the rects must be
      // exactly the deduplicated projected rects of the subscriptions the
      // live acceptor actually holds under the pointer's token.
      for (const auto& b : zone.buckets()) {
        if (b.sub_rects.empty()) continue;  // bare bucket (hull-only mode)
        HyperRect hull;
        for (const HyperRect& r : b.sub_rects) hull = hull.hull(r);
        if (!(hull == b.summary)) return false;
        if (b.pointer.kind != SubIdKind::kMigrated) continue;
        const HyperSubNode* acceptor = nullptr;
        for (const auto& n2 : nodes_) {
          if (n2->node_id() == b.pointer.target) {
            acceptor = n2.get();
            break;
          }
        }
        if (acceptor == nullptr || !dht_.network().alive(acceptor->host())) {
          continue;  // acceptor gone — the pointer is dead weight, not wrong
        }
        const MigratedRepo* repo = acceptor->find_migrated(b.pointer.iid);
        if (repo == nullptr) return false;
        std::vector<HyperRect> expect;
        for (std::uint32_t r = 0; r < std::uint32_t(repo->subs.size()); ++r) {
          const HyperRect pr = repo->subs.projected_rect(r);
          bool dup = false;
          for (const HyperRect& e : expect) {
            if (e == pr) {
              dup = true;
              break;
            }
          }
          if (!dup) expect.push_back(pr);
        }
        if (expect.size() != b.sub_rects.size()) return false;
        for (const HyperRect& e : expect) {
          bool found = false;
          for (const HyperRect& r : b.sub_rects) {
            if (r == e) {
              found = true;
              break;
            }
          }
          if (!found) return false;
        }
      }
      // Cached child pieces are exactly summary ∩ child extent.
      if (!zsys.is_leaf(addr.zone)) {
        for (int c = 0; c < zsys.base(); ++c) {
          HyperRect expect;
          if (!zone.summary().empty()) {
            const HyperRect ce = zsys.extent(zsys.child(addr.zone, c));
            if (zone.summary().overlaps(ce)) {
              expect = zone.summary().intersect(ce);
            }
          }
          if (!(zone.child_piece(c) == expect) &&
              !(zone.child_piece(c).empty() && expect.empty())) {
            return false;
          }
        }
      }
    }
    // Chain pass: every compressed chain must be a well-formed maximal run
    // of piece-only zones — correct keys, a non-empty piece inside the
    // head's extent, exactly one non-empty derived child piece at each
    // interior member (the next member), and no materialized primary state
    // shadowing any member.
    bool chains_ok = true;
    nd->chains().for_each([&](std::uint32_t, const CompressedChain& c) {
      if (!chains_ok) return;
      const SchemeRuntime& rt = *schemes_[c.scheme];
      const Subscheme& ss = rt.subscheme(c.subscheme);
      const lph::ZoneSystem& zsys = ss.zones();
      const int bb = zsys.base_bits();
      if (c.span < 1 || c.head_level() < 1 ||
          c.level_keys.size() != c.span) {
        chains_ok = false;
        return;
      }
      const lph::Zone head = c.member(c.head_level(), bb);
      if (c.piece.empty() || !zsys.extent(head).covers(c.piece)) {
        chains_ok = false;
        return;
      }
      if (c.parent_key !=
          lph::zone_key(zsys, zsys.parent(head), ss.rotation())) {
        chains_ok = false;
        return;
      }
      for (int L = c.head_level(); L <= c.tail.level; ++L) {
        const lph::Zone z = c.member(L, bb);
        if (c.key_at(L) != lph::zone_key(zsys, z, ss.rotation())) {
          chains_ok = false;
          return;
        }
        if (nd->zones().count(ZoneAddr{c.scheme, c.subscheme, z}) != 0) {
          chains_ok = false;
          return;
        }
        if (L < c.tail.level) {
          const lph::Zone next = c.member(L + 1, bb);
          for (int digit = 0; digit < zsys.base(); ++digit) {
            const lph::Zone ch = zsys.child(z, digit);
            const bool nonempty = c.piece.overlaps(zsys.extent(ch));
            if (nonempty != (ch.code == next.code)) {
              chains_ok = false;
              return;
            }
          }
        }
      }
    });
    if (!chains_ok) return false;
  }
  // Cross-node pass: the piece a parent zone caches for each child must
  // equal the piece actually installed at the child zone's live owner —
  // otherwise events filtered by the stale child piece die (or detour)
  // between the two nodes. Only authoritative state is compared: the
  // parent's host must still own the parent key, and exactly one live node
  // may claim the child key (ownership is ambiguous mid-repair).
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    if (!dht_.network().alive(h)) continue;
    for (const auto& [addr, zone] : nodes_[h]->zones()) {
      const SchemeRuntime& rt = *schemes_[addr.scheme];
      const Subscheme& ss = rt.subscheme(addr.subscheme);
      const lph::ZoneSystem& zsys = ss.zones();
      if (zsys.is_leaf(addr.zone)) continue;
      if (!dht_.owns(h, ss.zone_key(addr.zone))) continue;
      const Id my_key = ss.zone_key(addr.zone);
      for (int c = 0; c < zsys.base(); ++c) {
        const lph::Zone child = zsys.child(addr.zone, c);
        const Id child_key = ss.zone_key(child);
        net::HostIndex owner = overlay::Peer::kInvalidHost;
        bool ambiguous = false;
        for (net::HostIndex o = 0; o < nodes_.size(); ++o) {
          if (!dht_.network().alive(o) || !dht_.owns(o, child_key)) continue;
          if (owner != overlay::Peer::kInvalidHost) {
            ambiguous = true;
            break;
          }
          owner = o;
        }
        if (owner == overlay::Peer::kInvalidHost || ambiguous) continue;
        HyperRect installed;
        const ZoneAddr child_addr{addr.scheme, addr.subscheme, child};
        const auto& child_zones = nodes_[owner]->zones();
        if (const auto it = child_zones.find(child_addr);
            it != child_zones.end()) {
          const auto& pp = it->second.parent_piece();
          if (pp && pp->second == my_key) installed = pp->first;
        } else if (const std::uint32_t cid =
                       nodes_[owner]->chains().find_containing(
                           addr.scheme, addr.subscheme, child, child_key,
                           zsys.base_bits());
                   cid != ZoneChainSet::kNone) {
          // A compressed child can only hang under this parent as a chain
          // HEAD (an interior member's tree parent is the previous member,
          // which is never materialized).
          const CompressedChain& cc = nodes_[owner]->chains().get(cid);
          if (cc.head_level() == child.level && cc.parent_key == my_key) {
            installed = cc.piece;
          }
        }
        const HyperRect& cached = zone.child_piece(c);
        if (!(installed == cached) &&
            !(installed.empty() && cached.empty())) {
          return false;
        }
      }
    }
    // Chain-frontier pass: the derived piece a chain's tail implies for
    // each child plays the cached-piece role above; the child's live owner
    // must hold exactly that state (materialized, or as the head of a
    // deeper chain).
    bool frontier_ok = true;
    nodes_[h]->chains().for_each([&](std::uint32_t,
                                     const CompressedChain& c) {
      if (!frontier_ok) return;
      const SchemeRuntime& rt = *schemes_[c.scheme];
      const Subscheme& ss = rt.subscheme(c.subscheme);
      const lph::ZoneSystem& zsys = ss.zones();
      if (zsys.is_leaf(c.tail)) return;
      const Id tail_key = c.level_keys.back();
      if (!dht_.owns(h, tail_key)) return;
      for (int digit = 0; digit < zsys.base(); ++digit) {
        const lph::Zone child = zsys.child(c.tail, digit);
        const Id child_key = lph::zone_key(zsys, child, ss.rotation());
        net::HostIndex owner = overlay::Peer::kInvalidHost;
        bool ambiguous = false;
        for (net::HostIndex o = 0; o < nodes_.size(); ++o) {
          if (!dht_.network().alive(o) || !dht_.owns(o, child_key)) continue;
          if (owner != overlay::Peer::kInvalidHost) {
            ambiguous = true;
            break;
          }
          owner = o;
        }
        if (owner == overlay::Peer::kInvalidHost || ambiguous) continue;
        const HyperRect ext = zsys.extent(child);
        HyperRect derived;
        if (c.piece.overlaps(ext)) derived = c.piece.intersect(ext);
        HyperRect installed;
        const ZoneAddr child_addr{c.scheme, c.subscheme, child};
        const auto& child_zones = nodes_[owner]->zones();
        if (const auto it = child_zones.find(child_addr);
            it != child_zones.end()) {
          const auto& pp = it->second.parent_piece();
          if (pp && pp->second == tail_key) installed = pp->first;
        } else if (const std::uint32_t cid =
                       nodes_[owner]->chains().find_containing(
                           c.scheme, c.subscheme, child, child_key,
                           zsys.base_bits());
                   cid != ZoneChainSet::kNone) {
          const CompressedChain& cc = nodes_[owner]->chains().get(cid);
          if (cc.head_level() == child.level && cc.parent_key == tail_key) {
            installed = cc.piece;
          }
        }
        if (!(installed == derived) &&
            !(installed.empty() && derived.empty())) {
          frontier_ok = false;
          return;
        }
      }
    });
    if (!frontier_ok) return false;
  }
  // Lifecycle pass: outside an active handover, no live node may be left
  // holding populated primary zone state for a key another live node
  // unambiguously owns — a join-driven ownership flip that skipped the
  // transfer/retire protocol strands exactly that (and silently splits
  // deliveries between the copies). Hosts participating in a transfer (as
  // source, target, or warming joiner) are mid-handover by construction.
  std::vector<bool> mid_handover(nodes_.size(), false);
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    const TransferOut& t = transfers_out_[h];
    if (t.active) {
      mid_handover[h] = true;
      if (t.target < nodes_.size()) mid_handover[t.target] = true;
    }
    const WarmState& ws = warm_[h];
    if (ws.warming) {
      mid_handover[h] = true;
      if (ws.source < nodes_.size()) mid_handover[ws.source] = true;
    }
  }
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    if (!dht_.network().alive(h) || mid_handover[h]) continue;
    for (const auto& [addr, zone] : nodes_[h]->zones()) {
      if (zone.subscription_count() == 0 && zone.buckets().empty()) continue;
      const Id key = zone_key_of(addr);
      if (dht_.owns(h, key)) continue;
      net::HostIndex owner = overlay::Peer::kInvalidHost;
      bool ambiguous = false;
      for (net::HostIndex o = 0; o < nodes_.size(); ++o) {
        if (o == h || !dht_.network().alive(o) || !dht_.owns(o, key)) continue;
        if (owner != overlay::Peer::kInvalidHost) {
          ambiguous = true;
          break;
        }
        owner = o;
      }
      if (owner == overlay::Peer::kInvalidHost || ambiguous) continue;
      if (mid_handover[owner]) continue;
      return false;
    }
  }
  return true;
}

std::uint64_t HyperSubSystem::zone_content_digest() const {
  // Commutative fold (sum of full-avalanche row hashes), so the digest is
  // independent of map iteration order, host assignment within a node, and
  // whether a structural zone is materialized or an implicit chain member.
  std::uint64_t acc = 0;
  const auto fold = [&acc](const ZoneAddr& addr, std::uint64_t fp) {
    std::uint64_t h = splitmix64(addr.zone.code);
    h = splitmix64(h ^ ((std::uint64_t(addr.scheme) << 32) |
                        std::uint64_t(addr.subscheme)));
    h = splitmix64(h ^ std::uint64_t(std::uint32_t(addr.zone.level)));
    h = splitmix64(h ^ fp);
    acc += h;
  };
  const auto husk = [](const ZoneState& zs) {
    return zs.subscription_count() == 0 && zs.buckets().empty() &&
           (!zs.has_parent_piece() || zs.parent_piece()->first.empty());
  };
  for (net::HostIndex host = 0; host < net::HostIndex(nodes_.size()); ++host) {
    // Departed nodes keep dead copies of their zones and chains until the
    // process goes (commit_leave_handover serves events through the
    // splice); only the live placement is system content.
    if (!dht_.network().alive(host)) continue;
    const auto& nd = nodes_[host];
    for (const auto& [addr, zone] : nd->zones()) {
      if (husk(zone)) continue;  // stores nothing a chain would represent
      fold(addr, zone.fingerprint());
    }
    nd->chains().for_each([&](std::uint32_t, const CompressedChain& c) {
      const Subscheme& ss = schemes_[c.scheme]->subscheme(c.subscheme);
      const lph::ZoneSystem& zsys = ss.zones();
      const int bb = zsys.base_bits();
      for (int L = c.head_level(); L <= c.tail.level; ++L) {
        const lph::Zone z = c.member(L, bb);
        const HyperRect rect = chain_rect_at(c, zsys, z);
        if (rect.empty()) continue;
        const ZoneAddr addr{c.scheme, c.subscheme, z};
        // Synthesize the member as the ZoneState an uncompressed run would
        // hold: derived parent piece, derived child-piece cache.
        ZoneState zs(addr, cfg_.match_index_threshold, cfg_.cover_aggregation);
        zs.set_parent_piece(rect, c.parent_key_at(L));
        if (!zsys.is_leaf(z)) {
          for (int digit = 0; digit < zsys.base(); ++digit) {
            const lph::Zone ch = zsys.child(z, digit);
            const HyperRect ext = zsys.extent(ch);
            if (rect.overlaps(ext)) {
              zs.set_child_piece(digit, rect.intersect(ext));
            }
          }
        }
        fold(addr, zs.fingerprint());
      }
    });
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Node lifecycle: protocol join/leave with live state transfer.
//
// Join: the joiner enters the ring via the overlay's join protocol, then
// "warms" — it buffers everything addressed to it — while pulling a snapshot
// of the moved zones from the current owner. The owner keeps serving and
// write-behind-queues every in-range mutation; a periodic tick ships the
// queue and, once stabilization flips ownership to the joiner, sends a
// commit that flushes the warm buffers and retires the owner's copies.
//
// Leave: the same machinery inverted — the leaver pushes its whole zone set
// to its successor, drains the queue, bridges late arrivals, then splices
// out of the ring and dies.
//
// Every handler below runs on the shard of the host whose state it touches
// (transfer frames land at their destination); global counters ride
// defer_ordered. That keeps the protocol deterministic under --threads=N.

namespace {

/// Deterministic zone ordering for transfer images: by rotated key, then
/// address (map iteration order is not stable across runs).
bool zone_order(const std::pair<Id, ZoneAddr>& x,
                const std::pair<Id, ZoneAddr>& y) {
  if (x.first != y.first) return x.first < y.first;
  const ZoneAddr& a = x.second;
  const ZoneAddr& b = y.second;
  if (a.scheme != b.scheme) return a.scheme < b.scheme;
  if (a.subscheme != b.subscheme) return a.subscheme < b.subscheme;
  if (a.zone.level != b.zone.level) return a.zone.level < b.zone.level;
  return a.zone.code < b.zone.code;
}

}  // namespace

bool HyperSubSystem::transfer_moves(const TransferOut& t, Id key) {
  if (t.leaving) return true;
  // Successor geometry: after the flip the old owner keeps (joiner, self];
  // every other key it held belongs to the joiner.
  const Id a = t.target_id;
  const Id b = t.my_id;
  const bool keeps = a < b ? (key > a && key <= b) : (key > a || key <= b);
  return !keeps;
}

Id HyperSubSystem::zone_key_of(const ZoneAddr& addr) const {
  return schemes_[addr.scheme]->subscheme(addr.subscheme).zone_key(addr.zone);
}

void HyperSubSystem::queue_transfer_op(TransferOut& t, std::uint64_t bytes,
                                       std::function<void()> op) {
  t.queue.push_back(std::move(op));
  t.queue_bytes += bytes;
}

std::vector<std::uint8_t> HyperSubSystem::serialize_moved_zones(
    net::HostIndex owner, const TransferOut& t,
    std::uint32_t* moved_entries) const {
  const HyperSubNode& nd = *nodes_[owner];
  std::vector<std::pair<Id, ZoneAddr>> moved;
  for (const auto& [addr, zone] : nd.zones()) {
    const Id key = zone_key_of(addr);
    if (transfer_moves(t, key)) moved.emplace_back(key, addr);
  }
  std::sort(moved.begin(), moved.end(), zone_order);
  common::ByteWriter w;
  w.u32(std::uint32_t(moved.size()));
  for (const auto& [key, addr] : moved) {
    w.u64(key);
    save_zone_addr(w, addr);
    nd.zones().at(addr).save(w);
  }
  // Compressed chains ship as sub-chain frames: each run of consecutive
  // members whose keys move carries the run head's derived piece and parent
  // key, so the frame is a self-contained chain for the target. Non-moved
  // runs stay behind (the ack-side retire drops the moved ones).
  std::vector<CompressedChain> frames;
  nd.chains().for_each([&](std::uint32_t, const CompressedChain& c) {
    const Subscheme& ss = schemes_[c.scheme]->subscheme(c.subscheme);
    const lph::ZoneSystem& zsys = ss.zones();
    const int bb = zsys.base_bits();
    int L = c.head_level();
    while (L <= c.tail.level) {
      const bool moves = transfer_moves(t, c.key_at(L));
      int R = L;
      while (R + 1 <= c.tail.level &&
             transfer_moves(t, c.key_at(R + 1)) == moves) {
        ++R;
      }
      if (moves) {
        CompressedChain f;
        f.scheme = c.scheme;
        f.subscheme = c.subscheme;
        f.tail = c.member(R, bb);
        f.span = std::uint32_t(R - L + 1);
        const lph::Zone rh = c.member(L, bb);
        const HyperRect ext = zsys.extent(rh);
        if (c.piece.overlaps(ext)) f.piece = c.piece.intersect(ext);
        f.parent_key = c.parent_key_at(L);
        f.level_keys.assign(
            c.level_keys.begin() + std::size_t(L - c.head_level()),
            c.level_keys.begin() + std::size_t(R - c.head_level() + 1));
        frames.push_back(std::move(f));
      }
      L = R + 1;
    }
  });
  std::sort(frames.begin(), frames.end(),
            [](const CompressedChain& a, const CompressedChain& b) {
              if (a.scheme != b.scheme) return a.scheme < b.scheme;
              if (a.subscheme != b.subscheme) return a.subscheme < b.subscheme;
              if (a.tail.level != b.tail.level)
                return a.tail.level < b.tail.level;
              return a.tail.code < b.tail.code;
            });
  w.u32(std::uint32_t(frames.size()));
  for (const CompressedChain& f : frames) save_chain(w, f);
  if (moved_entries != nullptr) {
    std::uint32_t n = std::uint32_t(moved.size());
    for (const CompressedChain& f : frames) n += f.span;
    *moved_entries = n;
  }
  return w.take();
}

void HyperSubSystem::install_transferred_zones(net::HostIndex host,
                                               common::ByteReader& r) {
  HyperSubNode& nd = *nodes_[host];
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const Id key = r.u64();
    const ZoneAddr addr = load_zone_addr(r);
    // The shipped image is authoritative: it supersedes any primary
    // leftover from a past life and the replica copy of the same zone.
    nd.erase_zone(addr, key);
    nd.erase_replica_zone(addr, key);
    // ... including a compressed leftover covering the same address.
    if (const std::uint32_t cid = nd.chains().find_containing(
            addr.scheme, addr.subscheme, addr.zone, key,
            schemes_[addr.scheme]
                ->subscheme(addr.subscheme)
                .zones()
                .base_bits());
        cid != ZoneChainSet::kNone) {
      drop_chain_member(nd, cid, addr.zone);
    }
    nd.zone_state(addr, key).restore(r);
  }
  const std::uint32_t n_chains = r.u32();
  for (std::uint32_t i = 0; i < n_chains; ++i) {
    CompressedChain f = load_chain(r);
    const Subscheme& ss = schemes_[f.scheme]->subscheme(f.subscheme);
    const lph::ZoneSystem& zsys = ss.zones();
    const int bb = zsys.base_bits();
    // Clear stale state at every member address before the frame lands.
    for (int L = f.head_level(); L <= f.tail.level; ++L) {
      const lph::Zone z = f.member(L, bb);
      const ZoneAddr addr{f.scheme, f.subscheme, z};
      const Id key = f.key_at(L);
      nd.erase_zone(addr, key);
      nd.erase_replica_zone(addr, key);
      if (const std::uint32_t cid = nd.chains().find_containing(
              f.scheme, f.subscheme, z, key, bb);
          cid != ZoneChainSet::kNone) {
        drop_chain_member(nd, cid, z);
      }
    }
    const std::uint32_t id = nd.chains().insert(std::move(f));
    if (compress_enabled()) chain_try_merge(host, id);
  }
}

void HyperSubSystem::reseed_replicas(net::HostIndex owner, const ZoneAddr& addr,
                                     Id key) {
  if (cfg_.replicas == 0) return;
  const auto& zones = nodes_[owner]->zones();
  const auto it = zones.find(addr);
  if (it == zones.end()) return;
  // One full image, replacing (not merging into) each heir's copy — the
  // write-behind replays are replica-blind, so merge would drift.
  auto image = std::make_shared<std::vector<std::uint8_t>>();
  {
    common::ByteWriter w;
    it->second.save(w);
    *image = w.take();
  }
  const std::uint64_t bytes = overlay::kHeaderBytes + image->size();
  std::uint64_t sent = 0;
  for (const auto& peer : dht_.replica_set(owner, cfg_.replicas)) {
    if (peer.host == owner || !network().alive(peer.host)) continue;
    sent += bytes;
    network().send(owner, peer.host, bytes,
                   [this, host = peer.host, addr, key, image] {
                     HyperSubNode& nd = *nodes_[host];
                     nd.erase_replica_zone(addr, key);
                     common::ByteReader r(*image);
                     nd.replica_zone_state(addr, key).restore(r);
                   });
  }
  if (sent > 0) {
    simulator().defer_ordered(
        [this, sent] { join_stats_.transfer_bytes += sent; });
  }
}

void HyperSubSystem::join_node(net::HostIndex host, net::HostIndex bootstrap) {
  assert(!simulator().in_worker_context());
  assert(host < nodes_.size() && bootstrap < nodes_.size());
  assert(host != bootstrap);
  assert(network().alive(bootstrap));
  if (!network().alive(host)) network().revive(host);
  // A fresh life: surrogate-side state comes back through the transfer;
  // this node's own subscriptions stay installed at their surrogates.
  nodes_[host]->reset_surrogate_state();
  WarmState& ws = warm_[host];
  const std::uint64_t epoch = ws.epoch + 1;
  ws = WarmState{};
  ws.epoch = epoch;
  ws.warming = true;
  ws.started_ms = simulator().now();
  ++join_stats_.joins_started;
  if (!dht_.join(host, bootstrap,
                 [this, host] { begin_state_transfer(host); })) {
    // Substrate without a join protocol (e.g. Pastry stub): nothing will
    // arrive — serve cold immediately.
    ws.warming = false;
    return;
  }
  // Failsafe: if the snapshot source dies or stabilization stalls, stop
  // warming and serve with whatever arrived — degraded but live.
  simulator().schedule_on(host, cfg_.handover_timeout_ms,
                          [this, host, epoch] {
                            WarmState& w2 = warm_[host];
                            if (w2.warming && w2.epoch == epoch &&
                                network().alive(host)) {
                              simulator().defer_ordered(
                                  [this] { ++join_stats_.joins_aborted; });
                              finish_warming(host);
                            }
                          });
}

void HyperSubSystem::begin_state_transfer(net::HostIndex joiner) {
  WarmState& ws = warm_[joiner];
  if (!ws.warming || !network().alive(joiner)) return;
  const overlay::Peer heir = dht_.heir_of(joiner);
  if (!heir.valid() || heir.host == joiner || !network().alive(heir.host)) {
    // Nobody to pull from (first node in, or the successor is gone):
    // serve with whatever replication and maintenance bring.
    finish_warming(joiner);
    return;
  }
  ws.source = heir.host;
  // TRANSFER_REQ: header + two node refs.
  network().send(joiner, heir.host, overlay::kHeaderBytes + 16,
                 [this, owner = heir.host, joiner] {
                   handle_transfer_request(owner, joiner);
                 });
}

void HyperSubSystem::handle_transfer_request(net::HostIndex owner,
                                             net::HostIndex joiner) {
  if (!network().alive(owner) || !network().alive(joiner)) return;
  TransferOut& t = transfers_out_[owner];
  // One outbound session at a time; a second joiner pulling the same owner
  // is dropped and degrades via its warm timeout (rare under real churn).
  if (t.active) return;
  const std::uint64_t epoch = t.epoch + 1;
  t = TransferOut{};
  t.epoch = epoch;
  t.active = true;
  t.target = joiner;
  t.target_id = dht_.id_of(joiner);
  t.my_id = dht_.id_of(owner);
  t.started_ms = simulator().now();
  t.deadline_ms = simulator().now() + cfg_.handover_timeout_ms;
  // Snapshot synchronously: every mutation after this instant is captured
  // by the write-behind queue, so snapshot + replay = exact state.
  std::uint32_t zones = 0;
  auto frame = std::make_shared<std::vector<std::uint8_t>>(
      serialize_moved_zones(owner, t, &zones));
  const std::uint64_t bytes = overlay::kHeaderBytes + frame->size();
  simulator().defer_ordered([this, bytes, zones] {
    join_stats_.transfer_bytes += bytes;
    join_stats_.zones_transferred += zones;
  });
  network().send(owner, joiner, bytes, [this, joiner, frame] {
    WarmState& ws = warm_[joiner];
    if (ws.warming) {
      ws.staged.push_back(std::move(*frame));
    }
    // Not warming (timeout already fired): drop — the owner aborts at its
    // deadline and keeps the authoritative copy.
  });
  schedule_handover_tick(owner, epoch);
}

void HyperSubSystem::schedule_handover_tick(net::HostIndex owner,
                                            std::uint64_t epoch) {
  simulator().schedule_on(owner, cfg_.handover_tick_ms,
                          [this, owner, epoch] { handover_tick(owner, epoch); });
}

void HyperSubSystem::handover_tick(net::HostIndex owner, std::uint64_t epoch) {
  TransferOut& t = transfers_out_[owner];
  if (!t.active || t.epoch != epoch || t.committed) return;
  if (!network().alive(owner)) return;  // died mid-transfer: crash semantics
  if (!network().alive(t.target) || simulator().now() >= t.deadline_ms) {
    abort_transfer(owner);
    return;
  }
  if (!t.queue.empty()) {
    // Ship the write-behind batch. FIFO per host pair keeps every batch
    // ordered after the snapshot frame and before the commit.
    auto ops = std::make_shared<std::vector<std::function<void()>>>(
        std::move(t.queue));
    t.queue.clear();
    const std::uint64_t bytes = overlay::kHeaderBytes + t.queue_bytes;
    t.queue_bytes = 0;
    simulator().defer_ordered(
        [this, bytes] { join_stats_.transfer_bytes += bytes; });
    network().send(owner, t.target, bytes, [this, to = t.target, ops] {
      WarmState& ws = warm_[to];
      if (ws.warming) {
        for (auto& op : *ops) ws.transfer_ops.push_back(std::move(op));
      } else {
        // Leave target (or a degraded joiner): the snapshot is already
        // installed, apply in place.
        for (auto& op : *ops) op();
      }
    });
    schedule_handover_tick(owner, epoch);
    return;
  }
  if (!t.leaving && dht_.owns(owner, t.target_id)) {
    // Stabilization has not flipped ownership to the joiner yet.
    schedule_handover_tick(owner, epoch);
    return;
  }
  if (t.leaving) {
    commit_leave_handover(owner);
  } else {
    commit_join_handover(owner);
  }
}

void HyperSubSystem::commit_join_handover(net::HostIndex owner) {
  TransferOut& t = transfers_out_[owner];
  t.committed = true;  // stop ticking; await the joiner's ack
  const std::uint64_t epoch = t.epoch;
  // Lost-ack failsafe (the joiner died with the commit in flight): clear
  // the session at the deadline so the owner can serve future transfers.
  simulator().schedule_on(
      owner,
      std::max(0.0, t.deadline_ms - simulator().now()) + cfg_.handover_tick_ms,
      [this, owner, epoch] {
        TransferOut& t2 = transfers_out_[owner];
        if (t2.active && t2.epoch == epoch) abort_transfer(owner);
      });
  network().send(
      owner, t.target, overlay::kHeaderBytes,
      [this, owner, joiner = t.target, epoch, started = t.started_ms] {
        WarmState& ws = warm_[joiner];
        const bool ok = ws.warming;
        if (ok) {
          finish_warming(joiner);
          const double handoff = simulator().now() - started;
          simulator().defer_ordered([this, handoff] {
            ++join_stats_.joins_committed;
            join_stats_.total_handoff_ms += handoff;
            if (handoff > join_stats_.max_handoff_ms) {
              join_stats_.max_handoff_ms = handoff;
            }
          });
        }
        network().send(joiner, owner, overlay::kHeaderBytes,
                       [this, owner, epoch, ok] {
          TransferOut& t2 = transfers_out_[owner];
          if (!t2.active || t2.epoch != epoch) return;
          if (ok) {
            // The joiner serves the range now: retire the moved zones and
            // flush every cached route that pointed at them — the same
            // invalidation a death or LB migration emits.
            HyperSubNode& nd = *nodes_[owner];
            std::vector<std::pair<Id, ZoneAddr>> moved;
            for (const auto& [addr, zone] : nd.zones()) {
              const Id key = zone_key_of(addr);
              if (transfer_moves(t2, key)) moved.emplace_back(key, addr);
            }
            std::sort(moved.begin(), moved.end(), zone_order);
            for (const auto& [key, addr] : moved) {
              nd.erase_zone(addr, key);
              invalidate_cached_route(key);
            }
            // Chains whose member keys moved retire the same way: split
            // each affected record into movedness runs, keep the runs that
            // stay (self-contained: derived piece + parent key at the run
            // head), drop the rest, and flush the moved keys' routes.
            if (!nd.chains().empty()) {
              std::vector<std::uint32_t> affected;
              nd.chains().for_each(
                  [&](std::uint32_t id, const CompressedChain& c) {
                    for (const Id k : c.level_keys) {
                      if (transfer_moves(t2, k)) {
                        affected.push_back(id);
                        return;
                      }
                    }
                  });
              for (const std::uint32_t id : affected) {
                const CompressedChain c = nd.chains().get(id);
                nd.chains().erase(id);
                const Subscheme& ss =
                    schemes_[c.scheme]->subscheme(c.subscheme);
                const lph::ZoneSystem& zsys = ss.zones();
                const int bb = zsys.base_bits();
                const int head = c.head_level();
                int L = head;
                while (L <= c.tail.level) {
                  const bool mv = transfer_moves(t2, c.key_at(L));
                  int R = L;
                  while (R < c.tail.level &&
                         transfer_moves(t2, c.key_at(R + 1)) == mv) {
                    ++R;
                  }
                  if (mv) {
                    Id last = 0;
                    bool have = false;
                    for (int j = L; j <= R; ++j) {
                      const Id k = c.key_at(j);
                      if (!have || k != last) invalidate_cached_route(k);
                      last = k;
                      have = true;
                    }
                  } else {
                    CompressedChain keep;
                    keep.scheme = c.scheme;
                    keep.subscheme = c.subscheme;
                    keep.tail = c.member(R, bb);
                    keep.span = std::uint32_t(R - L + 1);
                    keep.piece = chain_rect_at(c, zsys, c.member(L, bb));
                    keep.parent_key = c.parent_key_at(L);
                    keep.level_keys.assign(
                        c.level_keys.begin() + (L - head),
                        c.level_keys.begin() + (R - head) + 1);
                    nd.chains().insert(std::move(keep));
                  }
                  L = R + 1;
                }
              }
            }
          } else {
            // The joiner gave up warming before the commit arrived: keep
            // the zones — this is an abort, not a commit.
            simulator().defer_ordered(
                [this] { ++join_stats_.joins_aborted; });
          }
          const std::uint64_t e = t2.epoch;
          t2 = TransferOut{};
          t2.epoch = e;
        });
      });
}

void HyperSubSystem::commit_leave_handover(net::HostIndex owner) {
  TransferOut& t = transfers_out_[owner];
  t.committed = true;  // bridge mode: late in-range ops forward to target
  const std::uint64_t epoch = t.epoch;
  // Everything moved; collect the set for the target-side fixups.
  auto moved = std::make_shared<std::vector<std::pair<Id, ZoneAddr>>>();
  for (const auto& [addr, zone] : nodes_[owner]->zones()) {
    moved->emplace_back(zone_key_of(addr), addr);
  }
  std::sort(moved->begin(), moved->end(), zone_order);
  simulator().schedule_on(
      owner,
      std::max(0.0, t.deadline_ms - simulator().now()) + cfg_.handover_tick_ms,
      [this, owner, epoch] {
        TransferOut& t2 = transfers_out_[owner];
        if (t2.active && t2.epoch == epoch && network().alive(owner)) {
          abort_transfer(owner);  // target died with the commit in flight
        }
      });
  network().send(
      owner, t.target, overlay::kHeaderBytes,
      [this, owner, target = t.target, moved, epoch] {
        // At the successor: the shipped zones are installed (the snapshot
        // and write-behind frames precede this one, FIFO). Fix the derived
        // state the zone-local replays skipped: re-propagate child pieces
        // and re-seed the replica chain from the new owner.
        for (const auto& [key, addr] : *moved) {
          if (!nodes_[target]->zones().contains(addr)) continue;
          propagate_pieces(target, addr);
          reseed_replicas(target, addr, key);
        }
        repush_chain_frontiers(target);
        network().send(target, owner, overlay::kHeaderBytes,
                       [this, owner, moved, epoch] {
          TransferOut& t2 = transfers_out_[owner];
          if (!t2.active || t2.epoch != epoch) return;
          // Route-cache coherence for the moved range (same events a
          // death emits), then splice out of the ring and die. The
          // leaver keeps its zones — it serves events until the splice
          // lands and the copies die with the node.
          for (const auto& [key, addr] : *moved) invalidate_cached_route(key);
          const double handoff = simulator().now() - t2.started_ms;
          simulator().defer_ordered([this, handoff] {
            ++join_stats_.leaves_completed;
            join_stats_.total_handoff_ms += handoff;
            if (handoff > join_stats_.max_handoff_ms) {
              join_stats_.max_handoff_ms = handoff;
            }
          });
          dht_.leave(owner, [this, owner] {
            const std::uint64_t e = transfers_out_[owner].epoch;
            transfers_out_[owner] = TransferOut{};
            transfers_out_[owner].epoch = e;
          });
        });
      });
}

void HyperSubSystem::abort_transfer(net::HostIndex owner) {
  TransferOut& t = transfers_out_[owner];
  if (!t.active) return;
  const std::uint64_t epoch = t.epoch;
  t = TransferOut{};
  t.epoch = epoch;
  simulator().defer_ordered([this] { ++join_stats_.joins_aborted; });
}

void HyperSubSystem::finish_warming(net::HostIndex joiner) {
  WarmState& ws = warm_[joiner];
  if (!ws.warming) return;
  WarmState done = std::move(ws);
  ws = WarmState{};
  ws.epoch = done.epoch;
  // 1. Install the staged zone snapshots (structure-exact restore).
  for (const auto& frame : done.staged) {
    common::ByteReader r(frame);
    install_transferred_zones(joiner, r);
  }
  // 2. Replay the write-behind batches zone-locally, in capture order.
  for (auto& op : done.transfer_ops) op();
  // 3. Fix the derived state the zone-local replays skipped: re-propagate
  //    child pieces (idempotent at children the old owner already updated)
  //    and re-seed the replica chain from the new owner.
  std::vector<std::pair<Id, ZoneAddr>> hosted;
  for (const auto& [addr, zone] : nodes_[joiner]->zones()) {
    hosted.emplace_back(zone_key_of(addr), addr);
  }
  std::sort(hosted.begin(), hosted.end(), zone_order);
  for (const auto& [key, addr] : hosted) {
    propagate_pieces(joiner, addr);
    reseed_replicas(joiner, addr, key);
  }
  repush_chain_frontiers(joiner);
  // 4. Replay the deferred full-path work (installs, removals, buffered
  //    events) — warming is off, so these now execute for real.
  for (auto& op : done.ops) op();
  const std::uint64_t q = done.transfer_ops.size();
  const std::uint64_t w = done.ops.size();
  simulator().defer_ordered([this, q, w] {
    join_stats_.queued_ops_replayed += q;
    join_stats_.warm_ops_replayed += w;
  });
}

void HyperSubSystem::leave_node(net::HostIndex host) {
  assert(!simulator().in_worker_context());
  if (!network().alive(host)) return;
  if (transfers_out_[host].active || warm_[host].warming) return;
  const overlay::Peer heir = dht_.heir_of(host);
  if (!heir.valid() || heir.host == host || !network().alive(heir.host)) {
    // No live successor to inherit the state: plain departure.
    if (!dht_.leave(host, {})) crash_node(host);
    return;
  }
  TransferOut& t = transfers_out_[host];
  const std::uint64_t epoch = t.epoch + 1;
  t = TransferOut{};
  t.epoch = epoch;
  t.active = true;
  t.leaving = true;
  t.target = heir.host;
  t.target_id = dht_.id_of(heir.host);
  t.my_id = dht_.id_of(host);
  t.started_ms = simulator().now();
  t.deadline_ms = simulator().now() + cfg_.handover_timeout_ms;
  std::uint32_t zones = 0;
  auto frame = std::make_shared<std::vector<std::uint8_t>>(
      serialize_moved_zones(host, t, &zones));
  const std::uint64_t bytes = overlay::kHeaderBytes + frame->size();
  join_stats_.transfer_bytes += bytes;  // main context: direct
  join_stats_.zones_transferred += zones;
  // The successor installs immediately (it is not warming): primary copies
  // supersede its replica copies of the same zones. It starts matching them
  // only when the splice makes it owner; until then the leaver serves.
  network().send(host, heir.host, bytes, [this, to = heir.host, frame] {
    common::ByteReader r(*frame);
    install_transferred_zones(to, r);
  });
  schedule_handover_tick(host, epoch);
}

void HyperSubSystem::crash_node(net::HostIndex host) {
  assert(!simulator().in_worker_context());
  // Abrupt: no handshake. Clear any transfer machinery this host ran.
  {
    TransferOut& t = transfers_out_[host];
    const std::uint64_t e = t.epoch;
    t = TransferOut{};
    t.epoch = e;
  }
  {
    WarmState& ws = warm_[host];
    const std::uint64_t e = ws.epoch;
    ws = WarmState{};
    ws.epoch = e;
  }
  network().kill(host);
}

std::vector<std::uint8_t> HyperSubSystem::snapshot_node(
    net::HostIndex host) const {
  common::ByteWriter w;
  w.u32(common::kWireVersion);
  nodes_[host]->save(w);
  return w.take();
}

void HyperSubSystem::restore_node(net::HostIndex host,
                                  const std::vector<std::uint8_t>& snapshot,
                                  net::HostIndex bootstrap) {
  assert(!simulator().in_worker_context());
  if (!network().alive(host)) network().revive(host);
  common::ByteReader r(snapshot);
  const std::uint32_t ver = r.u32();
  assert(ver >= 1 && ver <= common::kWireVersion);
  nodes_[host]->restore(r, ver);
  // Re-splice with no warming: the node resumes from its own disk image —
  // a node whose range drifted while down wants join_node() instead.
  dht_.join(host, bootstrap, {});
}

void HyperSubSystem::restore_node(net::HostIndex host,
                                  const std::vector<std::uint8_t>& snapshot) {
  net::HostIndex bootstrap = overlay::Peer::kInvalidHost;
  for (net::HostIndex h = 0; h < nodes_.size(); ++h) {
    if (h != host && network().alive(h)) {
      bootstrap = h;
      break;
    }
  }
  assert(bootstrap != overlay::Peer::kInvalidHost);
  restore_node(host, snapshot, bootstrap);
}

bool HyperSubSystem::transfer_active() const noexcept {
  for (const auto& t : transfers_out_) {
    if (t.active) return true;
  }
  for (const auto& w : warm_) {
    if (w.warming) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Whole-system checkpointing.

void HyperSubSystem::save_state(common::ByteWriter& w) const {
  // Quiescence contract (see header): simulator drained, finalize_events()
  // called, batches flushed, no transfer session or warming joiner.
  assert(trackers_.empty());
  assert(!transfer_active());
#ifndef NDEBUG
  for (const auto& b : batches_) assert(b.empty());
#endif
  w.u32(common::kWireVersion);
  w.u32(std::uint32_t(schemes_.size()));
  w.u64(event_seq_);
  w.u64(std::uint64_t(total_subs_));
  w.u64(cover_subid_bytes_saved_);
  w.u64(subid_wire_bytes_);
  // Layer-decision reliability counters (transport stats ride channel_).
  w.u64(rel_.messages_sent);
  w.u64(rel_.acks);
  w.u64(rel_.retries);
  w.u64(rel_.expirations);
  w.u64(rel_.reroutes);
  w.u64(rel_.unmasked_drops);
  w.u64(rel_.duplicates_suppressed);
  w.u64(rel_.truncated_events);
  w.u64(batch_.frames);
  w.u64(batch_.chunks);
  w.u64(batch_.header_bytes_saved);
  w.u64(join_stats_.joins_started);
  w.u64(join_stats_.joins_committed);
  w.u64(join_stats_.joins_aborted);
  w.u64(join_stats_.leaves_completed);
  w.u64(join_stats_.zones_transferred);
  w.u64(join_stats_.transfer_bytes);
  w.u64(join_stats_.queued_ops_replayed);
  w.u64(join_stats_.warm_ops_replayed);
  w.u64(join_stats_.events_buffered);
  w.f64(join_stats_.total_handoff_ms);
  w.f64(join_stats_.max_handoff_ms);
  event_metrics_.save_state(w);
  channel_.save_stats(w);
  for (const auto& c : caches_) c->save_state(w);
  // Built-in sink rows (append order is the deterministic deferred order).
  const auto& rows = default_sink_.rows();
  w.u64(rows.size());
  for (const Delivery& d : rows) {
    w.u64(d.event_seq);
    w.u64(std::uint64_t(d.subscriber));
    w.u32(d.iid);
    w.u32(std::uint32_t(d.hops));
    w.f64(d.latency_ms);
  }
  // Per-host dedup sets, iterated in sorted-seq order for stable bytes.
  for (const auto& m : delivered_subs_) {
    w.u32(std::uint32_t(m.size()));
    std::vector<std::uint64_t> seqs;
    seqs.reserve(m.size());
    for (const auto& [seq, subs] : m) seqs.push_back(seq);
    std::sort(seqs.begin(), seqs.end());
    for (const std::uint64_t seq : seqs) {
      const auto& subs = m.at(seq);
      w.u64(seq);
      w.u32(std::uint32_t(subs.size()));
      for (const auto& [id, iid] : subs) {
        w.u64(id);
        w.u32(iid);
      }
    }
  }
  for (const auto& nd : nodes_) nd->save(w);
}

void HyperSubSystem::restore_state(common::ByteReader& r) {
  const std::uint32_t ver = r.u32();
  assert(ver >= 1 && ver <= common::kWireVersion);
  const std::uint32_t nschemes = r.u32();
  assert(nschemes == schemes_.size());
  (void)nschemes;
  event_seq_ = r.u64();
  total_subs_ = std::size_t(r.u64());
  cover_subid_bytes_saved_ = r.u64();
  subid_wire_bytes_ = r.u64();
  rel_ = metrics::ReliabilityCounters{};
  rel_.messages_sent = r.u64();
  rel_.acks = r.u64();
  rel_.retries = r.u64();
  rel_.expirations = r.u64();
  rel_.reroutes = r.u64();
  rel_.unmasked_drops = r.u64();
  rel_.duplicates_suppressed = r.u64();
  rel_.truncated_events = r.u64();
  batch_ = metrics::BatchCounters{};
  batch_.frames = r.u64();
  batch_.chunks = r.u64();
  batch_.header_bytes_saved = r.u64();
  join_stats_ = JoinStats{};
  join_stats_.joins_started = r.u64();
  join_stats_.joins_committed = r.u64();
  join_stats_.joins_aborted = r.u64();
  join_stats_.leaves_completed = r.u64();
  join_stats_.zones_transferred = r.u64();
  join_stats_.transfer_bytes = r.u64();
  join_stats_.queued_ops_replayed = r.u64();
  join_stats_.warm_ops_replayed = r.u64();
  join_stats_.events_buffered = r.u64();
  join_stats_.total_handoff_ms = r.f64();
  join_stats_.max_handoff_ms = r.f64();
  event_metrics_.restore_state(r);
  channel_.restore_stats(r);
  for (auto& c : caches_) c->restore_state(r);
  default_sink_.reset();
  const std::uint64_t nrows = r.u64();
  for (std::uint64_t i = 0; i < nrows; ++i) {
    Delivery d;
    d.event_seq = r.u64();
    d.subscriber = net::HostIndex(r.u64());
    d.iid = r.u32();
    d.hops = int(r.u32());
    d.latency_ms = r.f64();
    default_sink_.on_delivery(d);
  }
  for (auto& m : delivered_subs_) {
    m.clear();
    const std::uint32_t nseq = r.u32();
    for (std::uint32_t i = 0; i < nseq; ++i) {
      const std::uint64_t seq = r.u64();
      auto& subs = m[seq];
      const std::uint32_t nsub = r.u32();
      for (std::uint32_t j = 0; j < nsub; ++j) {
        const Id id = r.u64();
        const std::uint32_t iid = r.u32();
        subs.emplace(id, iid);
      }
    }
  }
  for (auto& nd : nodes_) nd->restore(r, ver);
}

std::vector<std::size_t> HyperSubSystem::node_loads() const {
  std::vector<std::size_t> loads;
  loads.reserve(nodes_.size());
  for (const auto& n : nodes_) loads.push_back(n->load());
  return loads;
}

std::vector<std::size_t> HyperSubSystem::node_stored_entries() const {
  std::vector<std::size_t> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->stored_entries());
  return out;
}

}  // namespace hypersub::core
