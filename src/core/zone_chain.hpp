#pragma once
// Path-compressed storage of structural (piece-only) zone chains.
//
// At saturation scale most hosted zones are structural: no subscriptions,
// no buckets — they exist only to carry a summary-filter piece one level
// down the tree, and almost all of them have exactly one non-empty child
// piece. Materializing each as a ZoneState (plus a zones_by_key_ entry)
// dominates peak RSS, and every cascade walks them one level at a time.
//
// A CompressedChain collapses a maximal run of such zones into one record:
// the deepest member (tail), the member count (span), the rect the head's
// parent installed (piece), and the head's parent key. Everything else is
// derived: member zone codes are prefixes of tail.code, and the rect
// installed at member level L is piece ∩ extent(z_L) — exact, because zone
// extents nest along a parent path and a piece-only zone's summary equals
// its parent piece.
//
// Per-member rotated zone keys are stored explicitly (level_keys): they are
// pure functions of the zone address, but keeping them in the record makes
// key-indexed dispatch (event climbs, erases, serialization) independent of
// the Subscheme layer. Along a parent->child descent the key changes only
// when the appended digit is not all-ones, so equal keys occupy consecutive
// levels — the event path scans one run per key.
//
// Chain invariants (audited by check_zone_invariants):
//   * span >= 1, head level >= 1 (the root holds subscriptions or nothing),
//   * piece is non-empty and contained in extent(head),
//   * every member level L < tail.level has exactly one non-empty derived
//     child piece, and it is the next member,
//   * no materialized primary ZoneState exists at any member address.

#include <cstdint>
#include <vector>

#include "common/hyperrect.hpp"
#include "core/flat_map.hpp"
#include "core/subid.hpp"
#include "lph/zone.hpp"

namespace hypersub::core {

/// One maximal run of piece-only zones, head to tail along a parent path.
struct CompressedChain {
  std::uint32_t scheme = 0;
  std::uint32_t subscheme = 0;
  lph::Zone tail;              ///< deepest member
  std::uint32_t span = 0;      ///< member count head..tail; 0 = free slot
  HyperRect piece;             ///< rect installed by the head's parent
  Id parent_key = 0;           ///< rotated key of the head's parent zone
  std::vector<Id> level_keys;  ///< member keys, head..tail (size == span)

  int head_level() const noexcept { return tail.level - int(span) + 1; }
  Id code_at(int level, int base_bits) const noexcept {
    return tail.code >> (std::uint64_t(tail.level - level) * base_bits);
  }
  lph::Zone member(int level, int base_bits) const noexcept {
    return lph::Zone{code_at(level, base_bits), level};
  }
  Id key_at(int level) const {
    return level_keys[std::size_t(level - head_level())];
  }
  /// Rotated key of the member's parent: the stored parent_key for the
  /// head, the preceding member's key otherwise.
  Id parent_key_at(int level) const {
    return level == head_level() ? parent_key : key_at(level - 1);
  }
  bool has_member(const lph::Zone& z, int base_bits) const noexcept {
    return span > 0 && z.level >= head_level() && z.level <= tail.level &&
           code_at(z.level, base_bits) == z.code;
  }
};

/// Per-node container of compressed chains with a rotated-key index.
///
/// One key can map to several chains: a zone key aliases its rightmost
/// descendants, and a materialized (sub-bearing) zone can sit between two
/// chained runs on the same rightmost path. The index therefore keeps a
/// singly-linked entry list per key. All structural mutation is
/// erase + insert — spans are bounded by the tree depth, so rebuilding a
/// record is cheap next to keeping partial-update paths correct.
class ZoneChainSet {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::uint32_t insert(CompressedChain c);
  void erase(std::uint32_t id);

  CompressedChain& get(std::uint32_t id) { return chains_[id]; }
  const CompressedChain& get(std::uint32_t id) const { return chains_[id]; }

  /// The chain holding `z` as a member, keyed by z's rotated key (the probe
  /// is index-first: only chains registered under `key` are examined).
  std::uint32_t find_containing(std::uint32_t scheme, std::uint32_t subscheme,
                                const lph::Zone& z, Id key,
                                int base_bits) const;

  /// Visit every chain registered under `key` as fn(id, chain). A chain
  /// with several members aliased to one key is visited once.
  template <typename F>
  void for_each_at_key(Id key, F&& fn) const {
    const std::uint32_t* head = index_.find(key);
    if (head == nullptr) return;
    for (std::uint32_t e = *head; e != kNone; e = entries_[e].next) {
      fn(entries_[e].chain, chains_[entries_[e].chain]);
    }
  }

  /// Visit every live chain as fn(id, chain), in slot order.
  template <typename F>
  void for_each(F&& fn) const {
    for (std::uint32_t id = 0; id < chains_.size(); ++id) {
      if (chains_[id].span > 0) fn(id, chains_[id]);
    }
  }

  std::size_t size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }
  /// Total implicit zones represented (sum of spans) — each counts as one
  /// stored piece entry in load/footprint accounting.
  std::size_t total_span() const noexcept { return total_span_; }

  void clear();

  /// Estimated heap footprint: records, per-record heap, key index.
  std::size_t memory_bytes() const;

 private:
  struct KeyEntry {
    std::uint32_t chain = kNone;
    std::uint32_t next = kNone;
  };

  void index_add(Id key, std::uint32_t id);
  void index_remove(Id key, std::uint32_t id);

  std::vector<CompressedChain> chains_;  // span == 0 marks a free slot
  std::vector<std::uint32_t> free_chains_;
  FlatMap<Id, std::uint32_t> index_;  // key -> head of entry list
  std::vector<KeyEntry> entries_;
  std::vector<std::uint32_t> free_entries_;
  std::size_t live_ = 0;
  std::size_t total_span_ = 0;
};

}  // namespace hypersub::core
