#include "core/route_cache.hpp"

namespace hypersub::core {

net::HostIndex RouteCache::lookup(Id key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++counters_.misses;
    return overlay::Peer::kInvalidHost;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->owner;
}

void RouteCache::learn(Id key, net::HostIndex owner) {
  if (owner == overlay::Peer::kInvalidHost) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    if (it->second->owner != owner) {
      it->second->owner = owner;
      ++counters_.stale_corrections;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    map_.erase(victim.key);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(Entry{key, owner});
  map_.emplace(key, lru_.begin());
  ++counters_.insertions;
}

void RouteCache::forget(Id key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
  ++counters_.invalidations;
}

void RouteCache::invalidate_host(net::HostIndex host) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->owner == host) {
      map_.erase(it->key);
      it = lru_.erase(it);
      ++counters_.invalidations;
    } else {
      ++it;
    }
  }
}

}  // namespace hypersub::core
