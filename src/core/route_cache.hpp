#pragma once
// RouteCache: a per-node LRU map from rotated rendezvous zone keys to the
// last observed owner host — the publish-path fast lane. Zipf-skewed
// workloads publish into the same few hot leaf zones over and over; once a
// publisher has learned a zone's surrogate it can hand the event straight
// to it instead of paying a full O(log N) Chord route per publish.
//
// The cache is an optimization layer only and is allowed to be wrong:
//   * miss        -> the publish rides normal greedy routing (and the true
//                    owner corrects the publisher's cache on arrival);
//   * stale entry -> the cached host no longer owns the key; it simply
//                    forwards the subids like any intermediate hop, and the
//                    true owner's correction repairs the entry;
//   * dead entry  -> the reliable channel's failure callback (or dead-node
//                    gossip) invalidates every entry pointing at the host.
// Coherence hooks (invalidate_host / forget) are driven by HyperSubSystem
// from the reliability layer and from the overlay's ownership-change
// notifications; the cache itself is a dumb bounded map.

#include <cstddef>
#include <list>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/wire.hpp"
#include "metrics/fastlane_metrics.hpp"
#include "net/topology.hpp"
#include "overlay/peer.hpp"

namespace hypersub::core {

class RouteCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit RouteCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Cached owner of `key`, or Peer::kInvalidHost. Counts a hit or a miss
  /// and refreshes the entry's LRU position on hit.
  net::HostIndex lookup(Id key);

  /// Record that `owner` consumed the rendezvous for `key`. Overwriting an
  /// entry that pointed elsewhere counts as a stale correction; inserting
  /// beyond capacity evicts the least recently used entry.
  void learn(Id key, net::HostIndex owner);

  /// Drop the entry for `key`, if any (coherence: the zone behind the key
  /// changed shape, e.g. a load-balancer migration installed a bucket).
  void forget(Id key);

  /// Drop every entry pointing at `host` (coherence: the host died or its
  /// owned key range changed during stabilization).
  void invalidate_host(net::HostIndex host);

  /// Peek without touching LRU order or counters (tests).
  bool contains(Id key) const { return map_.find(key) != map_.end(); }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Counters since construction or the last reset (entries reflects the
  /// current size, not a rate).
  metrics::RouteCacheCounters counters() const {
    metrics::RouteCacheCounters c = counters_;
    c.entries = map_.size();
    return c;
  }
  void reset_counters() { counters_ = metrics::RouteCacheCounters{}; }

  /// Checkpoint entries (MRU-first, preserving LRU order exactly) and
  /// counters.
  void save_state(common::ByteWriter& w) const {
    w.u64(capacity_);
    w.u32(std::uint32_t(lru_.size()));
    for (const Entry& e : lru_) {
      w.u64(e.key);
      w.u64(std::uint64_t(e.owner));
    }
    w.u64(counters_.hits);
    w.u64(counters_.misses);
    w.u64(counters_.insertions);
    w.u64(counters_.stale_corrections);
    w.u64(counters_.invalidations);
    w.u64(counters_.evictions);
  }
  void restore_state(common::ByteReader& r) {
    capacity_ = std::size_t(r.u64());
    lru_.clear();
    map_.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      Entry e;
      e.key = r.u64();
      e.owner = net::HostIndex(r.u64());
      lru_.push_back(e);
      map_.emplace(e.key, std::prev(lru_.end()));
    }
    counters_ = metrics::RouteCacheCounters{};
    counters_.hits = r.u64();
    counters_.misses = r.u64();
    counters_.insertions = r.u64();
    counters_.stale_corrections = r.u64();
    counters_.invalidations = r.u64();
    counters_.evictions = r.u64();
  }

 private:
  struct Entry {
    Id key;
    net::HostIndex owner;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< most recently used at the front
  std::unordered_map<Id, std::list<Entry>::iterator> map_;
  metrics::RouteCacheCounters counters_;
};

}  // namespace hypersub::core
