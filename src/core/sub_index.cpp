#include "core/sub_index.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace hypersub::core {

std::size_t SubIndex::cell_of(const Dim& d, double x) {
  return std::size_t(
      std::upper_bound(d.bounds.begin(), d.bounds.end(), x) -
      d.bounds.begin());
}

std::uint32_t SubIndex::insert(const HyperRect& range) {
  assert(!range.empty());
  if (dims_.empty()) dims_.resize(range.dimensions());
  assert(range.dimensions() == dims_.size());

  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    rects_[slot] = range;
  } else {
    slot = std::uint32_t(rects_.size());
    rects_.push_back(range);
  }
  ++live_;
  if (live_ > cfg_.rebuild_factor * built_size_) {
    rebuild();  // re-derive boundaries from the grown endpoint population
  } else {
    set_bits(range, slot);
  }
  return slot;
}

void SubIndex::remove(std::uint32_t slot) {
  assert(slot < rects_.size() && !rects_[slot].empty());
  clear_bits(rects_[slot], slot);
  rects_[slot] = HyperRect{};
  free_.push_back(slot);
  --live_;
  if (live_ * cfg_.rebuild_factor < built_size_) rebuild();
}

void SubIndex::set_bits(const HyperRect& r, std::uint32_t slot) {
  const std::size_t w = slot / 64;
  const std::uint64_t m = std::uint64_t{1} << (slot % 64);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    Dim& dim = dims_[d];
    if (dim.cells.empty()) dim.cells.resize(dim.bounds.size() + 1);
    const std::size_t c0 = cell_of(dim, r.dim(d).lo);
    const std::size_t c1 = cell_of(dim, r.dim(d).hi);
    for (std::size_t c = c0; c <= c1; ++c) {
      auto& words = dim.cells[c];
      if (words.size() <= w) words.resize(w + 1, 0);
      words[w] |= m;
    }
  }
}

void SubIndex::clear_bits(const HyperRect& r, std::uint32_t slot) {
  const std::size_t w = slot / 64;
  const std::uint64_t m = std::uint64_t{1} << (slot % 64);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    Dim& dim = dims_[d];
    if (dim.cells.empty()) continue;
    const std::size_t c0 = cell_of(dim, r.dim(d).lo);
    const std::size_t c1 = cell_of(dim, r.dim(d).hi);
    for (std::size_t c = c0; c <= c1; ++c) {
      auto& words = dim.cells[c];
      if (words.size() > w) words[w] &= ~m;
    }
  }
}

void SubIndex::rebuild() {
  std::vector<double> endpoints;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    Dim& dim = dims_[d];
    endpoints.clear();
    endpoints.reserve(2 * live_);
    for (const auto& r : rects_) {
      if (r.empty()) continue;
      endpoints.push_back(r.dim(d).lo);
      endpoints.push_back(r.dim(d).hi);
    }
    std::sort(endpoints.begin(), endpoints.end());
    // Equi-depth boundaries over the endpoint list; duplicates collapse, so
    // a degenerate (single-valued) dimension ends up with <= 2 cells.
    dim.bounds.clear();
    const std::size_t c = cfg_.cells_per_dim;
    for (std::size_t k = 1; k < c && !endpoints.empty(); ++k) {
      const double b = endpoints[k * endpoints.size() / c];
      if (dim.bounds.empty() || dim.bounds.back() < b) dim.bounds.push_back(b);
    }
    dim.cells.assign(dim.bounds.size() + 1, {});
  }
  for (std::uint32_t s = 0; s < rects_.size(); ++s) {
    if (!rects_[s].empty()) set_bits(rects_[s], s);
  }
  built_size_ = live_;
}

void SubIndex::candidates(const Point& p,
                          std::vector<std::uint32_t>& out) const {
  if (live_ == 0) return;
  assert(p.size() == dims_.size());
  // Words absent from a shorter cell vector are zero, so the AND result is
  // only as wide as the narrowest cell.
  std::size_t len = ~std::size_t{0};
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const Dim& dim = dims_[d];
    if (dim.cells.empty()) return;
    len = std::min(len, dim.cells[cell_of(dim, p[d])].size());
  }
  if (len == 0) return;

  {
    const Dim& dim = dims_[0];
    const auto& words = dim.cells[cell_of(dim, p[0])];
    scratch_.assign(words.begin(), words.begin() + std::ptrdiff_t(len));
  }
  for (std::size_t d = 1; d < dims_.size(); ++d) {
    const Dim& dim = dims_[d];
    const auto& words = dim.cells[cell_of(dim, p[d])];
    for (std::size_t w = 0; w < len; ++w) scratch_[w] &= words[w];
  }
  for (std::size_t w = 0; w < len; ++w) {
    std::uint64_t bits = scratch_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      out.push_back(std::uint32_t(w * 64 + std::size_t(b)));
    }
  }
}

}  // namespace hypersub::core
