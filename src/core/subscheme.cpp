#include "core/subscheme.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <shared_mutex>

namespace hypersub::core {

namespace {

HyperRect projected_domain(const pubsub::Scheme& scheme,
                           const std::vector<std::size_t>& attrs) {
  std::vector<Interval> dims;
  dims.reserve(attrs.size());
  for (std::size_t a : attrs) {
    assert(a < scheme.arity());
    dims.push_back(scheme.attribute(a).domain);
  }
  return HyperRect(std::move(dims));
}

}  // namespace

Subscheme::Subscheme(std::string name, std::vector<std::size_t> attrs,
                     const pubsub::Scheme& scheme,
                     lph::ZoneSystem::Config zone_cfg, bool rotate)
    : name_(std::move(name)),
      attrs_(std::move(attrs)),
      zones_(projected_domain(scheme, attrs_), zone_cfg),
      rotation_(rotate ? lph::rotation_offset(name_) : 0) {
  assert(!attrs_.empty());
  assert(std::is_sorted(attrs_.begin(), attrs_.end()));
}

HyperRect Subscheme::project(const HyperRect& full) const {
  std::vector<Interval> dims;
  dims.reserve(attrs_.size());
  for (std::size_t a : attrs_) dims.push_back(full.dim(a));
  return HyperRect(std::move(dims));
}

Id Subscheme::zone_key(const lph::Zone& z) const {
  // Injective packing of the variable-length code: a sentinel bit above
  // the level's digits (codes use at most 60 bits, so the sentinel fits).
  const std::uint64_t packed =
      z.code | (std::uint64_t{1} << (z.level * zones_.base_bits()));
  {
    std::shared_lock lock(key_cache_->mu);
    const auto it = key_cache_->map.find(packed);
    if (it != key_cache_->map.end()) return it->second;
  }
  // The key is a pure function of the zone: two threads racing to insert
  // the same value is harmless, so compute outside the lock.
  const Id key = lph::zone_key(zones_, z, rotation_);
  std::unique_lock lock(key_cache_->mu);
  key_cache_->map.emplace(packed, key);
  return key;
}

Point Subscheme::project(const Point& full) const {
  Point p;
  p.reserve(attrs_.size());
  for (std::size_t a : attrs_) p.push_back(full[a]);
  return p;
}

bool Subscheme::covers_constraints(const pubsub::Scheme& scheme,
                                   const pubsub::Subscription& sub) const {
  for (std::size_t i = 0; i < scheme.arity(); ++i) {
    const bool constrained =
        sub.range().dim(i) != scheme.attribute(i).domain;
    if (constrained &&
        std::find(attrs_.begin(), attrs_.end(), i) == attrs_.end()) {
      return false;
    }
  }
  return true;
}

std::size_t Subscheme::constrained_overlap(
    const pubsub::Scheme& scheme, const pubsub::Subscription& sub) const {
  std::size_t n = 0;
  for (std::size_t a : attrs_) {
    if (sub.range().dim(a) != scheme.attribute(a).domain) ++n;
  }
  return n;
}

SchemeRuntime::SchemeRuntime(pubsub::Scheme scheme,
                             const SchemeOptions& options)
    : scheme_(std::move(scheme)) {
  std::vector<std::vector<std::size_t>> partitions = options.subschemes;
  if (partitions.empty()) {
    partitions.emplace_back();
    for (std::size_t i = 0; i < scheme_.arity(); ++i) {
      partitions.back().push_back(i);
    }
  }
  subs_.reserve(partitions.size());
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    auto attrs = partitions[i];
    std::sort(attrs.begin(), attrs.end());
    subs_.emplace_back(scheme_.name() + "#" + std::to_string(i),
                       std::move(attrs), scheme_, options.zone_cfg,
                       options.rotate);
  }
}

std::size_t SchemeRuntime::choose_subscheme(
    const pubsub::Subscription& sub) const {
  // Prefer the smallest subscheme covering every constrained attribute.
  std::size_t best = subs_.size();
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    if (!subs_[i].covers_constraints(scheme_, sub)) continue;
    if (best == subs_.size() ||
        subs_[i].attributes().size() < subs_[best].attributes().size()) {
      best = i;
    }
  }
  if (best != subs_.size()) return best;
  // Otherwise: most constrained-attribute overlap (ties -> first).
  std::size_t best_overlap = 0;
  best = 0;
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const std::size_t o = subs_[i].constrained_overlap(scheme_, sub);
    if (o > best_overlap) {
      best_overlap = o;
      best = i;
    }
  }
  return best;
}

}  // namespace hypersub::core
