#pragma once
// Open-addressing hash map with linear probing and backward-shift deletion.
//
// Replaces std::unordered_map for the per-node key indexes (zones_by_key_
// and the chain key index): at saturation scale those hold millions of
// entries, and the node-based map pays one heap allocation plus two
// pointers of bucket/next overhead per entry on top of the payload. This
// map stores keys, values and a one-byte occupancy flag in three flat
// arrays — no per-entry allocation, cache-friendly probes, and a
// deterministic layout given the insertion/erase sequence (which the
// parallel-determinism contract relies on: all mutations happen on the
// owning node's shard in deterministic order).
//
// Requirements: K trivially copyable + equality-comparable, V movable and
// default-constructible. Erase uses backward shifting, so iteration order
// can change across erases — callers that need deterministic output order
// (checkpointing) sort keys explicitly, as they already did with the
// unordered map.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hypersub::core {

/// splitmix64-style mix for map hashing (declared in zone_state.hpp for
/// ZoneAddrHash; duplicated inline here to keep this header dependency-free).
inline std::uint64_t flat_map_mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename K, typename V>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return keys_.size(); }

  void clear() {
    keys_.clear();
    vals_.clear();
    used_.clear();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    // Grow until n fits under the max load factor (3/4).
    while (n * 4 >= cap * 3) cap <<= 1;
    if (cap > keys_.size()) rehash(cap);
  }

  /// Pointer to the value stored under `k`, or nullptr.
  V* find(const K& k) noexcept {
    if (size_ == 0) return nullptr;
    std::size_t i = slot_of(k);
    while (used_[i]) {
      if (keys_[i] == k) return &vals_[i];
      i = (i + 1) & mask();
    }
    return nullptr;
  }
  const V* find(const K& k) const noexcept {
    return const_cast<FlatMap*>(this)->find(k);
  }
  bool contains(const K& k) const noexcept { return find(k) != nullptr; }

  /// Find-or-default-construct, like std::unordered_map::operator[].
  V& operator[](const K& k) {
    grow_if_needed();
    std::size_t i = slot_of(k);
    while (used_[i]) {
      if (keys_[i] == k) return vals_[i];
      i = (i + 1) & mask();
    }
    used_[i] = 1;
    keys_[i] = k;
    vals_[i] = V{};
    ++size_;
    return vals_[i];
  }

  /// Insert-or-assign; returns true if the key was new.
  bool insert(const K& k, V v) {
    grow_if_needed();
    std::size_t i = slot_of(k);
    while (used_[i]) {
      if (keys_[i] == k) {
        vals_[i] = std::move(v);
        return false;
      }
      i = (i + 1) & mask();
    }
    used_[i] = 1;
    keys_[i] = k;
    vals_[i] = std::move(v);
    ++size_;
    return true;
  }

  /// Remove `k` (backward-shift deletion: no tombstones, probe chains stay
  /// tight under churn). Returns true if the key was present.
  bool erase(const K& k) {
    if (size_ == 0) return false;
    std::size_t i = slot_of(k);
    while (used_[i]) {
      if (keys_[i] == k) {
        shift_out(i);
        --size_;
        return true;
      }
      i = (i + 1) & mask();
    }
    return false;
  }

  /// Visit every live entry as fn(const K&, V&). Order is layout order —
  /// deterministic for a given mutation sequence, not sorted.
  template <typename F>
  void for_each(F&& fn) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (used_[i]) fn(const_cast<const K&>(keys_[i]), vals_[i]);
    }
  }
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (used_[i]) fn(keys_[i], vals_[i]);
    }
  }

  /// Flat-array footprint (excludes heap owned by the values themselves).
  std::size_t memory_bytes() const noexcept {
    return keys_.capacity() * sizeof(K) + vals_.capacity() * sizeof(V) +
           used_.capacity();
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  std::size_t mask() const noexcept { return keys_.size() - 1; }
  std::size_t slot_of(const K& k) const noexcept {
    return std::size_t(flat_map_mix(hash_key(k))) & mask();
  }
  static std::uint64_t hash_key(const K& k) noexcept {
    if constexpr (sizeof(K) <= sizeof(std::uint64_t)) {
      std::uint64_t x = 0;
      __builtin_memcpy(&x, &k, sizeof(K));
      return x;
    } else {
      // Fold the bytes word-wise; keys here are PODs (ids, small structs).
      const unsigned char* p = reinterpret_cast<const unsigned char*>(&k);
      std::uint64_t h = 0;
      for (std::size_t off = 0; off < sizeof(K); off += 8) {
        std::uint64_t w = 0;
        __builtin_memcpy(&w, p + off,
                         sizeof(K) - off < 8 ? sizeof(K) - off : 8);
        h = flat_map_mix(h ^ w);
      }
      return h;
    }
  }

  void grow_if_needed() {
    if (keys_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 >= keys_.size() * 3) {
      rehash(keys_.size() * 2);
    }
  }

  void rehash(std::size_t cap) {
    std::vector<K> old_keys = std::move(keys_);
    std::vector<V> old_vals = std::move(vals_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    keys_.assign(cap, K{});
    vals_.clear();
    vals_.resize(cap);
    used_.assign(cap, 0);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = slot_of(old_keys[i]);
      while (used_[j]) j = (j + 1) & mask();
      used_[j] = 1;
      keys_[j] = old_keys[i];
      vals_[j] = std::move(old_vals[i]);
    }
  }

  /// Backward-shift deletion starting at freshly-vacated slot `i`.
  void shift_out(std::size_t i) {
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask();
      if (!used_[j]) break;
      const std::size_t ideal = slot_of(keys_[j]);
      // Entry j may move into i iff its probe chain passes through i:
      // cyclic distance(ideal -> j) >= distance(i -> j).
      if (((j - ideal) & mask()) >= ((j - i) & mask())) {
        keys_[i] = keys_[j];
        vals_[i] = std::move(vals_[j]);
        i = j;
      }
    }
    used_[i] = 0;
    keys_[i] = K{};
    vals_[i] = V{};
  }

  std::vector<K> keys_;
  std::vector<V> vals_;
  std::vector<std::uint8_t> used_;  // 1 = slot live
  std::size_t size_ = 0;
};

}  // namespace hypersub::core
