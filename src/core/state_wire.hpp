#pragma once
// Wire encodings of the core value types shared by zone-state transfer
// (join/leave) and whole-system checkpoints: HyperRect, SubId, StoredSub.
// Kept in one place so the two features can never drift apart on layout.

#include <cstdint>

#include "common/hyperrect.hpp"
#include "common/wire.hpp"
#include "core/sub_arena.hpp"
#include "core/subid.hpp"
#include "core/zone_chain.hpp"
#include "core/zone_state.hpp"

namespace hypersub::core {

inline void save_rect(common::ByteWriter& w, const HyperRect& r) {
  w.u32(std::uint32_t(r.dimensions()));
  for (const Interval& d : r.dims()) {
    w.f64(d.lo);
    w.f64(d.hi);
  }
}

inline HyperRect load_rect(common::ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<Interval> dims;
  dims.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double lo = r.f64();
    const double hi = r.f64();
    dims.push_back(Interval{lo, hi});
  }
  return HyperRect(std::move(dims));
}

inline void save_subid(common::ByteWriter& w, const SubId& s) {
  w.u64(s.target);
  w.u32(s.iid);
  w.u8(std::uint8_t(s.kind));
}

inline SubId load_subid(common::ByteReader& r) {
  SubId s;
  s.target = r.u64();
  s.iid = r.u32();
  s.kind = SubIdKind(r.u8());
  return s;
}

inline void save_zone_addr(common::ByteWriter& w, const ZoneAddr& a) {
  w.u32(a.scheme);
  w.u32(a.subscheme);
  w.u64(a.zone.code);
  w.u32(std::uint32_t(a.zone.level));
}

inline ZoneAddr load_zone_addr(common::ByteReader& r) {
  ZoneAddr a;
  a.scheme = r.u32();
  a.subscheme = r.u32();
  a.zone.code = r.u64();
  a.zone.level = int(r.u32());
  return a;
}

inline void save_chain(common::ByteWriter& w, const CompressedChain& c) {
  w.u32(c.scheme);
  w.u32(c.subscheme);
  w.u64(c.tail.code);
  w.u32(std::uint32_t(c.tail.level));
  w.u32(c.span);
  save_rect(w, c.piece);
  w.u64(c.parent_key);
  for (const Id k : c.level_keys) w.u64(k);
}

inline CompressedChain load_chain(common::ByteReader& r) {
  CompressedChain c;
  c.scheme = r.u32();
  c.subscheme = r.u32();
  c.tail.code = r.u64();
  c.tail.level = int(r.u32());
  c.span = r.u32();
  c.piece = load_rect(r);
  c.parent_key = r.u64();
  c.level_keys.reserve(c.span);
  for (std::uint32_t i = 0; i < c.span; ++i) c.level_keys.push_back(r.u64());
  return c;
}

inline void save_stored_sub(common::ByteWriter& w, const StoredSub& s) {
  save_subid(w, s.owner);
  save_rect(w, s.sub.range());
  save_rect(w, s.projected);
}

inline StoredSub load_stored_sub(common::ByteReader& r) {
  StoredSub s;
  s.owner = load_subid(r);
  s.sub = pubsub::Subscription(load_rect(r));
  s.projected = load_rect(r);
  return s;
}

}  // namespace hypersub::core
