#pragma once
// Covering/subsumption bookkeeping for one zone's subscriptions
// (ROADMAP "Subscription aggregation"; Shi et al., PAPERS.md).
//
// When a new subscription's full-space hyper-rect is contained in the rect
// of a subscription already registered in the same zone, delivering the
// covering subscription's events is sufficient to decide the covered one:
// every event inside the covered rect is inside the coverer's rect, so the
// zone can *quench* the newcomer — keep it in the arena but leave it out
// of the insertion-order list and the SubIndex. Quenched subscriptions are
// re-materialized only at match time, after their representative's rect
// has already admitted the event (ZoneState::match expands each matching
// representative's coverees with an exact per-sub containment check), so
// the delivery set is identical to the unaggregated one.
//
// Because projection is monotone (each projected interval is the full
// interval of a subscheme attribute), a quenched rect's projection is also
// contained in its representative's projection — quenching can never
// change the zone's summary filter, which is why quenched subscriptions
// need no piece propagation ("not registered upward").
//
// Invariants maintained by ZoneState:
//   * representatives live in order_/SubIndex; coverees only here,
//   * cover relations are one level deep (a coveree is never a coverer),
//   * when a representative is removed (unsubscribe/extract), its coverees
//     are promoted in quench order: each re-covers against the surviving
//     representatives (including ones promoted earlier in the same pass)
//     or becomes a representative itself — deterministic either way.
//
// CoverSet itself is pure bookkeeping over SubArena refs; the geometry
// (which rect covers which) is decided by the caller. Iteration over the
// internal hash maps is never exposed: callers enumerate coverees per
// representative, in quench order, so nothing depends on bucket order.

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/sub_arena.hpp"

namespace hypersub::core {

class CoverSet {
 public:
  using Ref = SubArena::Ref;

  /// Record `coveree` as quenched under representative `rep`.
  void quench(Ref rep, Ref coveree) {
    assert(rep_of_.find(coveree) == rep_of_.end());
    assert(rep_of_.find(rep) == rep_of_.end());  // one level deep
    by_rep_[rep].push_back(coveree);
    rep_of_.emplace(coveree, rep);
  }

  /// Detach a quenched ref from its representative (unsubscribe of a
  /// coveree). Returns false if the ref is not quenched.
  bool release(Ref coveree) {
    const auto it = rep_of_.find(coveree);
    if (it == rep_of_.end()) return false;
    auto& list = by_rep_[it->second];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i] == coveree) {
        list.erase(list.begin() + std::ptrdiff_t(i));
        break;
      }
    }
    if (list.empty()) by_rep_.erase(it->second);
    rep_of_.erase(it);
    return true;
  }

  /// Remove a representative, handing back its coverees in quench order
  /// (the caller re-homes them: re-quench or promote).
  std::vector<Ref> take_coverees(Ref rep) {
    const auto it = by_rep_.find(rep);
    if (it == by_rep_.end()) return {};
    std::vector<Ref> out = std::move(it->second);
    by_rep_.erase(it);
    for (const Ref r : out) rep_of_.erase(r);
    return out;
  }

  /// Coverees of `rep` in quench order; null when it has none.
  const std::vector<Ref>* coverees(Ref rep) const {
    const auto it = by_rep_.find(rep);
    return it == by_rep_.end() ? nullptr : &it->second;
  }

  /// Representative of a quenched ref; kNullRef when not quenched.
  Ref rep_of(Ref coveree) const {
    const auto it = rep_of_.find(coveree);
    return it == rep_of_.end() ? SubArena::kNullRef : it->second;
  }

  std::size_t quenched_count() const noexcept { return rep_of_.size(); }
  bool empty() const noexcept { return rep_of_.empty(); }

 private:
  std::unordered_map<Ref, std::vector<Ref>> by_rep_;
  std::unordered_map<Ref, Ref> rep_of_;
};

}  // namespace hypersub::core
