#pragma once
// Dynamic subscription migration (paper §4).
//
// Each node periodically samples the load of its overlay neighbors (and,
// with probe level > 1, the neighbors' neighbors). A node whose load
// exceeds the neighborhood average by the threshold factor (1 + δ) picks
// the lightly loaded probed nodes as acceptors, orders them clockwise, and
// migrates the subscriptions whose subscribers' node ids fall into each
// acceptor's ring arc. Every acceptor summarizes what it received and
// registers a surrogate (migrated-bucket pointer) back at the origin, so
// event matching still starts at the origin zone and detours through the
// acceptor only when the summary matches.

#include <cstdint>

#include "core/hypersub_system.hpp"

namespace hypersub::core {

class LoadBalancer {
 public:
  struct Config {
    double period_ms = 5000.0;   ///< sampling period per node
    double delta = 0.1;          ///< δ: overload threshold factor
    int probe_level = 1;         ///< P_l: neighbor sampling depth (1 or 2)
    std::size_t max_acceptors = 4;  ///< k cap per migration
    std::size_t min_load = 8;    ///< don't migrate trivial loads
    double reply_timeout_ms = 1500.0;
  };

  LoadBalancer(HyperSubSystem& sys, Config cfg);

  const Config& config() const noexcept { return cfg_; }

  /// Start periodic sampling on every live node (staggered).
  void start();

  /// Stop periodic sampling: already-queued ticks fire once and do not
  /// reschedule, so the simulator's queue can drain. Restartable.
  void stop() { stopped_ = true; }

  /// One synchronous balancing round: every live node probes and (if
  /// overloaded) migrates; runs the simulator until the round's messages
  /// drain. Bench/test convenience — identical logic to the periodic path.
  void run_round();

  /// Total subscriptions migrated so far — counted only once the acceptor
  /// stored them and the surrogate pointer was confirmed at the origin.
  std::uint64_t migrated_count() const noexcept { return migrated_; }

  /// Subscriptions whose migration handoff failed (acceptor or origin died
  /// mid-handoff). Rolled back to the origin when it is still alive.
  std::uint64_t failed_migrations() const noexcept { return failed_; }

 private:
  void tick(net::HostIndex h);
  void schedule_tick(net::HostIndex h, double delay);
  /// Probe the sampling set, then decide + migrate.
  void probe_and_balance(net::HostIndex h);
  void migrate(net::HostIndex h,
               std::vector<overlay::Peer> acceptors);

  HyperSubSystem& sys_;
  Config cfg_;
  std::vector<bool> ticking_;
  bool stopped_ = false;
  std::uint64_t migrated_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace hypersub::core
