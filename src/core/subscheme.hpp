#pragma once
// Scheme runtime layout: subschemes + zone systems + rotation (paper §3.5).
//
// A scheme is served by one or more subschemes, each owning a subset of the
// attributes, its own zone tree over the projected content space, and its
// own rotation offset. The degenerate single-subscheme case (all
// attributes, the paper's base design) uses exactly the same code path.
// Subscriptions install into exactly one subscheme; events have one
// rendezvous zone per subscheme.

#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "lph/lph.hpp"
#include "pubsub/event.hpp"
#include "pubsub/scheme.hpp"
#include "pubsub/subscription.hpp"

namespace hypersub::core {

/// One subscheme: projected zone geometry + rotation.
class Subscheme {
 public:
  Subscheme(std::string name, std::vector<std::size_t> attrs,
            const pubsub::Scheme& scheme, lph::ZoneSystem::Config zone_cfg,
            bool rotate);

  const std::string& name() const noexcept { return name_; }
  /// Indices into the parent scheme's attribute list, ascending.
  const std::vector<std::size_t>& attributes() const noexcept { return attrs_; }
  const lph::ZoneSystem& zones() const noexcept { return zones_; }
  Id rotation() const noexcept { return rotation_; }

  /// Rotated Chord key of one of this subscheme's zones, memoized per
  /// (zone, rotation). Publish climbs ancestor chains and piece
  /// propagation fans out over children every time a summary moves, so the
  /// same few thousand zone keys are requested over and over; the cache
  /// makes the repeats a hash-map hit instead of a fresh LPH computation.
  Id zone_key(const lph::Zone& z) const;

  /// Project a full-space rectangle/point onto this subscheme's dimensions.
  HyperRect project(const HyperRect& full) const;
  Point project(const Point& full) const;

  /// True if every attribute the subscription constrains belongs to this
  /// subscheme (i.e. installing here loses no selectivity for LPH).
  bool covers_constraints(const pubsub::Scheme& scheme,
                          const pubsub::Subscription& sub) const;

  /// Number of the subscription's constrained attributes this subscheme has.
  std::size_t constrained_overlap(const pubsub::Scheme& scheme,
                                  const pubsub::Subscription& sub) const;

 private:
  std::string name_;
  std::vector<std::size_t> attrs_;
  lph::ZoneSystem zones_;
  Id rotation_;
  /// Memo of zone -> rotated key. The value is a pure function of the
  /// zone, so which thread inserts it is irrelevant to determinism, but
  /// the map itself is shared by every shard (parallel engine) — guarded
  /// by a reader/writer lock, behind a pointer so Subscheme stays movable.
  struct KeyCache {
    mutable std::shared_mutex mu;
    std::unordered_map<std::uint64_t, Id> map;
  };
  std::unique_ptr<KeyCache> key_cache_ = std::make_unique<KeyCache>();
};

/// Options controlling how a scheme is laid out on the overlay.
struct SchemeOptions {
  lph::ZoneSystem::Config zone_cfg;  ///< base/levels for all subschemes
  bool rotate = true;                ///< zone-mapping rotation (§4)
  /// Attribute partitions; empty means one subscheme with all attributes.
  std::vector<std::vector<std::size_t>> subschemes;
};

/// A scheme plus its overlay layout.
class SchemeRuntime {
 public:
  SchemeRuntime(pubsub::Scheme scheme, const SchemeOptions& options);

  const pubsub::Scheme& scheme() const noexcept { return scheme_; }
  std::size_t subscheme_count() const noexcept { return subs_.size(); }
  const Subscheme& subscheme(std::size_t i) const { return subs_[i]; }

  /// The subscheme a subscription installs into: the smallest one covering
  /// all constrained attributes, else the one covering the most.
  std::size_t choose_subscheme(const pubsub::Subscription& sub) const;

 private:
  pubsub::Scheme scheme_;
  std::vector<Subscheme> subs_;
};

}  // namespace hypersub::core
