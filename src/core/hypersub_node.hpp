#pragma once
// Per-node HyperSub state: the subscriber-side repository, the hosted zone
// repositories (virtual nodes), and migrated-in buckets accepted from
// overloaded peers.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/wire.hpp"
#include "core/flat_map.hpp"
#include "core/zone_chain.hpp"
#include "core/zone_state.hpp"
#include "net/topology.hpp"

namespace hypersub::core {

/// Subscriptions accepted from an overloaded peer, keyed by bucket token.
/// Large buckets carry a matching index (index slots == arena refs == the
/// dense 0..n-1 acceptance order; the repo is append-never after
/// acceptance, so no slot bookkeeping).
struct MigratedRepo {
  Id origin_zone_key = 0;  ///< zone the subs were extracted from
  SubArena subs;           ///< full entries (SoA), exact matching
  SubIndex index;          ///< over subs' full-space ranges
  bool indexed = false;

  /// Append the owners of the subs matching `p` (exact), in acceptance
  /// order.
  void match(const Point& p, std::vector<SubId>& out,
             std::vector<std::uint32_t>& scratch) const;
};

/// All pub/sub state hosted by one simulated node.
class HyperSubNode {
 public:
  HyperSubNode(net::HostIndex host, Id node_id,
               std::size_t index_threshold = ZoneState::kDefaultIndexThreshold,
               bool cover_aggregation = false)
      : host_(host),
        node_id_(node_id),
        index_threshold_(index_threshold),
        cover_(cover_aggregation) {}

  net::HostIndex host() const noexcept { return host_; }
  Id node_id() const noexcept { return node_id_; }

  // -- subscriber side -----------------------------------------------------

  /// Allocate the next internal id for a subscription owned by this node.
  /// Iids are dense (1..n), which is what lets the subscriber-side store
  /// index by iid instead of hashing.
  std::uint32_t next_iid() { return ++iid_counter_; }
  void record_local(std::uint32_t iid, const pubsub::Subscription& sub);
  bool erase_local(std::uint32_t iid);

  /// The full-space range recorded for `iid`; nullopt if unknown or
  /// erased. Materializes a copy — the unsubscribe path only.
  std::optional<pubsub::Subscription> local_sub(std::uint32_t iid) const;
  std::size_t local_sub_count() const noexcept { return local_live_; }

  // -- surrogate side (hosted zones) ----------------------------------------

  /// Find-or-create the state of a hosted zone; indexes its rotated key for
  /// kRendezvous/kZone dispatch.
  ZoneState& zone_state(const ZoneAddr& addr, Id rotated_key);

  /// Zone dispatch by rotated key. NOTE: a zone key aliases the keys of its
  /// rightmost descendants (right-padding with β-1 digits), so one key can
  /// legitimately address a whole leaf-to-ancestor chain of zones — all
  /// hosted by the same surrogate node. Returns every zone indexed under
  /// the key (empty if none).
  std::vector<ZoneState*> find_zones_by_key(Id rotated_key);

  /// Allocation-free variant for the delivery hot path: appends the zones
  /// under the key to a caller-held scratch vector.
  void append_zones_by_key(Id rotated_key, std::vector<ZoneState*>& out);

  /// First zone under the key, if any (test convenience).
  const ZoneState* find_zone_by_key(Id rotated_key) const;

  /// All hosted zones (iteration order unspecified).
  std::unordered_map<ZoneAddr, ZoneState, ZoneAddrHash>& zones() {
    return zones_;
  }
  const std::unordered_map<ZoneAddr, ZoneState, ZoneAddrHash>& zones() const {
    return zones_;
  }

  /// Path-compressed structural zone chains hosted by this node (populated
  /// only when the system's compression is enabled; see zone_chain.hpp).
  ZoneChainSet& chains() noexcept { return chains_; }
  const ZoneChainSet& chains() const noexcept { return chains_; }

  // -- replicated zone state (robustness extension) ---------------------------

  /// Drop a hosted zone and its key-index entry (ownership handed off to
  /// another node). No-op if the zone is not hosted here.
  void erase_zone(const ZoneAddr& addr, Id rotated_key);

  /// Find-or-create replica state of a zone whose primary lives elsewhere.
  /// Replicas are matched only after the primary's failure promotes this
  /// node to owner of the key.
  ZoneState& replica_zone_state(const ZoneAddr& addr, Id rotated_key);
  std::vector<ZoneState*> find_replica_zones_by_key(Id rotated_key);
  void append_replica_zones_by_key(Id rotated_key,
                                   std::vector<ZoneState*>& out);
  std::size_t replica_zone_count() const noexcept {
    return replica_zones_.size();
  }

  /// Drop a replica copy and its key-index entry (superseded by a primary
  /// install or a re-seeded image). No-op if no replica exists.
  void erase_replica_zone(const ZoneAddr& addr, Id rotated_key);

  // -- migrated-in buckets ---------------------------------------------------

  /// Accept a migration: returns the bucket token.
  std::uint32_t accept_migration(Id origin_zone_key,
                                 std::vector<StoredSub> subs);
  const MigratedRepo* find_migrated(std::uint32_t token) const;
  const std::unordered_map<std::uint32_t, MigratedRepo>& migrated_in() const {
    return migrated_in_;
  }

  // -- load ------------------------------------------------------------------

  /// The paper's load metric (§4: "load on node is measured as the number
  /// of subscriptions stored on the node"): subscriptions stored in hosted
  /// zones, migrated-bucket pointers, and migrated-in subscriptions.
  /// Structural summary-filter pieces are NOT included — they are not
  /// migratable, and Fig. 4 (migration halves the max load) is only
  /// consistent with the subscription-count reading.
  std::size_t load() const;

  /// Piece-inclusive storage footprint: everything in load() plus the
  /// summary-filter pieces registered into hosted zones. Implicit chain
  /// members count one piece entry each, so the footprint is independent
  /// of whether a structural zone is materialized or compressed.
  std::size_t stored_entries() const;

  /// Attributable memory estimate of this node's pub/sub state, split so
  /// the zone-tree representation (the compression target) is separable
  /// from subscription storage. All numbers are allocator-level estimates
  /// (capacities, not sizes; map overhead approximated).
  struct ZoneMemoryBreakdown {
    std::size_t materialized_zones = 0;  ///< ZoneState count
    std::size_t chain_records = 0;       ///< CompressedChain count
    std::size_t implicit_zones = 0;      ///< sum of chain spans
    std::size_t zone_bytes = 0;       ///< ZoneState structs + structural heap
    std::size_t chain_bytes = 0;      ///< chain records + chain key index
    std::size_t key_index_bytes = 0;  ///< zones_by_key_ map + addr vectors
    std::size_t sub_bytes = 0;  ///< SubStores + local store + migrated repos

    std::size_t zone_tree_bytes() const noexcept {
      return zone_bytes + chain_bytes + key_index_bytes;
    }
  };
  ZoneMemoryBreakdown memory_breakdown() const;

  // -- state transfer / checkpointing ---------------------------------------

  /// Serialize everything this node hosts: subscriber-side store, hosted
  /// zones (keyed, preserving per-key registration order), replica zones,
  /// compressed chains (wire v2+), migrated-in buckets, and the id/token
  /// counters. Map iteration is by sorted key, so the bytes are
  /// deterministic. Writing a v1 image requires an empty chain set.
  void save(common::ByteWriter& w,
            std::uint32_t version = common::kWireVersion) const;

  /// Rebuild from save()'s encoding; replaces all current state. `version`
  /// is the image's format (v1 images carry no chain section).
  void restore(common::ByteReader& r,
               std::uint32_t version = common::kWireVersion);

  /// Drop all surrogate-side state (hosted zones, replicas, chains,
  /// migrated-in buckets) ahead of a protocol rejoin: the node re-acquires
  /// zone state through transfer. Subscriber-side entries and the iid
  /// counter are kept — this node's own subscriptions stay installed in
  /// the system.
  void reset_surrogate_state();

 private:
  // Subscriber-side SoA store: entry iid-1 holds the range's offset into
  // one shared interval pool (iids are dense, so no hashing); erase marks
  // the entry dead and leaves the pool space behind (unsubscribe churn is
  // negligible next to the per-map-node overhead this replaces).
  struct LocalEntry {
    std::uint32_t off = 0;
    std::uint16_t dims = 0;
    bool live = false;
  };

  net::HostIndex host_;
  Id node_id_;
  std::size_t index_threshold_;
  bool cover_ = false;  // forwarded into every hosted ZoneState
  std::uint32_t iid_counter_ = 0;
  std::uint32_t token_counter_ = 0;
  std::vector<LocalEntry> local_entries_;  // index = iid - 1
  std::vector<Interval> local_pool_;
  std::size_t local_live_ = 0;
  std::unordered_map<ZoneAddr, ZoneState, ZoneAddrHash> zones_;
  // Key indexes are open-addressing flat maps: at saturation scale the
  // node-based unordered_map paid one allocation plus bucket/next pointers
  // per entry on top of the address vector payload.
  FlatMap<Id, std::vector<ZoneAddr>> zones_by_key_;
  std::unordered_map<ZoneAddr, ZoneState, ZoneAddrHash> replica_zones_;
  FlatMap<Id, std::vector<ZoneAddr>> replicas_by_key_;
  ZoneChainSet chains_;
  std::unordered_map<std::uint32_t, MigratedRepo> migrated_in_;
};

}  // namespace hypersub::core
