#pragma once
// Per-zone subscription index for rendezvous event matching.
//
// ZoneState::match used to scan every stored subscription per event, so a
// zone holding S subscriptions paid O(S * d) per event regardless of how
// few actually match. SubIndex turns that into near-O(matches): for each
// dimension it derives, from the sorted list of the stored ranges' interval
// endpoints, an equi-depth partition of the axis into at most C cells, and
// keeps per cell a compact bitset (std::vector<uint64_t> words, one bit per
// stored range) of the ranges overlapping that cell. An event point is
// located in one cell per dimension by binary search over the cell
// boundaries; AND-ing the d cell bitsets yields a small candidate set that
// is a guaranteed superset of the true matches, which the caller verifies
// with the exact containment test.
//
// Correctness never depends on the partition: cells are populated by
// closed-interval overlap, so any cell containing the point also carries
// the bit of every range containing the point. The partition only controls
// selectivity, and is re-derived from the current endpoint lists whenever
// the live count doubles (or collapses to half) since the last build, so
// incremental insert/remove between rebuilds stays O(cells touched).
//
// Dimensions whose endpoints are all identical (discrete / equality-only
// attributes, or string attributes pre-mapped to a single code) degenerate
// to one or two cells and simply stop discriminating — the per-dimension
// fallback: those dimensions cost one AND pass and the exact verification
// picks up the slack.
//
// Slots are stable small integers assigned at insert and recycled through a
// free list, so callers can keep side tables indexed by slot.

#include <cstdint>
#include <vector>

#include "common/hyperrect.hpp"

namespace hypersub::core {

class SubIndex {
 public:
  struct Config {
    std::size_t cells_per_dim = 128;  ///< max cells per dimension
    std::size_t rebuild_factor = 2;   ///< rebuild when live count doubles/halves
  };

  SubIndex() = default;
  explicit SubIndex(Config cfg) : cfg_(cfg) {}

  /// Index a range; returns its stable slot. The first insert fixes the
  /// dimensionality; all ranges must share it.
  std::uint32_t insert(const HyperRect& range);

  /// Drop a previously inserted range; its slot is recycled.
  void remove(std::uint32_t slot);

  /// Live (inserted minus removed) range count.
  std::size_t size() const noexcept { return live_; }
  bool empty() const noexcept { return live_ == 0; }

  /// One past the largest slot ever returned (bitset width).
  std::size_t slot_capacity() const noexcept { return rects_.size(); }

  const HyperRect& slot_range(std::uint32_t slot) const { return rects_[slot]; }

  /// Append, in ascending slot order, every slot whose range *may* contain
  /// `p` — a superset of the exact answer; verify candidates exactly.
  void candidates(const Point& p, std::vector<std::uint32_t>& out) const;

  /// Estimated heap footprint (bitset grids + per-slot ranges).
  std::size_t memory_bytes() const noexcept {
    std::size_t bytes = dims_.capacity() * sizeof(Dim) +
                        rects_.capacity() * sizeof(HyperRect) +
                        free_.capacity() * sizeof(std::uint32_t) +
                        scratch_.capacity() * sizeof(std::uint64_t);
    for (const Dim& d : dims_) {
      bytes += d.bounds.capacity() * sizeof(double) +
               d.cells.capacity() * sizeof(std::vector<std::uint64_t>);
      for (const auto& c : d.cells) bytes += c.capacity() * sizeof(std::uint64_t);
    }
    for (const HyperRect& r : rects_) {
      bytes += r.dims().capacity() * sizeof(Interval);
    }
    return bytes;
  }

 private:
  struct Dim {
    std::vector<double> bounds;  ///< inner cell boundaries, ascending
    std::vector<std::vector<std::uint64_t>> cells;  ///< bitset words per cell
  };

  static std::size_t cell_of(const Dim& d, double x);
  void set_bits(const HyperRect& r, std::uint32_t slot);
  void clear_bits(const HyperRect& r, std::uint32_t slot);
  void rebuild();

  Config cfg_;
  std::vector<Dim> dims_;
  std::vector<HyperRect> rects_;     ///< per slot; empty() == free slot
  std::vector<std::uint32_t> free_;  ///< recycled slots
  std::size_t live_ = 0;
  std::size_t built_size_ = 0;  ///< live count at the last rebuild
  mutable std::vector<std::uint64_t> scratch_;  ///< AND accumulator
};

}  // namespace hypersub::core
