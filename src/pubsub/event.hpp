#pragma once
// Events: full-arity equality tuples == points in the content space.

#include <cstdint>
#include <string>

#include "common/hyperrect.hpp"
#include "pubsub/scheme.hpp"

namespace hypersub::pubsub {

/// A published event: one value per scheme attribute, plus a sequence
/// number assigned by the publishing layer (used to key metrics).
struct Event {
  std::uint64_t seq = 0;
  Point point;

  std::string to_string() const;
};

/// Validate an event against a scheme (arity + domain bounds).
bool valid_event(const Scheme& scheme, const Event& e);

}  // namespace hypersub::pubsub
