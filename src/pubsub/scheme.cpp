#include "pubsub/scheme.hpp"

#include <cassert>

namespace hypersub::pubsub {

Scheme::Scheme(std::string name, std::vector<Attribute> attributes)
    : name_(std::move(name)), attrs_(std::move(attributes)) {
  assert(!attrs_.empty());
  std::vector<Interval> dims;
  dims.reserve(attrs_.size());
  for (const auto& a : attrs_) {
    assert(a.domain.lo < a.domain.hi);
    dims.push_back(a.domain);
  }
  domain_ = HyperRect(std::move(dims));
}

std::size_t Scheme::index_of(const std::string& attr_name) const {
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == attr_name) return i;
  }
  return attrs_.size();
}

bool Scheme::contains(const Point& p) const {
  return p.size() == attrs_.size() && domain_.contains(p);
}

}  // namespace hypersub::pubsub
