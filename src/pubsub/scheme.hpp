#pragma once
// Content-based pub/sub data model (paper §3.1, after Fabret et al.).
//
// A scheme S = {A1..An} declares named, bounded numeric attributes. An
// event assigns a value to every attribute (a point in the content space);
// a subscription is a conjunction of per-attribute range predicates (a
// hyper-cuboid). String prefix/suffix predicates are assumed converted to
// numeric ranges upstream, exactly as the paper does.

#include <cstddef>
#include <string>
#include <vector>

#include "common/hyperrect.hpp"
#include "common/interval.hpp"

namespace hypersub::pubsub {

/// One attribute of a pub/sub scheme: a name and a bounded numeric domain.
struct Attribute {
  std::string name;
  Interval domain;
};

/// A pub/sub scheme: an ordered attribute list. The content space is the
/// cartesian product of the attribute domains.
class Scheme {
 public:
  Scheme(std::string name, std::vector<Attribute> attributes);

  const std::string& name() const noexcept { return name_; }
  std::size_t arity() const noexcept { return attrs_.size(); }
  const Attribute& attribute(std::size_t i) const { return attrs_[i]; }
  const std::vector<Attribute>& attributes() const noexcept { return attrs_; }

  /// Index of the attribute with the given name; arity() if absent.
  std::size_t index_of(const std::string& attr_name) const;

  /// The full content space as a hyper-rectangle.
  const HyperRect& domain() const noexcept { return domain_; }

  /// True if `p` has the right arity and every coordinate is in-domain.
  bool contains(const Point& p) const;

 private:
  std::string name_;
  std::vector<Attribute> attrs_;
  HyperRect domain_;
};

}  // namespace hypersub::pubsub
