#include "pubsub/subscription.hpp"

#include <algorithm>
#include <cassert>

namespace hypersub::pubsub {

Subscription Subscription::from_predicates(const Scheme& scheme,
                                           std::span<const Predicate> preds) {
  std::vector<Interval> dims;
  dims.reserve(scheme.arity());
  for (std::size_t i = 0; i < scheme.arity(); ++i) {
    dims.push_back(scheme.attribute(i).domain);
  }
  for (const auto& p : preds) {
    assert(p.attribute < scheme.arity());
    const Interval dom = scheme.attribute(p.attribute).domain;
    Interval r{std::max(p.range.lo, dom.lo), std::min(p.range.hi, dom.hi)};
    Interval& cur = dims[p.attribute];
    // Conjunction of several predicates on one attribute = intersection.
    if (cur.overlaps(r)) {
      cur = cur.intersect(r);
    } else {
      cur = Interval{r.lo, r.lo};  // unsatisfiable; degenerate point
    }
  }
  return Subscription(HyperRect(std::move(dims)));
}

std::size_t Subscription::constrained_count(const Scheme& scheme) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < scheme.arity(); ++i) {
    if (range_.dim(i) != scheme.attribute(i).domain) ++n;
  }
  return n;
}

}  // namespace hypersub::pubsub
