#pragma once
// Subscriptions: conjunctions of range predicates == hyper-cuboids.

#include <cstddef>
#include <span>
#include <vector>

#include "common/hyperrect.hpp"
#include "pubsub/scheme.hpp"

namespace hypersub::pubsub {

/// One range predicate on one attribute. An equality predicate is a
/// degenerate range (lo == hi).
struct Predicate {
  std::size_t attribute = 0;
  Interval range;
};

/// A subscription over a scheme: a hyper-cuboid covering exactly the events
/// the subscriber wants. Attributes without predicates span their full
/// domain (paper §3.1).
class Subscription {
 public:
  Subscription() = default;
  explicit Subscription(HyperRect range) : range_(std::move(range)) {}

  /// Build from a predicate list; unspecified attributes default to the
  /// whole domain. Predicates are clamped into the attribute domain.
  /// Multiple predicates on one attribute intersect (the paper instead
  /// splits them into several subscriptions; intersection is equivalent for
  /// conjunctive semantics).
  static Subscription from_predicates(const Scheme& scheme,
                                      std::span<const Predicate> preds);

  const HyperRect& range() const noexcept { return range_; }

  /// True if event point `p` satisfies every predicate.
  bool matches(const Point& p) const { return range_.contains(p); }

  /// Fraction of attributes actually constrained (narrower than domain) —
  /// used by the subscheme router.
  std::size_t constrained_count(const Scheme& scheme) const;

  friend bool operator==(const Subscription&, const Subscription&) = default;

 private:
  HyperRect range_;
};

}  // namespace hypersub::pubsub
