#include "pubsub/event.hpp"

#include <sstream>

namespace hypersub::pubsub {

std::string Event::to_string() const {
  std::ostringstream os;
  os << "event#" << seq << '(';
  for (std::size_t i = 0; i < point.size(); ++i) {
    if (i) os << ',';
    os << point[i];
  }
  os << ')';
  return os.str();
}

bool valid_event(const Scheme& scheme, const Event& e) {
  return scheme.contains(e.point);
}

}  // namespace hypersub::pubsub
