#include "pubsub/strings.hpp"

#include <algorithm>

namespace hypersub::pubsub {

namespace {
constexpr std::size_t kResolutionBytes = 8;
}

double string_to_unit(std::string_view s) {
  double value = 0.0;
  double scale = 1.0 / 256.0;
  const std::size_t n = std::min(s.size(), kResolutionBytes);
  for (std::size_t i = 0; i < n; ++i) {
    value += double(static_cast<unsigned char>(s[i])) * scale;
    scale /= 256.0;
  }
  return value;
}

Interval prefix_range(std::string_view prefix) {
  if (prefix.empty()) return Interval{0.0, 1.0};
  const double lo = string_to_unit(prefix);
  // Upper bound: the prefix with its last in-resolution byte bumped by one
  // — every string starting with `prefix` embeds below it.
  const std::size_t n = std::min(prefix.size(), kResolutionBytes);
  double width = 1.0;
  for (std::size_t i = 0; i < n; ++i) width /= 256.0;
  return Interval{lo, lo + width};
}

Interval exact_range(std::string_view value) {
  const double v = string_to_unit(value);
  return Interval{v, v};
}

std::string reversed(std::string_view s) {
  return std::string(s.rbegin(), s.rend());
}

}  // namespace hypersub::pubsub
