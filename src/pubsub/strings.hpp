#pragma once
// String attributes (paper §3.1: "the prefix and suffix predicates on
// string type attributes can be converted to numerical ranges").
//
// Strings are embedded into [0, 1) preserving lexicographic order (the
// first 8 bytes decide; longer strings collide with their 8-byte prefix,
// which is safe for range predicates: a containment test may widen, never
// narrow, and exact matching of the original strings happens at the
// subscriber if needed). Prefix predicates become half-open numeric
// ranges; suffix predicates become prefix predicates over a reversed
// shadow attribute.

#include <string>
#include <string_view>

#include "common/interval.hpp"

namespace hypersub::pubsub {

/// Order-preserving embedding of a string into [0, 1):
/// sum of byte[i] / 256^(i+1) over the first 8 bytes.
double string_to_unit(std::string_view s);

/// Numeric interval covering exactly the strings starting with `prefix`
/// (up to the embedding's 8-byte resolution). An empty prefix covers the
/// whole domain [0, 1].
Interval prefix_range(std::string_view prefix);

/// Equality predicate for a full string value (degenerate interval).
Interval exact_range(std::string_view value);

/// Reversed copy — index this on a shadow attribute so a suffix predicate
/// "*xyz" becomes the prefix predicate "zyx*".
std::string reversed(std::string_view s);

}  // namespace hypersub::pubsub
