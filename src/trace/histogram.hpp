#pragma once
// Fixed-bucket log2 histograms for the telemetry layer.
//
// The tail is what matters in dissemination latency/hops/fan-out (the
// paper's Figs. 2-5 are all distributions), so the histogram keeps 64
// power-of-two buckets — constant memory regardless of run length — and
// answers nearest-rank percentile queries (p50/p95/p99/max) from the
// bucket counts. Bucket b holds samples in [2^(b-1), 2^b) (bucket 0 holds
// everything below 1), so relative error of a quantile is at most 2x —
// plenty for tail *shape*, which is what the report tables show. The exact
// max is tracked separately.

#include <cstddef>
#include <cstdint>
#include <array>

namespace hypersub::trace {

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(double v);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ ? sum_ / double(count_) : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  /// Nearest-rank quantile estimate, q in [0,1]: the upper edge of the
  /// bucket holding the rank'th sample (the max for q -> 1).
  double quantile(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

  Histogram& operator+=(const Histogram& o);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hypersub::trace
