#pragma once
// Exporters and offline analysis over a Tracer's span log.
//
//   * write_jsonl    — one span object per line; the exchange format
//                      tools/trace_report.py consumes.
//   * write_perfetto — Chrome/Perfetto trace_event JSON (load the file in
//                      ui.perfetto.dev): one process, one track (tid) per
//                      node, virtual-time timestamps (ms -> us), complete
//                      "X" events for closed spans and instant "i" events
//                      for spans that never completed (lost messages).
//   * summarize      — per-trace roll-up into log2 histograms: end-to-end
//                      delivery latency, delivery hops, per-match fan-out —
//                      the distributions the paper's Fig. 2 plots, derived
//                      from spans instead of bespoke counters.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/histogram.hpp"
#include "trace/tracer.hpp"

namespace hypersub::trace {

/// One span per line as a flat JSON object. Returns spans written.
std::size_t write_jsonl(const Tracer& tracer, std::ostream& os);

/// Chrome trace_event JSON (Perfetto-compatible). Returns events written.
std::size_t write_perfetto(const Tracer& tracer, std::ostream& os);

/// Convenience: open `path` and write; returns false on I/O failure.
bool write_jsonl_file(const Tracer& tracer, const std::string& path);
bool write_perfetto_file(const Tracer& tracer, const std::string& path);

/// Distribution roll-up over every event trace in the log.
struct TraceSummary {
  std::size_t event_traces = 0;     ///< traces rooted at a publish span
  std::size_t complete_traces = 0;  ///< ... with >=1 delivery and no open
                                    ///< forward edges (nothing lost)
  std::size_t deliveries = 0;       ///< deliver spans across all traces
  std::size_t retries = 0;          ///< retry spans (reliable channel)
  std::size_t reroutes = 0;         ///< reroute spans (failover resends)
  std::size_t drops = 0;            ///< drop spans (unmasked losses)
  Histogram latency_ms;             ///< publish -> each delivery
  Histogram hops;                   ///< per delivery
  Histogram fanout;                 ///< children per match span
};

TraceSummary summarize(const Tracer& tracer);

}  // namespace hypersub::trace
