#pragma once
// Per-node bandwidth time series sampled on the virtual clock.
//
// Network keeps cumulative per-host byte counters; this sampler snapshots
// them every `period_ms` of virtual time and stores the per-period deltas,
// turning the end-of-run totals into a time series ("what did node 17's
// traffic look like during the churn burst"). One flat row per tick keeps
// memory proportional to ticks * hosts; callers choose the period to fit.
//
// Header-only on purpose: the trace library proper sits *below* hypersub_net
// in the link order (the reliable channel records retry spans), so this
// helper — the one trace component that drives a Network — stays inline and
// links with whatever binary includes it.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "net/network.hpp"

namespace hypersub::trace {

class BandwidthSampler {
 public:
  struct Tick {
    double t_ms = 0.0;
    /// Per-host bytes (in + out) during the period ending at t_ms.
    std::vector<std::uint64_t> bytes;
  };

  /// The network is not owned and must outlive the sampler.
  BandwidthSampler(net::Network& net, double period_ms)
      : net_(net), period_ms_(period_ms) {}

  /// Begin sampling from the current virtual time. The sampler re-arms
  /// itself until stop(); a stopped sampler leaves no pending events once
  /// its final queued tick fires.
  void start() {
    running_ = true;
    last_.assign(net_.size(), 0);
    for (net::HostIndex h = 0; h < net_.size(); ++h) {
      const auto& t = net_.traffic(h);
      last_[h] = t.bytes_in + t.bytes_out;
    }
    arm();
  }
  void stop() noexcept { running_ = false; }

  const std::vector<Tick>& ticks() const noexcept { return ticks_; }
  double period_ms() const noexcept { return period_ms_; }

  /// Compact JSON: {"period_ms": P, "hosts": H, "ticks": [{"t": T,
  /// "bytes": [...]}, ...]}.
  std::string to_json() const {
    std::string out;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"period_ms\": %.3f, \"hosts\": %zu,",
                  period_ms_, net_.size());
    out += buf;
    out += " \"ticks\": [";
    for (std::size_t i = 0; i < ticks_.size(); ++i) {
      if (i > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "{\"t\": %.3f, \"bytes\": [",
                    ticks_[i].t_ms);
      out += buf;
      for (std::size_t h = 0; h < ticks_[i].bytes.size(); ++h) {
        if (h > 0) out += ',';
        std::snprintf(buf, sizeof(buf), "%llu",
                      (unsigned long long)ticks_[i].bytes[h]);
        out += buf;
      }
      out += "]}";
    }
    out += "]}";
    return out;
  }

 private:
  void arm() {
    net_.simulator().schedule(period_ms_, [this] {
      if (!running_) return;
      sample();
      arm();
    });
  }

  void sample() {
    Tick tick;
    tick.t_ms = net_.simulator().now();
    tick.bytes.resize(net_.size());
    for (net::HostIndex h = 0; h < net_.size(); ++h) {
      const auto& t = net_.traffic(h);
      const std::uint64_t cum = t.bytes_in + t.bytes_out;
      tick.bytes[h] = cum - last_[h];
      last_[h] = cum;
    }
    ticks_.push_back(std::move(tick));
  }

  net::Network& net_;
  double period_ms_;
  bool running_ = false;
  std::vector<std::uint64_t> last_;  ///< cumulative counters at last tick
  std::vector<Tick> ticks_;
};

}  // namespace hypersub::trace
