#pragma once
// Span model of the tracing subsystem (ISSUE 4; cf. SmartPubSub/VCube-PS:
// per-message causal paths are the unit of analysis for overlay
// dissemination).
//
// A *span* is one step of one causal tree: a publish, a routing hop, a
// match pass at a node, a forward edge between two nodes, a delivery, a
// retransmission, a drop. Every span carries the trace id of the tree it
// belongs to and the span id of its parent, so an event's full causal tree
// across nodes — publish → route hops → match → forward fan-out →
// deliver/retry/drop — is reconstructible offline from the flat span log
// (tools/trace_report.py does exactly that).
//
// Timestamps are virtual simulator time in milliseconds. A span with
// end_ms < start_ms is *open*: the edge it describes never completed (the
// message died at a dead host, or the run was cut before the ack).

#include <cstdint>

#include "net/topology.hpp"

namespace hypersub::trace {

/// Identifies one causal tree (one published event, one subscription
/// installation, one migration handoff). 0 = not traced.
using TraceId = std::uint64_t;
/// Identifies one span within a Tracer. 0 = none. Ids encode the execution
/// context (shard) that allocated them in the high bits, so the parallel
/// engine can mint them without coordination and still match a sequential
/// run bit-for-bit.
using SpanId = std::uint64_t;

inline constexpr TraceId kNoTrace = 0;
inline constexpr SpanId kNoSpan = 0;

/// What one span describes. The wire protocol propagates only (trace id,
/// parent span id); kinds are assigned by the recording site.
enum class SpanKind : std::uint8_t {
  kPublish,       ///< root of an event tree; a = event seq
  kMatch,         ///< match pass at a node (Alg. 5); a = hops on arrival
  kForward,       ///< one forwarded event message; a = destination host
  kDeliver,       ///< delivery to a subscriber; a = iid, b = hops
  kRetry,         ///< reliable-channel retransmission; a = attempt number
  kExpire,        ///< all retransmissions exhausted; a = dead next hop
  kReroute,       ///< failover resend around a dead hop; a = new next hop
  kDrop,          ///< unmasked loss (TTL / no viable hop); a = subids lost
  kCacheHit,      ///< publish used a cached rendezvous owner; a = owner host
  kCacheCorrect,  ///< true owner corrected a publisher's cache (miss or
                  ///< stale-hit forward-and-correct); a = publisher host
  kRouteHop,      ///< one DHT lookup hop (install path); a = hop count
  kInstall,       ///< root of a subscription-install tree; a = scheme
  kRegister,      ///< subscription stored at its surrogate; a = iid
  kMigrate,       ///< root of one LB bucket handoff; a = subscriptions moved,
                  ///< b = acceptor host
};

/// Stable lowercase name (exporters, reports).
const char* to_string(SpanKind k) noexcept;

/// One recorded span. `a`/`b` are kind-specific payloads (see SpanKind).
struct Span {
  TraceId trace = kNoTrace;
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  SpanKind kind = SpanKind::kPublish;
  net::HostIndex node = 0;   ///< where the step happened (track in exports)
  double start_ms = 0.0;
  double end_ms = -1.0;      ///< < start_ms means the span never completed
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  bool open() const noexcept { return end_ms < start_ms; }
  double duration_ms() const noexcept { return open() ? 0.0 : end_ms - start_ms; }

  friend bool operator==(const Span&, const Span&) = default;
};

/// The propagated context: which tree a message belongs to and which span
/// caused it. This is what rides in message headers (16 B + 4 B on the
/// wire; the simulator models it as metadata, not accounted bytes, since
/// tracing is an observability harness, not protocol payload).
struct TraceCtx {
  TraceId trace = kNoTrace;
  SpanId parent = kNoSpan;

  bool active() const noexcept { return trace != kNoTrace; }
};

}  // namespace hypersub::trace
