#pragma once
// Tracer: the recording half of the tracing subsystem.
//
// Design constraints (ISSUE 4):
//   * ~zero cost when disabled — instrumented classes hold a raw
//     `trace::Tracer*` that is nullptr by default; every instrumentation
//     site is guarded by one pointer test. Defining HYPERSUB_TRACING=0 at
//     compile time turns that test into a compile-time constant false and
//     the instrumentation folds away entirely (the null tracer "compiles
//     out").
//   * deterministic — trace ids come from a plain counter and the sampling
//     decision is a pure hash of the id, so two runs with the same seed
//     and config produce byte-identical span logs.
//   * bounded — spans append to a flat vector capped at max_spans; beyond
//     the cap new traces are not started (dropped_traces counts them) so a
//     long churn run cannot OOM the harness.
//
// The tracer is shared by every layer of one system instance (pub/sub
// core, reliable channel, Chord routing, load balancer). The simulation
// core is single-threaded, so no locking.

#include <cstdint>
#include <vector>

#include "trace/span.hpp"

namespace hypersub::trace {

// Compile-time master switch. Build with -DHYPERSUB_TRACING=0 to compile
// the instrumentation out of every guarded call site.
#ifndef HYPERSUB_TRACING
#define HYPERSUB_TRACING 1
#endif
inline constexpr bool kCompiledIn = HYPERSUB_TRACING != 0;

class Tracer;

/// Guarded accessor used by instrumented classes: returns the attached
/// tracer, or a compile-time nullptr when tracing is compiled out (the
/// branch and everything behind it fold away).
inline Tracer* maybe(Tracer* t) noexcept;

class Tracer {
 public:
  struct Config {
    /// Hard cap on recorded spans (memory bound for long runs).
    std::size_t max_spans = std::size_t{1} << 22;
  };

  Tracer() = default;
  explicit Tracer(Config cfg) : cfg_(cfg) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // -- trace lifecycle -------------------------------------------------------

  /// Allocate the next trace id and decide whether to record it:
  /// returns the id if sampled, kNoTrace otherwise. The id counter
  /// advances either way, so changing the sample rate never renumbers the
  /// traces that are kept (stable ids across rates, byte-stable across
  /// runs). `sample_rate` in [0,1] is typically Config::trace_sample_rate
  /// of the system being traced.
  TraceId start_trace(double sample_rate);

  /// The deterministic sampling predicate (exposed for tests): a splitmix
  /// hash of the id measured against the rate.
  static bool sampled(TraceId id, double sample_rate) noexcept;

  // -- span recording --------------------------------------------------------

  /// Open a span; returns its id (kNoSpan if the trace is not recorded or
  /// the span cap is hit — always safe to pass back in as a parent).
  SpanId begin(TraceId trace, SpanId parent, SpanKind kind,
               net::HostIndex node, double start_ms, std::uint64_t a = 0,
               std::uint64_t b = 0);

  /// Close a span opened by begin(). kNoSpan is ignored.
  void end(SpanId id, double end_ms);

  /// Record an instantaneous span (start == end).
  SpanId point(TraceId trace, SpanId parent, SpanKind kind,
               net::HostIndex node, double at_ms, std::uint64_t a = 0,
               std::uint64_t b = 0) {
    const SpanId id = begin(trace, parent, kind, node, at_ms, a, b);
    end(id, at_ms);
    return id;
  }

  // -- introspection ---------------------------------------------------------

  const std::vector<Span>& spans() const noexcept { return spans_; }
  std::size_t span_count() const noexcept { return spans_.size(); }
  /// Traces allocated so far (sampled or not).
  std::uint64_t traces_started() const noexcept { return next_trace_; }
  /// Spans refused because the max_spans cap was reached.
  std::uint64_t dropped_spans() const noexcept { return dropped_; }
  const Config& config() const noexcept { return cfg_; }

  /// Drop all recorded spans (e.g. after warm-up). Trace/span id counters
  /// keep advancing — ids stay unique across a reset.
  void reset() {
    spans_.clear();
    dropped_ = 0;
  }

  // -- ambient context -------------------------------------------------------
  // The overlay's route() API predates tracing and cannot carry a trace
  // context parameter without breaking every substrate. Instead the caller
  // parks the context here immediately before the route() call and the
  // substrate reads it synchronously (the simulation core is
  // single-threaded, so nothing can interleave). Cleared by the reader.

  void set_ambient(TraceCtx ctx) noexcept { ambient_ = ctx; }
  TraceCtx take_ambient() noexcept {
    const TraceCtx c = ambient_;
    ambient_ = TraceCtx{};
    return c;
  }

 private:
  Config cfg_;
  std::vector<Span> spans_;
  std::uint64_t next_trace_ = 0;
  std::uint32_t next_span_ = 0;
  std::uint64_t dropped_ = 0;
  TraceCtx ambient_;
};

inline Tracer* maybe(Tracer* t) noexcept {
  if constexpr (!kCompiledIn) return nullptr;
  return t;
}

}  // namespace hypersub::trace
