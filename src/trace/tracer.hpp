#pragma once
// Tracer: the recording half of the tracing subsystem.
//
// Design constraints (ISSUE 4):
//   * ~zero cost when disabled — instrumented classes hold a raw
//     `trace::Tracer*` that is nullptr by default; every instrumentation
//     site is guarded by one pointer test. Defining HYPERSUB_TRACING=0 at
//     compile time turns that test into a compile-time constant false and
//     the instrumentation folds away entirely (the null tracer "compiles
//     out").
//   * deterministic — trace/span ids come from per-execution-context
//     counters (the context is the shard of the event doing the recording,
//     or 0 for main-context work and unbound tracers) encoded into the id's
//     high bits, and the sampling decision is a pure hash of the id. A
//     sequential run and a parallel run therefore mint identical ids, and
//     two runs with the same seed and config produce byte-identical span
//     logs.
//   * bounded — spans append to a flat vector capped at max_spans; beyond
//     the cap new spans are refused (dropped_spans counts them) so a long
//     churn run cannot OOM the harness.
//
// The tracer is shared by every layer of one system instance (pub/sub
// core, reliable channel, Chord routing, load balancer). Under the parallel
// engine, id allocation is per-context (no two workers share a context's
// counters) and span-log mutation is deferred to the window barrier via
// Simulator::defer_ordered, so the log order matches sequential execution.

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/wire.hpp"
#include "trace/span.hpp"

namespace hypersub::sim {
class Simulator;
}

namespace hypersub::trace {

// Compile-time master switch. Build with -DHYPERSUB_TRACING=0 to compile
// the instrumentation out of every guarded call site.
#ifndef HYPERSUB_TRACING
#define HYPERSUB_TRACING 1
#endif
inline constexpr bool kCompiledIn = HYPERSUB_TRACING != 0;

class Tracer;

/// Guarded accessor used by instrumented classes: returns the attached
/// tracer, or a compile-time nullptr when tracing is compiled out (the
/// branch and everything behind it fold away).
inline Tracer* maybe(Tracer* t) noexcept;

class Tracer {
 public:
  struct Config {
    /// Hard cap on recorded spans (memory bound for long runs). Note: under
    /// the parallel engine, which spans are refused when the cap is hit
    /// mid-window is the one thing that is not byte-stable; size max_spans
    /// above the workload so the cap never engages in comparisons.
    std::size_t max_spans = std::size_t{1} << 22;
  };

  Tracer() = default;
  explicit Tracer(Config cfg) : cfg_(cfg) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Attach this tracer to a simulator so ids are minted per execution
  /// context and span-log mutations from worker contexts are deferred to
  /// the window barrier. `max_shards` is the number of shards (hosts) the
  /// simulation uses. Unbound tracers record directly with context 0.
  void bind(sim::Simulator* sim, std::size_t max_shards);

  // -- trace lifecycle -------------------------------------------------------

  /// Allocate the next trace id in the current execution context and decide
  /// whether to record it: returns the id if sampled, kNoTrace otherwise.
  /// The context's counter advances either way, so changing the sample rate
  /// never renumbers the traces that are kept (stable ids across rates,
  /// byte-stable across runs and across thread counts). `sample_rate` in
  /// [0,1] is typically Config::trace_sample_rate of the system being
  /// traced.
  TraceId start_trace(double sample_rate);

  /// The deterministic sampling predicate (exposed for tests): a splitmix
  /// hash of the id measured against the rate.
  static bool sampled(TraceId id, double sample_rate) noexcept;

  // -- span recording --------------------------------------------------------

  /// Open a span; returns its id (kNoSpan if the trace is not recorded or
  /// the span cap is hit — always safe to pass back in as a parent).
  SpanId begin(TraceId trace, SpanId parent, SpanKind kind,
               net::HostIndex node, double start_ms, std::uint64_t a = 0,
               std::uint64_t b = 0);

  /// Close a span opened by begin(). kNoSpan is ignored.
  void end(SpanId id, double end_ms);

  /// Record an instantaneous span (start == end).
  SpanId point(TraceId trace, SpanId parent, SpanKind kind,
               net::HostIndex node, double at_ms, std::uint64_t a = 0,
               std::uint64_t b = 0) {
    const SpanId id = begin(trace, parent, kind, node, at_ms, a, b);
    end(id, at_ms);
    return id;
  }

  // -- introspection ---------------------------------------------------------

  const std::vector<Span>& spans() const noexcept { return spans_; }
  std::size_t span_count() const noexcept { return spans_.size(); }
  /// Traces allocated so far (sampled or not), across all contexts.
  std::uint64_t traces_started() const noexcept;
  /// Spans refused because the max_spans cap was reached.
  std::uint64_t dropped_spans() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  const Config& config() const noexcept { return cfg_; }

  /// Drop all recorded spans (e.g. after warm-up). Trace/span id counters
  /// keep advancing — ids stay unique across a reset.
  void reset() {
    spans_.clear();
    index_.clear();
    dropped_.store(0, std::memory_order_relaxed);
  }

  // -- checkpointing ---------------------------------------------------------

  /// Serialize the span log and the per-context id counters so a restored
  /// run keeps appending exactly where the checkpointed one stopped.
  void save_state(common::ByteWriter& w) const {
    w.u32(std::uint32_t(trace_ctr_.size()));
    for (const std::uint64_t c : trace_ctr_) w.u64(c);
    w.u32(std::uint32_t(span_ctr_.size()));
    for (const std::uint64_t c : span_ctr_) w.u64(c);
    w.u64(dropped_.load(std::memory_order_relaxed));
    w.u64(spans_.size());
    for (const Span& s : spans_) {
      w.u64(s.trace);
      w.u64(s.id);
      w.u64(s.parent);
      w.u8(std::uint8_t(s.kind));
      w.u64(std::uint64_t(s.node));
      w.f64(s.start_ms);
      w.f64(s.end_ms);
      w.u64(s.a);
      w.u64(s.b);
    }
  }

  void restore_state(common::ByteReader& r) {
    trace_ctr_.assign(r.u32(), 0);
    for (std::uint64_t& c : trace_ctr_) c = r.u64();
    span_ctr_.assign(r.u32(), 0);
    for (std::uint64_t& c : span_ctr_) c = r.u64();
    dropped_.store(r.u64(), std::memory_order_relaxed);
    spans_.clear();
    index_.clear();
    const std::size_t n = std::size_t(r.u64());
    spans_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Span s;
      s.trace = r.u64();
      s.id = r.u64();
      s.parent = r.u64();
      s.kind = SpanKind(r.u8());
      s.node = net::HostIndex(r.u64());
      s.start_ms = r.f64();
      s.end_ms = r.f64();
      s.a = r.u64();
      s.b = r.u64();
      index_.emplace(s.id, spans_.size());
      spans_.push_back(s);
    }
  }

  // -- ambient context -------------------------------------------------------
  // The overlay's route() API predates tracing and cannot carry a trace
  // context parameter without breaking every substrate. Instead the caller
  // parks the context here immediately before the route() call and the
  // substrate reads it synchronously (nothing can interleave within one
  // event execution, and the slot is thread-local so parallel workers do
  // not share it). Cleared by the reader.

  static void set_ambient(TraceCtx ctx) noexcept;
  static TraceCtx take_ambient() noexcept;

 private:
  /// 0 for main-context / exclusive / unbound recording, shard+1 for
  /// events executing on a shard. Identical in sequential and parallel
  /// runs because both track the executing event's shard.
  std::size_t context_index() const noexcept;
  void append(const Span& s);
  void set_end(SpanId id, double end_ms);

  Config cfg_;
  std::vector<Span> spans_;
  std::unordered_map<SpanId, std::size_t> index_;  ///< span id -> spans_ slot
  sim::Simulator* sim_ = nullptr;
  std::vector<std::uint64_t> trace_ctr_{0};  ///< per-context trace counters
  std::vector<std::uint64_t> span_ctr_{0};   ///< per-context span counters
  std::atomic<std::uint64_t> dropped_{0};
};

inline Tracer* maybe(Tracer* t) noexcept {
  if constexpr (!kCompiledIn) return nullptr;
  return t;
}

}  // namespace hypersub::trace
