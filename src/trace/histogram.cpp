#include "trace/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace hypersub::trace {

namespace {

std::size_t bucket_of(double v) {
  if (!(v >= 1.0)) return 0;  // also catches NaN
  const auto u = std::uint64_t(std::min(v, 0x1.0p63));
  // Bit width of u: bucket b covers [2^(b-1), 2^b).
  std::size_t b = 0;
  for (std::uint64_t x = u; x != 0; x >>= 1) ++b;
  return std::min(b, Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::add(double v) {
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  max_ = count_ == 1 ? v : std::max(max_, v);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest rank, 1-based: ceil(q * n), at least 1.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(count_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      // Upper edge of the bucket, clamped to the observed max so q=1
      // reports the true maximum.
      const double edge = b == 0 ? 1.0 : std::ldexp(1.0, int(b));
      return std::min(edge, max_);
    }
  }
  return max_;
}

Histogram& Histogram::operator+=(const Histogram& o) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
  if (o.count_ > 0) {
    max_ = count_ == 0 ? o.max_ : std::max(max_, o.max_);
  }
  count_ += o.count_;
  sum_ += o.sum_;
  return *this;
}

}  // namespace hypersub::trace
