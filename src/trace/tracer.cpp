#include "trace/tracer.hpp"

#include <cassert>

#include "sim/simulator.hpp"

namespace hypersub::trace {

const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kPublish: return "publish";
    case SpanKind::kMatch: return "match";
    case SpanKind::kForward: return "forward";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kRetry: return "retry";
    case SpanKind::kExpire: return "expire";
    case SpanKind::kReroute: return "reroute";
    case SpanKind::kDrop: return "drop";
    case SpanKind::kCacheHit: return "cache_hit";
    case SpanKind::kCacheCorrect: return "cache_correct";
    case SpanKind::kRouteHop: return "route_hop";
    case SpanKind::kInstall: return "install";
    case SpanKind::kRegister: return "register";
    case SpanKind::kMigrate: return "migrate";
  }
  return "?";
}

namespace {

/// splitmix64 finalizer: a cheap, well-mixed hash of the trace id. The
/// sampling decision must be a pure function of the id so that runs are
/// reproducible and a trace is either fully recorded or fully absent.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Contexts are packed into the id's top 24 bits; 2^40 ids per context is
/// far beyond any simulated workload.
constexpr unsigned kCtxShift = 40;

/// Ambient trace context. Thread-local rather than a tracer member so that
/// parallel workers (and run_experiments_parallel's per-experiment threads)
/// each see their own slot; the set/take pair is always synchronous within
/// one event execution on one thread.
thread_local TraceCtx g_ambient;

}  // namespace

void Tracer::set_ambient(TraceCtx ctx) noexcept { g_ambient = ctx; }

TraceCtx Tracer::take_ambient() noexcept {
  const TraceCtx c = g_ambient;
  g_ambient = TraceCtx{};
  return c;
}

void Tracer::bind(sim::Simulator* sim, std::size_t max_shards) {
  sim_ = sim;
  // Preserve context 0's counters across a re-bind so ids stay unique.
  trace_ctr_.resize(max_shards + 1, 0);
  span_ctr_.resize(max_shards + 1, 0);
}

std::size_t Tracer::context_index() const noexcept {
  if (sim_ == nullptr) return 0;
  const sim::Shard s = sim_->current_shard();
  return s == sim::kNoShard ? 0 : std::size_t{s} + 1;
}

bool Tracer::sampled(TraceId id, double sample_rate) noexcept {
  if (sample_rate >= 1.0) return true;
  if (sample_rate <= 0.0) return false;
  // Compare the hash's top 53 bits (exactly representable in a double)
  // against the rate.
  const double u = double(mix(id) >> 11) * 0x1.0p-53;
  return u < sample_rate;
}

TraceId Tracer::start_trace(double sample_rate) {
  const std::size_t ctx = context_index();
  assert(ctx < trace_ctr_.size() && "tracer bound with too few shards");
  const TraceId id = (TraceId(ctx + 1) << kCtxShift) | ++trace_ctr_[ctx];
  return sampled(id, sample_rate) ? id : kNoTrace;
}

std::uint64_t Tracer::traces_started() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t c : trace_ctr_) n += c;
  return n;
}

void Tracer::append(const Span& s) {
  if (spans_.size() >= cfg_.max_spans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  index_.emplace(s.id, spans_.size());
  spans_.push_back(s);
}

void Tracer::set_end(SpanId id, double end_ms) {
  if (const auto it = index_.find(id); it != index_.end()) {
    spans_[it->second].end_ms = end_ms;
  }
}

SpanId Tracer::begin(TraceId trace, SpanId parent, SpanKind kind,
                     net::HostIndex node, double start_ms, std::uint64_t a,
                     std::uint64_t b) {
  if (trace == kNoTrace) return kNoSpan;
  // Approximate admission check: spans_ is only mutated at window barriers
  // (or directly in sequential mode), so reading its size from a worker is
  // race-free but does not count same-window pending appends; append()
  // re-checks the cap so the bound itself is hard.
  if (spans_.size() >= cfg_.max_spans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return kNoSpan;
  }
  const std::size_t ctx = context_index();
  assert(ctx < span_ctr_.size() && "tracer bound with too few shards");
  const SpanId id = (SpanId(ctx + 1) << kCtxShift) | ++span_ctr_[ctx];
  Span s;
  s.trace = trace;
  s.id = id;
  s.parent = parent;
  s.kind = kind;
  s.node = node;
  s.start_ms = start_ms;
  s.end_ms = -1.0;
  s.a = a;
  s.b = b;
  if (sim_ != nullptr && sim_->in_worker_context()) {
    sim_->defer_ordered([this, s] { append(s); });
  } else {
    append(s);
  }
  return id;
}

void Tracer::end(SpanId id, double end_ms) {
  if (id == kNoSpan) return;
  if (sim_ != nullptr && sim_->in_worker_context()) {
    sim_->defer_ordered([this, id, end_ms] { set_end(id, end_ms); });
  } else {
    set_end(id, end_ms);
  }
}

}  // namespace hypersub::trace
