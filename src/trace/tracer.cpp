#include "trace/tracer.hpp"

namespace hypersub::trace {

const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kPublish: return "publish";
    case SpanKind::kMatch: return "match";
    case SpanKind::kForward: return "forward";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kRetry: return "retry";
    case SpanKind::kExpire: return "expire";
    case SpanKind::kReroute: return "reroute";
    case SpanKind::kDrop: return "drop";
    case SpanKind::kCacheHit: return "cache_hit";
    case SpanKind::kCacheCorrect: return "cache_correct";
    case SpanKind::kRouteHop: return "route_hop";
    case SpanKind::kInstall: return "install";
    case SpanKind::kRegister: return "register";
    case SpanKind::kMigrate: return "migrate";
  }
  return "?";
}

namespace {

/// splitmix64 finalizer: a cheap, well-mixed hash of the trace id. The
/// sampling decision must be a pure function of the id so that runs are
/// reproducible and a trace is either fully recorded or fully absent.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool Tracer::sampled(TraceId id, double sample_rate) noexcept {
  if (sample_rate >= 1.0) return true;
  if (sample_rate <= 0.0) return false;
  // Compare the hash's top 53 bits (exactly representable in a double)
  // against the rate.
  const double u = double(mix(id) >> 11) * 0x1.0p-53;
  return u < sample_rate;
}

TraceId Tracer::start_trace(double sample_rate) {
  const TraceId id = ++next_trace_;
  return sampled(id, sample_rate) ? id : kNoTrace;
}

SpanId Tracer::begin(TraceId trace, SpanId parent, SpanKind kind,
                     net::HostIndex node, double start_ms, std::uint64_t a,
                     std::uint64_t b) {
  if (trace == kNoTrace) return kNoSpan;
  if (spans_.size() >= cfg_.max_spans) {
    ++dropped_;
    return kNoSpan;
  }
  Span s;
  s.trace = trace;
  s.id = ++next_span_;
  s.parent = parent;
  s.kind = kind;
  s.node = node;
  s.start_ms = start_ms;
  s.end_ms = -1.0;
  s.a = a;
  s.b = b;
  spans_.push_back(s);
  return s.id;
}

void Tracer::end(SpanId id, double end_ms) {
  if (id == kNoSpan) return;
  // Spans are appended in id order but reset() keeps the id counter
  // running, so the vector index is (id - id of the first stored span).
  if (spans_.empty()) return;
  const SpanId first = spans_.front().id;
  if (id < first) return;
  const std::size_t idx = id - first;
  if (idx >= spans_.size()) return;
  spans_[idx].end_ms = end_ms;
}

}  // namespace hypersub::trace
