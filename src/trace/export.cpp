#include "trace/export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <unordered_map>
#include <vector>

namespace hypersub::trace {

std::size_t write_jsonl(const Tracer& tracer, std::ostream& os) {
  char buf[256];
  for (const Span& s : tracer.spans()) {
    int n;
    if (s.open()) {
      n = std::snprintf(
          buf, sizeof(buf),
          "{\"trace\": %llu, \"span\": %llu, \"parent\": %llu, "
          "\"kind\": \"%s\", \"node\": %zu, \"start_ms\": %.6f, "
          "\"end_ms\": null, \"a\": %llu, \"b\": %llu}\n",
          (unsigned long long)s.trace, (unsigned long long)s.id,
          (unsigned long long)s.parent, to_string(s.kind),
          std::size_t(s.node), s.start_ms, (unsigned long long)s.a,
          (unsigned long long)s.b);
    } else {
      n = std::snprintf(
          buf, sizeof(buf),
          "{\"trace\": %llu, \"span\": %llu, \"parent\": %llu, "
          "\"kind\": \"%s\", \"node\": %zu, \"start_ms\": %.6f, "
          "\"end_ms\": %.6f, \"a\": %llu, \"b\": %llu}\n",
          (unsigned long long)s.trace, (unsigned long long)s.id,
          (unsigned long long)s.parent, to_string(s.kind),
          std::size_t(s.node), s.start_ms, s.end_ms, (unsigned long long)s.a,
          (unsigned long long)s.b);
    }
    os.write(buf, n);
  }
  return tracer.span_count();
}

std::size_t write_perfetto(const Tracer& tracer, std::ostream& os) {
  char buf[320];
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  std::size_t events = 0;
  auto emit = [&](const char* json, int n) {
    if (events > 0) os << ",";
    os << "\n";
    os.write(json, n);
    ++events;
  };
  // One named track per node that appears in the log.
  std::vector<net::HostIndex> nodes;
  for (const Span& s : tracer.spans()) {
    bool seen = false;
    for (const net::HostIndex h : nodes) seen = seen || h == s.node;
    if (!seen) nodes.push_back(s.node);
  }
  for (const net::HostIndex h : nodes) {
    const int n = std::snprintf(
        buf, sizeof(buf),
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"tid\": %zu, \"args\": {\"name\": \"node %zu\"}}",
        std::size_t(h), std::size_t(h));
    emit(buf, n);
  }
  for (const Span& s : tracer.spans()) {
    int n;
    if (s.open()) {
      // A span that never completed renders as an instant marker on its
      // node's track (a lost edge has no extent).
      n = std::snprintf(
          buf, sizeof(buf),
          "{\"name\": \"%s (lost)\", \"cat\": \"hypersub\", \"ph\": \"i\", "
          "\"s\": \"t\", \"ts\": %.3f, \"pid\": 0, \"tid\": %zu, "
          "\"args\": {\"trace\": %llu, \"span\": %llu, \"parent\": %llu, "
          "\"a\": %llu, \"b\": %llu}}",
          to_string(s.kind), s.start_ms * 1000.0, std::size_t(s.node),
          (unsigned long long)s.trace, (unsigned long long)s.id,
          (unsigned long long)s.parent,
          (unsigned long long)s.a, (unsigned long long)s.b);
    } else {
      n = std::snprintf(
          buf, sizeof(buf),
          "{\"name\": \"%s\", \"cat\": \"hypersub\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %zu, "
          "\"args\": {\"trace\": %llu, \"span\": %llu, \"parent\": %llu, "
          "\"a\": %llu, \"b\": %llu}}",
          to_string(s.kind), s.start_ms * 1000.0, s.duration_ms() * 1000.0,
          std::size_t(s.node), (unsigned long long)s.trace, (unsigned long long)s.id,
          (unsigned long long)s.parent,
          (unsigned long long)s.a, (unsigned long long)s.b);
    }
    emit(buf, n);
  }
  os << "\n]}\n";
  return events;
}

bool write_jsonl_file(const Tracer& tracer, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_jsonl(tracer, f);
  return bool(f);
}

bool write_perfetto_file(const Tracer& tracer, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_perfetto(tracer, f);
  return bool(f);
}

TraceSummary summarize(const Tracer& tracer) {
  TraceSummary sum;
  const auto& spans = tracer.spans();

  // Index: span id -> position, and per-trace root (publish span).
  std::unordered_map<SpanId, std::size_t> at;
  at.reserve(spans.size());
  std::unordered_map<TraceId, std::size_t> root;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    at.emplace(spans[i].id, i);
    if (spans[i].kind == SpanKind::kPublish) root.emplace(spans[i].trace, i);
  }
  sum.event_traces = root.size();

  std::unordered_map<SpanId, std::uint64_t> forward_children;
  std::unordered_map<TraceId, bool> lossless;
  std::unordered_map<TraceId, bool> delivered;
  for (const auto& [trace, i] : root) {
    (void)i;
    lossless[trace] = true;
    delivered[trace] = false;
  }

  for (const Span& s : spans) {
    switch (s.kind) {
      case SpanKind::kDeliver: {
        ++sum.deliveries;
        const auto r = root.find(s.trace);
        if (r != root.end()) {
          sum.latency_ms.add(s.start_ms - spans[r->second].start_ms);
          delivered[s.trace] = true;
        }
        sum.hops.add(double(s.b));
        break;
      }
      case SpanKind::kForward:
        if (const auto p = at.find(s.parent); p != at.end() &&
            spans[p->second].kind == SpanKind::kMatch) {
          ++forward_children[s.parent];
        }
        if (s.open()) lossless[s.trace] = false;
        break;
      case SpanKind::kRetry: ++sum.retries; break;
      case SpanKind::kReroute: ++sum.reroutes; break;
      case SpanKind::kDrop:
        ++sum.drops;
        lossless[s.trace] = false;
        break;
      case SpanKind::kMatch:
        // Ensure zero-fanout match passes still contribute a sample.
        forward_children.try_emplace(s.id, 0);
        break;
      default: break;
    }
  }
  for (const auto& [span, n] : forward_children) {
    (void)span;
    sum.fanout.add(double(n));
  }
  for (const auto& [trace, ok] : lossless) {
    if (ok && delivered[trace]) ++sum.complete_traces;
  }
  return sum;
}

}  // namespace hypersub::trace
