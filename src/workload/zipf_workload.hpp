#pragma once
// Event and subscription generation per the paper's §5.1:
//  * event values: Zipfian ranks scaled/shifted into each attribute domain,
//    rotated so the modal rank sits at the dimension's hotspot;
//  * subscription ranges: width Zipf-distributed (scaled by the size
//    hotspot), centered at a point drawn from the event distribution.

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "pubsub/event.hpp"
#include "pubsub/subscription.hpp"
#include "workload/scheme_factory.hpp"

namespace hypersub::workload {

/// Deterministic generator of events and subscriptions for one spec.
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadSpec spec, std::uint64_t seed);

  const WorkloadSpec& spec() const noexcept { return spec_; }
  const pubsub::Scheme& scheme() const noexcept { return scheme_; }

  /// Draw one event (seq left 0; the system assigns it on publish).
  pubsub::Event make_event();

  /// Draw one subscription (full-arity hyper-cuboid).
  pubsub::Subscription make_subscription();

  /// Draw a subscription constraining only `attrs` (others span the
  /// domain) — exercises the §3.5 subscheme improvement.
  pubsub::Subscription make_partial_subscription(
      const std::vector<std::size_t>& attrs);

  Rng& rng() noexcept { return rng_; }

 private:
  double value_for(std::size_t dim);
  double width_for(std::size_t dim);

  WorkloadSpec spec_;
  pubsub::Scheme scheme_;
  Rng rng_;
  std::vector<ZipfSampler> value_zipf_;  // per dim
  std::vector<ZipfSampler> size_zipf_;   // per dim
};

}  // namespace hypersub::workload
