#pragma once
// The paper's evaluation workload (Table 1): a 4-attribute pub/sub scheme
// whose event values and subscription ranges follow per-dimension Zipfian
// distributions with configurable skew factors and hotspots.
//
// The scanned table in the paper text is partly illegible; the values here
// reconstruct its structure (4 dimensions; per-dimension value size, domain
// [min,max], data skew+hotspot for event values, size skew+hotspot for
// subscription range widths) with parameters calibrated so the default run
// reproduces Fig. 2(a)'s average of ~0.83 % matched subscriptions.

#include <cstddef>
#include <string>
#include <vector>

#include "pubsub/scheme.hpp"

namespace hypersub::workload {

/// Per-dimension workload parameters (one Table 1 row).
struct DimSpec {
  int value_bytes = 8;       ///< Table 1 "Size(byte)"
  double min = 0.0;          ///< domain low
  double max = 1.0;          ///< domain high
  double data_skew = 0.95;   ///< Zipf skew of event values
  double data_hotspot = 0.1; ///< domain fraction where mass concentrates
  double size_skew = 0.8;    ///< Zipf skew of subscription range widths
  double size_hotspot = 0.1; ///< max range width as a domain fraction
};

/// Full workload description.
struct WorkloadSpec {
  std::string scheme_name = "table1";
  std::vector<DimSpec> dims;
  std::size_t value_buckets = 1024;  ///< Zipf rank space for values
  std::size_t size_buckets = 100;    ///< Zipf rank space for range widths
};

/// The reconstructed Table 1 workload (4 dimensions).
WorkloadSpec table1_spec();

/// A small 2-dimensional workload for unit tests and the quickstart.
WorkloadSpec tiny_spec();

/// Build the pubsub::Scheme for a spec.
pubsub::Scheme make_scheme(const WorkloadSpec& spec);

/// Human-readable rendering of the spec as the paper's Table 1.
std::string render_table1(const WorkloadSpec& spec);

}  // namespace hypersub::workload
