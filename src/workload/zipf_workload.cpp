#include "workload/zipf_workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hypersub::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), scheme_(make_scheme(spec_)), rng_(seed) {
  for (const auto& d : spec_.dims) {
    value_zipf_.emplace_back(spec_.value_buckets, d.data_skew);
    size_zipf_.emplace_back(spec_.size_buckets, d.size_skew);
  }
}

double WorkloadGenerator::value_for(std::size_t dim) {
  const DimSpec& d = spec_.dims[dim];
  // Zipf rank k in [1, B]; rank 1 is the hottest bucket. Place bucket k at
  // domain position (hotspot + (k-1)/B) mod 1, jittered uniformly within
  // the bucket, so probability mass decays moving away from the hotspot.
  const std::size_t k = value_zipf_[dim].sample(rng_);
  const double b = double(spec_.value_buckets);
  double pos = d.data_hotspot + (double(k - 1) + rng_.uniform(0.0, 1.0)) / b;
  pos -= std::floor(pos);
  return d.min + pos * (d.max - d.min);
}

double WorkloadGenerator::width_for(std::size_t dim) {
  const DimSpec& d = spec_.dims[dim];
  // Zipf-distributed widths whose mode is the dimension's size hotspot:
  // rank 1 (most probable) gives the full hotspot fraction, higher ranks
  // shrink toward zero. Calibrated so the default Table-1 run reproduces
  // Fig. 2(a)'s ~0.83 % average matched subscriptions.
  const std::size_t k = size_zipf_[dim].sample(rng_);
  const double b = double(spec_.size_buckets);
  const double frac = d.size_hotspot * (b - double(k) + 1.0) / b;
  return frac * (d.max - d.min);
}

pubsub::Event WorkloadGenerator::make_event() {
  pubsub::Event e;
  e.point.reserve(spec_.dims.size());
  for (std::size_t i = 0; i < spec_.dims.size(); ++i) {
    e.point.push_back(value_for(i));
  }
  return e;
}

pubsub::Subscription WorkloadGenerator::make_subscription() {
  std::vector<std::size_t> all(spec_.dims.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return make_partial_subscription(all);
}

pubsub::Subscription WorkloadGenerator::make_partial_subscription(
    const std::vector<std::size_t>& attrs) {
  std::vector<Interval> dims;
  dims.reserve(spec_.dims.size());
  for (std::size_t i = 0; i < spec_.dims.size(); ++i) {
    dims.push_back(Interval{spec_.dims[i].min, spec_.dims[i].max});
  }
  for (std::size_t i : attrs) {
    assert(i < spec_.dims.size());
    const DimSpec& d = spec_.dims[i];
    const double center = value_for(i);
    const double half = width_for(i) / 2.0;
    const double lo = std::max(d.min, center - half);
    const double hi = std::min(d.max, center + half);
    dims[i] = Interval{lo, hi};
  }
  return pubsub::Subscription(HyperRect(std::move(dims)));
}

}  // namespace hypersub::workload
