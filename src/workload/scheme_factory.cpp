#include "workload/scheme_factory.hpp"

#include <iomanip>
#include <sstream>

namespace hypersub::workload {

WorkloadSpec table1_spec() {
  WorkloadSpec s;
  s.scheme_name = "table1";
  // Hotspot positions sit away from the top-level split planes (0.5 of
  // each domain): subscriptions whose range straddles an early split map
  // to shallow zones, and piling the hotspot exactly onto a split plane
  // degenerates those zones' summary filters into near-domain-wide hulls.
  // The scanned Table 1 is illegible on these columns; the values below
  // keep its structure (two high-skew fine-grained dims, two lower-skew
  // coarse dims) while staying off the pathological alignment.
  // Size hotspots (modal range widths) are calibrated jointly with the
  // data skews so the default 1740-node run reproduces Fig. 2(a)'s
  // average of ~0.83 % matched subscriptions per event.
  s.dims = {
      // bytes   min    max      dskew  dhot   sskew  shot
      {8, 0.0, 100000.0, 0.95, 0.10, 0.80, 0.12},
      {8, 0.0, 10000.0, 0.95, 0.20, 0.80, 0.15},
      {4, 0.0, 1000.0, 0.70, 0.30, 0.60, 0.20},
      {4, 0.0, 100.0, 0.50, 0.40, 0.60, 0.35},
  };
  return s;
}

WorkloadSpec tiny_spec() {
  WorkloadSpec s;
  s.scheme_name = "tiny";
  s.dims = {
      {8, 0.0, 100.0, 0.8, 0.25, 0.7, 0.2},
      {8, 0.0, 10.0, 0.5, 0.50, 0.5, 0.2},
  };
  s.value_buckets = 128;
  s.size_buckets = 32;
  return s;
}

pubsub::Scheme make_scheme(const WorkloadSpec& spec) {
  std::vector<pubsub::Attribute> attrs;
  attrs.reserve(spec.dims.size());
  for (std::size_t i = 0; i < spec.dims.size(); ++i) {
    attrs.push_back(pubsub::Attribute{
        "attr" + std::to_string(i),
        Interval{spec.dims[i].min, spec.dims[i].max}});
  }
  return pubsub::Scheme(spec.scheme_name, std::move(attrs));
}

std::string render_table1(const WorkloadSpec& spec) {
  std::ostringstream os;
  os << "Dim  Size(byte)  Min        Max        DataSkew  DataHotspot  "
        "SizeSkew  SizeHotspot\n";
  for (std::size_t i = 0; i < spec.dims.size(); ++i) {
    const auto& d = spec.dims[i];
    os << std::left << std::setw(5) << i << std::setw(12) << d.value_bytes
       << std::setw(11) << d.min << std::setw(11) << d.max << std::setw(10)
       << d.data_skew << std::setw(13) << d.data_hotspot << std::setw(10)
       << d.size_skew << std::setw(11) << d.size_hotspot << '\n';
  }
  return os.str();
}

}  // namespace hypersub::workload
