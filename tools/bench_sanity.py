#!/usr/bin/env python3
"""Bench sanity gate: compare a fresh micro_match sweep against the committed
baseline and fail if the index speedup regressed beyond a tolerance.

Usage:
    bench_sanity.py BASELINE.json FRESH.json [--point N] [--max-regression R]

The speedup (ns_per_event_scan / ns_per_event_indexed) is the quantity the
index exists for, and it is far more stable across CI machines than absolute
nanoseconds — both sides of the ratio move with the machine. A fresh speedup
below (1 - R) * baseline speedup at the compared point fails the gate.
"""

import argparse
import json
import sys


def load_point(path, subs):
    with open(path) as f:
        doc = json.load(f)
    for row in doc.get("sweep", []):
        if row.get("subs_per_zone") == subs:
            return row
    sys.exit(f"error: {path} has no sweep point with subs_per_zone={subs}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_match.json")
    ap.add_argument("fresh", help="freshly produced sweep json")
    ap.add_argument("--point", type=int, default=1000,
                    help="subs_per_zone point to compare (default 1000)")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="allowed fractional speedup loss (default 0.30)")
    args = ap.parse_args()

    base = load_point(args.baseline, args.point)
    fresh = load_point(args.fresh, args.point)

    base_speedup = base["ns_per_event_scan"] / base["ns_per_event_indexed"]
    fresh_speedup = fresh["ns_per_event_scan"] / fresh["ns_per_event_indexed"]
    floor = (1.0 - args.max_regression) * base_speedup

    print(f"point subs_per_zone={args.point}:")
    print(f"  baseline speedup {base_speedup:6.2f}x "
          f"(scan {base['ns_per_event_scan']:.0f} ns, "
          f"indexed {base['ns_per_event_indexed']:.0f} ns)")
    print(f"  fresh    speedup {fresh_speedup:6.2f}x "
          f"(scan {fresh['ns_per_event_scan']:.0f} ns, "
          f"indexed {fresh['ns_per_event_indexed']:.0f} ns)")
    print(f"  floor    {floor:6.2f}x "
          f"(baseline minus {args.max_regression:.0%} tolerance)")

    if fresh_speedup < floor:
        print("FAIL: index speedup regressed beyond tolerance")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
