#!/usr/bin/env python3
"""Bench sanity gates for the committed BENCH_*.json trajectories.

Subcommands:

  match BASELINE.json FRESH.json [--point N] [--max-regression R]
      Compare a fresh micro_match sweep against the committed baseline and
      fail if the index speedup regressed beyond the tolerance. The speedup
      (ns_per_event_scan / ns_per_event_indexed) is the quantity the index
      exists for, and it is far more stable across CI machines than
      absolute nanoseconds — both sides of the ratio move with the machine.

  route FRESH.json
      Validate a fresh micro_route run (self-relative — no cross-machine
      baseline needed): on the Zipf feed the cache-on config must deliver
      the exact same notification count with strictly fewer mean publish
      hops and strictly fewer packet-header bytes per event, and the cache
      must actually be hitting.

  scale BASELINE.json FRESH.json [--point SUBS] [--min-setup-speedup X]
        [--min-rss-reduction F] [--max-rss-gib G]
        [--precompress-baseline PRE.json] [--min-zone-tree-reduction F]
      Compare a fresh micro_scale run against the committed pre-arena
      baseline (bench/BENCH_scale_baseline.json) at the gated
      100k-subscription point: the arena/bulk-setup path must have cut
      setup wall-clock by at least the speedup factor and peak RSS by at
      least the reduction fraction, and the fresh peak RSS must stay
      under an absolute ceiling (the CI smoke budget). Both runs measure
      the same workload seeds on the same host class, so the ratios are
      stable where absolute seconds are not. When a pre-compression
      baseline (bench/BENCH_scale_precompress.json — the same build with
      --no-compress) is supplied, the fresh run's zone-tree bytes must
      additionally shrink by at least the zone-tree-reduction floor, and
      delivery parity against that baseline is enforced (compression is a
      representation change, not a behavior change).

  sim FRESH.json [--floor T:S ...]
      Validate a fresh micro_sim run (self-relative): every thread count
      must have produced the byte-identical snapshot hash (the parallel
      engine's determinism contract — always enforced), the Task SBO
      store+invoke must not be slower than std::function, and — only when
      the host actually has at least as many cores as the thread count —
      the parallel events/sec must clear the speedup floor over the
      sequential run (defaults 2:1.3 4:2.0 8:3.0). On a 1-2 core CI box
      the floors are skipped; determinism is not.

  trace FRESH.json [--max-overhead F]
      Validate the tracing-overhead contract from the same micro_route
      json (self-relative — both sides of the comparison ran interleaved
      in one process): keeping a tracer attached at sample rate 0 must
      cost at most F (default 2%) over running with no tracer at all, and
      the sampled run must have produced complete causal trees.

  cover FRESH.json [--min-reg-reduction F] [--min-bytes-reduction F]
      Validate a fresh micro_cover run (self-relative): the delivery
      multiset must be identical between cover_aggregation off and on
      (count and order-independent hash — the aggregation's semantic
      contract), upward registrations must shrink by at least the
      reduction floor, and the subid transport bytes/event must shrink by
      at least the bytes floor. Total frame bandwidth is reported for
      context only: the per-edge event payload is identical in both
      configs by design (same delivery trees), so aggregation can only
      compress the subid transport riding on those frames.

  join FRESH.json [--mtbf N] [--replicas R] [--min-delivery F]
      Validate a fresh `ablation_churn --protocol-join` run
      (self-relative): at the gated churn point (default MTBF=4
      stabilization periods, 2 replicas) the delivery ratio must stay at
      or above the floor (default 0.99) while nodes continuously leave
      gracefully and rejoin through the live state-transfer handshake; at
      least one join must have committed and moved a nonzero number of
      zones/bytes, and no handshake may have aborted at any churn rate —
      nothing crashes in this bench, so a timeout abort is a protocol bug.
"""

import argparse
import json
import sys


def load_json(path):
    with open(path) as f:
        return json.load(f)


def snapshot_cdfs(snap):
    """Return a snapshot's event_cdfs dict, or None when unavailable.

    Streaming-mode runs (stream_metrics on) fold per-event records into
    running sums, so the snapshot renders "event_cdfs": null. Callers must
    treat None as "quantiles not recorded", never as an all-zero
    distribution — a legitimate zero-traffic run still renders a dict.
    """
    cdfs = snap.get("event_cdfs")
    return cdfs if isinstance(cdfs, dict) else None


# ---------------------------------------------------------------------------
# match: index speedup vs committed baseline
# ---------------------------------------------------------------------------

def load_point(path, subs):
    doc = load_json(path)
    for row in doc.get("sweep", []):
        if row.get("subs_per_zone") == subs:
            return row
    sys.exit(f"error: {path} has no sweep point with subs_per_zone={subs}")


def cmd_match(args):
    base = load_point(args.baseline, args.point)
    fresh = load_point(args.fresh, args.point)

    base_speedup = base["ns_per_event_scan"] / base["ns_per_event_indexed"]
    fresh_speedup = fresh["ns_per_event_scan"] / fresh["ns_per_event_indexed"]
    floor = (1.0 - args.max_regression) * base_speedup

    print(f"point subs_per_zone={args.point}:")
    print(f"  baseline speedup {base_speedup:6.2f}x "
          f"(scan {base['ns_per_event_scan']:.0f} ns, "
          f"indexed {base['ns_per_event_indexed']:.0f} ns)")
    print(f"  fresh    speedup {fresh_speedup:6.2f}x "
          f"(scan {fresh['ns_per_event_scan']:.0f} ns, "
          f"indexed {fresh['ns_per_event_indexed']:.0f} ns)")
    print(f"  floor    {floor:6.2f}x "
          f"(baseline minus {args.max_regression:.0%} tolerance)")

    if fresh_speedup < floor:
        print("FAIL: index speedup regressed beyond tolerance")
        return 1
    print("OK")
    return 0


# ---------------------------------------------------------------------------
# route: publish fast lane must help and must not change deliveries
# ---------------------------------------------------------------------------

def cmd_route(args):
    doc = load_json(args.fresh)
    configs = {c["name"]: c for c in doc.get("configs", [])}
    if "cache_off" not in configs or "cache_on" not in configs:
        sys.exit(f"error: {args.fresh} lacks cache_off/cache_on configs")
    off, on = configs["cache_off"], configs["cache_on"]

    print(f"route fast lane ({doc.get('nodes')} nodes, "
          f"{doc.get('events')} events, zipf {doc.get('zipf_skew')}):")
    print(f"  mean publish hops : off {off['mean_publish_hops']:.2f} -> "
          f"on {on['mean_publish_hops']:.2f}")
    print(f"  header bytes/event: off {off['mean_header_bytes']:.1f} -> "
          f"on {on['mean_header_bytes']:.1f}")
    print(f"  deliveries        : off {off['deliveries']} -> "
          f"on {on['deliveries']}")
    print(f"  cache hit rate    : {doc.get('cache_hit_rate', 0.0):.1%}")

    failures = []
    if on["mean_publish_hops"] >= off["mean_publish_hops"]:
        failures.append("cache-on mean publish hops not below cache-off")
    if on["mean_header_bytes"] >= off["mean_header_bytes"]:
        failures.append("batched header bytes/event not below cache-off")
    if on["deliveries"] != off["deliveries"]:
        failures.append("delivery counts diverge between configs")
    if doc.get("cache_hit_rate", 0.0) <= 0.0:
        failures.append("route cache never hit")

    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK")
    return 0


# ---------------------------------------------------------------------------
# trace: the observability layer must be ~free when disabled, and useful
# when sampled
# ---------------------------------------------------------------------------

def cmd_trace(args):
    doc = load_json(args.fresh)
    tr = doc.get("trace")
    if not tr:
        sys.exit(f"error: {args.fresh} has no \"trace\" section "
                 f"(rerun bench/micro_route)")

    overhead = tr["overhead"]
    print(f"trace overhead (medians of interleaved in-process reps):")
    print(f"  no tracer        : {tr['base_ns_per_event']:.0f} ns/event")
    print(f"  attached, rate 0 : {tr['attached_ns_per_event']:.0f} ns/event")
    print(f"  overhead         : {overhead:+.2%} (max {args.max_overhead:.0%})")
    print(f"  sampled rate 0.25: {tr['sampled_spans']} spans, "
          f"{tr['complete_traces']}/{tr['event_traces']} traces complete")

    failures = []
    if overhead > args.max_overhead:
        failures.append(f"disabled-tracer overhead {overhead:.2%} exceeds "
                        f"{args.max_overhead:.0%}")
    if tr["complete_traces"] <= 0:
        failures.append("sampled tracing produced no complete causal trees")
    if tr["sampled_spans"] <= 0:
        failures.append("sampled tracing recorded no spans")

    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK")
    return 0


# ---------------------------------------------------------------------------
# scale: setup fast path + arena storage vs the committed pre-arena baseline
# ---------------------------------------------------------------------------

def load_scale_point(path, subs):
    doc = load_json(path)
    for row in doc.get("points", []):
        if row.get("subs") == subs:
            return doc, row
    sys.exit(f"error: {path} has no point with subs={subs}")


def cmd_scale(args):
    base_doc, base = load_scale_point(args.baseline, args.point)
    fresh_doc, fresh = load_scale_point(args.fresh, args.point)

    speedup = base["setup_seconds"] / fresh["setup_seconds"]
    rss_reduction = 1.0 - fresh["peak_rss_bytes"] / base["peak_rss_bytes"]
    ceiling_bytes = int(args.max_rss_gib * (1 << 30))
    gib = 1.0 / (1 << 30)

    print(f"scale point subs={args.point} "
          f"({fresh['nodes']} nodes x {fresh['subs_per_node']} subs/node, "
          f"mode {fresh_doc.get('mode', '?')}):")
    print(f"  setup   : baseline {base['setup_seconds']:.2f} s -> "
          f"fresh {fresh['setup_seconds']:.2f} s "
          f"({speedup:.2f}x, floor {args.min_setup_speedup:.1f}x)")
    print(f"  peak RSS: baseline {base['peak_rss_bytes'] * gib:.2f} GiB -> "
          f"fresh {fresh['peak_rss_bytes'] * gib:.2f} GiB "
          f"(-{rss_reduction:.1%}, floor {args.min_rss_reduction:.0%}, "
          f"ceiling {args.max_rss_gib:.1f} GiB)")
    print(f"  steady  : {fresh['events_per_sec']:.0f} events/sec, "
          f"{fresh['deliveries']} deliveries, "
          f"hash {fresh['snapshot_hash']}")

    failures = []
    if speedup < args.min_setup_speedup:
        failures.append(f"setup speedup {speedup:.2f}x below "
                        f"{args.min_setup_speedup:.1f}x floor")

    # Path-compressed zone tree: gate the representation's memory win
    # against the same-build uncompressed run, and its behavior against
    # the same run's deliveries/hash.
    if args.precompress_baseline:
        pre_doc, pre = load_scale_point(args.precompress_baseline, args.point)
        if "zone_tree_bytes" not in fresh or "zone_tree_bytes" not in pre:
            sys.exit("error: zone_tree_bytes missing — rerun both sides of "
                     "bench/micro_scale with --mem-breakdown")
        zreduction = 1.0 - fresh["zone_tree_bytes"] / pre["zone_tree_bytes"]
        mib = 1.0 / (1 << 20)
        print(f"  zone tree: uncompressed "
              f"{pre['zone_tree_bytes'] * mib:.1f} MiB -> compressed "
              f"{fresh['zone_tree_bytes'] * mib:.1f} MiB "
              f"(-{zreduction:.1%}, floor "
              f"{args.min_zone_tree_reduction:.0%}); "
              f"{fresh.get('chain_records', 0)} chains cover "
              f"{fresh.get('implicit_zones', 0)} implicit zones, "
              f"{fresh.get('materialized_zones', 0)} materialized")
        if zreduction < args.min_zone_tree_reduction:
            failures.append(f"zone-tree reduction {zreduction:.1%} below "
                            f"{args.min_zone_tree_reduction:.0%} floor")
        if fresh.get("implicit_zones", 0) <= 0:
            failures.append("compressed run has no implicit zones "
                            "(chains never formed)")
        if pre_doc.get("events") == fresh_doc.get("events"):
            if fresh["deliveries"] != pre["deliveries"]:
                failures.append("delivery count diverges from uncompressed "
                                "run (compression changed behavior)")
            if fresh.get("snapshot_hash") != pre.get("snapshot_hash"):
                failures.append("snapshot hash diverges from uncompressed "
                                "run (compression changed behavior)")
    if rss_reduction < args.min_rss_reduction:
        failures.append(f"peak-RSS reduction {rss_reduction:.1%} below "
                        f"{args.min_rss_reduction:.0%} floor")
    if fresh["peak_rss_bytes"] > ceiling_bytes:
        failures.append(f"peak RSS {fresh['peak_rss_bytes'] * gib:.2f} GiB "
                        f"exceeds {args.max_rss_gib:.1f} GiB ceiling")
    # Delivery parity only means something when both runs published the
    # same event schedule (the full sweep uses more events than --quick).
    if fresh_doc.get("events") == base_doc.get("events") and \
            fresh["deliveries"] != base["deliveries"]:
        failures.append("delivery count diverges from baseline "
                        "(setup fast path changed behavior)")

    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK")
    return 0


# ---------------------------------------------------------------------------
# sim: parallel engine determinism (always) + speedup floors (cores permitting)
# ---------------------------------------------------------------------------

def parse_floors(specs):
    floors = {}
    for spec in specs:
        threads, _, factor = spec.partition(":")
        floors[int(threads)] = float(factor)
    return floors


def cmd_sim(args):
    doc = load_json(args.fresh)
    runs = {r["threads"]: r for r in doc.get("runs", [])}
    if 1 not in runs:
        sys.exit(f"error: {args.fresh} has no sequential (threads=1) run")
    cores = doc.get("host", {}).get("cores",
                                    doc.get("hardware_concurrency", 0))
    floors = parse_floors(args.floor)
    seq = runs[1]

    print(f"sim engine ({doc.get('nodes')} nodes, {doc.get('events')} "
          f"events, lookahead {doc.get('lookahead_ms')} ms, "
          f"{cores} cores):")

    failures = []

    # Determinism: byte-identical output regardless of thread count.
    hashes = {t: r["snapshot_hash"] for t, r in sorted(runs.items())}
    for t, h in hashes.items():
        marker = "" if h == seq["snapshot_hash"] else "  <-- DIVERGES"
        print(f"  threads={t}: hash {h}{marker}")
    if not doc.get("deterministic", False) or \
            any(h != seq["snapshot_hash"] for h in hashes.values()):
        failures.append("parallel run is not byte-identical to sequential")

    # Task SBO: inlining the dominant capture shape must beat the
    # heap-allocating std::function path.
    sbo = doc.get("task_sbo", {})
    if sbo:
        print(f"  task SBO: {sbo['ns_per_op_task']:.1f} ns vs "
              f"std::function {sbo['ns_per_op_function']:.1f} ns "
              f"({sbo.get('speedup', 0.0):.2f}x), "
              f"engine {sbo.get('engine_ns_per_event', 0.0):.0f} ns/event")
        if not sbo.get("capture_fits_inline", False):
            failures.append("dominant capture shape no longer fits inline")
        if sbo["ns_per_op_task"] > sbo["ns_per_op_function"]:
            failures.append("Task store+invoke slower than std::function")
    else:
        failures.append("json lacks task_sbo section (rerun bench/micro_sim)")

    # Speedup floors: only meaningful when the host has the cores.
    for threads, floor in sorted(floors.items()):
        if threads not in runs:
            continue
        speedup = runs[threads]["events_per_sec"] / seq["events_per_sec"]
        if cores >= threads:
            verdict = "ok" if speedup >= floor else "FAIL"
            print(f"  threads={threads}: {speedup:.2f}x "
                  f"(floor {floor:.1f}x) {verdict}")
            if speedup < floor:
                failures.append(f"threads={threads} speedup {speedup:.2f}x "
                                f"below floor {floor:.1f}x")
        else:
            print(f"  threads={threads}: {speedup:.2f}x "
                  f"(floor skipped: host has {cores} cores)")

    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK")
    return 0


# ---------------------------------------------------------------------------
# cover: subscription aggregation must shrink state + subid transport
# without touching a single delivery
# ---------------------------------------------------------------------------

def cmd_cover(args):
    doc = load_json(args.fresh)
    reg = doc.get("registration")
    subid = doc.get("subid_bytes")
    bw = doc.get("bandwidth")
    dlv = doc.get("delivery")
    if not (reg and subid and bw and dlv):
        sys.exit(f"error: {args.fresh} lacks registration/subid_bytes/"
                 f"bandwidth/delivery sections (rerun bench/micro_cover)")

    print(f"cover aggregation ({doc.get('nodes')} nodes, "
          f"{reg['stored']} subs, interest pool {doc.get('interest_pool')}, "
          f"{doc.get('events')} events):")
    print(f"  registration : {reg['stored']} stored = "
          f"{reg['representatives']} representatives + "
          f"{reg['quenched']} quenched "
          f"({reg['reduction']:.1%} reduction, "
          f"floor {args.min_reg_reduction:.0%})")
    print(f"  subid bytes  : {subid['off_per_event']:.1f} -> "
          f"{subid['on_per_event']:.1f} per event "
          f"({subid['reduction']:.1%} reduction, "
          f"floor {args.min_bytes_reduction:.0%})")
    print(f"  bandwidth    : {bw['off_kb_per_event']:.3f} -> "
          f"{bw['on_kb_per_event']:.3f} KB/event "
          f"({bw['reduction']:.1%}, informational — event payload "
          f"identical by design)")
    print(f"  deliveries   : off {dlv['off_count']} (hash "
          f"{dlv['off_hash']}) vs on {dlv['on_count']} (hash "
          f"{dlv['on_hash']})")
    for cfg in doc.get("configs", []):
        cdfs = snapshot_cdfs(cfg.get("snapshot", {}))
        state = (f"p50/p99 hops {cdfs['p50_max_hops']:.0f}/"
                 f"{cdfs['p99_max_hops']:.0f}" if cdfs
                 else "not recorded (streaming mode)")
        print(f"  cdfs {cfg['name']:<10}: {state}")

    failures = []
    if not dlv.get("identical", False) or \
            dlv["off_count"] != dlv["on_count"] or \
            dlv["off_hash"] != dlv["on_hash"]:
        failures.append("delivery sets diverge between cover off/on")
    if reg["reduction"] < args.min_reg_reduction:
        failures.append(f"registration reduction {reg['reduction']:.1%} "
                        f"below {args.min_reg_reduction:.0%} floor")
    if subid["reduction"] < args.min_bytes_reduction:
        failures.append(f"subid transport reduction {subid['reduction']:.1%} "
                        f"below {args.min_bytes_reduction:.0%} floor")
    if reg["quenched"] <= 0:
        failures.append("aggregation never quenched a subscription")

    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK")
    return 0


# ---------------------------------------------------------------------------
# join: lifecycle churn must keep delivering while state moves between nodes
# ---------------------------------------------------------------------------

def cmd_join(args):
    doc = load_json(args.fresh)
    rows = doc.get("rows")
    if not rows:
        sys.exit(f"error: {args.fresh} has no rows (rerun "
                 f"bench/ablation_churn --protocol-join)")

    print(f"lifecycle churn ({doc.get('nodes')} nodes, "
          f"{doc.get('events')} events, graceful leave + protocol join):")
    gated = None
    for r in rows:
        marker = ""
        if r["mtbf_periods"] == args.mtbf and r["replicas"] == args.replicas:
            gated = r
            marker = "  <- gated point"
        print(f"  mtbf {r['mtbf_periods']:>3.0f} replicas {r['replicas']}: "
              f"delivery {r['delivery_ratio']:.4f}, "
              f"{r['joins_committed']} joins "
              f"({r['joins_aborted']} aborted), "
              f"{r['zones_transferred']} zones / "
              f"{r['transfer_bytes']} bytes moved, "
              f"handoff avg {r['avg_handoff_ms']:.1f} ms "
              f"(max {r['max_handoff_ms']:.1f}){marker}")

    failures = []
    if gated is None:
        failures.append(f"no row at mtbf={args.mtbf} "
                        f"replicas={args.replicas}")
    else:
        if gated["delivery_ratio"] < args.min_delivery:
            failures.append(f"delivery ratio {gated['delivery_ratio']:.4f} "
                            f"below {args.min_delivery} at the gated point")
        if gated["joins_committed"] < 1:
            failures.append("no protocol join ever committed")
        if gated["leaves_completed"] < 1:
            failures.append("no graceful leave ever completed")
        if gated["zones_transferred"] <= 0:
            failures.append("handovers moved zero zones")
        if gated["transfer_bytes"] <= 0:
            failures.append("handovers moved zero bytes")
    # Every row, not just the gated one: an abort means a handshake died on
    # a timeout even though nothing crashed in this bench.
    for r in rows:
        if r["joins_aborted"] > 0:
            failures.append(f"{r['joins_aborted']} aborted joins at "
                            f"mtbf={r['mtbf_periods']:.0f} "
                            f"replicas={r['replicas']}")

    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    m = sub.add_parser("match", help="index speedup vs committed baseline")
    m.add_argument("baseline", help="committed BENCH_match.json")
    m.add_argument("fresh", help="freshly produced sweep json")
    m.add_argument("--point", type=int, default=1000,
                   help="subs_per_zone point to compare (default 1000)")
    m.add_argument("--max-regression", type=float, default=0.30,
                   help="allowed fractional speedup loss (default 0.30)")
    m.set_defaults(fn=cmd_match)

    r = sub.add_parser("route", help="publish fast-lane self-check")
    r.add_argument("fresh", help="freshly produced BENCH_route.json")
    r.set_defaults(fn=cmd_route)

    sc = sub.add_parser("scale",
                        help="setup fast path vs committed pre-arena baseline")
    sc.add_argument("baseline", help="committed BENCH_scale_baseline.json")
    sc.add_argument("fresh", help="freshly produced BENCH_scale.json")
    sc.add_argument("--point", type=int, default=100000,
                    help="total-subscription point to compare "
                         "(default 100000)")
    sc.add_argument("--min-setup-speedup", type=float, default=3.0,
                    help="required setup wall-clock speedup over the "
                         "baseline (default 3.0)")
    sc.add_argument("--min-rss-reduction", type=float, default=0.30,
                    help="required fractional peak-RSS reduction "
                         "(default 0.30)")
    sc.add_argument("--max-rss-gib", type=float, default=1.5,
                    help="absolute fresh peak-RSS ceiling in GiB "
                         "(default 1.5)")
    sc.add_argument("--precompress-baseline", default=None,
                    help="committed BENCH_scale_precompress.json (same "
                         "build, --no-compress); enables the zone-tree "
                         "memory gate")
    sc.add_argument("--min-zone-tree-reduction", type=float, default=0.25,
                    help="required fractional zone-tree-bytes reduction vs "
                         "the pre-compression baseline (default 0.25)")
    sc.set_defaults(fn=cmd_scale)

    s = sub.add_parser("sim", help="parallel engine determinism + speedup")
    s.add_argument("fresh", help="freshly produced BENCH_sim.json")
    s.add_argument("--floor", action="append",
                   default=["2:1.3", "4:2.0", "8:3.0"],
                   help="THREADS:SPEEDUP floor, repeatable "
                        "(defaults 2:1.3 4:2.0 8:3.0; enforced only when "
                        "the host has >= THREADS cores)")
    s.set_defaults(fn=cmd_sim)

    t = sub.add_parser("trace", help="tracing overhead + usefulness gate")
    t.add_argument("fresh", help="freshly produced BENCH_route.json")
    t.add_argument("--max-overhead", type=float, default=0.02,
                   help="allowed fractional cost of an attached-but-idle "
                        "tracer (default 0.02)")
    t.set_defaults(fn=cmd_trace)

    c = sub.add_parser("cover",
                       help="subscription aggregation parity + reduction")
    c.add_argument("fresh", help="freshly produced BENCH_cover.json")
    c.add_argument("--min-reg-reduction", type=float, default=0.20,
                   help="required fractional reduction in upward "
                        "registrations (default 0.20)")
    c.add_argument("--min-bytes-reduction", type=float, default=0.15,
                   help="required fractional reduction in subid transport "
                        "bytes/event (default 0.15)")
    c.set_defaults(fn=cmd_cover)

    j = sub.add_parser("join",
                       help="lifecycle churn delivery + transfer gate")
    j.add_argument("fresh", help="freshly produced BENCH_join.json")
    j.add_argument("--mtbf", type=float, default=4.0,
                   help="gated MTBF point in stabilization periods "
                        "(default 4)")
    j.add_argument("--replicas", type=int, default=2,
                   help="gated replica count (default 2)")
    j.add_argument("--min-delivery", type=float, default=0.99,
                   help="required delivery ratio at the gated point "
                        "(default 0.99)")
    j.set_defaults(fn=cmd_join)

    args = ap.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
