#!/usr/bin/env python3
"""Offline analysis of a span log written by trace::write_jsonl.

The simulator's tracing layer records one span per causal step — publish,
route hop, match pass, forward edge, delivery, retry, reroute, drop — each
carrying (trace id, span id, parent span id, node, virtual start/end ms).
This tool reconstructs and reports on those causal trees:

  trace_report.py SPANS.jsonl
      Percentile tables over every event trace: end-to-end delivery
      latency, delivery hops, per-match fan-out, plus counts of retries,
      reroutes, and unmasked drops. The latency/hops tables are the
      trace-derived equivalents of the paper's Fig. 2(b)(c) CDXs.

  trace_report.py SPANS.jsonl --trace ID
      Print trace ID's hop-by-hop tree: every span indented under its
      parent, with node, virtual time, duration, and kind-specific
      payload. Spans that never completed (lost edges) are marked.

  trace_report.py SPANS.jsonl --list [N]
      List the first N (default 20) traces with their root kind, span
      count, delivery count, and whether anything was lost.

Only the standard library is used.
"""

import argparse
import json
import signal
import sys
from collections import defaultdict

# Die quietly when piped into head/less.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load_spans(path):
    spans = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as e:
                sys.exit(f"error: {path}:{lineno}: bad span line: {e}")
    return spans


def index(spans):
    by_trace = defaultdict(list)
    for s in spans:
        by_trace[s["trace"]].append(s)
    return by_trace


def is_open(s):
    return s["end_ms"] is None


def duration(s):
    return 0.0 if is_open(s) else s["end_ms"] - s["start_ms"]


# ---------------------------------------------------------------------------
# percentile tables
# ---------------------------------------------------------------------------

def quantile(sorted_vals, q):
    """Nearest-rank quantile over a sorted list."""
    if not sorted_vals:
        return 0.0
    rank = max(1, min(len(sorted_vals), round(q * len(sorted_vals) + 0.5)))
    return sorted_vals[rank - 1]


def table_row(name, vals):
    vals = sorted(vals)
    n = len(vals)
    mean = sum(vals) / n if n else 0.0
    return (f"  {name:<14} {n:>8} {mean:>10.1f} "
            f"{quantile(vals, 0.50):>10.1f} {quantile(vals, 0.95):>10.1f} "
            f"{quantile(vals, 0.99):>10.1f} "
            f"{(vals[-1] if vals else 0.0):>10.1f}")


def cmd_summary(by_trace):
    latency, hops, fanout = [], [], []
    retries = reroutes = drops = deliveries = 0
    event_traces = complete = 0

    for spans in by_trace.values():
        root = next((s for s in spans
                     if s["kind"] == "publish" and s["parent"] == 0), None)
        if root is None:
            continue  # install / migrate trace
        event_traces += 1
        lost = False
        delivered = False
        match_children = defaultdict(int)
        match_ids = set()
        for s in spans:
            if s["kind"] == "match":
                match_ids.add(s["span"])
        for s in spans:
            k = s["kind"]
            if k == "deliver":
                deliveries += 1
                delivered = True
                latency.append(s["start_ms"] - root["start_ms"])
                hops.append(float(s["b"]))
            elif k == "forward":
                if s["parent"] in match_ids:
                    match_children[s["parent"]] += 1
                if is_open(s):
                    lost = True
            elif k == "retry":
                retries += 1
            elif k == "reroute":
                reroutes += 1
            elif k == "drop":
                drops += 1
                lost = True
        for m in match_ids:
            fanout.append(float(match_children.get(m, 0)))
        if delivered and not lost:
            complete += 1

    print(f"{event_traces} event traces ({complete} complete), "
          f"{deliveries} deliveries, {retries} retries, "
          f"{reroutes} reroutes, {drops} drops")
    print(f"  {'metric':<14} {'n':>8} {'mean':>10} {'p50':>10} "
          f"{'p95':>10} {'p99':>10} {'max':>10}")
    print(table_row("latency_ms", latency))
    print(table_row("hops", hops))
    print(table_row("fanout", fanout))
    return 0


# ---------------------------------------------------------------------------
# single-trace tree
# ---------------------------------------------------------------------------

PAYLOAD = {
    "publish": lambda s: f"seq={s['a']} scheme={s['b']}",
    "match": lambda s: f"hops={s['a']} subids={s['b']}",
    "forward": lambda s: f"to=node {s['a']} subids={s['b']}",
    "deliver": lambda s: f"iid={s['a']} hops={s['b']}",
    "retry": lambda s: f"attempt={s['a']}",
    "expire": lambda s: f"dead=node {s['a']}",
    "reroute": lambda s: f"via=node {s['a']}",
    "drop": lambda s: f"subids_lost={s['a']}",
    "cache_hit": lambda s: f"owner=node {s['a']}",
    "cache_correct": lambda s: f"publisher=node {s['a']}",
    "route_hop": lambda s: f"hop={s['a']} to=node {s['b']}",
    "install": lambda s: f"scheme={s['a']} iid={s['b']}",
    "register": lambda s: f"hops={s['a']}",
    "migrate": lambda s: f"subs={s['a']} acceptor=node {s['b']}",
}


def cmd_tree(by_trace, trace_id):
    spans = by_trace.get(trace_id)
    if not spans:
        sys.exit(f"error: no spans for trace {trace_id}")
    children = defaultdict(list)
    ids = {s["span"] for s in spans}
    roots = []
    for s in spans:
        if s["parent"] in ids:
            children[s["parent"]].append(s)
        else:
            roots.append(s)
    for lst in children.values():
        lst.sort(key=lambda s: (s["start_ms"], s["span"]))
    roots.sort(key=lambda s: (s["start_ms"], s["span"]))

    def walk(s, depth):
        payload = PAYLOAD.get(s["kind"], lambda _s: "")(s)
        mark = "  [lost]" if is_open(s) else ""
        dur = "" if is_open(s) else f" +{duration(s):.1f}ms"
        print(f"  {'  ' * depth}{s['kind']:<13} node {s['node']:<5} "
              f"t={s['start_ms']:.1f}ms{dur}  {payload}{mark}")
        for c in children.get(s["span"], []):
            walk(c, depth + 1)

    print(f"trace {trace_id}: {len(spans)} spans")
    for r in roots:
        walk(r, 0)
    return 0


# ---------------------------------------------------------------------------
# trace listing
# ---------------------------------------------------------------------------

def cmd_list(by_trace, limit):
    print(f"  {'trace':>10} {'root':<10} {'spans':>6} {'deliveries':>10} "
          f"{'lost':>5}")
    for tid in sorted(by_trace)[:limit]:
        spans = by_trace[tid]
        root = next((s for s in spans if s["parent"] == 0), None)
        root_kind = root["kind"] if root else "?"
        deliveries = sum(1 for s in spans if s["kind"] == "deliver")
        lost = any(s["kind"] == "drop" or
                   (s["kind"] == "forward" and is_open(s)) for s in spans)
        print(f"  {tid:>10} {root_kind:<10} {len(spans):>6} "
              f"{deliveries:>10} {'yes' if lost else 'no':>5}")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("jsonl", help="span log from trace::write_jsonl")
    ap.add_argument("--trace", type=int, default=None,
                    help="print this trace id's causal tree")
    ap.add_argument("--list", type=int, nargs="?", const=20, default=None,
                    metavar="N", help="list the first N traces (default 20)")
    args = ap.parse_args()

    by_trace = index(load_spans(args.jsonl))
    if args.trace is not None:
        return cmd_tree(by_trace, args.trace)
    if args.list is not None:
        return cmd_list(by_trace, args.list)
    return cmd_summary(by_trace)


if __name__ == "__main__":
    sys.exit(main())
