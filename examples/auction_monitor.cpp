// Auction-monitor scenario: bidders subscribe to item categories and price
// caps, sellers publish bid events, and subscriptions churn (bidders join,
// change interests, and unsubscribe when they win) — exercising
// unsubscribe and re-subscribe flows on top of the static protocol.
//
//   $ ./examples/auction_monitor [nodes]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "pubsub/subscription.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  const std::size_t nodes = argc > 1 ? std::size_t(std::atoi(argv[1])) : 200;

  net::KingLikeTopology::Params tp;
  tp.hosts = nodes;
  net::KingLikeTopology topo(tp);
  sim::Simulator simulator;
  net::Network network(simulator, topo);
  chord::ChordNet chord(network, {});
  core::HyperSubSystem::Config cfg;
  cfg.bootstrap = core::BootstrapMode::kOracle;
  core::HyperSubSystem hypersub(chord, cfg);

  pubsub::Scheme auctions("auctions", {
                                          {"category", {0.0, 100.0}},
                                          {"price", {0.0, 10000.0}},
                                          {"time_left_min", {0.0, 1440.0}},
                                      });
  core::SchemeOptions opts;
  opts.zone_cfg = {2, 20};  // base 4
  const auto scheme = hypersub.add_scheme(auctions, opts);

  // A watch is just the handle subscribe() hands back — everything
  // unsubscribe needs (scheme, iid, subscriber) travels inside it.
  std::vector<core::SubscriptionHandle> watches;
  Rng rng(11);

  auto add_watch = [&](net::HostIndex bidder) {
    const double cat = std::floor(rng.uniform(0, 100));
    const double cap = rng.uniform(50, 5000);
    const pubsub::Predicate preds[] = {{0, {cat, cat}}, {1, {0.0, cap}}};
    auto sub = pubsub::Subscription::from_predicates(auctions, preds);
    watches.push_back(hypersub.subscribe(bidder, scheme, sub));
  };

  for (net::HostIndex h = 0; h < nodes; ++h) {
    add_watch(h);
    if (rng.chance(0.5)) add_watch(h);
  }
  simulator.run();
  std::printf("phase 1: %zu watches installed\n", watches.size());

  auto publish_round = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      pubsub::Event bid{0,
                        {std::floor(rng.uniform(0, 100)),
                         rng.uniform(1, 10000), rng.uniform(0, 1440)}};
      hypersub.publish(net::HostIndex(rng.index(nodes)), scheme, bid);
    }
    simulator.run();
    hypersub.finalize_events();
  };

  publish_round(100);
  const std::size_t phase1 = hypersub.deliveries().size();
  std::printf("phase 1: 100 bids -> %zu notifications\n", phase1);

  // Winners drop out: unsubscribe a third of the watches.
  std::size_t dropped = 0;
  std::vector<core::SubscriptionHandle> remaining;
  for (const auto& w : watches) {
    if (rng.chance(1.0 / 3.0)) {
      hypersub.unsubscribe(w);
      ++dropped;
    } else {
      remaining.push_back(w);
    }
  }
  simulator.run();
  std::printf("phase 2: %zu bidders won and unsubscribed (%zu remain)\n",
              dropped, remaining.size());

  publish_round(100);
  const std::size_t phase2 = hypersub.deliveries().size() - phase1;
  std::printf("phase 2: 100 bids -> %zu notifications (expected fewer)\n",
              phase2);

  // Late bidders arrive with new interests.
  for (int i = 0; i < 100; ++i) add_watch(net::HostIndex(rng.index(nodes)));
  simulator.run();
  publish_round(100);
  const std::size_t phase3 = hypersub.deliveries().size() - phase1 - phase2;
  std::printf("phase 3: +100 watches, 100 bids -> %zu notifications\n",
              phase3);

  std::printf("\nlive subscriptions at exit: %zu\n",
              hypersub.total_subscriptions());
  return 0;
}
