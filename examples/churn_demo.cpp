// Churn demo: HyperSub over a ring maintained by the live Chord protocol
// (join/stabilize/failure detection) rather than oracle construction —
// the paper's future-work scenario. Nodes enter through the unified
// lifecycle API (HyperSubSystem::join_node — protocol join plus live zone
// state transfer), the system operates, a batch of nodes crashes
// (crash_node) mid-service, the ring repairs itself while events keep
// flowing, and finally one node departs gracefully (leave_node), handing
// its zones to its successor before it goes.
//
//   $ ./examples/churn_demo [nodes]

#include <cstdio>
#include <cstdlib>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/zipf_workload.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  const std::size_t nodes = argc > 1 ? std::size_t(std::atoi(argv[1])) : 48;

  net::KingLikeTopology::Params tp;
  tp.hosts = nodes;
  net::KingLikeTopology topo(tp);
  sim::Simulator simulator;
  net::Network network(simulator, topo);
  chord::ChordNet chord(network, {});
  core::HyperSubSystem hypersub(chord);

  // Bootstrap: host 0 alone, everyone else joins via the lifecycle API
  // (protocol join + state-transfer handshake against the current owner).
  chord.node(0).set_predecessor(chord.node(0).self());
  chord.node(0).set_successor(chord.node(0).self());
  chord.start_maintenance();
  for (net::HostIndex h = 1; h < nodes; ++h) {
    hypersub.join_node(h, 0);
    simulator.run_until(simulator.now() + 800.0);
  }
  simulator.run_until(simulator.now() + 30000.0);

  // Verify ring consistency against ground truth.
  const auto ring = chord.oracle_ring();
  std::size_t consistent = 0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (chord.node(ring[i].host).successor().id ==
        ring[(i + 1) % ring.size()].id) {
      ++consistent;
    }
  }
  std::printf("after protocol bootstrap: %zu/%zu successor pointers exact\n",
              consistent, ring.size());

  workload::WorkloadGenerator gen(workload::tiny_spec(), 3);
  core::SchemeOptions opts;
  opts.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = hypersub.add_scheme(gen.scheme(), opts);
  for (net::HostIndex h = 0; h < nodes; ++h) {
    hypersub.subscribe(h, scheme, gen.make_subscription());
  }
  simulator.run_until(simulator.now() + 30000.0);
  std::printf("%zu subscriptions installed over the live ring\n",
              hypersub.total_subscriptions());

  Rng rng(9);
  auto publish_batch = [&](std::size_t count) {
    const std::size_t before = hypersub.deliveries().size();
    for (std::size_t i = 0; i < count; ++i) {
      net::HostIndex pub;
      do {
        pub = net::HostIndex(rng.index(nodes));
      } while (!network.alive(pub));
      hypersub.publish(pub, scheme, gen.make_event());
    }
    simulator.run_until(simulator.now() + 60000.0);
    hypersub.finalize_events();
    return hypersub.deliveries().size() - before;
  };

  std::printf("steady state: 50 events -> %zu deliveries\n",
              publish_batch(50));

  // Crash 1/8 of the nodes (abrupt: no handshake, state dies with them).
  std::size_t killed = 0;
  for (net::HostIndex h = 1; h < nodes && killed < nodes / 8; h += 8, ++killed) {
    hypersub.crash_node(h);
  }
  std::printf("crashed %zu nodes; repairing...\n", killed);
  simulator.run_until(simulator.now() + 120000.0);

  const auto ring2 = chord.oracle_ring();
  consistent = 0;
  for (std::size_t i = 0; i < ring2.size(); ++i) {
    if (chord.node(ring2[i].host).successor().id ==
        ring2[(i + 1) % ring2.size()].id) {
      ++consistent;
    }
  }
  std::printf("after repair: %zu/%zu successor pointers exact\n", consistent,
              ring2.size());
  std::printf("post-churn: 50 events -> %zu deliveries "
              "(subscriptions stored on dead nodes are lost; the paper "
              "defers replication to the DHT layer)\n",
              publish_batch(50));
  // One graceful departure: the leaver pushes its zones to its successor
  // before splicing out, so its hosted subscriptions survive.
  net::HostIndex leaver = 2;
  while (leaver < nodes && !network.alive(leaver)) ++leaver;
  if (leaver < nodes) {
    hypersub.leave_node(leaver);
    simulator.run_until(simulator.now() + 60000.0);
    const auto& js = hypersub.join_stats();
    std::printf("graceful leave of host %u: %llu zones handed off, "
                "%llu transfer bytes total this run\n",
                unsigned(leaver),
                (unsigned long long)js.zones_transferred,
                (unsigned long long)js.transfer_bytes);
  }
  std::printf("messages dropped at dead hosts: %llu\n",
              (unsigned long long)network.dropped());
  return 0;
}
