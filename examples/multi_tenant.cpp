// Multi-tenant platform demo: the paper's headline claim is that HyperSub
// "can provide a scalable platform to simultaneously support any numbers
// of pub/sub schemes with different number of attributes" (§1), with
// zone-mapping rotation keeping the schemes' hot zones apart (§4).
//
// Three services with different schemas share one 200-node overlay:
//   * weather alerts  (2 attributes)
//   * job postings    (3 attributes; string-typed title via §3.1 mapping)
//   * network telemetry (5 attributes)
//
//   $ ./examples/multi_tenant [nodes]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "core/load_balancer.hpp"
#include "net/topology.hpp"
#include "pubsub/strings.hpp"
#include "pubsub/subscription.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  const std::size_t nodes = argc > 1 ? std::size_t(std::atoi(argv[1])) : 200;

  net::KingLikeTopology::Params tp;
  tp.hosts = nodes;
  net::KingLikeTopology topo(tp);
  sim::Simulator simulator;
  net::Network network(simulator, topo);
  chord::ChordNet chord(network, {});
  core::HyperSubSystem::Config cfg;
  cfg.bootstrap = core::BootstrapMode::kOracle;
  core::HyperSubSystem hypersub(chord, cfg);

  // --- three tenants, three shapes of content space ------------------------
  pubsub::Scheme weather("weather", {{"temperature_c", {-40.0, 55.0}},
                                     {"wind_kmh", {0.0, 250.0}}});
  pubsub::Scheme jobs("jobs", {{"title", {0.0, 1.0}},  // string-mapped
                               {"salary_k", {0.0, 500.0}},
                               {"remote_pct", {0.0, 100.0}}});
  pubsub::Scheme telemetry("telemetry", {{"device", {0.0, 10000.0}},
                                         {"cpu_pct", {0.0, 100.0}},
                                         {"mem_pct", {0.0, 100.0}},
                                         {"err_rate", {0.0, 1000.0}},
                                         {"latency_ms", {0.0, 5000.0}}});

  auto add = [&hypersub](const pubsub::Scheme& s) {
    core::SchemeOptions opt;
    opt.zone_cfg = lph::ZoneSystem::Config::for_dims(s.arity());
    opt.rotate = true;  // spread the three schemes' zones apart
    return hypersub.add_scheme(s, opt);
  };
  const auto sw = add(weather);
  const auto sj = add(jobs);
  const auto st = add(telemetry);

  // --- subscriptions per tenant ---------------------------------------------
  Rng rng(5);
  for (net::HostIndex h = 0; h < nodes; ++h) {
    {  // storm warnings
      const pubsub::Predicate p[] = {{1, {90.0, 250.0}}};
      hypersub.subscribe(h, sw,
                         pubsub::Subscription::from_predicates(weather, p));
    }
    if (h % 2 == 0) {  // "eng*" jobs over some salary floor
      const pubsub::Predicate p[] = {
          {0, pubsub::prefix_range("eng")},
          {1, {rng.uniform(80.0, 200.0), 500.0}}};
      hypersub.subscribe(h, sj,
                         pubsub::Subscription::from_predicates(jobs, p));
    }
    if (h % 4 == 0) {  // unhealthy devices
      const pubsub::Predicate p[] = {{1, {90.0, 100.0}},
                                     {3, {100.0, 1000.0}}};
      hypersub.subscribe(h, st,
                         pubsub::Subscription::from_predicates(telemetry, p));
    }
  }
  simulator.run();

  std::printf("three schemes installed; %zu subscriptions total\n",
              hypersub.total_subscriptions());

  // --- publish a mixed feed ---------------------------------------------------
  for (int i = 0; i < 120; ++i) {
    const auto pub = net::HostIndex(rng.index(nodes));
    switch (i % 3) {
      case 0:
        hypersub.publish(pub, sw,
                         pubsub::Event{0,
                                       {rng.uniform(-40, 55),
                                        rng.uniform(0, 250)}});
        break;
      case 1: {
        const char* titles[] = {"engineer", "engraver", "teacher", "nurse"};
        hypersub.publish(
            pub, sj,
            pubsub::Event{0,
                          {pubsub::string_to_unit(titles[rng.index(4)]),
                           rng.uniform(40, 300), rng.uniform(0, 100)}});
        break;
      }
      default:
        hypersub.publish(pub, st,
                         pubsub::Event{0,
                                       {rng.uniform(0, 10000),
                                        rng.uniform(0, 100),
                                        rng.uniform(0, 100),
                                        rng.uniform(0, 1000),
                                        rng.uniform(0, 5000)}});
    }
  }
  simulator.run();
  hypersub.finalize_events();

  std::printf("published 120 events across the three schemes -> %zu "
              "notifications\n",
              hypersub.deliveries().size());

  // --- broad interests concentrate on shallow zones; migration spreads them --
  auto spread = [&] {
    const auto loads = hypersub.node_loads();
    const auto max_load = *std::max_element(loads.begin(), loads.end());
    std::size_t loaded = 0;
    for (const auto l : loads) loaded += l > 0;
    return std::pair<std::size_t, std::size_t>{loaded, max_load};
  };
  const auto [loaded_before, max_before] = spread();
  std::printf("storage before balancing: %zu/%zu nodes hold state, "
              "max load %zu\n",
              loaded_before, nodes, max_before);
  core::LoadBalancer::Config lc;
  lc.delta = 0.1;
  lc.min_load = 4;
  core::LoadBalancer lb(hypersub, lc);
  for (int i = 0; i < 3; ++i) lb.run_round();
  const auto [loaded_after, max_after] = spread();
  std::printf("after %llu migrations:    %zu/%zu nodes hold state, "
              "max load %zu\n",
              (unsigned long long)lb.migrated_count(), loaded_after, nodes,
              max_after);
  std::printf("avg bandwidth per event: %.2f KB, avg max-latency %.0f ms\n",
              hypersub.event_metrics().bandwidth_kb_cdf().mean(),
              hypersub.event_metrics().latency_cdf().mean());
  return 0;
}
