// Quickstart: bring up a small HyperSub network, subscribe, publish, and
// watch deliveries arrive.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface: topology → network → Chord →
// HyperSubSystem → scheme → subscribe/publish → delivery log.

#include <cstdio>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "pubsub/subscription.hpp"

int main() {
  using namespace hypersub;

  // 1. A 64-host Internet-like network and its discrete-event simulator.
  net::KingLikeTopology::Params tp;
  tp.hosts = 64;
  net::KingLikeTopology topo(tp);
  sim::Simulator simulator;
  net::Network network(simulator, topo);

  // 2. A Chord ring over the hosts (with proximity neighbor selection).
  chord::ChordNet chord(network, {});
  chord.oracle_build();

  // 3. The pub/sub service and a stock-quote scheme.
  core::HyperSubSystem hypersub(chord);
  pubsub::Scheme quotes("quotes", {
                                      {"price", {0.0, 1000.0}},
                                      {"volume", {0.0, 1e6}},
                                  });
  core::SchemeOptions opts;
  opts.zone_cfg = lph::ZoneSystem::Config::for_dims(quotes.arity());
  const auto scheme = hypersub.add_scheme(quotes, opts);

  // 4. Node 7 wants cheap high-volume quotes; node 13 wants a price band.
  {
    const pubsub::Predicate preds[] = {{0, {0.0, 150.0}},
                                       {1, {500000.0, 1e6}}};
    hypersub.subscribe(7, scheme,
                       pubsub::Subscription::from_predicates(quotes, preds));
  }
  {
    const pubsub::Predicate preds[] = {{0, {100.0, 300.0}}};
    hypersub.subscribe(13, scheme,
                       pubsub::Subscription::from_predicates(quotes, preds));
  }
  simulator.run();  // let the installations settle

  // 5. Node 42 publishes three quotes.
  hypersub.publish(42, scheme, pubsub::Event{0, {120.0, 750000.0}});  // both
  hypersub.publish(42, scheme, pubsub::Event{0, {120.0, 1000.0}});    // 13
  hypersub.publish(42, scheme, pubsub::Event{0, {900.0, 750000.0}});  // none
  simulator.run();
  hypersub.finalize_events();

  // 6. Inspect what arrived where.
  std::printf("deliveries (%zu):\n", hypersub.deliveries().size());
  for (const auto& d : hypersub.deliveries()) {
    std::printf(
        "  event #%llu -> node %zu (sub iid=%u) after %d hops, %.1f ms\n",
        (unsigned long long)d.event_seq, d.subscriber, d.iid, d.hops,
        d.latency_ms);
  }
  for (const auto& r : hypersub.event_metrics().records()) {
    std::printf(
        "event #%llu: matched=%zu, max_hops=%d, max_latency=%.1f ms, "
        "bandwidth=%llu B\n",
        (unsigned long long)r.seq, r.matched, r.max_hops, r.max_latency_ms,
        (unsigned long long)r.bandwidth_bytes);
  }
  return 0;
}
