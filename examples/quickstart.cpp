// Quickstart: bring up a small HyperSub network, subscribe, publish, and
// watch deliveries arrive.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface: topology → network → Chord →
// HyperSubSystem → scheme → subscription handles → per-publish delivery
// callbacks → unsubscribe → metrics snapshot.

#include <cstdio>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "pubsub/subscription.hpp"

int main() {
  using namespace hypersub;

  // 1. A 64-host Internet-like network and its discrete-event simulator.
  net::KingLikeTopology::Params tp;
  tp.hosts = 64;
  net::KingLikeTopology topo(tp);
  sim::Simulator simulator;
  net::Network network(simulator, topo);

  // 2. A Chord ring over the hosts (with proximity neighbor selection).
  chord::ChordNet chord(network, {});

  // 3. The pub/sub service and a stock-quote scheme. The overlay is
  //    oracle-built by the system (BootstrapMode::kOracle); the publish
  //    fast lane (rendezvous route cache + frame batching) is on by
  //    request.
  core::HyperSubSystem::Config cfg;
  cfg.bootstrap = core::BootstrapMode::kOracle;
  cfg.route_cache = true;
  cfg.batch_forwarding = true;
  core::HyperSubSystem hypersub(chord, cfg);
  pubsub::Scheme quotes("quotes", {
                                      {"price", {0.0, 1000.0}},
                                      {"volume", {0.0, 1e6}},
                                  });
  core::SchemeOptions opts;
  opts.zone_cfg = lph::ZoneSystem::Config::for_dims(quotes.arity());
  const auto scheme = hypersub.add_scheme(quotes, opts);

  // 4. Node 7 wants cheap high-volume quotes; node 13 wants a price band.
  //    subscribe() returns a handle that identifies the subscription.
  core::SubscriptionHandle cheap_high_volume;
  {
    const pubsub::Predicate preds[] = {{0, {0.0, 150.0}},
                                       {1, {500000.0, 1e6}}};
    cheap_high_volume = hypersub.subscribe(
        7, scheme, pubsub::Subscription::from_predicates(quotes, preds));
  }
  {
    const pubsub::Predicate preds[] = {{0, {100.0, 300.0}}};
    hypersub.subscribe(13, scheme,
                       pubsub::Subscription::from_predicates(quotes, preds));
  }
  simulator.run();  // let the installations settle

  // 5. Node 42 publishes three quotes. A per-publish callback sees each
  //    notification for this event as it lands on a subscriber.
  auto announce = [](const core::Delivery& d) {
    std::printf("  event #%llu -> node %zu (sub iid=%u) after %d hops,"
                " %.1f ms\n",
                (unsigned long long)d.event_seq, d.subscriber, d.iid, d.hops,
                d.latency_ms);
  };
  hypersub.publish(42, scheme, pubsub::Event{0, {120.0, 750000.0}},
                   announce);  // matches both
  hypersub.publish(42, scheme, pubsub::Event{0, {120.0, 1000.0}},
                   announce);  // matches node 13 only
  hypersub.publish(42, scheme, pubsub::Event{0, {900.0, 750000.0}},
                   announce);  // matches none
  simulator.run();
  hypersub.finalize_events();

  // 6. The handle tears the subscription down again.
  hypersub.unsubscribe(cheap_high_volume);
  simulator.run();
  hypersub.publish(42, scheme, pubsub::Event{0, {120.0, 750000.0}});
  simulator.run();
  hypersub.finalize_events();

  // 7. Deliveries also accumulate in the system's delivery sink (the
  //    default sink keeps a full log), and metrics::snapshot() bundles
  //    every counter the system tracks.
  std::printf("delivery log (%zu rows):\n", hypersub.deliveries().size());
  for (const auto& d : hypersub.deliveries()) announce(d);
  const auto snap = metrics::snapshot(hypersub);
  std::printf("snapshot: %s\n", snap.to_json().c_str());
  return 0;
}
