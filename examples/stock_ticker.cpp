// Stock-ticker scenario: the workload the pub/sub literature's intros
// motivate. Several thousand brokers subscribe to price/volume/change
// bands on a ticker scheme; a market feed publishes quotes; dynamic load
// balancing keeps hot price regions from overloading their surrogate
// nodes.
//
//   $ ./examples/stock_ticker [nodes] [quotes]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "core/load_balancer.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "pubsub/subscription.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  const std::size_t nodes = argc > 1 ? std::size_t(std::atoi(argv[1])) : 300;
  const std::size_t quotes = argc > 2 ? std::size_t(std::atoi(argv[2])) : 400;

  net::KingLikeTopology::Params tp;
  tp.hosts = nodes;
  net::KingLikeTopology topo(tp);
  sim::Simulator simulator;
  net::Network network(simulator, topo);
  chord::ChordNet chord(network, {});
  core::HyperSubSystem::Config cfg;
  cfg.bootstrap = core::BootstrapMode::kOracle;
  core::HyperSubSystem hypersub(chord, cfg);
  // We only need counts at this scale, not the full delivery log.
  core::CountingDeliverySink deliveries;
  hypersub.set_delivery_sink(deliveries);

  // Ticker scheme: symbol id, price, volume, percent change.
  pubsub::Scheme ticker("ticker", {
                                      {"symbol", {0.0, 500.0}},
                                      {"price", {0.0, 2000.0}},
                                      {"volume", {0.0, 1e7}},
                                      {"change_pct", {-20.0, 20.0}},
                                  });
  core::SchemeOptions opts;
  opts.zone_cfg = {1, 20};
  // Brokers often constrain only (symbol, price) or only (change_pct):
  // split the scheme accordingly (§3.5).
  opts.subschemes = {{0, 1, 2, 3}, {0, 1}, {3}};
  const auto scheme = hypersub.add_scheme(ticker, opts);

  // Brokers: every node installs a few watches, clustered on hot symbols.
  Rng rng(7);
  std::size_t installed = 0;
  for (net::HostIndex h = 0; h < nodes; ++h) {
    for (int k = 0; k < 5; ++k) {
      const double hot = rng.chance(0.7) ? rng.uniform(0, 50)    // hot decile
                                         : rng.uniform(0, 500);  // long tail
      const double band = rng.uniform(5, 60);
      const double mid = rng.uniform(10, 1900);
      if (rng.chance(0.5)) {
        // Price watch on one symbol.
        const pubsub::Predicate preds[] = {
            {0, {hot, hot}},
            {1, {std::max(0.0, mid - band), std::min(2000.0, mid + band)}}};
        hypersub.subscribe(
            h, scheme, pubsub::Subscription::from_predicates(ticker, preds));
      } else {
        // Mover alert: any symbol beyond +/- x %.
        const double x = rng.uniform(2.0, 10.0);
        const pubsub::Predicate preds[] = {{3, {x, 20.0}}};
        hypersub.subscribe(
            h, scheme, pubsub::Subscription::from_predicates(ticker, preds));
      }
      ++installed;
    }
  }
  simulator.run();
  std::printf("installed %zu subscriptions across %zu brokers\n", installed,
              nodes);

  // Balance the hot symbol zones before the feed opens.
  core::LoadBalancer::Config lc;
  lc.delta = 0.1;
  lc.min_load = 8;
  core::LoadBalancer lb(hypersub, lc);
  lb.run_round();
  std::printf("load balancing migrated %llu subscriptions\n",
              (unsigned long long)lb.migrated_count());

  network.reset_traffic();
  hypersub.reset_metrics();

  // Market feed: quotes arrive every ~50 ms, clustered on hot symbols.
  double t = 0.0;
  for (std::size_t i = 0; i < quotes; ++i) {
    t += rng.exponential(50.0);
    const double sym = rng.chance(0.7) ? rng.uniform(0, 50)
                                       : rng.uniform(0, 500);
    const double change = std::clamp(rng.normal(0.0, 4.0), -20.0, 20.0);
    pubsub::Event quote{
        0, {sym, rng.uniform(1, 2000), rng.uniform(0, 1e7), change}};
    const auto feed = net::HostIndex(rng.index(nodes));
    simulator.schedule(t, [&hypersub, scheme, feed, quote]() mutable {
      hypersub.publish(feed, scheme, std::move(quote));
    });
  }
  simulator.run();
  hypersub.finalize_events();

  const metrics::Snapshot snap = metrics::snapshot(hypersub);
  std::printf("\npublished %zu quotes:\n", snap.events);
  std::printf("  quote deliveries          : %llu\n",
              (unsigned long long)deliveries.count());
  std::printf("  avg matched brokers/quote : %.1f\n",
              snap.avg_pct_matched / 100.0 *
                  double(snap.total_subscriptions));
  std::printf("  avg max-hops              : %.1f\n", snap.mean_max_hops);
  std::printf("  avg max-latency           : %.0f ms\n",
              snap.mean_max_latency_ms);
  std::printf("  avg bandwidth/quote       : %.1f KB\n",
              snap.mean_bandwidth_kb);
  std::printf("  broker load (min/mean/max): %zu / %.1f / %zu\n",
              snap.load_min, snap.load_mean, snap.load_max);
  std::printf("  total feed bandwidth      : %.1f MB\n",
              double(network.total_bytes()) / (1024.0 * 1024.0));
  return 0;
}
