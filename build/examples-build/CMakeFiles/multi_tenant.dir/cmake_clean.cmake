file(REMOVE_RECURSE
  "../examples/multi_tenant"
  "../examples/multi_tenant.pdb"
  "CMakeFiles/multi_tenant.dir/multi_tenant.cpp.o"
  "CMakeFiles/multi_tenant.dir/multi_tenant.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
