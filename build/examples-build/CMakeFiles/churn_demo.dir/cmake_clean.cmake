file(REMOVE_RECURSE
  "../examples/churn_demo"
  "../examples/churn_demo.pdb"
  "CMakeFiles/churn_demo.dir/churn_demo.cpp.o"
  "CMakeFiles/churn_demo.dir/churn_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
