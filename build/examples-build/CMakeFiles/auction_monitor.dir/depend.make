# Empty dependencies file for auction_monitor.
# This may be replaced when dependencies are built.
