file(REMOVE_RECURSE
  "../examples/auction_monitor"
  "../examples/auction_monitor.pdb"
  "CMakeFiles/auction_monitor.dir/auction_monitor.cpp.o"
  "CMakeFiles/auction_monitor.dir/auction_monitor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
