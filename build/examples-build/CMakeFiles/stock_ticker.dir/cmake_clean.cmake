file(REMOVE_RECURSE
  "../examples/stock_ticker"
  "../examples/stock_ticker.pdb"
  "CMakeFiles/stock_ticker.dir/stock_ticker.cpp.o"
  "CMakeFiles/stock_ticker.dir/stock_ticker.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_ticker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
