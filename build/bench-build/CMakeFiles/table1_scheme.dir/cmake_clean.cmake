file(REMOVE_RECURSE
  "../bench/table1_scheme"
  "../bench/table1_scheme.pdb"
  "CMakeFiles/table1_scheme.dir/table1_scheme.cpp.o"
  "CMakeFiles/table1_scheme.dir/table1_scheme.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
