# Empty compiler generated dependencies file for table1_scheme.
# This may be replaced when dependencies are built.
