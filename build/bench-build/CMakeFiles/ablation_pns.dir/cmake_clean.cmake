file(REMOVE_RECURSE
  "../bench/ablation_pns"
  "../bench/ablation_pns.pdb"
  "CMakeFiles/ablation_pns.dir/ablation_pns.cpp.o"
  "CMakeFiles/ablation_pns.dir/ablation_pns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
