# Empty dependencies file for ablation_pns.
# This may be replaced when dependencies are built.
