file(REMOVE_RECURSE
  "../bench/fig4_load_distribution"
  "../bench/fig4_load_distribution.pdb"
  "CMakeFiles/fig4_load_distribution.dir/fig4_load_distribution.cpp.o"
  "CMakeFiles/fig4_load_distribution.dir/fig4_load_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_load_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
