# Empty dependencies file for fig4_load_distribution.
# This may be replaced when dependencies are built.
