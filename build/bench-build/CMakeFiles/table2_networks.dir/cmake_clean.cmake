file(REMOVE_RECURSE
  "../bench/table2_networks"
  "../bench/table2_networks.pdb"
  "CMakeFiles/table2_networks.dir/table2_networks.cpp.o"
  "CMakeFiles/table2_networks.dir/table2_networks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
