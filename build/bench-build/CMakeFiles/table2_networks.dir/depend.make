# Empty dependencies file for table2_networks.
# This may be replaced when dependencies are built.
