# Empty dependencies file for ablation_dht.
# This may be replaced when dependencies are built.
