file(REMOVE_RECURSE
  "../bench/ablation_dht"
  "../bench/ablation_dht.pdb"
  "CMakeFiles/ablation_dht.dir/ablation_dht.cpp.o"
  "CMakeFiles/ablation_dht.dir/ablation_dht.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
