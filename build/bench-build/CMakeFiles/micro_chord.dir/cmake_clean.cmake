file(REMOVE_RECURSE
  "../bench/micro_chord"
  "../bench/micro_chord.pdb"
  "CMakeFiles/micro_chord.dir/micro_chord.cpp.o"
  "CMakeFiles/micro_chord.dir/micro_chord.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
