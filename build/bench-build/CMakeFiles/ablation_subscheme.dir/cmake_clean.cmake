file(REMOVE_RECURSE
  "../bench/ablation_subscheme"
  "../bench/ablation_subscheme.pdb"
  "CMakeFiles/ablation_subscheme.dir/ablation_subscheme.cpp.o"
  "CMakeFiles/ablation_subscheme.dir/ablation_subscheme.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subscheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
