# Empty compiler generated dependencies file for ablation_subscheme.
# This may be replaced when dependencies are built.
