file(REMOVE_RECURSE
  "../bench/micro_lph"
  "../bench/micro_lph.pdb"
  "CMakeFiles/micro_lph.dir/micro_lph.cpp.o"
  "CMakeFiles/micro_lph.dir/micro_lph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
