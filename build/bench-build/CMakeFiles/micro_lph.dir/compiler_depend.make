# Empty compiler generated dependencies file for micro_lph.
# This may be replaced when dependencies are built.
