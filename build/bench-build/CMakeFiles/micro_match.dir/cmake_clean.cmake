file(REMOVE_RECURSE
  "../bench/micro_match"
  "../bench/micro_match.pdb"
  "CMakeFiles/micro_match.dir/micro_match.cpp.o"
  "CMakeFiles/micro_match.dir/micro_match.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
