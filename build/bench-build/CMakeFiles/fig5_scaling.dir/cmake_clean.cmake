file(REMOVE_RECURSE
  "../bench/fig5_scaling"
  "../bench/fig5_scaling.pdb"
  "CMakeFiles/fig5_scaling.dir/fig5_scaling.cpp.o"
  "CMakeFiles/fig5_scaling.dir/fig5_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
