file(REMOVE_RECURSE
  "../bench/micro_pastry"
  "../bench/micro_pastry.pdb"
  "CMakeFiles/micro_pastry.dir/micro_pastry.cpp.o"
  "CMakeFiles/micro_pastry.dir/micro_pastry.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pastry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
