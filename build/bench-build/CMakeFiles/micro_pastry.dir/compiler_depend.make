# Empty compiler generated dependencies file for micro_pastry.
# This may be replaced when dependencies are built.
