# Empty dependencies file for fig2_event_cdfs.
# This may be replaced when dependencies are built.
