file(REMOVE_RECURSE
  "../bench/fig2_event_cdfs"
  "../bench/fig2_event_cdfs.pdb"
  "CMakeFiles/fig2_event_cdfs.dir/fig2_event_cdfs.cpp.o"
  "CMakeFiles/fig2_event_cdfs.dir/fig2_event_cdfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_event_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
