file(REMOVE_RECURSE
  "../bench/ablation_piggyback"
  "../bench/ablation_piggyback.pdb"
  "CMakeFiles/ablation_piggyback.dir/ablation_piggyback.cpp.o"
  "CMakeFiles/ablation_piggyback.dir/ablation_piggyback.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
