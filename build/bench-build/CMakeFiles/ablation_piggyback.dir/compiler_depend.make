# Empty compiler generated dependencies file for ablation_piggyback.
# This may be replaced when dependencies are built.
