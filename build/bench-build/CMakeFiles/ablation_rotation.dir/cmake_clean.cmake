file(REMOVE_RECURSE
  "../bench/ablation_rotation"
  "../bench/ablation_rotation.pdb"
  "CMakeFiles/ablation_rotation.dir/ablation_rotation.cpp.o"
  "CMakeFiles/ablation_rotation.dir/ablation_rotation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
