file(REMOVE_RECURSE
  "../bench/fig3_node_bandwidth"
  "../bench/fig3_node_bandwidth.pdb"
  "CMakeFiles/fig3_node_bandwidth.dir/fig3_node_bandwidth.cpp.o"
  "CMakeFiles/fig3_node_bandwidth.dir/fig3_node_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_node_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
