# Empty compiler generated dependencies file for ablation_churn.
# This may be replaced when dependencies are built.
