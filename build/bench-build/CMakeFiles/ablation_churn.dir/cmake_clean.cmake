file(REMOVE_RECURSE
  "../bench/ablation_churn"
  "../bench/ablation_churn.pdb"
  "CMakeFiles/ablation_churn.dir/ablation_churn.cpp.o"
  "CMakeFiles/ablation_churn.dir/ablation_churn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
