file(REMOVE_RECURSE
  "CMakeFiles/hypersub_common.dir/common/hashing.cpp.o"
  "CMakeFiles/hypersub_common.dir/common/hashing.cpp.o.d"
  "CMakeFiles/hypersub_common.dir/common/hyperrect.cpp.o"
  "CMakeFiles/hypersub_common.dir/common/hyperrect.cpp.o.d"
  "CMakeFiles/hypersub_common.dir/common/stats.cpp.o"
  "CMakeFiles/hypersub_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/hypersub_common.dir/common/zipf.cpp.o"
  "CMakeFiles/hypersub_common.dir/common/zipf.cpp.o.d"
  "libhypersub_common.a"
  "libhypersub_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
