
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/hashing.cpp" "src/CMakeFiles/hypersub_common.dir/common/hashing.cpp.o" "gcc" "src/CMakeFiles/hypersub_common.dir/common/hashing.cpp.o.d"
  "/root/repo/src/common/hyperrect.cpp" "src/CMakeFiles/hypersub_common.dir/common/hyperrect.cpp.o" "gcc" "src/CMakeFiles/hypersub_common.dir/common/hyperrect.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/hypersub_common.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/hypersub_common.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/zipf.cpp" "src/CMakeFiles/hypersub_common.dir/common/zipf.cpp.o" "gcc" "src/CMakeFiles/hypersub_common.dir/common/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
