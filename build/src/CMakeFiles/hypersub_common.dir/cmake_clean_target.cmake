file(REMOVE_RECURSE
  "libhypersub_common.a"
)
