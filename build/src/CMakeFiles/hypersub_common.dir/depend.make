# Empty dependencies file for hypersub_common.
# This may be replaced when dependencies are built.
