file(REMOVE_RECURSE
  "libhypersub_metrics.a"
)
