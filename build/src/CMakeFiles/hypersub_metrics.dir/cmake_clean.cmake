file(REMOVE_RECURSE
  "CMakeFiles/hypersub_metrics.dir/metrics/event_metrics.cpp.o"
  "CMakeFiles/hypersub_metrics.dir/metrics/event_metrics.cpp.o.d"
  "CMakeFiles/hypersub_metrics.dir/metrics/node_metrics.cpp.o"
  "CMakeFiles/hypersub_metrics.dir/metrics/node_metrics.cpp.o.d"
  "CMakeFiles/hypersub_metrics.dir/metrics/report.cpp.o"
  "CMakeFiles/hypersub_metrics.dir/metrics/report.cpp.o.d"
  "libhypersub_metrics.a"
  "libhypersub_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
