# Empty dependencies file for hypersub_metrics.
# This may be replaced when dependencies are built.
