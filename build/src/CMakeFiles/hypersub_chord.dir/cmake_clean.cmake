file(REMOVE_RECURSE
  "CMakeFiles/hypersub_chord.dir/chord/chord_net.cpp.o"
  "CMakeFiles/hypersub_chord.dir/chord/chord_net.cpp.o.d"
  "CMakeFiles/hypersub_chord.dir/chord/chord_node.cpp.o"
  "CMakeFiles/hypersub_chord.dir/chord/chord_node.cpp.o.d"
  "CMakeFiles/hypersub_chord.dir/chord/ring.cpp.o"
  "CMakeFiles/hypersub_chord.dir/chord/ring.cpp.o.d"
  "libhypersub_chord.a"
  "libhypersub_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
