# Empty compiler generated dependencies file for hypersub_chord.
# This may be replaced when dependencies are built.
