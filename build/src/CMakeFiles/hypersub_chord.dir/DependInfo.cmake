
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chord/chord_net.cpp" "src/CMakeFiles/hypersub_chord.dir/chord/chord_net.cpp.o" "gcc" "src/CMakeFiles/hypersub_chord.dir/chord/chord_net.cpp.o.d"
  "/root/repo/src/chord/chord_node.cpp" "src/CMakeFiles/hypersub_chord.dir/chord/chord_node.cpp.o" "gcc" "src/CMakeFiles/hypersub_chord.dir/chord/chord_node.cpp.o.d"
  "/root/repo/src/chord/ring.cpp" "src/CMakeFiles/hypersub_chord.dir/chord/ring.cpp.o" "gcc" "src/CMakeFiles/hypersub_chord.dir/chord/ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypersub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypersub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypersub_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
