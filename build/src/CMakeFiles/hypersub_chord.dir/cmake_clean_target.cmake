file(REMOVE_RECURSE
  "libhypersub_chord.a"
)
