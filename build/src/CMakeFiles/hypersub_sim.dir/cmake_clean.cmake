file(REMOVE_RECURSE
  "CMakeFiles/hypersub_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/hypersub_sim.dir/sim/simulator.cpp.o.d"
  "libhypersub_sim.a"
  "libhypersub_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
