# Empty compiler generated dependencies file for hypersub_sim.
# This may be replaced when dependencies are built.
