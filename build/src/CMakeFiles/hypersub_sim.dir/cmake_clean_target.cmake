file(REMOVE_RECURSE
  "libhypersub_sim.a"
)
