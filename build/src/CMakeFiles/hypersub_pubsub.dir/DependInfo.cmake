
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pubsub/event.cpp" "src/CMakeFiles/hypersub_pubsub.dir/pubsub/event.cpp.o" "gcc" "src/CMakeFiles/hypersub_pubsub.dir/pubsub/event.cpp.o.d"
  "/root/repo/src/pubsub/scheme.cpp" "src/CMakeFiles/hypersub_pubsub.dir/pubsub/scheme.cpp.o" "gcc" "src/CMakeFiles/hypersub_pubsub.dir/pubsub/scheme.cpp.o.d"
  "/root/repo/src/pubsub/strings.cpp" "src/CMakeFiles/hypersub_pubsub.dir/pubsub/strings.cpp.o" "gcc" "src/CMakeFiles/hypersub_pubsub.dir/pubsub/strings.cpp.o.d"
  "/root/repo/src/pubsub/subscription.cpp" "src/CMakeFiles/hypersub_pubsub.dir/pubsub/subscription.cpp.o" "gcc" "src/CMakeFiles/hypersub_pubsub.dir/pubsub/subscription.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypersub_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
