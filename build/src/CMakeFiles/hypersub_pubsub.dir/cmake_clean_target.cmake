file(REMOVE_RECURSE
  "libhypersub_pubsub.a"
)
