# Empty compiler generated dependencies file for hypersub_pubsub.
# This may be replaced when dependencies are built.
