file(REMOVE_RECURSE
  "CMakeFiles/hypersub_pubsub.dir/pubsub/event.cpp.o"
  "CMakeFiles/hypersub_pubsub.dir/pubsub/event.cpp.o.d"
  "CMakeFiles/hypersub_pubsub.dir/pubsub/scheme.cpp.o"
  "CMakeFiles/hypersub_pubsub.dir/pubsub/scheme.cpp.o.d"
  "CMakeFiles/hypersub_pubsub.dir/pubsub/strings.cpp.o"
  "CMakeFiles/hypersub_pubsub.dir/pubsub/strings.cpp.o.d"
  "CMakeFiles/hypersub_pubsub.dir/pubsub/subscription.cpp.o"
  "CMakeFiles/hypersub_pubsub.dir/pubsub/subscription.cpp.o.d"
  "libhypersub_pubsub.a"
  "libhypersub_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
