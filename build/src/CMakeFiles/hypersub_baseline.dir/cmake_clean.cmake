file(REMOVE_RECURSE
  "CMakeFiles/hypersub_baseline.dir/baseline/ferry_like.cpp.o"
  "CMakeFiles/hypersub_baseline.dir/baseline/ferry_like.cpp.o.d"
  "CMakeFiles/hypersub_baseline.dir/baseline/meghdoot_like.cpp.o"
  "CMakeFiles/hypersub_baseline.dir/baseline/meghdoot_like.cpp.o.d"
  "libhypersub_baseline.a"
  "libhypersub_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
