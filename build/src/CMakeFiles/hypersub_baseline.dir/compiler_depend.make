# Empty compiler generated dependencies file for hypersub_baseline.
# This may be replaced when dependencies are built.
