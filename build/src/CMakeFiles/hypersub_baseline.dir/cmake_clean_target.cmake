file(REMOVE_RECURSE
  "libhypersub_baseline.a"
)
