file(REMOVE_RECURSE
  "CMakeFiles/hypersub_pastry.dir/pastry/pastry_net.cpp.o"
  "CMakeFiles/hypersub_pastry.dir/pastry/pastry_net.cpp.o.d"
  "libhypersub_pastry.a"
  "libhypersub_pastry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_pastry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
