file(REMOVE_RECURSE
  "libhypersub_pastry.a"
)
