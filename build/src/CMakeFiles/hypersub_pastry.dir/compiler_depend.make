# Empty compiler generated dependencies file for hypersub_pastry.
# This may be replaced when dependencies are built.
