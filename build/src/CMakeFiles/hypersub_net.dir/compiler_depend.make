# Empty compiler generated dependencies file for hypersub_net.
# This may be replaced when dependencies are built.
