file(REMOVE_RECURSE
  "CMakeFiles/hypersub_net.dir/net/network.cpp.o"
  "CMakeFiles/hypersub_net.dir/net/network.cpp.o.d"
  "CMakeFiles/hypersub_net.dir/net/topology.cpp.o"
  "CMakeFiles/hypersub_net.dir/net/topology.cpp.o.d"
  "libhypersub_net.a"
  "libhypersub_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
