file(REMOVE_RECURSE
  "libhypersub_net.a"
)
