# Empty dependencies file for hypersub_can.
# This may be replaced when dependencies are built.
