file(REMOVE_RECURSE
  "CMakeFiles/hypersub_can.dir/can/can_net.cpp.o"
  "CMakeFiles/hypersub_can.dir/can/can_net.cpp.o.d"
  "libhypersub_can.a"
  "libhypersub_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
