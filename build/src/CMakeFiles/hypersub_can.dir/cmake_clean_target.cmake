file(REMOVE_RECURSE
  "libhypersub_can.a"
)
