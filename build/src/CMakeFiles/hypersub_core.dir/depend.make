# Empty dependencies file for hypersub_core.
# This may be replaced when dependencies are built.
