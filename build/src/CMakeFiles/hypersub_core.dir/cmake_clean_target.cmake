file(REMOVE_RECURSE
  "libhypersub_core.a"
)
