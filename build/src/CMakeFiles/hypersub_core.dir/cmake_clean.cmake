file(REMOVE_RECURSE
  "CMakeFiles/hypersub_core.dir/core/hypersub_node.cpp.o"
  "CMakeFiles/hypersub_core.dir/core/hypersub_node.cpp.o.d"
  "CMakeFiles/hypersub_core.dir/core/hypersub_system.cpp.o"
  "CMakeFiles/hypersub_core.dir/core/hypersub_system.cpp.o.d"
  "CMakeFiles/hypersub_core.dir/core/load_balancer.cpp.o"
  "CMakeFiles/hypersub_core.dir/core/load_balancer.cpp.o.d"
  "CMakeFiles/hypersub_core.dir/core/subid.cpp.o"
  "CMakeFiles/hypersub_core.dir/core/subid.cpp.o.d"
  "CMakeFiles/hypersub_core.dir/core/subscheme.cpp.o"
  "CMakeFiles/hypersub_core.dir/core/subscheme.cpp.o.d"
  "CMakeFiles/hypersub_core.dir/core/zone_state.cpp.o"
  "CMakeFiles/hypersub_core.dir/core/zone_state.cpp.o.d"
  "libhypersub_core.a"
  "libhypersub_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
