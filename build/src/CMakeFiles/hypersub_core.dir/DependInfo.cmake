
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hypersub_node.cpp" "src/CMakeFiles/hypersub_core.dir/core/hypersub_node.cpp.o" "gcc" "src/CMakeFiles/hypersub_core.dir/core/hypersub_node.cpp.o.d"
  "/root/repo/src/core/hypersub_system.cpp" "src/CMakeFiles/hypersub_core.dir/core/hypersub_system.cpp.o" "gcc" "src/CMakeFiles/hypersub_core.dir/core/hypersub_system.cpp.o.d"
  "/root/repo/src/core/load_balancer.cpp" "src/CMakeFiles/hypersub_core.dir/core/load_balancer.cpp.o" "gcc" "src/CMakeFiles/hypersub_core.dir/core/load_balancer.cpp.o.d"
  "/root/repo/src/core/subid.cpp" "src/CMakeFiles/hypersub_core.dir/core/subid.cpp.o" "gcc" "src/CMakeFiles/hypersub_core.dir/core/subid.cpp.o.d"
  "/root/repo/src/core/subscheme.cpp" "src/CMakeFiles/hypersub_core.dir/core/subscheme.cpp.o" "gcc" "src/CMakeFiles/hypersub_core.dir/core/subscheme.cpp.o.d"
  "/root/repo/src/core/zone_state.cpp" "src/CMakeFiles/hypersub_core.dir/core/zone_state.cpp.o" "gcc" "src/CMakeFiles/hypersub_core.dir/core/zone_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypersub_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypersub_lph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypersub_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypersub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypersub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypersub_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypersub_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
