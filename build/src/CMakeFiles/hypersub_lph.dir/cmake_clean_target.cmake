file(REMOVE_RECURSE
  "libhypersub_lph.a"
)
