file(REMOVE_RECURSE
  "CMakeFiles/hypersub_lph.dir/lph/lph.cpp.o"
  "CMakeFiles/hypersub_lph.dir/lph/lph.cpp.o.d"
  "CMakeFiles/hypersub_lph.dir/lph/zone.cpp.o"
  "CMakeFiles/hypersub_lph.dir/lph/zone.cpp.o.d"
  "libhypersub_lph.a"
  "libhypersub_lph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_lph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
