# Empty dependencies file for hypersub_lph.
# This may be replaced when dependencies are built.
