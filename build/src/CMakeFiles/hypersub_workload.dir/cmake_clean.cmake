file(REMOVE_RECURSE
  "CMakeFiles/hypersub_workload.dir/workload/scheme_factory.cpp.o"
  "CMakeFiles/hypersub_workload.dir/workload/scheme_factory.cpp.o.d"
  "CMakeFiles/hypersub_workload.dir/workload/zipf_workload.cpp.o"
  "CMakeFiles/hypersub_workload.dir/workload/zipf_workload.cpp.o.d"
  "libhypersub_workload.a"
  "libhypersub_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
