
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/scheme_factory.cpp" "src/CMakeFiles/hypersub_workload.dir/workload/scheme_factory.cpp.o" "gcc" "src/CMakeFiles/hypersub_workload.dir/workload/scheme_factory.cpp.o.d"
  "/root/repo/src/workload/zipf_workload.cpp" "src/CMakeFiles/hypersub_workload.dir/workload/zipf_workload.cpp.o" "gcc" "src/CMakeFiles/hypersub_workload.dir/workload/zipf_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hypersub_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hypersub_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
