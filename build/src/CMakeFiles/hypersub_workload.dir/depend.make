# Empty dependencies file for hypersub_workload.
# This may be replaced when dependencies are built.
