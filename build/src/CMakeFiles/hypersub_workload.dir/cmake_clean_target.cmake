file(REMOVE_RECURSE
  "libhypersub_workload.a"
)
