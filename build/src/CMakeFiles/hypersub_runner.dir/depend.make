# Empty dependencies file for hypersub_runner.
# This may be replaced when dependencies are built.
