file(REMOVE_RECURSE
  "CMakeFiles/hypersub_runner.dir/runner/experiment.cpp.o"
  "CMakeFiles/hypersub_runner.dir/runner/experiment.cpp.o.d"
  "libhypersub_runner.a"
  "libhypersub_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersub_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
