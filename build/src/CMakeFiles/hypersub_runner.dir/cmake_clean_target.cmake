file(REMOVE_RECURSE
  "libhypersub_runner.a"
)
