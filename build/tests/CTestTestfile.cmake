# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_chord[1]_include.cmake")
include("/root/repo/build/tests/test_pubsub[1]_include.cmake")
include("/root/repo/build/tests/test_lph[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_can[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_runner[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_piggyback[1]_include.cmake")
include("/root/repo/build/tests/test_pastry[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_replication[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
