file(REMOVE_RECURSE
  "CMakeFiles/test_lph.dir/test_lph.cpp.o"
  "CMakeFiles/test_lph.dir/test_lph.cpp.o.d"
  "test_lph"
  "test_lph.pdb"
  "test_lph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
