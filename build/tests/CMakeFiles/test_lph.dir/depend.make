# Empty dependencies file for test_lph.
# This may be replaced when dependencies are built.
