file(REMOVE_RECURSE
  "CMakeFiles/test_chord.dir/test_chord.cpp.o"
  "CMakeFiles/test_chord.dir/test_chord.cpp.o.d"
  "test_chord"
  "test_chord.pdb"
  "test_chord[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
