file(REMOVE_RECURSE
  "CMakeFiles/test_can.dir/test_can.cpp.o"
  "CMakeFiles/test_can.dir/test_can.cpp.o.d"
  "test_can"
  "test_can.pdb"
  "test_can[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
