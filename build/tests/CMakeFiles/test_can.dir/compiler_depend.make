# Empty compiler generated dependencies file for test_can.
# This may be replaced when dependencies are built.
