file(REMOVE_RECURSE
  "CMakeFiles/test_pastry.dir/test_pastry.cpp.o"
  "CMakeFiles/test_pastry.dir/test_pastry.cpp.o.d"
  "test_pastry"
  "test_pastry.pdb"
  "test_pastry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pastry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
