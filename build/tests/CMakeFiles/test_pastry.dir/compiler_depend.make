# Empty compiler generated dependencies file for test_pastry.
# This may be replaced when dependencies are built.
