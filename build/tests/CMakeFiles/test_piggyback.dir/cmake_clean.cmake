file(REMOVE_RECURSE
  "CMakeFiles/test_piggyback.dir/test_piggyback.cpp.o"
  "CMakeFiles/test_piggyback.dir/test_piggyback.cpp.o.d"
  "test_piggyback"
  "test_piggyback.pdb"
  "test_piggyback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
