# Empty compiler generated dependencies file for test_piggyback.
# This may be replaced when dependencies are built.
