// Micro-benchmark: the discrete-event engine itself — scheduling overhead
// bounds every simulated experiment's wall-clock cost.

#include <benchmark/benchmark.h>

#include "sim/simulator.hpp"

namespace {

using namespace hypersub;

void BM_ScheduleRun(benchmark::State& state) {
  // Schedule-and-drain batches of N events.
  const std::size_t n = std::size_t(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule(double(i % 97), [] {});
    }
    benchmark::DoNotOptimize(s.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScheduleRun)->Arg(1000)->Arg(100000);

void BM_SelfRescheduling(benchmark::State& state) {
  // A chain that re-schedules itself — the steady-state pattern of
  // maintenance timers.
  for (auto _ : state) {
    sim::Simulator s;
    std::size_t left = 10000;
    std::function<void()> step = [&] {
      if (--left) s.schedule(1.0, step);
    };
    s.schedule(1.0, step);
    s.run();
    benchmark::DoNotOptimize(left);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SelfRescheduling);

}  // namespace
