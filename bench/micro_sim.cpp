// Micro-benchmark: the discrete-event engine itself — scheduling overhead
// and parallel-execution throughput bound every simulated experiment's
// wall-clock cost.
//
// Two measurements, both written to BENCH_sim.json (override with
// --json=PATH) so successive PRs can track the engine trajectory:
//
//  1. Task SBO: the scheduler stores actions in sim::Task, a type-erased
//     callable with a 48-byte inline buffer (libstdc++'s std::function
//     only inlines 16 bytes, so the old scheduler paid one heap round
//     trip per event). A tight store/invoke loop with a realistic ~40-byte
//     capture quantifies the saving, plus the engine-level ns/event.
//
//  2. Parallel throughput: a fig5-style pub/sub workload (full stack,
//     every node subscribing, dense event feed) executed with the same
//     lookahead at 1/2/4/8 worker threads. Events/sec is wall-clock
//     throughput of the measured phase; a hash over the metrics snapshot
//     and delivery count verifies every thread count produced the
//     byte-identical result (the engine's whole contract). Speedups are
//     only meaningful when the host has the cores — the json records
//     hardware_concurrency so the CI gate can tell.
//
// --quick shrinks the run for CI; --full runs the 10k-node scale.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "sim/task.hpp"
#include "workload/zipf_workload.hpp"

namespace {

using namespace hypersub;
using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point a, Clock::time_point b) {
  return double(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

struct Params {
  std::size_t nodes = 400;
  std::size_t subs_per_node = 5;
  std::size_t events = 2000;
  double mean_interarrival_ms = 0.5;  ///< dense feed: keeps windows full
  double lookahead_ms = 5.0;
  std::vector<unsigned> threads{1, 2, 4, 8};
};

// --- 1. Task SBO --------------------------------------------------------

/// A realistic scheduled-action capture: `this` + a 32-byte handler-sized
/// payload — inline in Task (48 B), heap-spilled by std::function (16 B).
struct Capture {
  void* self;
  std::uint64_t payload[4];
};

template <class Callable>
double ns_per_store_invoke(std::size_t iters, std::uint64_t& sink) {
  Capture cap{&sink, {1, 2, 3, 4}};
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    cap.payload[0] = i;
    Callable c([cap, &sink] { sink += cap.payload[0] + cap.payload[3]; });
    c();
  }
  return ns_between(t0, Clock::now()) / double(iters);
}

double engine_ns_per_event(std::size_t n, std::uint64_t& sink) {
  sim::Simulator s;
  Capture cap{&sink, {5, 6, 7, 8}};
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    cap.payload[0] = i;
    s.schedule(double(i % 97), [cap, &sink] { sink += cap.payload[0]; });
  }
  s.run();
  return ns_between(t0, Clock::now()) / double(n);
}

// --- 2. parallel throughput --------------------------------------------

struct RunResult {
  unsigned threads = 1;
  std::uint64_t executed = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t snapshot_hash = 0;
};

std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 1469598103934665603ull) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

RunResult run_workload(const Params& p, unsigned threads) {
  net::KingLikeTopology::Params tp;
  tp.hosts = p.nodes;
  tp.seed = 11;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  sim.set_threads(threads);
  sim.set_lookahead(p.lookahead_ms);
  net::Network net(sim, topo);
  chord::ChordNet::Params cp;
  cp.seed = 11;
  chord::ChordNet chord(net, cp);
  chord.oracle_build();
  core::HyperSubSystem sys(chord, {});
  core::CountingDeliverySink sink;
  sys.set_delivery_sink(sink);

  workload::WorkloadGenerator gen(workload::table1_spec(), 23);
  core::SchemeOptions so;
  so.zone_cfg = lph::ZoneSystem::Config{1, 20};
  const auto scheme = sys.add_scheme(gen.scheme(), so);
  for (net::HostIndex h = 0; h < p.nodes; ++h) {
    for (std::size_t k = 0; k < p.subs_per_node; ++k) {
      sys.subscribe(h, scheme, gen.make_subscription());
    }
  }
  sim.run();  // drain installs outside the measured phase
  sys.reset_metrics();

  Rng rng(29);
  double t = 0.0;
  for (std::size_t i = 0; i < p.events; ++i) {
    t += rng.exponential(p.mean_interarrival_ms);
    const auto pub = net::HostIndex(rng.index(p.nodes));
    sim.schedule_at(t, [&sys, pub, scheme, ev = gen.make_event()] {
      sys.publish(pub, scheme, ev);
    });
  }

  const std::uint64_t before = sim.executed();
  const auto t0 = Clock::now();
  sim.run();
  const double wall_ns = ns_between(t0, Clock::now());
  sys.finalize_events();

  RunResult r;
  r.threads = threads;
  r.executed = sim.executed() - before;
  r.wall_ms = wall_ns / 1e6;
  r.events_per_sec = double(r.executed) / (wall_ns / 1e9);
  r.snapshot_hash =
      fnv1a(std::to_string(sink.count()),
            fnv1a(metrics::snapshot(sys).to_json()));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  std::string json_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      p.nodes = 10000;
      p.subs_per_node = 10;
      p.events = 4000;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      p.nodes = 200;
      p.events = 600;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  // --- Task SBO ---
  const std::size_t kIters = 2000000;
  std::uint64_t sink = 0;
  // Warm both paths once, then measure.
  ns_per_store_invoke<sim::Task>(kIters / 10, sink);
  ns_per_store_invoke<std::function<void()>>(kIters / 10, sink);
  const double ns_task = ns_per_store_invoke<sim::Task>(kIters, sink);
  const double ns_function =
      ns_per_store_invoke<std::function<void()>>(kIters, sink);
  const double ns_engine = engine_ns_per_event(500000, sink);
  const auto probe = [cap = Capture{}, &sink] {
    (void)cap;
    (void)sink;
  };
  const bool fits = sim::Task::fits_inline<decltype(probe)>();
  std::printf("[micro_sim] Task store+invoke %.1f ns, std::function %.1f ns "
              "(%.2fx), engine %.1f ns/event, capture inline: %s\n",
              ns_task, ns_function, ns_function / ns_task, ns_engine,
              fits ? "yes" : "no");

  // --- parallel throughput ---
  std::vector<RunResult> runs;
  for (const unsigned threads : p.threads) {
    runs.push_back(run_workload(p, threads));
    const RunResult& r = runs.back();
    std::printf("[micro_sim] threads=%u: %.0f events/sec "
                "(%llu events, %.1f ms, hash %016llx)\n",
                r.threads, r.events_per_sec,
                (unsigned long long)r.executed, r.wall_ms,
                (unsigned long long)r.snapshot_hash);
  }
  bool deterministic = true;
  for (const RunResult& r : runs) {
    deterministic = deterministic && r.snapshot_hash == runs[0].snapshot_hash;
  }
  std::printf("[micro_sim] deterministic across thread counts: %s\n",
              deterministic ? "yes" : "NO — engine bug");

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f, "{\n \"bench\": \"micro_sim\",\n");
  hypersub::bench::write_host_json(f);
  std::fprintf(f, " \"nodes\": %zu,\n \"events\": %zu,\n", p.nodes, p.events);
  std::fprintf(f, " \"lookahead_ms\": %.3f,\n", p.lookahead_ms);
  std::fprintf(f,
               " \"task_sbo\": {\n"
               "  \"ns_per_op_task\": %.2f,\n"
               "  \"ns_per_op_function\": %.2f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"engine_ns_per_event\": %.2f,\n"
               "  \"capture_bytes\": %zu,\n"
               "  \"task_inline_size\": %zu,\n"
               "  \"capture_fits_inline\": %s\n },\n",
               ns_task, ns_function, ns_function / ns_task, ns_engine,
               sizeof(Capture), sim::Task::kInlineSize,
               fits ? "true" : "false");
  std::fprintf(f, " \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f,
                 "  {\"threads\": %u, \"events_per_sec\": %.0f, "
                 "\"executed_events\": %llu, \"wall_ms\": %.2f, "
                 "\"snapshot_hash\": \"%016llx\"}%s\n",
                 r.threads, r.events_per_sec,
                 (unsigned long long)r.executed, r.wall_ms,
                 (unsigned long long)r.snapshot_hash,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, " ],\n \"deterministic\": %s\n}\n",
               deterministic ? "true" : "false");
  std::fclose(f);
  std::printf("[micro_sim] wrote %s\n", json_path.c_str());
  return deterministic ? 0 : 1;
}
