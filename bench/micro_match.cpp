// Micro-benchmark: zone-repository event matching and summary-filter
// maintenance — the per-node hot path of event processing.
//
// Besides the google-benchmark timings, running this binary performs a
// subs-per-zone sweep comparing the SubIndex-backed match against the
// linear scan and writes machine-readable results to BENCH_match.json
// (override with --json=PATH) so successive PRs can track the matching
// trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/zone_state.hpp"
#include "workload/zipf_workload.hpp"

namespace {

using namespace hypersub;

constexpr std::size_t kNever = ~std::size_t{0};

core::ZoneState make_zone(std::size_t subs, std::uint64_t seed,
                          std::size_t index_threshold) {
  core::ZoneState z(core::ZoneAddr{}, index_threshold);
  workload::WorkloadGenerator gen(workload::table1_spec(), seed);
  for (std::size_t i = 0; i < subs; ++i) {
    const auto sub = gen.make_subscription();
    z.add_subscription(core::StoredSub{
        core::SubId{i, std::uint32_t(i), core::SubIdKind::kSubscriber}, sub,
        sub.range()});
  }
  return z;
}

void zone_match_bench(benchmark::State& state, std::size_t threshold) {
  const auto z = make_zone(std::size_t(state.range(0)), 1, threshold);
  workload::WorkloadGenerator gen(workload::table1_spec(), 2);
  std::vector<Point> pts;
  for (int i = 0; i < 256; ++i) pts.push_back(gen.make_event().point);
  std::vector<core::SubId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    z.match(pts[i & 255], pts[i & 255], out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ZoneMatch(benchmark::State& state) {
  zone_match_bench(state, core::ZoneState::kDefaultIndexThreshold);
}
BENCHMARK(BM_ZoneMatch)->Arg(16)->Arg(128)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_ZoneMatchLinear(benchmark::State& state) {
  zone_match_bench(state, kNever);
}
BENCHMARK(BM_ZoneMatchLinear)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_SummaryUpdate(benchmark::State& state) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 3);
  std::vector<pubsub::Subscription> subs;
  for (int i = 0; i < 4096; ++i) subs.push_back(gen.make_subscription());
  std::size_t i = 0;
  core::ZoneState z(core::ZoneAddr{});
  for (auto _ : state) {
    const auto& s = subs[i & 4095];
    benchmark::DoNotOptimize(z.add_subscription(core::StoredSub{
        core::SubId{i, std::uint32_t(i), core::SubIdKind::kSubscriber}, s,
        s.range()}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SummaryUpdate);

void BM_BruteForceMatch(benchmark::State& state) {
  // Reference point: linear scan over N subscriptions (what a centralized
  // broker — or the Ferry rendezvous — pays per event).
  workload::WorkloadGenerator gen(workload::table1_spec(), 4);
  std::vector<pubsub::Subscription> subs;
  const std::size_t n = std::size_t(state.range(0));
  for (std::size_t i = 0; i < n; ++i) subs.push_back(gen.make_subscription());
  std::vector<Point> pts;
  for (int i = 0; i < 64; ++i) pts.push_back(gen.make_event().point);
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t matched = 0;
    const Point& p = pts[i++ & 63];
    for (const auto& s : subs) matched += s.matches(p);
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BruteForceMatch)->Arg(1024)->Arg(17400);

// ---------------------------------------------------------------------------
// Machine-readable subs-per-zone sweep
// ---------------------------------------------------------------------------

struct SweepRow {
  std::size_t subs = 0;
  double matches_per_event = 0.0;
  double ns_indexed = 0.0;
  double ns_scan = 0.0;
};

/// Average ns per match() call, running at least `min_events` calls and at
/// least ~20 ms of wall time.
double time_match(const core::ZoneState& z, const std::vector<Point>& pts,
                  std::size_t min_events) {
  using clock = std::chrono::steady_clock;
  std::vector<core::SubId> out;
  std::size_t done = 0;
  double elapsed_ns = 0.0;
  while (done < min_events || elapsed_ns < 2e7) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      out.clear();
      z.match(pts[i], pts[i], out);
      benchmark::DoNotOptimize(out.data());
    }
    elapsed_ns += double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             clock::now() - t0)
                             .count());
    done += pts.size();
  }
  return elapsed_ns / double(done);
}

SweepRow sweep_point(std::size_t subs) {
  SweepRow row;
  row.subs = subs;
  const auto indexed =
      make_zone(subs, 1, core::ZoneState::kDefaultIndexThreshold);
  const auto linear = make_zone(subs, 1, kNever);
  workload::WorkloadGenerator gen(workload::table1_spec(), 2);
  std::vector<Point> pts;
  for (int i = 0; i < 256; ++i) pts.push_back(gen.make_event().point);

  std::vector<core::SubId> out;
  std::size_t matched = 0;
  for (const auto& p : pts) {
    out.clear();
    indexed.match(p, p, out);
    matched += out.size();
  }
  row.matches_per_event = double(matched) / double(pts.size());
  row.ns_indexed = time_match(indexed, pts, 4096);
  row.ns_scan = time_match(linear, pts, 512);
  return row;
}

bool run_sweep(const std::string& json_path, bool quick) {
  // Quick mode (CI bench-sanity): only the 1000-subs point — enough to
  // catch an index regression without minutes of sweep time.
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{1000}
            : std::vector<std::size_t>{1000, 10000, 50000, 100000};
  std::vector<SweepRow> rows;
  std::printf("\nsubs-per-zone sweep (table1 workload):\n");
  std::printf("%10s %14s %14s %12s %9s\n", "subs", "matches/event",
              "ns/ev indexed", "ns/ev scan", "speedup");
  for (const std::size_t n : sizes) {
    rows.push_back(sweep_point(n));
    const auto& r = rows.back();
    std::printf("%10zu %14.1f %14.0f %12.0f %8.1fx\n", r.subs,
                r.matches_per_event, r.ns_indexed, r.ns_scan,
                r.ns_scan / r.ns_indexed);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_match\",\n");
  hypersub::bench::write_host_json(f);
  std::fprintf(f, "  \"workload\": \"table1\",\n");
  std::fprintf(f, "  \"index_threshold\": %zu,\n",
               core::ZoneState::kDefaultIndexThreshold);
  std::fprintf(f, "  \"events_sampled\": 256,\n");
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"subs_per_zone\": %zu, \"matches_per_event\": %.2f, "
                 "\"ns_per_event_indexed\": %.1f, \"ns_per_event_scan\": "
                 "%.1f, \"speedup\": %.2f}%s\n",
                 r.subs, r.matches_per_event, r.ns_indexed, r.ns_scan,
                 r.ns_scan / r.ns_indexed, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_match.json";
  bool sweep = true;
  bool quick = false;
  // Strip our flags before google-benchmark sees the argument list.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--no-sweep") == 0) {
      sweep = false;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (sweep && !run_sweep(json_path, quick)) return 1;
  return 0;
}
