// Micro-benchmark: zone-repository event matching and summary-filter
// maintenance — the per-node hot path of event processing.

#include <benchmark/benchmark.h>

#include "core/zone_state.hpp"
#include "workload/zipf_workload.hpp"

namespace {

using namespace hypersub;

core::ZoneState make_zone(std::size_t subs, std::uint64_t seed) {
  core::ZoneState z(core::ZoneAddr{});
  workload::WorkloadGenerator gen(workload::table1_spec(), seed);
  for (std::size_t i = 0; i < subs; ++i) {
    const auto sub = gen.make_subscription();
    z.add_subscription(core::StoredSub{
        core::SubId{i, std::uint32_t(i), core::SubIdKind::kSubscriber}, sub,
        sub.range()});
  }
  return z;
}

void BM_ZoneMatch(benchmark::State& state) {
  const auto z = make_zone(std::size_t(state.range(0)), 1);
  workload::WorkloadGenerator gen(workload::table1_spec(), 2);
  std::vector<Point> pts;
  for (int i = 0; i < 256; ++i) pts.push_back(gen.make_event().point);
  std::vector<core::SubId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    z.match(pts[i & 255], pts[i & 255], out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ZoneMatch)->Arg(16)->Arg(128)->Arg(1024)->Arg(8192);

void BM_SummaryUpdate(benchmark::State& state) {
  workload::WorkloadGenerator gen(workload::table1_spec(), 3);
  std::vector<pubsub::Subscription> subs;
  for (int i = 0; i < 4096; ++i) subs.push_back(gen.make_subscription());
  std::size_t i = 0;
  core::ZoneState z(core::ZoneAddr{});
  for (auto _ : state) {
    const auto& s = subs[i & 4095];
    benchmark::DoNotOptimize(z.add_subscription(core::StoredSub{
        core::SubId{i, std::uint32_t(i), core::SubIdKind::kSubscriber}, s,
        s.range()}));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SummaryUpdate);

void BM_BruteForceMatch(benchmark::State& state) {
  // Reference point: linear scan over N subscriptions (what a centralized
  // broker — or the Ferry rendezvous — pays per event).
  workload::WorkloadGenerator gen(workload::table1_spec(), 4);
  std::vector<pubsub::Subscription> subs;
  const std::size_t n = std::size_t(state.range(0));
  for (std::size_t i = 0; i < n; ++i) subs.push_back(gen.make_subscription());
  std::vector<Point> pts;
  for (int i = 0; i < 64; ++i) pts.push_back(gen.make_event().point);
  std::size_t i = 0;
  for (auto _ : state) {
    std::size_t matched = 0;
    const Point& p = pts[i++ & 63];
    for (const auto& s : subs) matched += s.matches(p);
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BruteForceMatch)->Arg(1024)->Arg(17400);

}  // namespace
