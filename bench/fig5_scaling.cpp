// Figure 5 — performance vs network size (paper: 1k..6k nodes derived from
// King data): (a) average % matched subscriptions, (b) max hops, (c) max
// latency, (d) bandwidth cost per event; base 2/level 20, with and without
// load balancing.
//
// Paper shape to reproduce: % matched decreases slightly with size while
// absolute matches grow; hops/latency/bandwidth grow modestly
// (logarithmically) — HyperSub scales.

#include <iostream>

#include "bench_util.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  const auto scale = bench::parse_scale(argc, argv);
  // Network sizes (paper's Table 2 uses 1k..6k; reduced mode scales down).
  std::vector<std::size_t> sizes;
  if (scale.full) {
    sizes = {1000, 2000, 3000, 4000, 5000, 6000};
  } else {
    sizes = {200, 400, 600, 800, 1000, 1200};
  }
  const std::size_t events = scale.full ? 4000 : 600;
  std::printf("[fig5] %s scale: sizes %zu..%zu, %zu events each\n\n",
              scale.full ? "full" : "reduced", sizes.front(), sizes.back(),
              events);

  std::vector<runner::ExperimentConfig> cfgs;
  for (const std::size_t n : sizes) {
    for (const bool lb : {false, true}) {
      runner::ExperimentConfig cfg;
      cfg.nodes = n;
      cfg.events = events;
      cfg.load_balancing = lb;
      cfgs.push_back(cfg);
    }
  }
  const auto results = runner::run_experiments_parallel(cfgs);

  std::vector<double> xs;
  std::vector<double> pct, hops_no, hops_lb, lat_no, lat_lb, bw_no, bw_lb;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& no_lb = results[2 * i];
    const auto& with_lb = results[2 * i + 1];
    xs.push_back(double(sizes[i]) / 1000.0);
    pct.push_back(no_lb.avg_pct_matched);
    hops_no.push_back(no_lb.events.hops_cdf().mean());
    hops_lb.push_back(with_lb.events.hops_cdf().mean());
    lat_no.push_back(no_lb.events.latency_cdf().mean());
    lat_lb.push_back(with_lb.events.latency_cdf().mean());
    bw_no.push_back(no_lb.events.bandwidth_kb_cdf().mean());
    bw_lb.push_back(with_lb.events.bandwidth_kb_cdf().mean());
  }

  metrics::print_xy_figure(std::cout,
                           "Fig 5(a): avg % matched subscriptions vs size",
                           "size (x1000)", {"% matched"}, xs, {pct});
  metrics::print_xy_figure(
      std::cout, "Fig 5(b): avg max-hops vs size", "size (x1000)",
      {"Base 2,level 20,no LB", "Base 2,level 20,LB"}, xs,
      {hops_no, hops_lb});
  metrics::print_xy_figure(
      std::cout, "Fig 5(c): avg max-latency (ms) vs size", "size (x1000)",
      {"Base 2,level 20,no LB", "Base 2,level 20,LB"}, xs, {lat_no, lat_lb});
  metrics::print_xy_figure(
      std::cout, "Fig 5(d): avg bandwidth per event (KB) vs size",
      "size (x1000)", {"Base 2,level 20,no LB", "Base 2,level 20,LB"}, xs,
      {bw_no, bw_lb});
  return 0;
}
