// Figure 5 — performance vs network size (paper: 1k..6k nodes derived from
// King data): (a) average % matched subscriptions, (b) max hops, (c) max
// latency, (d) bandwidth cost per event; base 2/level 20, with and without
// load balancing.
//
// Paper shape to reproduce: % matched decreases slightly with size while
// absolute matches grow; hops/latency/bandwidth grow modestly
// (logarithmically) — HyperSub scales.
//
// Beyond the paper, two extra series run a Zipf-hot feed (fixed event
// pool, few publishers) with the publish fast lane off and on, plus Fig
// 5(e) plotting the route-cache hit rate vs size.

#include <iostream>

#include "bench_util.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  const auto scale = bench::parse_scale(argc, argv);
  // Network sizes (paper's Table 2 uses 1k..6k; reduced mode scales down).
  // --nodes=N collapses the sweep to that single size; combined with
  // --subs-per-node=K (and --fast-setup for big products) it turns fig5
  // into a custom scale point — see README "Scaling runs".
  std::vector<std::size_t> sizes;
  if (scale.nodes_set) {
    sizes = {scale.nodes};
  } else if (scale.full) {
    sizes = {1000, 2000, 3000, 4000, 5000, 6000};
  } else {
    sizes = {200, 400, 600, 800, 1000, 1200};
  }
  const std::size_t events = scale.full ? 4000 : 600;
  std::printf("[fig5] %s scale: sizes %zu..%zu, %zu subs/node, "
              "%zu events each%s\n\n",
              scale.full ? "full" : "reduced", sizes.front(), sizes.back(),
              scale.subs_per_node, events,
              scale.fast_setup ? ", fast setup" : "");

  // Four configurations per size: the paper's uniform feed plain and
  // load-balanced, plus a Zipf-hot feed (fixed event pool, few publishers —
  // the regime with repeated rendezvous zones) with the publish fast lane
  // off and on. The cache comparison is within the Zipf feed, so both of
  // its series see the identical workload.
  std::vector<runner::ExperimentConfig> cfgs;
  for (const std::size_t n : sizes) {
    for (int mode = 0; mode < 4; ++mode) {
      runner::ExperimentConfig cfg = bench::base_config(scale);
      cfg.nodes = n;
      cfg.events = events;
      cfg.load_balancing = (mode == 1);
      if (mode >= 2) {
        cfg.hot_event_pool = 64;
        cfg.publishers = 6;
      }
      cfg.system.route_cache = (mode == 3);
      cfg.system.batch_forwarding = (mode == 3);
      cfgs.push_back(cfg);
    }
  }
  const auto results = runner::run_experiments_parallel(cfgs);

  std::vector<double> xs;
  std::vector<double> pct, hops_no, hops_lb, hops_zf, hops_ca, lat_no, lat_lb,
      lat_zf, lat_ca, bw_no, bw_lb, bw_zf, bw_ca, hit_rate;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& no_lb = results[4 * i];
    const auto& with_lb = results[4 * i + 1];
    const auto& zipf = results[4 * i + 2];
    const auto& cached = results[4 * i + 3];
    xs.push_back(double(sizes[i]) / 1000.0);
    pct.push_back(no_lb.avg_pct_matched);
    hops_no.push_back(no_lb.events.hops_cdf().mean());
    hops_lb.push_back(with_lb.events.hops_cdf().mean());
    hops_zf.push_back(zipf.events.hops_cdf().mean());
    hops_ca.push_back(cached.events.hops_cdf().mean());
    lat_no.push_back(no_lb.events.latency_cdf().mean());
    lat_lb.push_back(with_lb.events.latency_cdf().mean());
    lat_zf.push_back(zipf.events.latency_cdf().mean());
    lat_ca.push_back(cached.events.latency_cdf().mean());
    bw_no.push_back(no_lb.events.bandwidth_kb_cdf().mean());
    bw_lb.push_back(with_lb.events.bandwidth_kb_cdf().mean());
    bw_zf.push_back(zipf.events.bandwidth_kb_cdf().mean());
    bw_ca.push_back(cached.events.bandwidth_kb_cdf().mean());
    const auto& cc = cached.cache;
    hit_rate.push_back(cc.hits + cc.misses > 0
                           ? 100.0 * double(cc.hits) /
                                 double(cc.hits + cc.misses)
                           : 0.0);
  }

  metrics::print_xy_figure(std::cout,
                           "Fig 5(a): avg % matched subscriptions vs size",
                           "size (x1000)", {"% matched"}, xs, {pct});
  metrics::print_xy_figure(
      std::cout, "Fig 5(b): avg max-hops vs size", "size (x1000)",
      {"Base 2,level 20,no LB", "Base 2,level 20,LB", "Zipf feed,no cache",
       "Zipf feed,cache"},
      xs, {hops_no, hops_lb, hops_zf, hops_ca});
  metrics::print_xy_figure(
      std::cout, "Fig 5(c): avg max-latency (ms) vs size", "size (x1000)",
      {"Base 2,level 20,no LB", "Base 2,level 20,LB", "Zipf feed,no cache",
       "Zipf feed,cache"},
      xs, {lat_no, lat_lb, lat_zf, lat_ca});
  metrics::print_xy_figure(
      std::cout, "Fig 5(d): avg bandwidth per event (KB) vs size",
      "size (x1000)",
      {"Base 2,level 20,no LB", "Base 2,level 20,LB", "Zipf feed,no cache",
       "Zipf feed,cache"},
      xs, {bw_no, bw_lb, bw_zf, bw_ca});
  metrics::print_xy_figure(std::cout,
                           "Fig 5(e): route-cache hit rate vs size",
                           "size (x1000)", {"% hits"}, xs, {hit_rate});
  return 0;
}
