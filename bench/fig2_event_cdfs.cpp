// Figure 2 — distribution of events with respect to (a) percentage of
// matched subscriptions, (b) max hops, (c) max latency, (d) bandwidth cost
// per event; four configurations: base 2/level 20 and base 4/level 10,
// each with and without load balancing.
//
// Paper shape to reproduce: the (b)(c)(d) curves track (a); larger base
// beats smaller base on hops/latency/bandwidth; LB costs a little on each.

#include <iostream>

#include "bench_util.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  const auto scale = bench::parse_scale(argc, argv);
  bench::print_scale_banner(scale, "fig2");

  std::vector<runner::ExperimentConfig> cfgs;
  for (const int base_bits : {1, 2}) {
    for (const bool lb : {false, true}) {
      auto cfg = bench::base_config(scale);
      cfg.base_bits = base_bits;
      cfg.load_balancing = lb;
      cfgs.push_back(cfg);
    }
  }
  const auto results = runner::run_experiments_parallel(cfgs);

  // Fig 2(a): % matched subscriptions (config-independent; use config 0).
  metrics::print_cdf_figure(
      std::cout, "Fig 2(a): CDF of events vs % matched subscriptions",
      "% matched",
      {{"Avg " + std::to_string(results[0].avg_pct_matched) + "%",
        results[0].events.pct_matched_cdf()}});

  auto series_of = [&](auto extract) {
    std::vector<metrics::Series> series;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      series.push_back({runner::config_label(cfgs[i]), extract(results[i])});
    }
    return series;
  };

  metrics::print_cdf_figure(
      std::cout, "Fig 2(b): CDF of events vs max hops", "max hops",
      series_of([](const runner::ExperimentResult& r) {
        return r.events.hops_cdf();
      }));
  metrics::print_cdf_figure(
      std::cout, "Fig 2(c): CDF of events vs max latency (ms)",
      "max latency (ms)",
      series_of([](const runner::ExperimentResult& r) {
        return r.events.latency_cdf();
      }));
  metrics::print_cdf_figure(
      std::cout, "Fig 2(d): CDF of events vs bandwidth cost (KB)",
      "bandwidth (KB)",
      series_of([](const runner::ExperimentResult& r) {
        return r.events.bandwidth_kb_cdf();
      }));

  // Shape summary the paper's text calls out.
  std::cout << "Shape checks (paper: larger base wins; LB adds a little):\n";
  std::printf("  avg hops     : b2=%0.1f b2+LB=%0.1f b4=%0.1f b4+LB=%0.1f\n",
              results[0].events.hops_cdf().mean(),
              results[1].events.hops_cdf().mean(),
              results[2].events.hops_cdf().mean(),
              results[3].events.hops_cdf().mean());
  std::printf("  avg latency  : b2=%0.0f b2+LB=%0.0f b4=%0.0f b4+LB=%0.0f ms\n",
              results[0].events.latency_cdf().mean(),
              results[1].events.latency_cdf().mean(),
              results[2].events.latency_cdf().mean(),
              results[3].events.latency_cdf().mean());
  std::printf("  avg bandwidth: b2=%0.1f b2+LB=%0.1f b4=%0.1f b4+LB=%0.1f KB\n",
              results[0].events.bandwidth_kb_cdf().mean(),
              results[1].events.bandwidth_kb_cdf().mean(),
              results[2].events.bandwidth_kb_cdf().mean(),
              results[3].events.bandwidth_kb_cdf().mean());
  return 0;
}
