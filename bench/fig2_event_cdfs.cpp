// Figure 2 — distribution of events with respect to (a) percentage of
// matched subscriptions, (b) max hops, (c) max latency, (d) bandwidth cost
// per event; four configurations: base 2/level 20 and base 4/level 10,
// each with and without load balancing.
//
// Paper shape to reproduce: the (b)(c)(d) curves track (a); larger base
// beats smaller base on hops/latency/bandwidth; LB costs a little on each.

// With --trace=PREFIX the base-2/no-LB run additionally records full event
// traces and writes PREFIX.jsonl (for tools/trace_report.py) and
// PREFIX.perfetto.json (load in ui.perfetto.dev), then prints the same
// distributions re-derived from the span log — the CDFs of (b)(c) and the
// per-node fan-out, reconstructed from causal trees instead of counters.

#include <cstring>
#include <iostream>

#include "bench_util.hpp"
#include "metrics/report.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

namespace {

void print_trace_tables(const hypersub::trace::TraceSummary& s) {
  using hypersub::trace::Histogram;
  const auto row = [](const char* name, const Histogram& h) {
    std::printf("  %-14s %8zu %10.1f %10.1f %10.1f %10.1f %10.1f\n", name,
                h.count(), h.mean(), h.quantile(0.50), h.quantile(0.95),
                h.quantile(0.99), h.max());
  };
  std::printf("Trace-derived distributions (%zu event traces, %zu complete, "
              "%zu deliveries, %zu retries, %zu reroutes, %zu drops):\n",
              s.event_traces, s.complete_traces, s.deliveries, s.retries,
              s.reroutes, s.drops);
  std::printf("  %-14s %8s %10s %10s %10s %10s %10s\n", "metric", "n",
              "mean", "p50", "p95", "p99", "max");
  row("latency_ms", s.latency_ms);
  row("hops", s.hops);
  row("fanout", s.fanout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hypersub;
  const auto scale = bench::parse_scale(argc, argv);
  std::string trace_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_prefix = argv[i] + 8;
  }
  bench::print_scale_banner(scale, "fig2");

  std::vector<runner::ExperimentConfig> cfgs;
  for (const int base_bits : {1, 2}) {
    for (const bool lb : {false, true}) {
      auto cfg = bench::base_config(scale);
      cfg.base_bits = base_bits;
      cfg.load_balancing = lb;
      cfgs.push_back(cfg);
    }
  }
  trace::Tracer tracer;
  if (!trace_prefix.empty()) cfgs[0].tracer = &tracer;
  const auto results = runner::run_experiments_parallel(cfgs);

  // Fig 2(a): % matched subscriptions (config-independent; use config 0).
  metrics::print_cdf_figure(
      std::cout, "Fig 2(a): CDF of events vs % matched subscriptions",
      "% matched",
      {{"Avg " + std::to_string(results[0].avg_pct_matched) + "%",
        results[0].events.pct_matched_cdf()}});

  auto series_of = [&](auto extract) {
    std::vector<metrics::Series> series;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      series.push_back({runner::config_label(cfgs[i]), extract(results[i])});
    }
    return series;
  };

  metrics::print_cdf_figure(
      std::cout, "Fig 2(b): CDF of events vs max hops", "max hops",
      series_of([](const runner::ExperimentResult& r) {
        return r.events.hops_cdf();
      }));
  metrics::print_cdf_figure(
      std::cout, "Fig 2(c): CDF of events vs max latency (ms)",
      "max latency (ms)",
      series_of([](const runner::ExperimentResult& r) {
        return r.events.latency_cdf();
      }));
  metrics::print_cdf_figure(
      std::cout, "Fig 2(d): CDF of events vs bandwidth cost (KB)",
      "bandwidth (KB)",
      series_of([](const runner::ExperimentResult& r) {
        return r.events.bandwidth_kb_cdf();
      }));

  // Shape summary the paper's text calls out.
  std::cout << "Shape checks (paper: larger base wins; LB adds a little):\n";
  std::printf("  avg hops     : b2=%0.1f b2+LB=%0.1f b4=%0.1f b4+LB=%0.1f\n",
              results[0].events.hops_cdf().mean(),
              results[1].events.hops_cdf().mean(),
              results[2].events.hops_cdf().mean(),
              results[3].events.hops_cdf().mean());
  std::printf("  avg latency  : b2=%0.0f b2+LB=%0.0f b4=%0.0f b4+LB=%0.0f ms\n",
              results[0].events.latency_cdf().mean(),
              results[1].events.latency_cdf().mean(),
              results[2].events.latency_cdf().mean(),
              results[3].events.latency_cdf().mean());
  std::printf("  avg bandwidth: b2=%0.1f b2+LB=%0.1f b4=%0.1f b4+LB=%0.1f KB\n",
              results[0].events.bandwidth_kb_cdf().mean(),
              results[1].events.bandwidth_kb_cdf().mean(),
              results[2].events.bandwidth_kb_cdf().mean(),
              results[3].events.bandwidth_kb_cdf().mean());

  if (!trace_prefix.empty()) {
    const std::string jsonl = trace_prefix + ".jsonl";
    const std::string perfetto = trace_prefix + ".perfetto.json";
    if (!trace::write_jsonl_file(tracer, jsonl) ||
        !trace::write_perfetto_file(tracer, perfetto)) {
      std::fprintf(stderr, "FAIL: cannot write trace files %s / %s\n",
                   jsonl.c_str(), perfetto.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu spans) and %s\n", jsonl.c_str(),
                tracer.span_count(), perfetto.c_str());
    print_trace_tables(trace::summarize(tracer));
  }
  return 0;
}
