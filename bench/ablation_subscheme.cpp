// Ablation — subscheme splitting (§3.5 "Improvement").
//
// Subscriptions that constrain only a few attributes map to huge shallow
// zones under the plain design, concentrating load at the surrogate nodes
// of those zones. Splitting the scheme into subschemes restores locality.
// This bench installs a 60%-partial workload with and without subschemes
// and compares load concentration and delivery cost.

#include <cstdio>
#include <cstring>

#include "chord/chord_net.hpp"
#include "common/stats.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/zipf_workload.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const std::size_t nodes = full ? 1740 : 400;
  const std::size_t subs = full ? 12000 : 3000;
  const std::size_t events = full ? 2000 : 500;

  std::printf("=== Ablation: subscheme splitting (%zu nodes, %zu subs, "
              "%zu events, 60%% partial subscriptions) ===\n",
              nodes, subs, events);

  for (const bool split : {false, true}) {
    net::KingLikeTopology::Params tp;
    tp.hosts = nodes;
    net::KingLikeTopology topo(tp);
    sim::Simulator sim;
    net::Network net(sim, topo);
    chord::ChordNet chord(net, {});
    core::HyperSubSystem::Config sc;
    sc.bootstrap = core::BootstrapMode::kOracle;
    core::HyperSubSystem sys(chord, sc);
    core::CountingDeliverySink sink;  // counts only; skip the full log
    sys.set_delivery_sink(sink);

    workload::WorkloadGenerator gen(workload::table1_spec(), 31);
    core::SchemeOptions opt;
    opt.zone_cfg = {1, 20};
    if (split) opt.subschemes = {{0, 1, 2, 3}, {0, 1}, {2, 3}};
    const auto scheme = sys.add_scheme(gen.scheme(), opt);

    Rng rng(13);
    for (std::size_t i = 0; i < subs; ++i) {
      pubsub::Subscription sub;
      const auto roll = rng.index(5);
      if (roll < 2) {
        sub = gen.make_partial_subscription({0, 1});  // front attrs only
      } else if (roll < 3) {
        sub = gen.make_partial_subscription({2, 3});  // back attrs only
      } else {
        sub = gen.make_subscription();  // full
      }
      sys.subscribe(net::HostIndex(rng.index(nodes)), scheme, sub);
    }
    sim.run();

    const auto loads = sys.node_loads();
    Summary ls;
    for (const auto l : loads) ls.add(double(l));

    net.reset_traffic();
    sys.reset_metrics();
    double t = 0;
    for (std::size_t i = 0; i < events; ++i) {
      t += rng.exponential(100.0);
      pubsub::Event e = gen.make_event();
      const auto pub = net::HostIndex(rng.index(nodes));
      sim.schedule(t, [&sys, scheme, pub, e]() mutable {
        sys.publish(pub, scheme, std::move(e));
      });
    }
    sim.run();
    sys.finalize_events();

    std::printf(
        "  subschemes %-3s  max load=%6.0f mean=%7.1f | avg hops=%.1f "
        "avg latency=%.0f ms avg bw=%.1f KB\n",
        split ? "ON" : "OFF", ls.max(), ls.mean(),
        sys.event_metrics().hops_cdf().mean(),
        sys.event_metrics().latency_cdf().mean(),
        sys.event_metrics().bandwidth_kb_cdf().mean());
  }
  std::printf(
      "Expected shape: subschemes ON cuts the max load (partial subs no "
      "longer pile onto shallow zones); event costs stay comparable "
      "(one rendezvous per subscheme).\n");
  return 0;
}
