// Ablation — zone-mapping rotation (§4).
//
// HyperSub's claim: when many schemes run simultaneously, rotating each
// scheme's zone mapping by hash(scheme name) spreads the (hot) large
// zones of different schemes across different nodes. We install the same
// workload under 4 simultaneous schemes with rotation on vs off and
// compare the per-node load concentration.

#include <cstdio>
#include <cstring>

#include "chord/chord_net.hpp"
#include "common/stats.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/zipf_workload.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const std::size_t nodes = full ? 1740 : 400;
  const std::size_t subs_per_scheme = full ? 4000 : 1200;
  constexpr int kSchemes = 4;

  std::printf("=== Ablation: zone-mapping rotation (%zu nodes, %d schemes, "
              "%zu subs each) ===\n",
              nodes, kSchemes, subs_per_scheme);

  for (const bool rotate : {false, true}) {
    net::KingLikeTopology::Params tp;
    tp.hosts = nodes;
    net::KingLikeTopology topo(tp);
    sim::Simulator sim;
    net::Network net(sim, topo);
    chord::ChordNet chord(net, {});
    core::HyperSubSystem::Config sc;
    sc.bootstrap = core::BootstrapMode::kOracle;
    core::HyperSubSystem sys(chord, sc);

    Rng rng(7);
    for (int s = 0; s < kSchemes; ++s) {
      auto spec = workload::table1_spec();
      spec.scheme_name = "scheme" + std::to_string(s);
      workload::WorkloadGenerator gen(spec, 100 + std::uint64_t(s));
      core::SchemeOptions opt;
      opt.zone_cfg = {1, 20};
      opt.rotate = rotate;
      const auto scheme = sys.add_scheme(gen.scheme(), opt);
      for (std::size_t i = 0; i < subs_per_scheme; ++i) {
        sys.subscribe(net::HostIndex(rng.index(nodes)), scheme,
                      gen.make_subscription());
      }
    }
    sim.run();

    const auto loads = sys.node_loads();
    Summary s;
    for (const auto l : loads) s.add(double(l));
    // Top-1% share: fraction of total load on the hottest 1% of nodes.
    auto sorted = loads;
    std::sort(sorted.rbegin(), sorted.rend());
    double total = 0, top = 0;
    const std::size_t top_n = std::max<std::size_t>(1, nodes / 100);
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      total += double(sorted[i]);
      if (i < top_n) top += double(sorted[i]);
    }
    std::printf(
        "  rotation %-3s  max load=%6.0f  mean=%7.1f  stddev=%7.1f  "
        "top-1%%-share=%.1f%%\n",
        rotate ? "ON" : "OFF", s.max(), s.mean(), s.stddev(),
        100.0 * top / total);
  }
  std::printf(
      "Expected shape: rotation ON lowers the max load and the top-1%% "
      "share (hot zones of different schemes no longer collide).\n");
  return 0;
}
