// Ablation — behavior under node churn (paper §6 future work: "the
// performance of the proposed architecture under high node churn rate has
// not been explored"), plus the effect of the replication extension.
//
// A network with live Chord maintenance runs a continuous event feed while
// nodes crash at a configurable rate (crashed nodes stay gone; the ring
// repairs through successor lists). We report the delivery ratio: the
// fraction of notifications that live subscribers should have received
// (by brute force) that actually arrived — with 0 and 2 replicas, and with
// the reliability layer (acked messages, retry + reroute around dead hops)
// off and on. Replication recovers state lost with dead surrogates;
// reliability recovers messages lost crossing dead intermediate hops —
// they compose.

// With --trace=PREFIX the harshest reliable configuration (highest churn,
// 2 replicas, reliability on) additionally records event traces — retries,
// reroutes and unmasked drops appear as spans in the causal trees — and
// writes PREFIX.jsonl + PREFIX.perfetto.json.

// With --protocol-join churn switches from crashes to the node-lifecycle
// protocol: nodes leave gracefully (zone state pushed to the successor),
// stay out for a couple of stabilization periods, then rejoin through the
// live join handshake (snapshot + write-behind replay). Because state is
// moved instead of lost, the delivery ratio stays near 1 even with zero
// replicas; the run writes BENCH_join.json (transfer bytes, handoff
// latency, buffered-while-warming counts) for tools/bench_sanity.py join.

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workload/zipf_workload.hpp"

namespace {

struct JoinRow {
  double mtbf = 0.0;
  std::size_t replicas = 0;
  std::size_t expected = 0;
  std::size_t delivered = 0;
  hypersub::core::HyperSubSystem::JoinStats stats;
};

/// One churn run where every failure is a graceful leave followed by a
/// protocol rejoin. The event feed keeps running throughout; expectations
/// count live subscribers at publish time, exactly like the crash table.
JoinRow run_protocol_join(std::size_t nodes, std::size_t events, double mtbf,
                          std::size_t replicas) {
  using namespace hypersub;
  net::KingLikeTopology::Params tp;
  tp.hosts = nodes;
  tp.seed = 5;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  net::Network net(sim, topo);
  chord::ChordNet::Params cp;
  cp.seed = 5;
  cp.reliable_routing = true;
  chord::ChordNet chord(net, cp);
  core::HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.replicas = replicas;
  sc.reliable_delivery = true;
  core::HyperSubSystem sys(chord, sc);

  workload::WorkloadGenerator gen(workload::tiny_spec(), 7);
  core::SchemeOptions opt;
  opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
  const auto scheme = sys.add_scheme(gen.scheme(), opt);
  std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
  Rng rng(9);
  for (net::HostIndex h = 0; h < nodes; ++h) {
    const auto sub = gen.make_subscription();
    sys.subscribe(h, scheme, sub);
    subs.emplace_back(h, sub);
  }
  sim.run();
  chord.start_maintenance();

  // Event feed + brute-force expectation against live subscribers at
  // publish time (same accounting as the crash table).
  std::size_t expected = 0;
  double t = 0.0;
  for (std::size_t i = 0; i < events; ++i) {
    t += rng.exponential(100.0);
    pubsub::Event e = gen.make_event();
    sim.schedule(t, [&, e]() mutable {
      net::HostIndex pub;
      int guard = 0;
      do {
        pub = net::HostIndex(rng.index(nodes));
      } while (!net.alive(pub) && ++guard < 100);
      if (!net.alive(pub)) return;
      for (const auto& [h, sub] : subs) {
        if (net.alive(h) && sub.matches(e.point)) ++expected;
      }
      sys.publish(pub, scheme, std::move(e));
    });
  }

  // Lifecycle churn, driven from the main loop: every MTBF window one
  // node leaves gracefully, sits out ~2 stabilization periods, and
  // rejoins through the live-transfer handshake while the feed runs.
  const double mtbf_ms = mtbf * chord.params().stabilize_period_ms;
  const double down_ms = 2.0 * chord.params().stabilize_period_ms;
  const double feed_end = sim.now() + t;
  net::HostIndex victim = net::HostIndex(17 % nodes);
  while (sim.now() < feed_end) {
    sim.run_until(sim.now() + mtbf_ms);
    if (sim.now() >= feed_end) break;
    if (sys.transfer_active() || !net.alive(victim)) continue;
    sys.leave_node(victim);
    sim.run_until(sim.now() + down_ms);
    int guard = 0;
    while (sys.transfer_active() && ++guard < 40) {
      sim.run_until(sim.now() + 500.0);
    }
    if (!net.alive(victim)) {
      net::HostIndex boot = net::HostIndex((victim + 1) % nodes);
      while (!net.alive(boot)) boot = net::HostIndex((boot + 1) % nodes);
      sys.join_node(victim, boot);
    }
    victim = net::HostIndex((victim + 13) % nodes);
  }
  sim.run_until(sim.now() + 30000.0);  // let the last handshake commit
  chord.stop_maintenance();
  sim.run();
  sys.finalize_events();

  JoinRow row;
  row.mtbf = mtbf;
  row.replicas = replicas;
  row.expected = expected;
  row.delivered = sys.deliveries().size();
  row.stats = sys.join_stats();
  return row;
}

bool emit_join_json(const std::string& path, std::size_t nodes,
                    std::size_t events, const std::vector<JoinRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"ablation_churn_protocol_join\",\n");
  hypersub::bench::write_host_json(f);
  std::fprintf(f, "  \"nodes\": %zu, \"events\": %zu,\n", nodes, events);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JoinRow& r = rows[i];
    const auto& s = r.stats;
    const double ratio =
        r.expected > 0 ? double(r.delivered) / double(r.expected) : 1.0;
    // total/max_handoff_ms count every handover session, joins and
    // graceful leaves alike — average over both.
    const std::uint64_t handovers = s.joins_committed + s.leaves_completed;
    const double avg_handoff =
        handovers > 0 ? s.total_handoff_ms / double(handovers) : 0.0;
    std::fprintf(
        f,
        "    {\"mtbf_periods\": %.0f, \"replicas\": %zu, "
        "\"expected\": %zu, \"delivered\": %zu, \"delivery_ratio\": %.4f,\n"
        "     \"joins_started\": %llu, \"joins_committed\": %llu, "
        "\"joins_aborted\": %llu, \"leaves_completed\": %llu,\n"
        "     \"zones_transferred\": %llu, \"transfer_bytes\": %llu, "
        "\"queued_ops_replayed\": %llu, \"warm_ops_replayed\": %llu, "
        "\"events_buffered\": %llu,\n"
        "     \"avg_handoff_ms\": %.2f, \"max_handoff_ms\": %.2f}%s\n",
        r.mtbf, r.replicas, r.expected, r.delivered, ratio,
        (unsigned long long)s.joins_started,
        (unsigned long long)s.joins_committed,
        (unsigned long long)s.joins_aborted,
        (unsigned long long)s.leaves_completed,
        (unsigned long long)s.zones_transferred,
        (unsigned long long)s.transfer_bytes,
        (unsigned long long)s.queued_ops_replayed,
        (unsigned long long)s.warm_ops_replayed,
        (unsigned long long)s.events_buffered, avg_handoff,
        s.max_handoff_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hypersub;
  bool full = false;
  bool protocol_join = false;
  std::string trace_prefix;
  std::string json_path = "BENCH_join.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strcmp(argv[i], "--protocol-join") == 0) protocol_join = true;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_prefix = argv[i] + 8;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  if (protocol_join) {
    const std::size_t nodes = full ? 300 : 120;
    const std::size_t events = full ? 400 : 150;
    std::printf("=== Ablation: lifecycle churn via graceful leave + "
                "protocol join (%zu nodes, %zu events) ===\n",
                nodes, events);
    std::printf("%-22s %-12s %-14s %-10s %-14s %-16s %s\n",
                "MTBF (stab.periods)", "replicas", "delivery-ratio",
                "joins", "zones-moved", "transfer-bytes", "handoff (avg ms)");
    std::vector<JoinRow> rows;
    for (const double mtbf : {40.0, 10.0, 4.0}) {
      for (const std::size_t replicas : {std::size_t{0}, std::size_t{2}}) {
        rows.push_back(run_protocol_join(nodes, events, mtbf, replicas));
        const JoinRow& r = rows.back();
        const double ratio = r.expected > 0
                                 ? double(r.delivered) / double(r.expected)
                                 : 1.0;
        std::printf("%-22.0f %-12zu %-14.3f %-10llu %-14llu %-16llu %.2f\n",
                    r.mtbf, r.replicas, ratio,
                    (unsigned long long)r.stats.joins_committed,
                    (unsigned long long)r.stats.zones_transferred,
                    (unsigned long long)r.stats.transfer_bytes,
                    r.stats.joins_committed + r.stats.leaves_completed > 0
                        ? r.stats.total_handoff_ms /
                              double(r.stats.joins_committed +
                                     r.stats.leaves_completed)
                        : 0.0);
      }
    }
    std::printf(
        "Expected shape: near-perfect delivery at every churn rate and "
        "replica count — graceful transfer moves zone state instead of "
        "losing it, so only messages in flight to a departing node can "
        "drop.\n");
    return emit_join_json(json_path, nodes, events, rows) ? 0 : 1;
  }
  trace::Tracer tracer;
  const std::size_t nodes = full ? 300 : 120;
  const std::size_t events = full ? 400 : 150;
  // Mean time between failures, as a multiple of the stabilization period.
  const double mtbf_periods[] = {40.0, 10.0, 4.0};

  std::printf("=== Ablation: node churn (%zu nodes, %zu events, live "
              "maintenance) ===\n",
              nodes, events);
  std::printf("%-22s %-12s %-10s %-14s %-14s %s\n", "MTBF (stab.periods)",
              "replicas", "reliable", "delivery-ratio", "failed-nodes",
              "reliability-counters");

  for (const double mtbf : mtbf_periods) {
    for (const std::size_t replicas : {std::size_t{0}, std::size_t{2}}) {
    for (const bool reliable : {false, true}) {
      net::KingLikeTopology::Params tp;
      tp.hosts = nodes;
      tp.seed = 5;
      net::KingLikeTopology topo(tp);
      sim::Simulator sim;
      net::Network net(sim, topo);
      chord::ChordNet::Params cp;
      cp.seed = 5;
      cp.reliable_routing = reliable;
      chord::ChordNet chord(net, cp);
      core::HyperSubSystem::Config sc;
      sc.bootstrap = core::BootstrapMode::kOracle;
      sc.replicas = replicas;
      sc.reliable_delivery = reliable;
      core::HyperSubSystem sys(chord, sc);
      // Trace the harshest reliable run: retries/reroutes/drops land in
      // the causal trees where churn actually bites.
      const bool traced = !trace_prefix.empty() && reliable &&
                          replicas == 2 && mtbf == mtbf_periods[2];
      if (traced) sys.set_tracer(&tracer);

      workload::WorkloadGenerator gen(workload::tiny_spec(), 7);
      core::SchemeOptions opt;
      opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
      const auto scheme = sys.add_scheme(gen.scheme(), opt);
      std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
      Rng rng(9);
      for (net::HostIndex h = 0; h < nodes; ++h) {
        const auto sub = gen.make_subscription();
        sys.subscribe(h, scheme, sub);
        subs.emplace_back(h, sub);
      }
      sim.run();
      chord.start_maintenance();

      // Schedule failures: exponential inter-failure time with the given
      // MTBF; at most a third of the network dies.
      const double mtbf_ms = mtbf * chord.params().stabilize_period_ms;
      std::set<net::HostIndex> dead;
      Rng frng(11);
      double ft = 0.0;
      const double horizon = double(events) * 100.0;
      std::vector<double> fail_times;
      while (true) {
        ft += frng.exponential(mtbf_ms);
        if (ft > horizon || fail_times.size() >= nodes / 3) break;
        fail_times.push_back(ft);
      }
      for (const double t : fail_times) {
        sim.schedule(t, [&chord, &net, &dead, &frng, nodes] {
          net::HostIndex victim;
          int guard = 0;
          do {
            victim = net::HostIndex(frng.index(nodes));
          } while (!net.alive(victim) && ++guard < 100);
          if (net.alive(victim)) {
            chord.fail(victim);
            dead.insert(victim);
          }
        });
      }

      // Event feed + brute-force expectation against live subscribers at
      // publish time.
      std::size_t expected = 0;
      double t = 0.0;
      std::vector<pubsub::Event> pub_events;
      for (std::size_t i = 0; i < events; ++i) {
        t += rng.exponential(100.0);
        pubsub::Event e = gen.make_event();
        sim.schedule(t, [&, e]() mutable {
          net::HostIndex pub;
          int guard = 0;
          do {
            pub = net::HostIndex(rng.index(nodes));
          } while (!net.alive(pub) && ++guard < 100);
          if (!net.alive(pub)) return;
          for (const auto& [h, sub] : subs) {
            if (net.alive(h) && sub.matches(e.point)) ++expected;
          }
          sys.publish(pub, scheme, std::move(e));
        });
      }
      sim.run_until(sim.now() + horizon + 60000.0);
      chord.stop_maintenance();
      sim.run();
      sys.finalize_events();

      // Deliveries to nodes that were alive: count all recorded (dead
      // subscribers never record).
      const double ratio =
          expected > 0
              ? double(sys.deliveries().size()) / double(expected)
              : 1.0;
      auto rel = metrics::snapshot(sys).reliability;
      rel += chord.route_reliability();
      std::printf("%-22.0f %-12zu %-10s %-14.3f %-14zu %s\n", mtbf, replicas,
                  reliable ? "yes" : "no", ratio, dead.size(),
                  reliable ? metrics::to_string(rel).c_str() : "-");
    }
    }
  }
  std::printf(
      "Expected shape: the delivery ratio degrades as churn increases "
      "(subscriptions stored on dead surrogates are lost); replication "
      "recovers the lost state, the reliability layer the messages lost "
      "crossing dead hops — the combination dominates either alone.\n");

  if (!trace_prefix.empty()) {
    const std::string jsonl = trace_prefix + ".jsonl";
    const std::string perfetto = trace_prefix + ".perfetto.json";
    if (!trace::write_jsonl_file(tracer, jsonl) ||
        !trace::write_perfetto_file(tracer, perfetto)) {
      std::fprintf(stderr, "FAIL: cannot write trace files %s / %s\n",
                   jsonl.c_str(), perfetto.c_str());
      return 1;
    }
    const trace::TraceSummary s = trace::summarize(tracer);
    std::printf("wrote %s (%zu spans) and %s: %zu event traces, %zu "
                "complete, %zu retries, %zu reroutes, %zu drops\n",
                jsonl.c_str(), tracer.span_count(), perfetto.c_str(),
                s.event_traces, s.complete_traces, s.retries, s.reroutes,
                s.drops);
  }
  return 0;
}
