// Ablation — behavior under node churn (paper §6 future work: "the
// performance of the proposed architecture under high node churn rate has
// not been explored"), plus the effect of the replication extension.
//
// A network with live Chord maintenance runs a continuous event feed while
// nodes crash at a configurable rate (crashed nodes stay gone; the ring
// repairs through successor lists). We report the delivery ratio: the
// fraction of notifications that live subscribers should have received
// (by brute force) that actually arrived — with 0 and 2 replicas, and with
// the reliability layer (acked messages, retry + reroute around dead hops)
// off and on. Replication recovers state lost with dead surrogates;
// reliability recovers messages lost crossing dead intermediate hops —
// they compose.

// With --trace=PREFIX the harshest reliable configuration (highest churn,
// 2 replicas, reliability on) additionally records event traces — retries,
// reroutes and unmasked drops appear as spans in the causal trees — and
// writes PREFIX.jsonl + PREFIX.perfetto.json.

#include <cstdio>
#include <cstring>
#include <set>
#include <string>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workload/zipf_workload.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  bool full = false;
  std::string trace_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_prefix = argv[i] + 8;
  }
  trace::Tracer tracer;
  const std::size_t nodes = full ? 300 : 120;
  const std::size_t events = full ? 400 : 150;
  // Mean time between failures, as a multiple of the stabilization period.
  const double mtbf_periods[] = {40.0, 10.0, 4.0};

  std::printf("=== Ablation: node churn (%zu nodes, %zu events, live "
              "maintenance) ===\n",
              nodes, events);
  std::printf("%-22s %-12s %-10s %-14s %-14s %s\n", "MTBF (stab.periods)",
              "replicas", "reliable", "delivery-ratio", "failed-nodes",
              "reliability-counters");

  for (const double mtbf : mtbf_periods) {
    for (const std::size_t replicas : {std::size_t{0}, std::size_t{2}}) {
    for (const bool reliable : {false, true}) {
      net::KingLikeTopology::Params tp;
      tp.hosts = nodes;
      tp.seed = 5;
      net::KingLikeTopology topo(tp);
      sim::Simulator sim;
      net::Network net(sim, topo);
      chord::ChordNet::Params cp;
      cp.seed = 5;
      cp.reliable_routing = reliable;
      chord::ChordNet chord(net, cp);
      chord.oracle_build();
      core::HyperSubSystem::Config sc;
      sc.replicas = replicas;
      sc.reliable_delivery = reliable;
      core::HyperSubSystem sys(chord, sc);
      // Trace the harshest reliable run: retries/reroutes/drops land in
      // the causal trees where churn actually bites.
      const bool traced = !trace_prefix.empty() && reliable &&
                          replicas == 2 && mtbf == mtbf_periods[2];
      if (traced) sys.set_tracer(&tracer);

      workload::WorkloadGenerator gen(workload::tiny_spec(), 7);
      core::SchemeOptions opt;
      opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
      const auto scheme = sys.add_scheme(gen.scheme(), opt);
      std::vector<std::pair<net::HostIndex, pubsub::Subscription>> subs;
      Rng rng(9);
      for (net::HostIndex h = 0; h < nodes; ++h) {
        const auto sub = gen.make_subscription();
        sys.subscribe(h, scheme, sub);
        subs.emplace_back(h, sub);
      }
      sim.run();
      chord.start_maintenance();

      // Schedule failures: exponential inter-failure time with the given
      // MTBF; at most a third of the network dies.
      const double mtbf_ms = mtbf * chord.params().stabilize_period_ms;
      std::set<net::HostIndex> dead;
      Rng frng(11);
      double ft = 0.0;
      const double horizon = double(events) * 100.0;
      std::vector<double> fail_times;
      while (true) {
        ft += frng.exponential(mtbf_ms);
        if (ft > horizon || fail_times.size() >= nodes / 3) break;
        fail_times.push_back(ft);
      }
      for (const double t : fail_times) {
        sim.schedule(t, [&chord, &net, &dead, &frng, nodes] {
          net::HostIndex victim;
          int guard = 0;
          do {
            victim = net::HostIndex(frng.index(nodes));
          } while (!net.alive(victim) && ++guard < 100);
          if (net.alive(victim)) {
            chord.fail(victim);
            dead.insert(victim);
          }
        });
      }

      // Event feed + brute-force expectation against live subscribers at
      // publish time.
      std::size_t expected = 0;
      double t = 0.0;
      std::vector<pubsub::Event> pub_events;
      for (std::size_t i = 0; i < events; ++i) {
        t += rng.exponential(100.0);
        pubsub::Event e = gen.make_event();
        sim.schedule(t, [&, e]() mutable {
          net::HostIndex pub;
          int guard = 0;
          do {
            pub = net::HostIndex(rng.index(nodes));
          } while (!net.alive(pub) && ++guard < 100);
          if (!net.alive(pub)) return;
          for (const auto& [h, sub] : subs) {
            if (net.alive(h) && sub.matches(e.point)) ++expected;
          }
          sys.publish(pub, scheme, std::move(e));
        });
      }
      sim.run_until(sim.now() + horizon + 60000.0);
      chord.stop_maintenance();
      sim.run();
      sys.finalize_events();

      // Deliveries to nodes that were alive: count all recorded (dead
      // subscribers never record).
      const double ratio =
          expected > 0
              ? double(sys.deliveries().size()) / double(expected)
              : 1.0;
      auto rel = metrics::snapshot(sys).reliability;
      rel += chord.route_reliability();
      std::printf("%-22.0f %-12zu %-10s %-14.3f %-14zu %s\n", mtbf, replicas,
                  reliable ? "yes" : "no", ratio, dead.size(),
                  reliable ? metrics::to_string(rel).c_str() : "-");
    }
    }
  }
  std::printf(
      "Expected shape: the delivery ratio degrades as churn increases "
      "(subscriptions stored on dead surrogates are lost); replication "
      "recovers the lost state, the reliability layer the messages lost "
      "crossing dead hops — the combination dominates either alone.\n");

  if (!trace_prefix.empty()) {
    const std::string jsonl = trace_prefix + ".jsonl";
    const std::string perfetto = trace_prefix + ".perfetto.json";
    if (!trace::write_jsonl_file(tracer, jsonl) ||
        !trace::write_perfetto_file(tracer, perfetto)) {
      std::fprintf(stderr, "FAIL: cannot write trace files %s / %s\n",
                   jsonl.c_str(), perfetto.c_str());
      return 1;
    }
    const trace::TraceSummary s = trace::summarize(tracer);
    std::printf("wrote %s (%zu spans) and %s: %zu event traces, %zu "
                "complete, %zu retries, %zu reroutes, %zu drops\n",
                jsonl.c_str(), tracer.span_count(), perfetto.c_str(),
                s.event_traces, s.complete_traces, s.retries, s.reroutes,
                s.drops);
  }
  return 0;
}
