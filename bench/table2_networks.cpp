// Table 2 — the simulated networks and their average RTTs.
//
// The paper derives 1k..6k-node networks from the King dataset; we derive
// them from the King-like synthetic topology (calibrated to King's 180 ms
// average on the 1740-node instance) and report the measured average RTT
// of each size, which is what Table 2 lists.

#include <cstdio>
#include <cstring>

#include "net/topology.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const std::size_t sizes_full[] = {1000, 2000, 3000, 4000, 5000, 6000};
  const std::size_t sizes_fast[] = {200, 400, 600, 800, 1000, 1200};
  const auto& sizes = full ? sizes_full : sizes_fast;

  std::printf("=== Table 2: Simulated networks and avg RTTs ===\n");
  std::printf("%-14s %-14s\n", "Size (x10^3)", "Avg RTT (ms)");
  for (const std::size_t n : sizes) {
    net::KingLikeTopology::Params p;
    p.hosts = n;
    p.seed = 42;
    const net::KingLikeTopology topo(p);
    std::printf("%-14.1f %-14.1f\n", double(n) / 1000.0,
                topo.mean_rtt(20000, 7));
  }
  // The reference 1740-node network (King's size).
  net::KingLikeTopology::Params p;
  p.hosts = 1740;
  const net::KingLikeTopology king(p);
  std::printf("%-14s %-14.1f  <- King-size reference (paper: 180 ms)\n",
              "1.74", king.mean_rtt(20000, 7));
  return 0;
}
