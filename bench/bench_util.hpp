#pragma once
// Shared helpers for the figure-reproduction binaries.
//
// Every binary runs a reduced-scale configuration by default so that the
// whole bench suite completes in minutes on one core; pass --full to run
// the paper's exact scale (1740 nodes, 20 000 events, 1k-6k networks).

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "runner/experiment.hpp"

namespace hypersub::bench {

/// Peak resident set size of this process, in bytes. Linux reports
/// ru_maxrss in KiB; this is the high-water mark, so measuring a sweep
/// point after a bigger one reports the bigger one's peak — run sweeps
/// smallest-first (or one point per process) when the per-point value
/// matters.
inline std::size_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return std::size_t(ru.ru_maxrss) * 1024u;
}

/// Host facts every BENCH_*.json records so the sanity gates can decide
/// which checks are meaningful on this machine instead of guessing.
struct HostMeta {
  unsigned cores = 0;
  std::size_t total_ram_bytes = 0;
};

inline HostMeta host_meta() {
  HostMeta h;
  h.cores = std::thread::hardware_concurrency();
  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page_size = sysconf(_SC_PAGE_SIZE);
  if (pages > 0 && page_size > 0) {
    h.total_ram_bytes = std::size_t(pages) * std::size_t(page_size);
  }
  return h;
}

/// Emit the shared "host" section (with trailing comma) into an open
/// BENCH_*.json being written with fprintf.
inline void write_host_json(FILE* f) {
  const HostMeta h = host_meta();
  std::fprintf(f, " \"host\": {\"cores\": %u, \"total_ram_bytes\": %zu},\n",
               h.cores, h.total_ram_bytes);
}

struct Scale {
  bool full = false;
  std::size_t nodes = 600;
  std::size_t events = 1200;
  std::size_t subs_per_node = 10;
  /// True when the user passed --nodes= / --subs-per-node= explicitly —
  /// sweeps with their own size axis (fig5) collapse to the given point
  /// instead of ignoring the override.
  bool nodes_set = false;
  bool subs_per_node_set = false;
  /// --threads=N: run each simulation on N engine worker threads (sharded
  /// parallel execution; results are byte-identical to sequential). A
  /// value > 1 implies a nonzero lookahead — the window width the engine
  /// parallelizes within.
  unsigned sim_threads = 1;
  double lookahead_ms = 0.0;
  /// --adaptive-lookahead: derive the window width from the minimum live
  /// link latency instead of a fixed lookahead (same results either way).
  bool adaptive_lookahead = false;
  /// --fast-setup: install subscriptions through the oracle bulk path
  /// (equivalent zone contents, no simulated install storm) — the knob
  /// that makes 100k+ subscription runs practical.
  bool fast_setup = false;
  unsigned setup_threads = 1;  ///< --setup-threads=N: bulk-install workers
};

inline Scale parse_scale(int argc, char** argv) {
  Scale s;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      s.full = true;
      s.nodes = 1740;
      s.events = 20000;
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      s.nodes = std::size_t(std::atoll(argv[i] + 8));
      s.nodes_set = true;
    } else if (std::strncmp(argv[i], "--subs-per-node=", 16) == 0) {
      s.subs_per_node = std::size_t(std::atoll(argv[i] + 16));
      s.subs_per_node_set = true;
    } else if (std::strcmp(argv[i], "--adaptive-lookahead") == 0) {
      s.adaptive_lookahead = true;
    } else if (std::strcmp(argv[i], "--fast-setup") == 0) {
      s.fast_setup = true;
    } else if (std::strncmp(argv[i], "--setup-threads=", 16) == 0) {
      s.setup_threads = unsigned(std::atoi(argv[i] + 16));
    } else if (std::strncmp(argv[i], "--events=", 9) == 0) {
      s.events = std::size_t(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      s.sim_threads = unsigned(std::atoi(argv[i] + 10));
      if (s.sim_threads > 1 && s.lookahead_ms == 0.0) s.lookahead_ms = 5.0;
    } else if (std::strncmp(argv[i], "--lookahead=", 12) == 0) {
      s.lookahead_ms = std::atof(argv[i] + 12);
    }
  }
  return s;
}

inline runner::ExperimentConfig base_config(const Scale& s) {
  runner::ExperimentConfig cfg;
  cfg.nodes = s.nodes;
  cfg.events = s.events;
  cfg.subs_per_node = s.subs_per_node;
  cfg.sim_threads = s.sim_threads;
  cfg.lookahead_ms = s.lookahead_ms;
  cfg.adaptive_lookahead = s.adaptive_lookahead;
  cfg.fast_setup = s.fast_setup;
  cfg.setup_threads = s.setup_threads;
  return cfg;
}

inline void print_scale_banner(const Scale& s, const char* what) {
  std::printf(
      "[%s] %s scale: %zu nodes, %zu events, %zu subs/node"
      " (pass --full for the paper's 1740 nodes / 20000 events)\n\n",
      what, s.full ? "full" : "reduced", s.nodes, s.events, s.subs_per_node);
}

}  // namespace hypersub::bench
