#pragma once
// Shared helpers for the figure-reproduction binaries.
//
// Every binary runs a reduced-scale configuration by default so that the
// whole bench suite completes in minutes on one core; pass --full to run
// the paper's exact scale (1740 nodes, 20 000 events, 1k-6k networks).

#include <cstdio>
#include <cstring>
#include <string>

#include "runner/experiment.hpp"

namespace hypersub::bench {

struct Scale {
  bool full = false;
  std::size_t nodes = 600;
  std::size_t events = 1200;
  std::size_t subs_per_node = 10;
};

inline Scale parse_scale(int argc, char** argv) {
  Scale s;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      s.full = true;
      s.nodes = 1740;
      s.events = 20000;
    }
  }
  return s;
}

inline runner::ExperimentConfig base_config(const Scale& s) {
  runner::ExperimentConfig cfg;
  cfg.nodes = s.nodes;
  cfg.events = s.events;
  cfg.subs_per_node = s.subs_per_node;
  return cfg;
}

inline void print_scale_banner(const Scale& s, const char* what) {
  std::printf(
      "[%s] %s scale: %zu nodes, %zu events, %zu subs/node"
      " (pass --full for the paper's 1740 nodes / 20000 events)\n\n",
      what, s.full ? "full" : "reduced", s.nodes, s.events, s.subs_per_node);
}

}  // namespace hypersub::bench
