#pragma once
// Shared helpers for the figure-reproduction binaries.
//
// Every binary runs a reduced-scale configuration by default so that the
// whole bench suite completes in minutes on one core; pass --full to run
// the paper's exact scale (1740 nodes, 20 000 events, 1k-6k networks).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/experiment.hpp"

namespace hypersub::bench {

struct Scale {
  bool full = false;
  std::size_t nodes = 600;
  std::size_t events = 1200;
  std::size_t subs_per_node = 10;
  /// --threads=N: run each simulation on N engine worker threads (sharded
  /// parallel execution; results are byte-identical to sequential). A
  /// value > 1 implies a nonzero lookahead — the window width the engine
  /// parallelizes within.
  unsigned sim_threads = 1;
  double lookahead_ms = 0.0;
};

inline Scale parse_scale(int argc, char** argv) {
  Scale s;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      s.full = true;
      s.nodes = 1740;
      s.events = 20000;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      s.sim_threads = unsigned(std::atoi(argv[i] + 10));
      if (s.sim_threads > 1 && s.lookahead_ms == 0.0) s.lookahead_ms = 5.0;
    } else if (std::strncmp(argv[i], "--lookahead=", 12) == 0) {
      s.lookahead_ms = std::atof(argv[i] + 12);
    }
  }
  return s;
}

inline runner::ExperimentConfig base_config(const Scale& s) {
  runner::ExperimentConfig cfg;
  cfg.nodes = s.nodes;
  cfg.events = s.events;
  cfg.subs_per_node = s.subs_per_node;
  cfg.sim_threads = s.sim_threads;
  cfg.lookahead_ms = s.lookahead_ms;
  return cfg;
}

inline void print_scale_banner(const Scale& s, const char* what) {
  std::printf(
      "[%s] %s scale: %zu nodes, %zu events, %zu subs/node"
      " (pass --full for the paper's 1740 nodes / 20000 events)\n\n",
      what, s.full ? "full" : "reduced", s.nodes, s.events, s.subs_per_node);
}

}  // namespace hypersub::bench
