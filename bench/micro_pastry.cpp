// Micro-benchmark: Pastry routing operations (next-hop selection, table
// construction, simulated lookups) — the substrate side of ablation_dht.

#include <benchmark/benchmark.h>

#include <memory>

#include "net/topology.hpp"
#include "pastry/pastry_net.hpp"

namespace {

using namespace hypersub;

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<pastry::PastryNet> pastry;
};

Stack make_stack(std::size_t n) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  s.pastry = std::make_unique<pastry::PastryNet>(*s.net,
                                                 pastry::PastryNet::Params{});
  s.pastry->oracle_build();
  return s;
}

void BM_PastryNextHop(benchmark::State& state) {
  auto s = make_stack(512);
  const auto& nd = s.pastry->node(0);
  Rng rng(1);
  std::vector<Id> keys;
  for (int i = 0; i < 1024; ++i) keys.push_back(rng.next_u64());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nd.next_hop(keys[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PastryNextHop);

void BM_PastrySimulatedLookup(benchmark::State& state) {
  auto s = make_stack(std::size_t(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    int hops = 0;
    s.pastry->route(
        net::HostIndex(rng.index(std::size_t(state.range(0)))),
        rng.next_u64(), 0,
        [&](const overlay::Overlay::RouteResult& r) { hops = r.hops; });
    s.sim->run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PastrySimulatedLookup)->Arg(128)->Arg(512)->Arg(1740);

void BM_PastryOracleBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto s = make_stack(std::size_t(state.range(0)));
    benchmark::DoNotOptimize(s.pastry.get());
  }
}
BENCHMARK(BM_PastryOracleBuild)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_SharedPrefixDigits(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::pair<Id, Id>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.emplace_back(rng.next_u64(), rng.next_u64());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(pastry::shared_prefix_digits(a, b));
  }
}
BENCHMARK(BM_SharedPrefixDigits);

}  // namespace
