// Table 1 — the publish/subscribe scheme and workload properties.
//
// Prints the reconstructed Table 1 plus an empirical verification of the
// distributions it prescribes (value concentration around the hotspots,
// range-width distribution), so the workload the other benches consume is
// inspectable.

#include <cstdio>
#include <iostream>

#include "common/stats.hpp"
#include "workload/scheme_factory.hpp"
#include "workload/zipf_workload.hpp"

int main() {
  using namespace hypersub;

  const auto spec = workload::table1_spec();
  std::cout << "=== Table 1: Publish/subscribe scheme and properties ===\n";
  std::cout << workload::render_table1(spec) << '\n';

  workload::WorkloadGenerator gen(spec, 1);
  constexpr int kSamples = 20000;

  std::cout << "Empirical check over " << kSamples
            << " events / subscriptions:\n";
  for (std::size_t d = 0; d < spec.dims.size(); ++d) {
    Summary near_hot;
    Summary widths;
    workload::WorkloadGenerator g2(spec, 2 + d);
    for (int i = 0; i < kSamples; ++i) {
      const auto e = g2.make_event();
      const auto& ds = spec.dims[d];
      const double pos = (e.point[d] - ds.min) / (ds.max - ds.min);
      double dist = std::abs(pos - ds.data_hotspot);
      dist = std::min(dist, 1.0 - dist);
      near_hot.add(dist < 0.25 ? 1.0 : 0.0);
      const auto s = g2.make_subscription();
      widths.add(s.range().dim(d).length() / (ds.max - ds.min));
    }
    std::printf(
        "  dim %zu: P(value within 25%% of hotspot)=%.3f   "
        "range width frac: mean=%.4f max=%.4f (hotspot cap %.2f)\n",
        d, near_hot.mean(), widths.mean(), widths.max(),
        spec.dims[d].size_hotspot);
  }
  return 0;
}
