// Ablation — HyperSub vs the related-work baselines it positions against:
//   * Ferry-like [23]: one rendezvous node per scheme on Chord.
//   * Meghdoot-like [11]: CAN in 2d dimensions, region flooding.
//
// The paper's claims to verify: Ferry concentrates storage and matching on
// a tiny node set (scalability bottleneck); Meghdoot ties the overlay to
// one scheme and pays region-flood costs; HyperSub spreads load while
// keeping delivery costs moderate.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "baseline/ferry_like.hpp"
#include "baseline/meghdoot_like.hpp"
#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/zipf_workload.hpp"

namespace {

struct Row {
  const char* name;
  double max_load;
  double nonzero_load_nodes;
  double avg_hops;
  double avg_latency;
  double avg_bw_kb;
};

void print_row(const Row& r) {
  std::printf("  %-14s max-load=%6.0f  loaded-nodes=%5.0f  hops=%5.1f  "
              "latency=%6.0f ms  bw=%7.2f KB\n",
              r.name, r.max_load, r.nonzero_load_nodes, r.avg_hops,
              r.avg_latency, r.avg_bw_kb);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hypersub;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const std::size_t nodes = full ? 1000 : 300;
  const std::size_t subs = full ? 5000 : 1500;
  const std::size_t events = full ? 1000 : 300;

  std::printf("=== Ablation: HyperSub vs Ferry-like vs Meghdoot-like "
              "(%zu nodes, %zu subs, %zu events) ===\n",
              nodes, subs, events);

  // A 2-attribute scheme keeps the Meghdoot CAN at 4 dimensions.
  const auto spec = workload::tiny_spec();

  auto summarize_loads = [](const std::vector<std::size_t>& loads) {
    double mx = 0, nz = 0;
    for (const auto l : loads) {
      mx = std::max(mx, double(l));
      if (l > 0) ++nz;
    }
    return std::pair<double, double>{mx, nz};
  };

  // ---- HyperSub -----------------------------------------------------------
  Row hs_row{"HyperSub", 0, 0, 0, 0, 0};
  {
    net::KingLikeTopology::Params tp;
    tp.hosts = nodes;
    net::KingLikeTopology topo(tp);
    sim::Simulator sim;
    net::Network net(sim, topo);
    chord::ChordNet chord(net, {});
    core::HyperSubSystem::Config sc;
    sc.bootstrap = core::BootstrapMode::kOracle;
    core::HyperSubSystem sys(chord, sc);
    core::CountingDeliverySink sink;  // counts only; skip the full log
    sys.set_delivery_sink(sink);
    workload::WorkloadGenerator gen(spec, 7);
    core::SchemeOptions opt;
    opt.zone_cfg = lph::ZoneSystem::Config::for_dims(2);
    const auto scheme = sys.add_scheme(gen.scheme(), opt);
    Rng rng(9);
    for (std::size_t i = 0; i < subs; ++i) {
      sys.subscribe(net::HostIndex(rng.index(nodes)), scheme,
                    gen.make_subscription());
    }
    sim.run();
    double t = 0;
    for (std::size_t i = 0; i < events; ++i) {
      t += rng.exponential(100.0);
      pubsub::Event e = gen.make_event();
      const auto pub = net::HostIndex(rng.index(nodes));
      sim.schedule(t, [&sys, scheme, pub, e]() mutable {
        sys.publish(pub, scheme, std::move(e));
      });
    }
    sim.run();
    sys.finalize_events();
    const auto [mx, nz] = summarize_loads(sys.node_loads());
    hs_row = {"HyperSub", mx, nz, sys.event_metrics().hops_cdf().mean(),
              sys.event_metrics().latency_cdf().mean(),
              sys.event_metrics().bandwidth_kb_cdf().mean()};
  }

  // ---- Ferry-like -----------------------------------------------------------
  Row ferry_row{"Ferry-like", 0, 0, 0, 0, 0};
  {
    net::KingLikeTopology::Params tp;
    tp.hosts = nodes;
    net::KingLikeTopology topo(tp);
    sim::Simulator sim;
    net::Network net(sim, topo);
    chord::ChordNet chord(net, {});
    chord.oracle_build();
    workload::WorkloadGenerator gen(spec, 7);
    baseline::FerryLike ferry(chord, gen.scheme());
    Rng rng(9);
    for (std::size_t i = 0; i < subs; ++i) {
      ferry.subscribe(net::HostIndex(rng.index(nodes)),
                      gen.make_subscription());
    }
    sim.run();
    double t = 0;
    for (std::size_t i = 0; i < events; ++i) {
      t += rng.exponential(100.0);
      pubsub::Event e = gen.make_event();
      const auto pub = net::HostIndex(rng.index(nodes));
      sim.schedule(t, [&ferry, pub, e]() mutable { ferry.publish(pub, e); });
    }
    sim.run();
    ferry.finalize_events();
    const auto [mx, nz] = summarize_loads(ferry.node_loads());
    ferry_row = {"Ferry-like", mx, nz,
                 ferry.event_metrics().hops_cdf().mean(),
                 ferry.event_metrics().latency_cdf().mean(),
                 ferry.event_metrics().bandwidth_kb_cdf().mean()};
  }

  // ---- Meghdoot-like -----------------------------------------------------------
  Row meg_row{"Meghdoot-like", 0, 0, 0, 0, 0};
  {
    net::KingLikeTopology::Params tp;
    tp.hosts = nodes;
    net::KingLikeTopology topo(tp);
    sim::Simulator sim;
    net::Network net(sim, topo);
    workload::WorkloadGenerator gen(spec, 7);
    can::CanNet can(net, {2 * gen.scheme().arity(), 5});
    baseline::MeghdootLike meg(can, gen.scheme());
    Rng rng(9);
    for (std::size_t i = 0; i < subs; ++i) {
      meg.subscribe(net::HostIndex(rng.index(nodes)),
                    gen.make_subscription());
    }
    sim.run();
    double t = 0;
    for (std::size_t i = 0; i < events; ++i) {
      t += rng.exponential(100.0);
      pubsub::Event e = gen.make_event();
      const auto pub = net::HostIndex(rng.index(nodes));
      sim.schedule(t, [&meg, pub, e]() mutable { meg.publish(pub, e); });
    }
    sim.run();
    meg.finalize_events();
    const auto [mx, nz] = summarize_loads(meg.node_loads());
    meg_row = {"Meghdoot-like", mx, nz,
               meg.event_metrics().hops_cdf().mean(),
               meg.event_metrics().latency_cdf().mean(),
               meg.event_metrics().bandwidth_kb_cdf().mean()};
  }

  print_row(hs_row);
  print_row(ferry_row);
  print_row(meg_row);
  std::printf(
      "Expected shape: Ferry concentrates all %zu subscriptions on ~1 node "
      "(max-load ~ %zu, loaded-nodes ~ 1); HyperSub spreads them across "
      "hundreds of nodes at comparable delivery cost; Meghdoot spreads "
      "storage but floods regions per event.\n",
      subs, subs);
  return 0;
}
