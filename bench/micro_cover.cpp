// Micro-benchmark: covering-based subscription aggregation.
//
// A dup-heavy interest workload (most subscriptions are Zipf-ranked draws
// from a small pool of base interests, verbatim or shrunk — the regime
// where covering/subsumption detection pays) and a Zipf-hot event feed
// run twice over an identical network: once with cover_aggregation off
// (every subscription registered upward) and once with it on (contained
// subscriptions quenched at their zone, matched subid lists compressed
// with the grouped wire encoding). We report the registration reduction
// (quenched / stored), the subid transport bytes per event (the payload
// the grouped encoding compresses; the total frame bandwidth is dominated
// by per-edge event copies, which parity leaves untouched), and verify
// the delivery sets are identical via an order-independent delivery hash.
// Machine-readable results go to BENCH_cover.json (--json=PATH) for the
// bench_sanity cover gate. --quick shrinks the run for CI; --full scales
// it up.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chord/chord_net.hpp"
#include "common/zipf.hpp"
#include "core/hypersub_system.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "workload/zipf_workload.hpp"

namespace {

using namespace hypersub;

struct Params {
  std::size_t nodes = 300;
  std::size_t subs_per_node = 16;
  std::size_t interest_pool = 24;  ///< distinct base interests
  double interest_skew = 1.0;      ///< Zipf rank skew of interest draws
  double dup_frac = 0.6;           ///< pool sub verbatim
  double shrink_frac = 0.2;        ///< pool sub shrunk (guaranteed contained)
  std::size_t event_pool = 64;     ///< distinct hot events
  double hot_topic_frac = 0.7;     ///< events placed inside a popular interest
  double zipf_skew = 0.95;         ///< rank skew of the event feed
  std::size_t publishers = 6;
  std::size_t warm_rounds = 20;
  std::size_t rounds = 80;
  std::size_t burst = 4;
};

/// Order-independent delivery identity: a commutative (wrapping-sum)
/// accumulation of one avalanche hash per delivery. Cover expansion emits
/// coverees after their representative instead of in global insertion
/// order, so only the multiset — not the sequence — is comparable.
class HashingDeliverySink final : public core::DeliverySink {
 public:
  void on_delivery(const core::Delivery& d) override {
    sum_ += core::splitmix64(core::splitmix64(d.event_seq) ^
                             core::splitmix64((std::uint64_t(d.subscriber)
                                               << 32) |
                                              d.iid));
    ++count_;
  }
  void reset() override { sum_ = 0, count_ = 0; }
  std::uint64_t hash() const noexcept { return sum_; }
  std::uint64_t count() const noexcept { return count_; }

 private:
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

HyperRect shrink(const HyperRect& r, double f) {
  std::vector<Interval> d;
  for (const auto& iv : r.dims()) {
    d.push_back({iv.lo + f * iv.length(), iv.hi - f * iv.length()});
  }
  return HyperRect(std::move(d));
}

struct RunResult {
  double mean_bandwidth_kb = 0.0;
  double mean_publish_hops = 0.0;
  std::uint64_t deliveries = 0;
  std::uint64_t delivery_hash = 0;
  double wall_ns_per_event = 0.0;
  metrics::CoverCounters cover;
  metrics::Snapshot snap;
};

struct BenchRun {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<core::HyperSubSystem> sys;
  HashingDeliverySink sink;
  std::vector<pubsub::Event> pool;
  std::unique_ptr<ZipfSampler> zipf;
  Rng rng{33};
  std::uint32_t scheme = 0;
  std::size_t publishers = 0;
  std::size_t burst = 0;

  void round() {
    const auto pub = net::HostIndex(rng.index(publishers));
    for (std::size_t b = 0; b < burst; ++b) {
      auto e = pool[zipf->sample(rng) - 1];
      sys->publish(pub, scheme, std::move(e));
    }
    sim->run();
  }
};

std::unique_ptr<BenchRun> make_bench(const Params& p, bool cover) {
  auto b = std::make_unique<BenchRun>();
  net::KingLikeTopology::Params tp;
  tp.hosts = p.nodes;
  tp.seed = 9;
  b->topo = std::make_unique<net::KingLikeTopology>(tp);
  b->sim = std::make_unique<sim::Simulator>();
  b->net = std::make_unique<net::Network>(*b->sim, *b->topo);
  chord::ChordNet::Params cp;
  cp.seed = 9;
  b->chord = std::make_unique<chord::ChordNet>(*b->net, cp);

  core::HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.cover_aggregation = cover;
  b->sys = std::make_unique<core::HyperSubSystem>(*b->chord, sc);
  b->sys->set_delivery_sink(b->sink);

  workload::WorkloadGenerator gen(workload::table1_spec(), 21);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  b->scheme = b->sys->add_scheme(gen.scheme(), opt);

  // The interest pool: a few dozen base subscriptions most installs are
  // drawn from (popularity Zipf-ranked). Verbatim duplicates and shrunk
  // copies land in the base interest's zone and are quenchable there; the
  // remainder are fresh one-off interests. The draw sequence is seeded
  // identically for both configs, so the populations match sub for sub.
  std::vector<pubsub::Subscription> interests;
  for (std::size_t i = 0; i < p.interest_pool; ++i) {
    interests.push_back(gen.make_subscription());
  }
  ZipfSampler isub(p.interest_pool, p.interest_skew);
  Rng srng(57);
  for (net::HostIndex h = 0; h < p.nodes; ++h) {
    for (std::size_t k = 0; k < p.subs_per_node; ++k) {
      const auto& base = interests[isub.sample(srng) - 1];
      const double roll = double(srng.index(1000)) / 1000.0;
      if (roll < p.dup_frac) {
        b->sys->subscribe(h, b->scheme, base);
      } else if (roll < p.dup_frac + p.shrink_frac) {
        b->sys->subscribe(h, b->scheme,
                          pubsub::Subscription(shrink(base.range(), 0.1)));
      } else {
        b->sys->subscribe(h, b->scheme, gen.make_subscription());
      }
    }
  }
  b->sim->run();

  // Hot-topic feed: most events land inside a Zipf-popular interest (the
  // rank skew mirrors the subscription side — popular topics attract both
  // subscribers and traffic), the rest are background uniform events.
  for (std::size_t i = 0; i < p.event_pool; ++i) {
    if (double(srng.index(1000)) / 1000.0 < p.hot_topic_frac) {
      const HyperRect& r = interests[isub.sample(srng) - 1].range();
      Point pt;
      for (const auto& iv : r.dims()) {
        pt.push_back(iv.lo +
                     (double(srng.index(1000)) / 1000.0) * iv.length());
      }
      b->pool.push_back(pubsub::Event{0, std::move(pt)});
    } else {
      b->pool.push_back(gen.make_event());
    }
  }
  b->zipf = std::make_unique<ZipfSampler>(p.event_pool, p.zipf_skew);
  b->publishers = p.publishers;
  b->burst = p.burst;

  for (std::size_t r = 0; r < p.warm_rounds; ++r) b->round();
  b->sys->finalize_events();
  b->sys->reset_metrics();
  b->net->reset_traffic();
  return b;
}

RunResult run_config(const Params& p, bool cover) {
  auto b = make_bench(p, cover);
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < p.rounds; ++r) b->round();
  b->sys->finalize_events();
  const auto wall1 = std::chrono::steady_clock::now();

  RunResult res;
  res.snap = metrics::snapshot(*b->sys);
  res.mean_bandwidth_kb = res.snap.mean_bandwidth_kb;
  res.mean_publish_hops = res.snap.mean_max_hops;
  res.deliveries = b->sink.count();
  res.delivery_hash = b->sink.hash();
  res.cover = b->sys->cover_counters();
  res.wall_ns_per_event =
      double(std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 -
                                                                  wall0)
                 .count()) /
      double(p.rounds * p.burst);
  return res;
}

bool emit_json(const std::string& path, const Params& p,
               const RunResult& off, const RunResult& on,
               double reg_reduction, double subid_reduction,
               double bw_reduction) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_cover\",\n");
  hypersub::bench::write_host_json(f);
  std::fprintf(f, "  \"workload\": \"table1 zipf interest pool\",\n");
  std::fprintf(f,
               "  \"nodes\": %zu, \"subs_per_node\": %zu, "
               "\"interest_pool\": %zu, \"dup_frac\": %.2f, "
               "\"shrink_frac\": %.2f,\n",
               p.nodes, p.subs_per_node, p.interest_pool, p.dup_frac,
               p.shrink_frac);
  std::fprintf(f, "  \"events\": %zu, \"burst\": %zu, \"zipf_skew\": %.2f,\n",
               p.rounds * p.burst, p.burst, p.zipf_skew);
  std::fprintf(f,
               "  \"registration\": {\"stored\": %llu, "
               "\"representatives\": %llu, \"quenched\": %llu, "
               "\"reduction\": %.4f},\n",
               (unsigned long long)(on.cover.representatives +
                                    on.cover.quenched),
               (unsigned long long)on.cover.representatives,
               (unsigned long long)on.cover.quenched, reg_reduction);
  const double events = double(p.rounds * p.burst);
  std::fprintf(f,
               "  \"subid_bytes\": {\"off_per_event\": %.1f, "
               "\"on_per_event\": %.1f, \"reduction\": %.4f, "
               "\"saved\": %llu},\n",
               double(off.cover.subid_wire_bytes) / events,
               double(on.cover.subid_wire_bytes) / events, subid_reduction,
               (unsigned long long)on.cover.subid_bytes_saved);
  std::fprintf(f,
               "  \"bandwidth\": {\"off_kb_per_event\": %.4f, "
               "\"on_kb_per_event\": %.4f, \"reduction\": %.4f},\n",
               off.mean_bandwidth_kb, on.mean_bandwidth_kb, bw_reduction);
  std::fprintf(f,
               "  \"delivery\": {\"off_count\": %llu, \"on_count\": %llu, "
               "\"off_hash\": %llu, \"on_hash\": %llu, "
               "\"identical\": %s},\n",
               (unsigned long long)off.deliveries,
               (unsigned long long)on.deliveries,
               (unsigned long long)off.delivery_hash,
               (unsigned long long)on.delivery_hash,
               off.deliveries == on.deliveries &&
                       off.delivery_hash == on.delivery_hash
                   ? "true"
                   : "false");
  std::fprintf(f, "  \"configs\": [\n");
  const struct {
    const char* name;
    const RunResult* r;
  } rows[] = {{"cover_off", &off}, {"cover_on", &on}};
  for (std::size_t i = 0; i < 2; ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"mean_publish_hops\": %.4f, "
                 "\"mean_bandwidth_kb\": %.4f, \"deliveries\": %llu, "
                 "\"wall_ns_per_event\": %.1f,\n     \"snapshot\": %s}%s\n",
                 rows[i].name, rows[i].r->mean_publish_hops,
                 rows[i].r->mean_bandwidth_kb,
                 (unsigned long long)rows[i].r->deliveries,
                 rows[i].r->wall_ns_per_event,
                 rows[i].r->snap.to_json().c_str(), i == 0 ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_cover.json";
  Params p;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      p.nodes = 150;
      p.subs_per_node = 10;
      p.warm_rounds = 10;
      p.rounds = 40;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      p.nodes = 1000;
      p.warm_rounds = 40;
      p.rounds = 200;
    }
  }

  std::printf(
      "cover aggregation (%zu nodes, %zu subs, interest pool %zu, "
      "%zu events)\n",
      p.nodes, p.nodes * p.subs_per_node, p.interest_pool,
      p.rounds * p.burst);
  const RunResult off = run_config(p, false);
  const RunResult on = run_config(p, true);

  const std::uint64_t stored = on.cover.representatives + on.cover.quenched;
  const double reg_reduction =
      stored > 0 ? double(on.cover.quenched) / double(stored) : 0.0;
  const double subid_reduction =
      off.cover.subid_wire_bytes > 0
          ? 1.0 - double(on.cover.subid_wire_bytes) /
                      double(off.cover.subid_wire_bytes)
          : 0.0;
  const double bw_reduction =
      off.mean_bandwidth_kb > 0.0
          ? 1.0 - on.mean_bandwidth_kb / off.mean_bandwidth_kb
          : 0.0;

  std::printf("%12s %16s %16s %12s %16s\n", "config", "bandwidth KB/ev",
              "publish hops", "deliveries", "wall ns/ev");
  std::printf("%12s %16.3f %16.2f %12llu %16.0f\n", "cover_off",
              off.mean_bandwidth_kb, off.mean_publish_hops,
              (unsigned long long)off.deliveries, off.wall_ns_per_event);
  std::printf("%12s %16.3f %16.2f %12llu %16.0f\n", "cover_on",
              on.mean_bandwidth_kb, on.mean_publish_hops,
              (unsigned long long)on.deliveries, on.wall_ns_per_event);
  std::printf(
      "registration: %llu stored = %llu representatives + %llu quenched "
      "(%.1f%% reduction)\n",
      (unsigned long long)stored,
      (unsigned long long)on.cover.representatives,
      (unsigned long long)on.cover.quenched, 100.0 * reg_reduction);
  const double events = double(p.rounds * p.burst);
  std::printf(
      "subid transport: %.1f -> %.1f bytes/event (%.1f%% reduction, "
      "%llu bytes saved, %llu promotions)\n",
      double(off.cover.subid_wire_bytes) / events,
      double(on.cover.subid_wire_bytes) / events, 100.0 * subid_reduction,
      (unsigned long long)on.cover.subid_bytes_saved,
      (unsigned long long)on.cover.promotions);
  std::printf("total bandwidth: %.3f -> %.3f KB/event (%.1f%% reduction)\n",
              off.mean_bandwidth_kb, on.mean_bandwidth_kb,
              100.0 * bw_reduction);

  // Aggregation must not change what gets delivered — count and content.
  if (off.deliveries != on.deliveries ||
      off.delivery_hash != on.delivery_hash) {
    std::fprintf(stderr,
                 "FAIL: delivery sets diverge (off=%llu/%016llx "
                 "on=%llu/%016llx)\n",
                 (unsigned long long)off.deliveries,
                 (unsigned long long)off.delivery_hash,
                 (unsigned long long)on.deliveries,
                 (unsigned long long)on.delivery_hash);
    return 1;
  }

  if (!emit_json(json_path, p, off, on, reg_reduction, subid_reduction,
                 bw_reduction))
    return 1;
  return 0;
}
