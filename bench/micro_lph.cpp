// Micro-benchmark: locality-preserving hash throughput (Algorithm 1),
// swept over base, dimensionality, and input kind.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "lph/lph.hpp"
#include "workload/zipf_workload.hpp"

namespace {

using namespace hypersub;

void BM_LphEvent(benchmark::State& state) {
  const int base_bits = int(state.range(0));
  const std::size_t dims = std::size_t(state.range(1));
  const lph::ZoneSystem zs(HyperRect::uniform(dims, 0.0, 1000.0),
                           {base_bits, 20});
  Rng rng(1);
  std::vector<Point> points;
  for (int i = 0; i < 1024; ++i) {
    Point p(dims);
    for (auto& x : p) x = rng.uniform(0.0, 1000.0);
    points.push_back(std::move(p));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lph::hash_event(zs, points[i++ & 1023], 0x1234).key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LphEvent)
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->Args({1, 8});

void BM_LphSubscription(benchmark::State& state) {
  const int base_bits = int(state.range(0));
  const std::size_t dims = std::size_t(state.range(1));
  const lph::ZoneSystem zs(HyperRect::uniform(dims, 0.0, 1000.0),
                           {base_bits, 20});
  Rng rng(2);
  std::vector<HyperRect> rects;
  for (int i = 0; i < 1024; ++i) {
    std::vector<Interval> iv;
    for (std::size_t d = 0; d < dims; ++d) {
      const double w = rng.uniform(0.1, 100.0);
      const double lo = rng.uniform(0.0, 1000.0 - w);
      iv.push_back({lo, lo + w});
    }
    rects.emplace_back(std::move(iv));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lph::hash_subscription(zs, rects[i++ & 1023], 0x1234).key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LphSubscription)->Args({1, 2})->Args({1, 4})->Args({2, 4});

void BM_ZoneExtent(benchmark::State& state) {
  const lph::ZoneSystem zs(HyperRect::uniform(4, 0.0, 1.0), {1, 20});
  // A deep zone: replaying 20 splits.
  lph::Zone z{0b10110100101101001011, 20};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zs.extent(z));
  }
}
BENCHMARK(BM_ZoneExtent);

}  // namespace
