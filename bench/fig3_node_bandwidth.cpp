// Figure 3 — distribution of nodes with respect to (a) in-node bandwidth
// and (b) out-node bandwidth over the event-delivery phase, for the four
// configurations of Fig. 2.
//
// Paper shape to reproduce: load balancing cuts the maximum per-node
// bandwidth substantially (e.g. base-2 in-bandwidth max 11000 -> 6639 KB);
// base 4 without LB has the worst hot node.

#include <iostream>

#include "bench_util.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  const auto scale = bench::parse_scale(argc, argv);
  bench::print_scale_banner(scale, "fig3");

  std::vector<runner::ExperimentConfig> cfgs;
  for (const int base_bits : {1, 2}) {
    for (const bool lb : {false, true}) {
      auto cfg = bench::base_config(scale);
      cfg.base_bits = base_bits;
      cfg.load_balancing = lb;
      cfgs.push_back(cfg);
    }
  }
  const auto results = runner::run_experiments_parallel(cfgs);

  std::vector<metrics::Series> in_series, out_series;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    in_series.push_back(
        {runner::config_label(cfgs[i]), results[i].nodes.in_kb_cdf()});
    out_series.push_back(
        {runner::config_label(cfgs[i]), results[i].nodes.out_kb_cdf()});
  }
  metrics::print_cdf_figure(std::cout,
                            "Fig 3(a): CDF of nodes vs in-node bandwidth (KB)",
                            "in bandwidth (KB)", in_series);
  metrics::print_cdf_figure(
      std::cout, "Fig 3(b): CDF of nodes vs out-node bandwidth (KB)",
      "out bandwidth (KB)", out_series);

  std::cout << "Shape checks (paper: LB reduces the max per-node bandwidth):\n";
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    std::printf("  %-22s in max=%8.0f KB   out max=%8.0f KB\n",
                runner::config_label(cfgs[i]).c_str(),
                results[i].nodes.in_kb_cdf().max(),
                results[i].nodes.out_kb_cdf().max());
  }
  return 0;
}
