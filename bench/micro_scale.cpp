// Micro-benchmark: scale-out — how far one box can push the setup path
// (overlay construction + subscription installation) and what the steady
// state costs once it is up.
//
// Sweeps (nodes, subs_per_node) points up to 1M subscriptions / 10k nodes
// (--full) and writes BENCH_scale.json (override with --json=PATH): per
// point the setup wall-clock, the process peak RSS, and the measured-phase
// engine events/sec, plus a snapshot hash so successive PRs can see any
// behavioral drift. --quick runs only the 100k-subscription point (the CI
// smoke + the point the sanity gate compares against the committed
// pre-arena baseline in BENCH_scale_baseline.json).
//
// The default path is the scale-out stack: oracle bulk installation
// (HyperSubSystem::bulk_subscribe), streamed per-event metrics, and the
// counting delivery sink. --legacy runs the simulated per-subscription
// install cascade instead (the pre-arena setup path; the committed
// baseline was produced this way). Both draw the workload in the same
// order from the same seeds, so zone contents are equivalent.
//
// Points run smallest-first because peak RSS is a process-wide high-water
// mark: each point's reported peak is "after this point", so only the
// largest point's value is a true per-point peak. The gated quick run has
// exactly one point for this reason.
//
// --check-determinism re-runs the gated 100k point — sequential and then
// threads 2, 4, 8, all under the adaptive lookahead floor and work-stealing
// windows — and fails (exit 1) unless the metrics snapshot JSON and the
// sampled span logs are byte-identical. It runs after the measured sweep
// so it cannot disturb the recorded per-point peak RSS.
//
// Each point also records the zone-tree memory breakdown (materialized
// zones, compressed-chain records, key indexes) separately from
// subscription storage; --mem-breakdown prints it, --no-compress disables
// path-compressed zone chains for before/after comparisons.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "trace/tracer.hpp"
#include "workload/zipf_workload.hpp"

namespace {

using namespace hypersub;
using Clock = std::chrono::steady_clock;

double secs_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

std::uint64_t fnv1a(const std::string& s,
                    std::uint64_t h = 1469598103934665603ull) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct PointResult {
  std::size_t nodes = 0;
  std::size_t subs_per_node = 0;
  std::size_t subs = 0;
  unsigned threads = 1;
  bool legacy = false;
  double setup_seconds = 0.0;
  std::size_t peak_rss_bytes = 0;
  // Zone-tree memory breakdown, summed over all nodes after setup: the
  // compression target (zone_tree_bytes) separated from subscription
  // storage (sub_bytes) so the sanity gate can compare representations.
  std::size_t materialized_zones = 0;
  std::size_t chain_records = 0;
  std::size_t implicit_zones = 0;
  std::size_t zone_materialized_bytes = 0;
  std::size_t zone_chain_bytes = 0;
  std::size_t zone_index_bytes = 0;
  std::size_t zone_tree_bytes = 0;
  std::size_t sub_bytes = 0;
  std::uint64_t executed = 0;
  double events_per_sec = 0.0;
  std::uint64_t deliveries = 0;
  std::uint64_t snapshot_hash = 0;
  std::string snapshot_json;  // kept only for the determinism check
};

struct RunOpts {
  std::size_t events = 2000;
  double mean_interarrival_ms = 0.5;
  double lookahead_ms = 5.0;
  unsigned threads = 1;
  unsigned setup_threads = 1;
  bool legacy = false;     ///< simulated install cascade (pre-arena path)
  bool compress = true;    ///< path-compressed structural zone chains
  bool adaptive = false;   ///< lookahead floor from min live link latency
  trace::Tracer* tracer = nullptr;
  double trace_sample_rate = 1.0;
};

PointResult run_point(std::size_t nodes, std::size_t subs_per_node,
                      const RunOpts& o) {
  const auto t0 = Clock::now();
  net::KingLikeTopology::Params tp;
  tp.hosts = nodes;
  tp.seed = 11;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  sim.set_threads(o.threads);
  sim.set_lookahead(o.lookahead_ms);
  net::Network net(sim, topo);
  if (o.adaptive) net.enable_adaptive_lookahead();
  chord::ChordNet::Params cp;
  cp.seed = 11;
  chord::ChordNet chord(net, cp);
  core::HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.build_threads = o.setup_threads;
  sc.stream_event_metrics = !o.legacy;  // big runs never materialize records
  sc.compress_zone_chains = o.compress;
  sc.trace_sample_rate = o.trace_sample_rate;
  core::HyperSubSystem sys(chord, sc);
  core::CountingDeliverySink sink;
  sys.set_delivery_sink(sink);
  if (o.tracer) sys.set_tracer(o.tracer);

  workload::WorkloadGenerator gen(workload::table1_spec(), 23);
  core::SchemeOptions so;
  so.zone_cfg = lph::ZoneSystem::Config{1, 20};
  const auto scheme = sys.add_scheme(gen.scheme(), so);
  if (o.legacy) {
    for (net::HostIndex h = 0; h < nodes; ++h) {
      for (std::size_t k = 0; k < subs_per_node; ++k) {
        sys.subscribe(h, scheme, gen.make_subscription());
      }
    }
  } else {
    // Same draw order as the legacy loop — zone contents are equivalent,
    // installed directly through the oracle instead of an install storm.
    std::vector<core::HyperSubSystem::BulkSub> batch;
    batch.reserve(nodes * subs_per_node);
    for (net::HostIndex h = 0; h < nodes; ++h) {
      for (std::size_t k = 0; k < subs_per_node; ++k) {
        batch.push_back({h, gen.make_subscription()});
      }
    }
    sys.bulk_subscribe(scheme, std::move(batch), o.setup_threads);
  }
  sim.run();  // drain the install traffic: setup ends here
  const auto t1 = Clock::now();
  core::HyperSubNode::ZoneMemoryBreakdown mb{};
  for (net::HostIndex h = 0; h < nodes; ++h) {
    const auto b = sys.node(h).memory_breakdown();
    mb.materialized_zones += b.materialized_zones;
    mb.chain_records += b.chain_records;
    mb.implicit_zones += b.implicit_zones;
    mb.zone_bytes += b.zone_bytes;
    mb.chain_bytes += b.chain_bytes;
    mb.key_index_bytes += b.key_index_bytes;
    mb.sub_bytes += b.sub_bytes;
  }
  sys.reset_metrics();
  if (o.tracer) o.tracer->reset();

  Rng rng(29);
  double t = 0.0;
  for (std::size_t i = 0; i < o.events; ++i) {
    t += rng.exponential(o.mean_interarrival_ms);
    const auto pub = net::HostIndex(rng.index(nodes));
    sim.schedule_at(t, [&sys, pub, scheme, ev = gen.make_event()] {
      sys.publish(pub, scheme, ev);
    });
  }
  const std::uint64_t before = sim.executed();
  const auto t2 = Clock::now();
  sim.run();
  const auto t3 = Clock::now();
  sys.finalize_events();

  PointResult r;
  r.nodes = nodes;
  r.subs_per_node = subs_per_node;
  r.subs = nodes * subs_per_node;
  r.threads = o.threads;
  r.legacy = o.legacy;
  r.setup_seconds = secs_between(t0, t1);
  r.peak_rss_bytes = bench::peak_rss_bytes();
  r.materialized_zones = mb.materialized_zones;
  r.chain_records = mb.chain_records;
  r.implicit_zones = mb.implicit_zones;
  r.zone_materialized_bytes = mb.zone_bytes;
  r.zone_chain_bytes = mb.chain_bytes;
  r.zone_index_bytes = mb.key_index_bytes;
  r.zone_tree_bytes = mb.zone_tree_bytes();
  r.sub_bytes = mb.sub_bytes;
  r.executed = sim.executed() - before;
  r.events_per_sec = double(r.executed) / secs_between(t2, t3);
  r.deliveries = sink.count();
  r.snapshot_json = metrics::snapshot(sys).to_json();
  r.snapshot_hash = fnv1a(std::to_string(sink.count()),
                          fnv1a(r.snapshot_json));
  return r;
}

void print_point(const char* tag, const PointResult& r) {
  std::printf(
      "[micro_scale] %s %zu nodes x %zu subs (%zu total, threads=%u, %s): "
      "setup %.2f s, peak RSS %.1f MiB, %.0f events/sec, "
      "%llu deliveries, hash %016llx\n",
      tag, r.nodes, r.subs_per_node, r.subs, r.threads,
      r.legacy ? "legacy" : "fast", r.setup_seconds,
      double(r.peak_rss_bytes) / (1024.0 * 1024.0), r.events_per_sec,
      (unsigned long long)r.deliveries, (unsigned long long)r.snapshot_hash);
}

void print_mem_breakdown(const PointResult& r) {
  const double mib = 1024.0 * 1024.0;
  std::printf(
      "[micro_scale]   zone tree: %.1f MiB "
      "(materialized %zu zones = %.1f MiB, %zu chains / %zu implicit zones "
      "= %.1f MiB, key index %.1f MiB); subscriptions: %.1f MiB\n",
      double(r.zone_tree_bytes) / mib, r.materialized_zones,
      double(r.zone_materialized_bytes) / mib, r.chain_records,
      r.implicit_zones, double(r.zone_chain_bytes) / mib,
      double(r.zone_index_bytes) / mib, double(r.sub_bytes) / mib);
}

/// The scale-point leg of the parallel-determinism suite: the gated 100k
/// point, sequential vs each of threads {2, 4, 8}, adaptive lookahead +
/// work-stealing, byte-compared on the metrics snapshot JSON and the
/// sampled span log.
bool check_determinism_at_scale(std::size_t events, bool compress) {
  std::printf("[micro_scale] determinism check @ 100k subs"
              " (adaptive lookahead, threads 1 vs {2,4,8}, compress=%s)...\n",
              compress ? "on" : "off");
  RunOpts o;
  o.events = events;
  o.lookahead_ms = 0.0;  // the adaptive floor is what admits parallelism
  o.adaptive = true;
  o.compress = compress;
  o.trace_sample_rate = 0.05;
  trace::Tracer seq_tracer;
  o.threads = 1;
  o.tracer = &seq_tracer;
  const PointResult seq = run_point(2000, 50, o);

  bool all_ok = true;
  for (const unsigned threads : {2u, 4u, 8u}) {
    trace::Tracer par_tracer;
    o.threads = threads;
    o.tracer = &par_tracer;
    const PointResult par = run_point(2000, 50, o);

    bool ok = true;
    if (seq.snapshot_json != par.snapshot_json) {
      std::fprintf(stderr,
                   "[micro_scale] FAIL @ threads=%u: snapshot JSON diverges"
                   " (hash %016llx vs %016llx)\n",
                   threads, (unsigned long long)seq.snapshot_hash,
                   (unsigned long long)par.snapshot_hash);
      ok = false;
    }
    if (seq.deliveries != par.deliveries) {
      std::fprintf(stderr,
                   "[micro_scale] FAIL @ threads=%u: deliveries %llu vs %llu\n",
                   threads, (unsigned long long)seq.deliveries,
                   (unsigned long long)par.deliveries);
      ok = false;
    }
    const auto& a = seq_tracer.spans();
    const auto& b = par_tracer.spans();
    if (a.size() != b.size()) {
      std::fprintf(stderr,
                   "[micro_scale] FAIL @ threads=%u: span count %zu vs %zu\n",
                   threads, a.size(), b.size());
      ok = false;
    } else {
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) {
          std::fprintf(
              stderr,
              "[micro_scale] FAIL @ threads=%u: span log diverges at %zu\n",
              threads, i);
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      std::printf("[micro_scale] threads=%u byte-identical:"
                  " %zu spans, %llu deliveries, hash %016llx\n",
                  threads, a.size(), (unsigned long long)seq.deliveries,
                  (unsigned long long)seq.snapshot_hash);
    }
    all_ok = all_ok && ok;
  }
  return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
  struct Point {
    std::size_t nodes, subs_per_node;
  };
  std::vector<Point> points{{600, 10}, {2000, 50}};
  RunOpts opts;
  std::string json_path = "BENCH_scale.json";
  bool quick = false;
  bool check_determinism = false;
  bool mem_breakdown = false;
  std::size_t nodes_override = 0, spn_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      points = {{2000, 50}};  // the gated 100k-subscription point
      opts.events = 1000;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      points = {{600, 10}, {2000, 50}, {10000, 100}};
    } else if (std::strcmp(argv[i], "--legacy") == 0) {
      opts.legacy = true;
    } else if (std::strcmp(argv[i], "--no-compress") == 0) {
      opts.compress = false;
    } else if (std::strcmp(argv[i], "--mem-breakdown") == 0) {
      mem_breakdown = true;
    } else if (std::strcmp(argv[i], "--check-determinism") == 0) {
      check_determinism = true;
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      nodes_override = std::size_t(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--subs-per-node=", 16) == 0) {
      spn_override = std::size_t(std::atoll(argv[i] + 16));
    } else if (std::strncmp(argv[i], "--events=", 9) == 0) {
      opts.events = std::size_t(std::atoll(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--setup-threads=", 16) == 0) {
      opts.setup_threads = unsigned(std::atoi(argv[i] + 16));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  if (nodes_override || spn_override) {
    points = {{nodes_override ? nodes_override : 2000,
               spn_override ? spn_override : 50}};
  }

  std::vector<PointResult> results;
  for (const auto& pt : points) {
    results.push_back(run_point(pt.nodes, pt.subs_per_node, opts));
    print_point("point", results.back());
    if (mem_breakdown) print_mem_breakdown(results.back());
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f, "{\n \"bench\": \"micro_scale\",\n");
  hypersub::bench::write_host_json(f);
  std::fprintf(f, " \"quick\": %s,\n \"events\": %zu,\n \"mode\": \"%s\",\n",
               quick ? "true" : "false", opts.events,
               opts.legacy ? "legacy" : "fast");
  std::fprintf(f, " \"compress\": %s,\n", opts.compress ? "true" : "false");
  std::fprintf(f, " \"points\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PointResult& r = results[i];
    std::fprintf(f,
                 "  {\"nodes\": %zu, \"subs_per_node\": %zu, \"subs\": %zu, "
                 "\"threads\": %u, \"setup_seconds\": %.3f, "
                 "\"peak_rss_bytes\": %zu, "
                 "\"materialized_zones\": %zu, \"chain_records\": %zu, "
                 "\"implicit_zones\": %zu, "
                 "\"zone_materialized_bytes\": %zu, "
                 "\"zone_chain_bytes\": %zu, \"zone_index_bytes\": %zu, "
                 "\"zone_tree_bytes\": %zu, \"sub_bytes\": %zu, "
                 "\"events_per_sec\": %.0f, "
                 "\"deliveries\": %llu, \"snapshot_hash\": \"%016llx\"}%s\n",
                 r.nodes, r.subs_per_node, r.subs, r.threads, r.setup_seconds,
                 r.peak_rss_bytes, r.materialized_zones, r.chain_records,
                 r.implicit_zones, r.zone_materialized_bytes,
                 r.zone_chain_bytes, r.zone_index_bytes, r.zone_tree_bytes,
                 r.sub_bytes, r.events_per_sec,
                 (unsigned long long)r.deliveries,
                 (unsigned long long)r.snapshot_hash,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, " ]\n}\n");
  std::fclose(f);
  std::printf("[micro_scale] wrote %s\n", json_path.c_str());

  if (check_determinism &&
      !check_determinism_at_scale(opts.events, opts.compress)) {
    return 1;
  }
  return 0;
}
