// Ablation — proximity neighbor selection (Chord-PNS, §5.1).
//
// The paper uses Chord-PNS so that lookups/deliveries traverse physically
// close fingers. This bench compares lookup and delivery latency with PNS
// on vs off at equal hop counts.

#include <cstdio>
#include <cstring>

#include "chord/chord_net.hpp"
#include "common/stats.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/zipf_workload.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const std::size_t nodes = full ? 1740 : 600;
  const int lookups = full ? 3000 : 1000;
  const std::size_t events = full ? 1500 : 400;

  std::printf("=== Ablation: proximity neighbor selection (%zu nodes) ===\n",
              nodes);

  for (const bool pns : {false, true}) {
    net::KingLikeTopology::Params tp;
    tp.hosts = nodes;
    net::KingLikeTopology topo(tp);
    sim::Simulator sim;
    net::Network net(sim, topo);
    chord::ChordNet::Params cp;
    cp.pns = pns;
    chord::ChordNet chord(net, cp);
    chord.oracle_build();

    // Raw lookups.
    Summary hops, lat;
    Rng rng(3);
    for (int i = 0; i < lookups; ++i) {
      chord.route(net::HostIndex(rng.index(nodes)), rng.next_u64(), 0,
                  [&](const chord::ChordNet::RouteResult& r) {
                    hops.add(double(r.hops));
                    lat.add(r.latency_ms);
                  });
    }
    sim.run();

    // Event delivery on top.
    core::HyperSubSystem sys(chord);
    core::CountingDeliverySink sink;  // counts only; skip the full log
    sys.set_delivery_sink(sink);
    workload::WorkloadGenerator gen(workload::table1_spec(), 17);
    core::SchemeOptions opt;
    opt.zone_cfg = {1, 20};
    const auto scheme = sys.add_scheme(gen.scheme(), opt);
    for (net::HostIndex h = 0; h < nodes; ++h) {
      sys.subscribe(h, scheme, gen.make_subscription());
    }
    sim.run();
    double t = 0;
    for (std::size_t i = 0; i < events; ++i) {
      t += rng.exponential(100.0);
      pubsub::Event e = gen.make_event();
      const auto pub = net::HostIndex(rng.index(nodes));
      sim.schedule(t, [&sys, scheme, pub, e]() mutable {
        sys.publish(pub, scheme, std::move(e));
      });
    }
    sim.run();
    sys.finalize_events();

    std::printf(
        "  PNS %-3s  lookup: hops=%.2f latency=%.0f ms | delivery: "
        "latency=%.0f ms hops=%.1f\n",
        pns ? "ON" : "OFF", hops.mean(), lat.mean(),
        sys.event_metrics().latency_cdf().mean(),
        sys.event_metrics().hops_cdf().mean());
  }
  std::printf(
      "Expected shape: PNS keeps hop counts identical but lowers latency "
      "(fingers are physically close).\n");
  return 0;
}
