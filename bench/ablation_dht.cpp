// Ablation — HyperSub over different DHT substrates (paper §6 future work:
// "investigate the performance of HyperSub on different DHTs (e.g. Pastry,
// Tapestry, Koorde etc.)").
//
// Runs the identical workload over Chord-PNS and over Pastry and compares
// installation cost, delivery hops/latency/bandwidth, and load spread.

#include <cstdio>
#include <cstring>

#include "chord/chord_net.hpp"
#include "common/stats.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "pastry/pastry_net.hpp"
#include "workload/zipf_workload.hpp"

namespace {

using namespace hypersub;

struct Row {
  const char* name;
  double lookup_hops;
  double avg_hops;
  double avg_latency;
  double avg_bw_kb;
  double max_load;
};

Row run_on(const char* name, overlay::Overlay& dht, std::size_t nodes,
           std::size_t subs, std::size_t events) {
  sim::Simulator& sim = dht.simulator();

  // Raw lookup hop count.
  Summary lookups;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    dht.route(net::HostIndex(rng.index(nodes)), rng.next_u64(), 0,
              [&](const overlay::Overlay::RouteResult& r) {
                lookups.add(double(r.hops));
              });
  }
  sim.run();

  core::HyperSubSystem sys(dht);
  core::CountingDeliverySink sink;  // counts only; skip the full log
  sys.set_delivery_sink(sink);
  workload::WorkloadGenerator gen(workload::table1_spec(), 7);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = sys.add_scheme(gen.scheme(), opt);
  for (std::size_t i = 0; i < subs; ++i) {
    sys.subscribe(net::HostIndex(rng.index(nodes)), scheme,
                  gen.make_subscription());
  }
  sim.run();

  dht.network().reset_traffic();
  double t = 0;
  for (std::size_t i = 0; i < events; ++i) {
    t += rng.exponential(100.0);
    pubsub::Event e = gen.make_event();
    const auto pub = net::HostIndex(rng.index(nodes));
    sim.schedule(t, [&sys, scheme, pub, e]() mutable {
      sys.publish(pub, scheme, std::move(e));
    });
  }
  sim.run();
  sys.finalize_events();

  double max_load = 0;
  for (const auto l : sys.node_loads()) {
    max_load = std::max(max_load, double(l));
  }
  return Row{name, lookups.mean(), sys.event_metrics().hops_cdf().mean(),
             sys.event_metrics().latency_cdf().mean(),
             sys.event_metrics().bandwidth_kb_cdf().mean(), max_load};
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const std::size_t nodes = full ? 1740 : 500;
  const std::size_t subs = full ? 17400 : 5000;
  const std::size_t events = full ? 2000 : 500;

  std::printf("=== Ablation: HyperSub over Chord-PNS vs Pastry "
              "(%zu nodes, %zu subs, %zu events) ===\n",
              nodes, subs, events);

  Row rows[2];
  {
    net::KingLikeTopology::Params tp;
    tp.hosts = nodes;
    net::KingLikeTopology topo(tp);
    sim::Simulator sim;
    net::Network net(sim, topo);
    chord::ChordNet chord(net, {});
    chord.oracle_build();
    rows[0] = run_on("Chord-PNS", chord, nodes, subs, events);
  }
  {
    net::KingLikeTopology::Params tp;
    tp.hosts = nodes;
    net::KingLikeTopology topo(tp);
    sim::Simulator sim;
    net::Network net(sim, topo);
    pastry::PastryNet pastry(net, {});
    pastry.oracle_build();
    rows[1] = run_on("Pastry", pastry, nodes, subs, events);
  }

  for (const auto& r : rows) {
    std::printf("  %-10s lookup-hops=%4.1f | delivery: hops=%5.1f "
                "latency=%6.0f ms bw=%6.1f KB | max load=%6.0f\n",
                r.name, r.lookup_hops, r.avg_hops, r.avg_latency,
                r.avg_bw_kb, r.max_load);
  }
  std::printf(
      "Expected shape: Pastry's base-16 prefix routing needs fewer lookup "
      "hops than Chord's base-2 fingers; HyperSub's delivery costs track "
      "the substrate's hop counts (paper §3: the design ports to other "
      "DHTs).\n");
  return 0;
}
