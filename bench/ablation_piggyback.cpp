// Ablation — piggybacked DHT maintenance (paper §6 future work: "reduce
// the DHT link maintenance cost by piggybacking the DHT maintenance
// messages onto event delivery messages").
//
// We run the same network with periodic liveness probing of fingers and
// predecessors, once treating event-delivery traffic as liveness evidence
// (piggyback ON) and once not, and report the explicit ping traffic saved.

#include <cstdio>
#include <cstring>

#include "chord/chord_net.hpp"
#include "core/hypersub_system.hpp"
#include "net/topology.hpp"
#include "workload/zipf_workload.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const std::size_t nodes = full ? 1740 : 300;
  const double window_ms = full ? 60000.0 : 20000.0;
  const double mean_interarrival = 25.0;

  std::printf("=== Ablation: piggybacked DHT maintenance (%zu nodes, "
              "%.0f s window, ~%.0f events/s) ===\n",
              nodes, window_ms / 1000.0, 1000.0 / mean_interarrival);

  for (const bool piggyback : {false, true}) {
    net::KingLikeTopology::Params tp;
    tp.hosts = nodes;
    net::KingLikeTopology topo(tp);
    sim::Simulator sim;
    net::Network net(sim, topo);
    chord::ChordNet::Params cp;
    cp.probe_fingers = true;
    cp.piggyback_maintenance = piggyback;
    chord::ChordNet chord(net, cp);
    core::HyperSubSystem::Config sc;
    sc.bootstrap = core::BootstrapMode::kOracle;
    core::HyperSubSystem sys(chord, sc);
    core::CountingDeliverySink sink;  // counts only; skip the full log
    sys.set_delivery_sink(sink);
    workload::WorkloadGenerator gen(workload::table1_spec(), 11);
    core::SchemeOptions opt;
    opt.zone_cfg = {1, 20};
    const auto scheme = sys.add_scheme(gen.scheme(), opt);
    Rng rng(13);
    for (net::HostIndex h = 0; h < nodes; ++h) {
      for (int k = 0; k < 5; ++k) {
        sys.subscribe(h, scheme, gen.make_subscription());
      }
    }
    sim.run();

    chord.start_maintenance();
    double t = 0;
    while (t < window_ms) {
      t += rng.exponential(mean_interarrival);
      pubsub::Event e = gen.make_event();
      const auto pub = net::HostIndex(rng.index(nodes));
      sim.schedule(t, [&sys, scheme, pub, e]() mutable {
        sys.publish(pub, scheme, std::move(e));
      });
    }
    sim.run_until(sim.now() + window_ms);
    chord.stop_maintenance();
    sim.run();
    sys.finalize_events();

    const double total = double(chord.pings_sent() + chord.pings_saved());
    std::printf("  piggyback %-3s  pings sent=%8llu  saved=%8llu  "
                "(%.1f%% of checks answered by event traffic)\n",
                piggyback ? "ON" : "OFF",
                (unsigned long long)chord.pings_sent(),
                (unsigned long long)chord.pings_saved(),
                total > 0 ? 100.0 * double(chord.pings_saved()) / total : 0.0);
  }
  std::printf("Expected shape: with piggybacking, a significant share of "
              "liveness checks ride on event messages for free.\n");
  return 0;
}
