// Figure 4 — load (stored surrogate subscriptions) on nodes ranked by
// load; only the first 100 nodes are shown, as in the paper.
//
// Paper shape to reproduce: base 4 is more imbalanced than base 2;
// dynamic subscription migration flattens both (base-2 max 5830 -> 1870,
// base-4 max 12548 -> 5830 in the paper's run).
//
// Load is a property of the installed subscriptions, so this bench skips
// the event phase entirely (events = 0) and is cheap even at full scale.

#include <iostream>

#include "bench_util.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace hypersub;
  auto scale = bench::parse_scale(argc, argv);
  scale.events = 0;  // load only
  bench::print_scale_banner(scale, "fig4");

  std::vector<runner::ExperimentConfig> cfgs;
  for (const int base_bits : {1, 2}) {
    for (const bool lb : {false, true}) {
      auto cfg = bench::base_config(scale);
      cfg.base_bits = base_bits;
      cfg.load_balancing = lb;
      cfg.lb.delta = 0.1;
      cfg.lb_warm_rounds = 3;
      cfgs.push_back(cfg);
    }
  }
  const auto results = runner::run_experiments_parallel(cfgs);

  std::vector<metrics::Series> series;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    series.push_back(
        {runner::config_label(cfgs[i]), results[i].nodes.load_cdf()});
  }
  metrics::print_ranked_figure(
      std::cout,
      "Fig 4: Load distribution on nodes (first 100 nodes ranked by load)",
      series, 100, 10);

  std::cout << "Shape checks (paper: LB flattens; base 4 worse than base 2):\n";
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    std::printf("  %-22s max load=%6.0f   migrated=%llu\n",
                runner::config_label(cfgs[i]).c_str(),
                results[i].nodes.load_cdf().max(),
                (unsigned long long)results[i].migrated);
  }
  std::cout << "\nNote: load counts stored subscriptions (the paper's §4 "
               "metric). Structural summary-filter pieces are reported by "
               "the system separately and are not migratable.\n";
  return 0;
}
