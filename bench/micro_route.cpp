// Micro-benchmark: the publish fast lane — rendezvous route caching and
// per-next-hop frame batching.
//
// A Zipf-hot event feed (repeated rendezvous zones, bursty publishers)
// runs twice over an identical network and subscription population: once
// with the fast lane off (the paper's publish path) and once with the
// route cache + batching on. We report mean publish hops, packet-header
// bytes per event, and the cache/batching counters, verify the delivery
// counts agree, and write machine-readable results to BENCH_route.json
// (override with --json=PATH) so successive PRs can track the publish-path
// trajectory. --quick shrinks the run for CI; --full scales it up.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chord/chord_net.hpp"
#include "common/zipf.hpp"
#include "core/hypersub_system.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workload/zipf_workload.hpp"

namespace {

using namespace hypersub;

struct Params {
  std::size_t nodes = 300;
  std::size_t subs_per_node = 5;
  std::size_t pool = 64;        ///< distinct hot events (rendezvous zones)
  std::size_t publishers = 6;  ///< distinct feed nodes (caches are per node)
  std::size_t warm_rounds = 30;
  std::size_t rounds = 80;
  std::size_t burst = 4;  ///< events per publisher per quiescent step
  double zipf_skew = 0.95;
};

struct RunResult {
  double mean_publish_hops = 0.0;
  double mean_header_bytes = 0.0;
  double mean_bandwidth_kb = 0.0;
  std::uint64_t deliveries = 0;
  double wall_ns_per_event = 0.0;  ///< host wall time of the measured phase
  metrics::Snapshot snap;
};

/// One live benched system: the full stack plus its Zipf feed state, so a
/// caller can drive rounds incrementally (the overhead measurement
/// interleaves rounds of two coexisting systems).
struct BenchRun {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
  std::unique_ptr<core::HyperSubSystem> sys;
  core::CountingDeliverySink sink;
  std::vector<pubsub::Event> pool;
  std::unique_ptr<ZipfSampler> zipf;
  Rng rng{33};
  std::uint32_t scheme = 0;
  std::size_t publishers = 0;
  std::size_t burst = 0;

  void round() {
    const auto pub = net::HostIndex(rng.index(publishers));
    for (std::size_t b = 0; b < burst; ++b) {
      auto e = pool[zipf->sample(rng) - 1];
      sys->publish(pub, scheme, std::move(e));
    }
    sim->run();
  }
};

std::unique_ptr<BenchRun> make_bench(const Params& p, bool fast,
                                     trace::Tracer* tracer,
                                     double sample_rate) {
  auto b = std::make_unique<BenchRun>();
  net::KingLikeTopology::Params tp;
  tp.hosts = p.nodes;
  tp.seed = 9;
  b->topo = std::make_unique<net::KingLikeTopology>(tp);
  b->sim = std::make_unique<sim::Simulator>();
  b->net = std::make_unique<net::Network>(*b->sim, *b->topo);
  chord::ChordNet::Params cp;
  cp.seed = 9;
  b->chord = std::make_unique<chord::ChordNet>(*b->net, cp);

  core::HyperSubSystem::Config sc;
  sc.bootstrap = core::BootstrapMode::kOracle;
  sc.route_cache = fast;
  sc.batch_forwarding = fast;
  sc.trace_sample_rate = sample_rate;
  b->sys = std::make_unique<core::HyperSubSystem>(*b->chord, sc);
  if (tracer != nullptr) b->sys->set_tracer(tracer);
  b->sys->set_delivery_sink(b->sink);

  workload::WorkloadGenerator gen(workload::table1_spec(), 21);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  b->scheme = b->sys->add_scheme(gen.scheme(), opt);
  for (net::HostIndex h = 0; h < p.nodes; ++h) {
    for (std::size_t k = 0; k < p.subs_per_node; ++k) {
      b->sys->subscribe(h, b->scheme, gen.make_subscription());
    }
  }
  b->sim->run();

  // Zipf-hot feed: events drawn by rank from a fixed pool (repeated
  // rendezvous zones), published in bursts from a small publisher set.
  for (std::size_t i = 0; i < p.pool; ++i) {
    b->pool.push_back(gen.make_event());
  }
  b->zipf = std::make_unique<ZipfSampler>(p.pool, p.zipf_skew);
  b->publishers = p.publishers;
  b->burst = p.burst;

  // Warm-up: populate the caches, then reset every counter (cached routes
  // stay warm — steady-state measurement, as with any cache bench).
  for (std::size_t r = 0; r < p.warm_rounds; ++r) b->round();
  b->sys->finalize_events();
  b->sys->reset_metrics();
  b->net->reset_traffic();
  if (tracer != nullptr) tracer->reset();
  return b;
}

RunResult run_config(const Params& p, bool fast,
                     trace::Tracer* tracer = nullptr,
                     double sample_rate = 1.0) {
  auto b = make_bench(p, fast, tracer, sample_rate);
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < p.rounds; ++r) b->round();
  b->sys->finalize_events();
  const auto wall1 = std::chrono::steady_clock::now();

  RunResult res;
  res.snap = metrics::snapshot(*b->sys);
  res.mean_publish_hops = res.snap.mean_max_hops;
  res.mean_header_bytes = res.snap.mean_header_bytes;
  res.mean_bandwidth_kb = res.snap.mean_bandwidth_kb;
  res.deliveries = b->sink.count();
  res.wall_ns_per_event =
      double(std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 -
                                                                  wall0)
                 .count()) /
      double(p.rounds * p.burst);
  return res;
}

/// Tracing overhead on the publish path, measured where a CI gate can
/// trust it: in-process, interleaved repetitions, medians. `base` is the
/// detached tracer (one null-pointer test per instrumentation site —
/// the contract's "disabled" cost); `attached` keeps a tracer attached at
/// sample rate 0, so every guard runs but no span is recorded.
struct TraceOverhead {
  double base_ns_per_event = 0.0;
  double attached_ns_per_event = 0.0;
  double overhead = 0.0;              ///< (attached - base) / base
  std::size_t sampled_spans = 0;      ///< spans from the rate-0.25 run
  std::size_t complete_traces = 0;    ///< fully-delivered event trees
  std::size_t event_traces = 0;
};

TraceOverhead measure_trace_overhead(const Params& p) {
  // Both variants execute an identical deterministic workload, so any
  // wall-time difference is the guard cost under test plus host noise —
  // and on a shared machine the noise arrives in multi-second load
  // swings that swamp any comparison of *separate* runs. So: build both
  // systems, keep them alive together, and interleave small timed blocks
  // (base, attached, base, attached ... milliseconds apart) — a load
  // swing then hits both sides of each pair equally. Block i performs
  // identical work in both systems (same feed seed), so each pair yields
  // one attached/base ratio; the median over all pairs is the overhead.
  // Block order alternates to cancel any residual first-runner advantage.
  Params op = p;
  // Many pairs: the median's standard error shrinks with sqrt(pairs), and
  // the measured phase is trivial next to the per-system setup cost.
  op.rounds = p.rounds * 32;
  const std::size_t kBlockRounds = 10;
  const std::size_t blocks = op.rounds / kBlockRounds;

  auto base = make_bench(op, false, nullptr, 1.0);
  trace::Tracer t;
  auto attached = make_bench(op, false, &t, 0.0);

  const auto timed_block = [&](BenchRun& b) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < kBlockRounds; ++r) b.round();
    b.sys->finalize_events();
    const auto t1 = std::chrono::steady_clock::now();
    return double(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  };
  // One throwaway pair absorbs cold caches on the measured path.
  timed_block(*base);
  timed_block(*attached);

  std::vector<double> ratio;
  double base_total = 0.0, attached_total = 0.0;
  for (std::size_t i = 0; i + 1 < blocks; ++i) {
    double b, a;
    if (i % 2 == 0) {
      b = timed_block(*base);
      a = timed_block(*attached);
    } else {
      a = timed_block(*attached);
      b = timed_block(*base);
    }
    base_total += b;
    attached_total += a;
    ratio.push_back(b > 0.0 ? a / b : 1.0);
  }
  std::sort(ratio.begin(), ratio.end());
  TraceOverhead o;
  const double events = double((blocks - 1) * kBlockRounds * op.burst);
  o.base_ns_per_event = base_total / events;
  o.attached_ns_per_event = attached_total / events;
  o.overhead = ratio[ratio.size() / 2] - 1.0;
  // Sampled recording must actually produce complete causal trees.
  trace::Tracer st;
  run_config(p, false, &st, 0.25);
  const trace::TraceSummary s = trace::summarize(st);
  o.sampled_spans = st.span_count();
  o.event_traces = s.event_traces;
  o.complete_traces = s.complete_traces;
  return o;
}

bool emit_json(const std::string& path, const Params& p,
               const RunResult& off, const RunResult& on,
               const TraceOverhead& to) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const auto& cc = on.snap.cache;
  const double hit_rate =
      cc.hits + cc.misses > 0
          ? double(cc.hits) / double(cc.hits + cc.misses)
          : 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_route\",\n");
  hypersub::bench::write_host_json(f);
  std::fprintf(f, "  \"workload\": \"table1 zipf pool\",\n");
  std::fprintf(f,
               "  \"nodes\": %zu, \"subs_per_node\": %zu, \"pool\": %zu, "
               "\"zipf_skew\": %.2f,\n",
               p.nodes, p.subs_per_node, p.pool, p.zipf_skew);
  std::fprintf(f, "  \"events\": %zu, \"burst\": %zu,\n", p.rounds * p.burst,
               p.burst);
  std::fprintf(f, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
  std::fprintf(f, "  \"configs\": [\n");
  const struct {
    const char* name;
    const RunResult* r;
  } rows[] = {{"cache_off", &off}, {"cache_on", &on}};
  for (std::size_t i = 0; i < 2; ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"mean_publish_hops\": %.4f, "
                 "\"mean_header_bytes\": %.2f, \"mean_bandwidth_kb\": %.4f, "
                 "\"deliveries\": %llu,\n     \"snapshot\": %s}%s\n",
                 rows[i].name, rows[i].r->mean_publish_hops,
                 rows[i].r->mean_header_bytes, rows[i].r->mean_bandwidth_kb,
                 (unsigned long long)rows[i].r->deliveries,
                 rows[i].r->snap.to_json().c_str(), i == 0 ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"trace\": {\"base_ns_per_event\": %.1f, "
      "\"attached_ns_per_event\": %.1f, \"overhead\": %.4f,\n"
      "            \"sampled_spans\": %zu, \"event_traces\": %zu, "
      "\"complete_traces\": %zu}\n",
      to.base_ns_per_event, to.attached_ns_per_event, to.overhead,
      to.sampled_spans, to.event_traces, to.complete_traces);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_route.json";
  Params p;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      p.nodes = 150;
      p.subs_per_node = 4;
      p.warm_rounds = 15;
      p.rounds = 40;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      p.nodes = 1000;
      p.subs_per_node = 10;
      p.warm_rounds = 60;
      p.rounds = 200;
    }
  }

  std::printf("publish fast lane (%zu nodes, %zu events, pool %zu, "
              "zipf %.2f)\n",
              p.nodes, p.rounds * p.burst, p.pool, p.zipf_skew);
  const RunResult off = run_config(p, false);
  const RunResult on = run_config(p, true);

  std::printf("%12s %18s %18s %16s %12s\n", "config", "mean publish hops",
              "header bytes/ev", "bandwidth KB/ev", "deliveries");
  std::printf("%12s %18.2f %18.1f %16.2f %12llu\n", "cache_off",
              off.mean_publish_hops, off.mean_header_bytes,
              off.mean_bandwidth_kb, (unsigned long long)off.deliveries);
  std::printf("%12s %18.2f %18.1f %16.2f %12llu\n", "cache_on",
              on.mean_publish_hops, on.mean_header_bytes,
              on.mean_bandwidth_kb, (unsigned long long)on.deliveries);
  const auto& cc = on.snap.cache;
  std::printf("cache: %llu hits / %llu misses, %llu corrections; "
              "batching: %llu chunks in %llu frames, %llu header bytes "
              "saved\n",
              (unsigned long long)cc.hits, (unsigned long long)cc.misses,
              (unsigned long long)cc.stale_corrections,
              (unsigned long long)on.snap.batching.chunks,
              (unsigned long long)on.snap.batching.frames,
              (unsigned long long)on.snap.batching.header_bytes_saved);

  // The fast lane must not change what gets delivered.
  if (off.deliveries != on.deliveries) {
    std::fprintf(stderr,
                 "FAIL: delivery counts diverge (off=%llu on=%llu)\n",
                 (unsigned long long)off.deliveries,
                 (unsigned long long)on.deliveries);
    return 1;
  }

  const TraceOverhead to = measure_trace_overhead(p);
  std::printf("trace: detached %.0f ns/ev, attached(rate 0) %.0f ns/ev "
              "(%+.2f%%); sampled rate 0.25: %zu spans, %zu/%zu traces "
              "complete\n",
              to.base_ns_per_event, to.attached_ns_per_event,
              100.0 * to.overhead, to.sampled_spans, to.complete_traces,
              to.event_traces);

  if (!emit_json(json_path, p, off, on, to)) return 1;
  return 0;
}
