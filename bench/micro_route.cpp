// Micro-benchmark: the publish fast lane — rendezvous route caching and
// per-next-hop frame batching.
//
// A Zipf-hot event feed (repeated rendezvous zones, bursty publishers)
// runs twice over an identical network and subscription population: once
// with the fast lane off (the paper's publish path) and once with the
// route cache + batching on. We report mean publish hops, packet-header
// bytes per event, and the cache/batching counters, verify the delivery
// counts agree, and write machine-readable results to BENCH_route.json
// (override with --json=PATH) so successive PRs can track the publish-path
// trajectory. --quick shrinks the run for CI; --full scales it up.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "chord/chord_net.hpp"
#include "common/zipf.hpp"
#include "core/hypersub_system.hpp"
#include "metrics/snapshot.hpp"
#include "net/topology.hpp"
#include "workload/zipf_workload.hpp"

namespace {

using namespace hypersub;

struct Params {
  std::size_t nodes = 300;
  std::size_t subs_per_node = 5;
  std::size_t pool = 64;        ///< distinct hot events (rendezvous zones)
  std::size_t publishers = 6;  ///< distinct feed nodes (caches are per node)
  std::size_t warm_rounds = 30;
  std::size_t rounds = 80;
  std::size_t burst = 4;  ///< events per publisher per quiescent step
  double zipf_skew = 0.95;
};

struct RunResult {
  double mean_publish_hops = 0.0;
  double mean_header_bytes = 0.0;
  double mean_bandwidth_kb = 0.0;
  std::uint64_t deliveries = 0;
  metrics::Snapshot snap;
};

RunResult run_config(const Params& p, bool fast) {
  net::KingLikeTopology::Params tp;
  tp.hosts = p.nodes;
  tp.seed = 9;
  net::KingLikeTopology topo(tp);
  sim::Simulator sim;
  net::Network net(sim, topo);
  chord::ChordNet::Params cp;
  cp.seed = 9;
  chord::ChordNet chord(net, cp);
  chord.oracle_build();

  core::HyperSubSystem::Config sc;
  sc.route_cache = fast;
  sc.batch_forwarding = fast;
  core::HyperSubSystem sys(chord, sc);
  core::CountingDeliverySink sink;
  sys.set_delivery_sink(sink);

  workload::WorkloadGenerator gen(workload::table1_spec(), 21);
  core::SchemeOptions opt;
  opt.zone_cfg = {1, 20};
  const auto scheme = sys.add_scheme(gen.scheme(), opt);
  for (net::HostIndex h = 0; h < p.nodes; ++h) {
    for (std::size_t k = 0; k < p.subs_per_node; ++k) {
      sys.subscribe(h, scheme, gen.make_subscription());
    }
  }
  sim.run();

  // Zipf-hot feed: events drawn by rank from a fixed pool (repeated
  // rendezvous zones), published in bursts from a small publisher set.
  std::vector<pubsub::Event> pool;
  for (std::size_t i = 0; i < p.pool; ++i) pool.push_back(gen.make_event());
  const ZipfSampler zipf(p.pool, p.zipf_skew);
  Rng rng(33);

  auto round = [&](std::size_t r) {
    const auto pub = net::HostIndex(rng.index(p.publishers));
    for (std::size_t b = 0; b < p.burst; ++b) {
      auto e = pool[zipf.sample(rng) - 1];
      sys.publish(pub, scheme, std::move(e));
    }
    sim.run();
    (void)r;
  };

  // Warm-up: populate the caches, then reset every counter (cached routes
  // stay warm — steady-state measurement, as with any cache bench).
  for (std::size_t r = 0; r < p.warm_rounds; ++r) round(r);
  sys.finalize_events();
  sys.reset_metrics();
  net.reset_traffic();

  for (std::size_t r = 0; r < p.rounds; ++r) round(r);
  sys.finalize_events();

  RunResult res;
  res.snap = metrics::snapshot(sys);
  res.mean_publish_hops = res.snap.mean_max_hops;
  res.mean_header_bytes = res.snap.mean_header_bytes;
  res.mean_bandwidth_kb = res.snap.mean_bandwidth_kb;
  res.deliveries = sink.count();
  return res;
}

bool emit_json(const std::string& path, const Params& p,
               const RunResult& off, const RunResult& on) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const auto& cc = on.snap.cache;
  const double hit_rate =
      cc.hits + cc.misses > 0
          ? double(cc.hits) / double(cc.hits + cc.misses)
          : 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_route\",\n");
  std::fprintf(f, "  \"workload\": \"table1 zipf pool\",\n");
  std::fprintf(f,
               "  \"nodes\": %zu, \"subs_per_node\": %zu, \"pool\": %zu, "
               "\"zipf_skew\": %.2f,\n",
               p.nodes, p.subs_per_node, p.pool, p.zipf_skew);
  std::fprintf(f, "  \"events\": %zu, \"burst\": %zu,\n", p.rounds * p.burst,
               p.burst);
  std::fprintf(f, "  \"cache_hit_rate\": %.4f,\n", hit_rate);
  std::fprintf(f, "  \"configs\": [\n");
  const struct {
    const char* name;
    const RunResult* r;
  } rows[] = {{"cache_off", &off}, {"cache_on", &on}};
  for (std::size_t i = 0; i < 2; ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"mean_publish_hops\": %.4f, "
                 "\"mean_header_bytes\": %.2f, \"mean_bandwidth_kb\": %.4f, "
                 "\"deliveries\": %llu,\n     \"snapshot\": %s}%s\n",
                 rows[i].name, rows[i].r->mean_publish_hops,
                 rows[i].r->mean_header_bytes, rows[i].r->mean_bandwidth_kb,
                 (unsigned long long)rows[i].r->deliveries,
                 rows[i].r->snap.to_json().c_str(), i == 0 ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_route.json";
  Params p;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      p.nodes = 150;
      p.subs_per_node = 4;
      p.warm_rounds = 15;
      p.rounds = 40;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      p.nodes = 1000;
      p.subs_per_node = 10;
      p.warm_rounds = 60;
      p.rounds = 200;
    }
  }

  std::printf("publish fast lane (%zu nodes, %zu events, pool %zu, "
              "zipf %.2f)\n",
              p.nodes, p.rounds * p.burst, p.pool, p.zipf_skew);
  const RunResult off = run_config(p, false);
  const RunResult on = run_config(p, true);

  std::printf("%12s %18s %18s %16s %12s\n", "config", "mean publish hops",
              "header bytes/ev", "bandwidth KB/ev", "deliveries");
  std::printf("%12s %18.2f %18.1f %16.2f %12llu\n", "cache_off",
              off.mean_publish_hops, off.mean_header_bytes,
              off.mean_bandwidth_kb, (unsigned long long)off.deliveries);
  std::printf("%12s %18.2f %18.1f %16.2f %12llu\n", "cache_on",
              on.mean_publish_hops, on.mean_header_bytes,
              on.mean_bandwidth_kb, (unsigned long long)on.deliveries);
  const auto& cc = on.snap.cache;
  std::printf("cache: %llu hits / %llu misses, %llu corrections; "
              "batching: %llu chunks in %llu frames, %llu header bytes "
              "saved\n",
              (unsigned long long)cc.hits, (unsigned long long)cc.misses,
              (unsigned long long)cc.stale_corrections,
              (unsigned long long)on.snap.batching.chunks,
              (unsigned long long)on.snap.batching.frames,
              (unsigned long long)on.snap.batching.header_bytes_saved);

  // The fast lane must not change what gets delivered.
  if (off.deliveries != on.deliveries) {
    std::fprintf(stderr,
                 "FAIL: delivery counts diverge (off=%llu on=%llu)\n",
                 (unsigned long long)off.deliveries,
                 (unsigned long long)on.deliveries);
    return 1;
  }
  if (!emit_json(json_path, p, off, on)) return 1;
  return 0;
}
