// Micro-benchmark: Chord routing-table operations and simulated lookups.

#include <benchmark/benchmark.h>

#include <memory>

#include "chord/chord_net.hpp"
#include "net/topology.hpp"

namespace {

using namespace hypersub;

struct Stack {
  std::unique_ptr<net::KingLikeTopology> topo;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<chord::ChordNet> chord;
};

Stack make_stack(std::size_t n) {
  Stack s;
  net::KingLikeTopology::Params tp;
  tp.hosts = n;
  s.topo = std::make_unique<net::KingLikeTopology>(tp);
  s.sim = std::make_unique<sim::Simulator>();
  s.net = std::make_unique<net::Network>(*s.sim, *s.topo);
  s.chord = std::make_unique<chord::ChordNet>(*s.net, chord::ChordNet::Params{});
  s.chord->oracle_build();
  return s;
}

void BM_ClosestPreceding(benchmark::State& state) {
  auto s = make_stack(512);
  const auto& nd = s.chord->node(0);
  Rng rng(1);
  std::vector<Id> keys;
  for (int i = 0; i < 1024; ++i) keys.push_back(rng.next_u64());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nd.closest_preceding(keys[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClosestPreceding);

void BM_SimulatedLookup(benchmark::State& state) {
  // Full end-to-end simulated lookup, including the event queue.
  auto s = make_stack(std::size_t(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    int hops = 0;
    s.chord->route(net::HostIndex(rng.index(std::size_t(state.range(0)))),
                   rng.next_u64(), 0,
                   [&](const chord::ChordNet::RouteResult& r) {
                     hops = r.hops;
                   });
    s.sim->run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedLookup)->Arg(128)->Arg(512)->Arg(1740);

void BM_OracleBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto s = make_stack(std::size_t(state.range(0)));
    benchmark::DoNotOptimize(s.chord.get());
  }
}
BENCHMARK(BM_OracleBuild)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace
